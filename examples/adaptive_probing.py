#!/usr/bin/env python
"""Adaptive probe-rate control (the paper's Fig. 9 trade-off, automated).

Fixed 100 ms probing detects congestion promptly but pays constant
overhead; fixed 30 s probing is cheap and blind (Fig. 9).  The adaptive
controller probes slowly while the network is quiet and snaps to the fast
rate the moment any collected register reading crosses the congestion
threshold.

Run:  python examples/adaptive_probing.py
"""

from repro.core import TelemetryStore
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet import Simulator
from repro.simnet.engine import PeriodicTimer
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.telemetry import (
    AdaptiveProbingController,
    IntCollector,
    ProbeRateListener,
    ProbeResponder,
    ProbeSender,
)
from repro.units import mbps


def main() -> None:
    streams = RandomStreams(8)
    sim = Simulator()
    topo = build_fig4_network(sim, streams)
    net = topo.network

    collector = IntCollector(net.host(topo.scheduler_name))
    store = TelemetryStore(sim)
    collector.subscribe(store.update)

    all_addrs = [net.address_of(n) for n in topo.node_names]
    senders = []
    for name in topo.node_names:
        host = net.host(name)
        if name == topo.scheduler_name:
            ProbeResponder(host, collector=collector)
        else:
            ProbeResponder(host, collector_addr=topo.scheduler_addr)
        sender = ProbeSender(
            host, [a for a in all_addrs if a != host.addr],
            interval=0.1, probe_size=256,
        )
        sender.start()
        senders.append(sender)
        ProbeRateListener(host, sender)

    controller = AdaptiveProbingController(
        net.host(topo.scheduler_name), collector, all_addrs,
        fast_interval=0.1, slow_interval=1.0, cooldown=1.5,
    )

    for name in topo.node_names:
        UdpSink(net.host(name))
    # Quiet until t=12, a congestion episode 12-20 s, quiet again.
    for i, src in enumerate(("node1", "node3")):
        UdpCbrFlow(
            net.host(src), net.address_of("node8"), mbps(12),
            rng=streams.get(f"burst{i}"),
        ).run_for(8.0, delay=12.0)

    timeline = []

    def snapshot():
        timeline.append((
            sim.now,
            controller.current_interval,
            sum(s.probes_sent for s in senders),
        ))

    PeriodicTimer(sim, 2.0, snapshot, start_delay=2.0).start()
    sim.run(until=26.0)

    print("time | probe interval | cumulative probes sent")
    print("-----+----------------+-----------------------")
    prev = 0
    for t, interval, sent in timeline:
        rate = (sent - prev) / 2.0
        prev = sent
        print(f"{t:4.0f}s | {interval:8.1f}s     | {sent:6d}  ({rate:5.0f}/s)")
    print(f"\nrate changes: {controller.rate_changes} "
          f"(congestion episode was 12s-20s)")
    fixed_fast = len(senders) * 7 / 0.1 * 26.0
    print(f"probes sent: {timeline[-1][2]} vs ~{fixed_fast:.0f} at fixed 100 ms "
          f"({100 * timeline[-1][2] / fixed_fast:.0f}%)")


if __name__ == "__main__":
    main()
