#!/usr/bin/env python
"""Serverless (FaaS) offloading under congestion — the paper's Fig. 5 setup.

Runs the same serverless workload (one task per job, Table I small class)
on the Fig. 4 topology under all three scheduling policies and prints the
per-class completion-time comparison plus the per-task gain distribution.

Run:  python examples/serverless_offloading.py [--tasks N] [--seed S]
"""

import argparse

from repro.edge.task import SizeClass
from repro.experiments.comparison import run_comparison
from repro.experiments.ecdf import fraction_above, paired_gains
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    POLICY_RANDOM,
    ExperimentConfig,
    ExperimentScale,
)
from repro.experiments.report import render_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=36, help="tasks per run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--size-scale", type=float, default=0.2,
        help="Table I scale factor (1.0 = the paper's sizes; slower)",
    )
    args = parser.parse_args()

    scale = ExperimentScale(
        size_scale=args.size_scale,
        total_tasks=args.tasks,
        mean_interarrival=0.8 * args.size_scale / 0.2,
        time_scale=args.size_scale,
    )
    base = ExperimentConfig(
        workload="serverless", metric="delay", scale=scale, seed=args.seed
    )

    print(f"Serverless workload: {args.tasks} tasks, seed {args.seed}, "
          f"Table I x{args.size_scale:g}\n")
    comparison = run_comparison(
        base,
        size_classes=(SizeClass.VS, SizeClass.S),
        policies=(POLICY_AWARE, POLICY_NEAREST, POLICY_RANDOM),
    )
    print(render_comparison(comparison, measure="completion"))
    print()
    print(render_comparison(comparison, measure="transfer"))

    gains = paired_gains(
        comparison.result(SizeClass.S, POLICY_AWARE),
        comparison.result(SizeClass.S, POLICY_NEAREST),
    )
    print(
        f"\nPer-task gain vs nearest (class S): "
        f"{fraction_above(gains, 0.0)*100:.0f}% of tasks gained, "
        f"{fraction_above(gains, 0.2)*100:.0f}% gained more than 20%"
    )


if __name__ == "__main__":
    main()
