#!/usr/bin/env python
"""INT vs SNMP: the paper's motivation, measured.

Sections I-II argue that port-counter monitoring at "tens of seconds" is too
coarse for edge scheduling because it misses transient congestion.  This
example runs the *same* network-aware ranking logic on two telemetry feeds:

* INT: 100 ms register collection via probes;
* SNMP: 30 s out-of-band port-counter polls;

and injects a short congestion burst.  Watch what each scheduler believes
about the congested path before, during, and after the burst.

Run:  python examples/int_vs_snmp.py
"""

from repro.core import NetworkAwareScheduler
from repro.experiments.fig4_topology import build_fig4_network
from repro.legacy import SnmpPoller, SnmpScheduler
from repro.simnet import Simulator
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.telemetry import ProbeResponder, ProbeSender
from repro.units import mbps, to_mbps


def main() -> None:
    streams = RandomStreams(3)
    sim = Simulator()
    topo = build_fig4_network(sim, streams)
    net = topo.network
    worker_addrs = [net.address_of(n) for n in topo.worker_names]

    # INT-driven scheduler on node6 (the usual pipeline).
    int_sched = NetworkAwareScheduler(
        net.host(topo.scheduler_name), worker_addrs,
        link_capacity_bps=topo.fabric_rate_bps,
    )
    all_addrs = [net.address_of(n) for n in topo.node_names]
    for name in topo.node_names:
        host = net.host(name)
        if name == topo.scheduler_name:
            ProbeResponder(host, collector=int_sched.collector)
        else:
            ProbeResponder(host, collector_addr=topo.scheduler_addr)
        ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()

    # SNMP-driven scheduler observing the same network (out-of-band polls,
    # the paper's "typical SNMP monitoring interval" of 30 s).  It lives on
    # a different host because both services bind the scheduler port; only
    # its ranking logic is exercised here.
    poller = SnmpPoller(sim, net, poll_interval=30.0)
    poller.start()
    snmp_sched = SnmpScheduler(
        net.host("node2"), worker_addrs, net, poller,
        processing_delay=1e-3,
    )

    for name in topo.node_names:
        UdpSink(net.host(name))

    # A 6-second congestion burst toward node8 (pod 4), starting at t=5.
    for i, src in enumerate(("node3", "node5")):
        UdpCbrFlow(
            net.host(src), net.address_of("node8"),
            mbps(12), rng=streams.get(f"burst{i}"),
        ).run_for(6.0, delay=5.0)

    node7 = net.address_of("node7")
    node8 = net.address_of("node8")

    def estimates() -> str:
        int_bw = dict(int_sched.rank(node7, "bandwidth"))[node8]
        snmp_bw = dict(snmp_sched.rank(node7, "bandwidth"))[node8]
        return (f"INT thinks node7->node8 has {to_mbps(int_bw):5.1f} Mb/s | "
                f"SNMP thinks {to_mbps(snmp_bw):5.1f} Mb/s")

    print("Congestion burst toward node8: t = 5s .. 11s\n")
    for t, label in [
        (3.0, "before the burst "),
        (8.0, "during the burst "),
        (13.0, "after the burst  "),
        (31.0, "after SNMP's poll"),
    ]:
        sim.run(until=t)
        print(f"t={t:5.1f}s ({label}): {estimates()}")

    print(
        "\nINT tracked the burst in real time; SNMP slept through it and then"
        "\nreported a diluted average of a burst that was already over —"
        "\nexactly the failure mode the paper's Introduction describes."
    )


if __name__ == "__main__":
    main()
