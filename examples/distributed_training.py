#!/usr/bin/env python
"""Distributed/federated training rounds with bandwidth-aware placement.

The paper's distributed-computing workload (three tasks per job) models
scenarios like federated learning: each round ships a model shard to three
edge servers, waits for all of them, then starts the next round.  Transfer
time dominates when the shards are large, so the scheduler ranks servers by
*available bandwidth* (Section III-D) rather than delay.

This example drives the round-synchronous pattern directly through the
public API (devices, servers, scheduler service) rather than the experiment
harness, showing how a downstream application embeds the library.

Run:  python examples/distributed_training.py [--rounds N]
"""

import argparse

from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.edge.task import Job, SizeClass, Task
from repro.simnet.flows import UdpSink
from repro.experiments.fig4_topology import build_fig4_network
from repro.core import NetworkAwareScheduler
from repro.simnet import Simulator
from repro.simnet.flows import UdpSink
from repro.simnet.random import RandomStreams
from repro.telemetry import ProbeResponder, ProbeSender
from repro.units import kb


SHARD_BYTES = kb(800)      # model shard per worker per round
LOCAL_STEP_TIME = 0.75     # seconds of simulated on-server computation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    streams = RandomStreams(args.seed)
    sim = Simulator()
    topo = build_fig4_network(sim, streams)
    net = topo.network
    coordinator = "node1"  # the aggregation point submitting each round

    # Servers + scheduler + probing.
    worker_addrs = [net.address_of(n) for n in topo.worker_names]
    for name in topo.worker_names:
        EdgeServer(net.host(name))
        UdpSink(net.host(name))
    UdpSink(net.host(topo.scheduler_name))
    scheduler = NetworkAwareScheduler(
        net.host(topo.scheduler_name),
        [a for a in worker_addrs if a != net.address_of(coordinator)],
        link_capacity_bps=topo.fabric_rate_bps,
    )
    all_addrs = [net.address_of(n) for n in topo.node_names]
    for name in topo.node_names:
        host = net.host(name)
        if name == topo.scheduler_name:
            ProbeResponder(host, collector=scheduler.collector)
        else:
            ProbeResponder(host, collector_addr=topo.scheduler_addr)
        ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()

    # Congestion: midway through training, an iperf-style stream saturates
    # the path into pod 1 (node2's region) — the default choice when the
    # network is idle.  The scheduler should route rounds around it.
    from repro.simnet.flows import UdpCbrFlow

    congestion = UdpCbrFlow(
        net.host("node5"), net.address_of("node2"),
        topo.fabric_rate_bps * 0.95,
        rng=streams.get("congestion"),
    )
    congestion.run_for(25.0, delay=12.0)

    metrics = MetricsCollector()
    addr_to_name = {net.address_of(n): n for n in topo.node_names}
    round_log = []

    state = {"round": 0, "round_started": 0.0}
    device_box = {}

    def start_round() -> None:
        state["round"] += 1
        state["round_started"] = sim.now
        tasks = [
            Task(job_id=0, size_class=SizeClass.VS,
                 data_bytes=SHARD_BYTES, exec_time=LOCAL_STEP_TIME)
            for _ in range(3)
        ]
        job = Job(device_name=coordinator, workload="distributed", tasks=tasks)
        device_box["device"].submit_job(job)

    def on_job_done(job: Job) -> None:
        elapsed = sim.now - state["round_started"]
        workers = sorted(
            addr_to_name[metrics.get(t.task_id).server_addr] for t in job.tasks
        )
        round_log.append((state["round"], elapsed, workers))
        if state["round"] < args.rounds:
            start_round()

    device_box["device"] = EdgeDevice(
        net.host(coordinator), topo.scheduler_addr, metrics,
        metric="bandwidth", on_job_done=on_job_done,
    )

    sim.schedule(1.0, start_round)  # let telemetry warm up first
    sim.run(until=600.0)

    print(f"Federated-style training, {args.rounds} rounds x 3 workers, "
          f"{SHARD_BYTES/1000:.0f} KB shards, bandwidth-ranked placement:\n")
    for rnd, elapsed, workers in round_log:
        print(f"  round {rnd}: {elapsed:5.2f}s  on {', '.join(workers)}")
    total = sum(e for _, e, _ in round_log)
    print(f"\nTotal training time: {total:.2f}s "
          f"(mean round: {total/len(round_log):.2f}s)")
    print("Rounds 4-7 avoided node2 while its path was congested.")


if __name__ == "__main__":
    main()
