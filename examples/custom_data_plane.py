#!/usr/bin/env python
"""Writing a custom P4-style program against the simulator's pipeline API.

The library's data plane is programmable the way BMv2 is: subclass
:class:`~repro.p4.pipeline.P4Program` (or an existing program) and override
the parser/ingress/egress stages.  This example builds two custom programs:

1. ``EcnMarkingProgram`` — forwards normally but marks packets (a flag bit)
   when they observed a deep egress queue, an ECN-style primitive;
2. ``HeavyHitterProgram`` — counts per-source packets in a register array
   and exposes the top talker, a classic data-plane telemetry task.

Run:  python examples/custom_data_plane.py
"""

from repro.p4.forwarding import PlainForwardingProgram
from repro.p4.pipeline import PipelineContext
from repro.simnet import Network, Simulator
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.units import mbps, ms

ECN_FLAG = 0x4          # an unused Packet.flags bit
ECN_THRESHOLD = 8       # packets of queue before marking


class EcnMarkingProgram(PlainForwardingProgram):
    """Forwarding plus ECN-style congestion marking at egress."""

    def __init__(self) -> None:
        super().__init__()
        self.marked = 0

    def egress(self, ctx: PipelineContext) -> None:
        if ctx.enq_depth >= ECN_THRESHOLD:
            ctx.packet.flags |= ECN_FLAG
            self.marked += 1


class HeavyHitterProgram(PlainForwardingProgram):
    """Forwarding plus per-source packet counting in registers."""

    MAX_SOURCES = 64

    def __init__(self) -> None:
        super().__init__()
        self.counters = self.declare_register("per_source_packets", self.MAX_SOURCES)

    def ingress(self, ctx: PipelineContext) -> None:
        src = ctx.packet.src_addr % self.MAX_SOURCES
        self.counters.write(src, self.counters.read(src) + 1)
        super().ingress(ctx)

    def top_talker(self):
        counts = self.counters.snapshot()
        src = max(range(len(counts)), key=lambda i: counts[i])
        return src, counts[src]


def main() -> None:
    sim = Simulator()
    # Install the custom program on every switch via the network's factory.
    net = Network(sim, RandomStreams(5), program_factory=EcnMarkingProgram)
    for h in ("sender1", "sender2", "receiver"):
        net.add_host(h)
    net.add_switch("s01")
    net.attach_host("sender1", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
    net.attach_host("sender2", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
    net.attach_host("receiver", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
    net.finalize()

    sink = UdpSink(net.host("receiver"))
    marked_seen = {"n": 0, "total": 0}

    # Observe ECN marks at the receiver by wrapping the sink's handler.
    original = net.host("receiver")._handlers[(17, sink.port)]

    def counting_handler(packet):
        marked_seen["total"] += 1
        if packet.flags & ECN_FLAG:
            marked_seen["n"] += 1
        original(packet)

    net.host("receiver")._handlers[(17, sink.port)] = counting_handler

    # Two senders together oversubscribe the 20 Mb/s egress toward receiver.
    for i, host in enumerate(("sender1", "sender2")):
        flow = UdpCbrFlow(
            net.host(host), net.address_of("receiver"), mbps(12),
            rng=RandomStreams(10 + i).get("f"),
        )
        flow.run_for(5.0)
    sim.run(until=6.0)

    program = net.switch("s01").program
    print("EcnMarkingProgram on s01:")
    print(f"  packets marked at egress: {program.marked}")
    print(f"  marked packets seen by receiver: {marked_seen['n']} / {marked_seen['total']}")
    assert marked_seen["n"] > 0, "oversubscription should trigger ECN marks"

    # Second program: heavy-hitter detection on a fresh network.
    sim2 = Simulator()
    net2 = Network(sim2, RandomStreams(6), program_factory=HeavyHitterProgram)
    for h in ("mouse", "elephant", "receiver"):
        net2.add_host(h)
    net2.add_switch("s01")
    for h in ("mouse", "elephant", "receiver"):
        net2.attach_host(h, "s01", fabric_rate_bps=mbps(20), delay=ms(5))
    net2.finalize()
    UdpSink(net2.host("receiver"))
    UdpCbrFlow(net2.host("mouse"), net2.address_of("receiver"), mbps(1),
               burstiness="cbr").run_for(5.0)
    UdpCbrFlow(net2.host("elephant"), net2.address_of("receiver"), mbps(15),
               burstiness="cbr").run_for(5.0)
    sim2.run(until=6.0)

    program2 = net2.switch("s01").program
    src_slot, count = program2.top_talker()
    elephant_addr = net2.address_of("elephant")
    print("\nHeavyHitterProgram on s01:")
    print(f"  top talker: address slot {src_slot} with {count} packets")
    assert src_slot == elephant_addr % HeavyHitterProgram.MAX_SOURCES
    print("  (correctly identified the elephant flow)")


if __name__ == "__main__":
    main()
