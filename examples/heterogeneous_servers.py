#!/usr/bin/env python
"""Heterogeneous edge servers — the paper's future work, working.

Section VI: "We will also consider heterogeneous edge server scenario in
which tasks may have certain hardware (e.g., GPU) or software (e.g., Keras)
requirements that needs to be considered when scheduling tasks."

Here only two of seven servers carry GPUs.  GPU-requiring tasks are ranked
over the eligible pair only (still network-aware between them); plain tasks
use the whole fleet.  The compute-aware load term steers a second GPU job
away from the GPU server that is already busy.

Run:  python examples/heterogeneous_servers.py
"""

from repro.core.extensions import HeterogeneityAwareScheduler
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.edge.task import Job, SizeClass, Task
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet import Simulator
from repro.simnet.random import RandomStreams
from repro.telemetry import ProbeResponder, ProbeSender
from repro.units import kb

GPU_NODES = {"node4", "node8"}


def main() -> None:
    streams = RandomStreams(4)
    sim = Simulator()
    topo = build_fig4_network(sim, streams)
    net = topo.network

    capabilities = {}
    for name in topo.worker_names:
        caps = {"gpu", "keras"} if name in GPU_NODES else {"keras"}
        EdgeServer(
            net.host(name), capabilities=caps,
            load_report_addr=topo.scheduler_addr, load_report_interval=0.5,
        )
        capabilities[net.address_of(name)] = caps

    scheduler = HeterogeneityAwareScheduler(
        net.host(topo.scheduler_name),
        [net.address_of(n) for n in topo.worker_names],
        link_capacity_bps=topo.fabric_rate_bps,
        capabilities=capabilities,
        mean_exec_time=3.0,
    )
    all_addrs = [net.address_of(n) for n in topo.node_names]
    for name in topo.node_names:
        host = net.host(name)
        if name == topo.scheduler_name:
            ProbeResponder(host, collector=scheduler.collector)
        else:
            ProbeResponder(host, collector_addr=topo.scheduler_addr)
        ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()

    metrics = MetricsCollector()
    log = []

    def submit(device_name, requirements, label, exec_time=4.0):
        device = EdgeDevice(
            net.host(device_name), topo.scheduler_addr, metrics,
            metric=("delay", frozenset(requirements)),
        )
        task = Task(
            job_id=0, size_class=SizeClass.VS, data_bytes=kb(200),
            exec_time=exec_time, requirements=frozenset(requirements),
        )
        job = Job(device_name=device_name, workload="serverless", tasks=[task])
        device.submit_job(job)
        log.append((label, task.task_id))

    # GPU job #1 runs long; by the time #2 is scheduled, load reports have
    # told the scheduler its first choice is busy.
    sim.schedule(1.0, submit, "node1", {"gpu"}, "GPU job #1 from node1", 10.0)
    sim.schedule(2.0, submit, "node1", {"keras"}, "Keras-only job from node1")
    sim.schedule(4.0, submit, "node1", {"gpu"}, "GPU job #2 from node1")
    sim.schedule(5.0, submit, "node7", {"gpu", "keras"}, "GPU+Keras job from node7")
    sim.run(until=60.0)

    print(f"GPU-capable servers: {sorted(GPU_NODES)}\n")
    for label, task_id in log:
        record = metrics.get(task_id)
        server = net.name_of(record.server_addr)
        gpu = "GPU" if server in GPU_NODES else "no GPU"
        print(f"  {label:28s} -> {server} ({gpu}), "
              f"completed in {record.completion_time:.2f}s")

    gpu_records = [metrics.get(tid) for label, tid in log if "GPU job" in label]
    assert all(net.name_of(r.server_addr) in GPU_NODES for r in gpu_records)
    servers_used = {net.name_of(r.server_addr) for r in gpu_records}
    print(f"\nBoth GPU jobs placed on GPU hardware; load reports spread them "
          f"over {len(servers_used)} server(s).")


if __name__ == "__main__":
    main()
