#!/usr/bin/env python
"""Quickstart: INT-driven network-aware scheduling in ~80 lines.

Builds a small two-pod network, starts INT probing, congests one pod with
iperf-style traffic, and shows the scheduler's ranking move away from the
congested servers — the paper's core mechanism, end to end.

Run:  python examples/quickstart.py
"""

from repro.core import NetworkAwareScheduler
from repro.simnet import Network, Simulator
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.telemetry import ProbeResponder, ProbeSender
from repro.units import mbps, ms, to_ms


def build_network(sim: Simulator) -> Network:
    """Two pods of servers behind a shared core link.

        device -- s01 -- s02 -+- serverA   (pod A)
                       |      +- serverB
                       s03 -+- serverC     (pod B)
                            +- serverD
    """
    net = Network(sim, RandomStreams(root_seed=42))
    for host in ("device", "serverA", "serverB", "serverC", "serverD", "schedhost"):
        net.add_host(host)
    for switch in ("s01", "s02", "s03"):
        net.add_switch(switch)

    fabric = mbps(20)
    net.attach_host("device", "s01", fabric_rate_bps=fabric, delay=ms(10))
    net.attach_host("schedhost", "s01", fabric_rate_bps=fabric, delay=ms(10))
    net.connect("s01", "s02", rate_bps=fabric, delay=ms(10))
    net.connect("s01", "s03", rate_bps=fabric, delay=ms(10))
    for server, leaf in [("serverA", "s02"), ("serverB", "s02"),
                         ("serverC", "s03"), ("serverD", "s03")]:
        net.attach_host(server, leaf, fabric_rate_bps=fabric, delay=ms(10))
    net.finalize()
    return net


def main() -> None:
    sim = Simulator()
    net = build_network(sim)
    servers = ["serverA", "serverB", "serverC", "serverD"]
    server_addrs = [net.address_of(s) for s in servers]
    addr_to_name = {net.address_of(s): s for s in servers}

    # The network-aware scheduler lives on its own host and owns the INT
    # collector -> telemetry store -> estimator pipeline.
    scheduler = NetworkAwareScheduler(
        net.host("schedhost"), server_addrs, link_capacity_bps=mbps(20)
    )

    # Every node probes every other node at 100 ms (mesh layout); non-
    # scheduler nodes forward the collected INT stacks to the scheduler.
    all_hosts = ["device", "schedhost"] + servers
    all_addrs = [net.address_of(h) for h in all_hosts]
    for name in all_hosts:
        host = net.host(name)
        if name == "schedhost":
            ProbeResponder(host, collector=scheduler.collector)
        else:
            ProbeResponder(host, collector_addr=net.address_of("schedhost"))
        ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()

    def show_ranking(title: str) -> None:
        origin = ("host", net.address_of("device"))
        from repro.core.ranking import rank_by_delay

        candidates = [("host", a) for a in server_addrs]
        ranked = rank_by_delay(scheduler.delay_estimator, origin, candidates)
        print(f"\n{title}")
        for (kind, addr), delay in ranked:
            print(f"  {addr_to_name[addr]:>8}: estimated one-way delay {to_ms(delay):7.1f} ms")

    # Let telemetry accumulate, then look at the idle ranking.
    sim.run(until=2.0)
    show_ranking("Idle network — pod A and pod B look identical:")

    # Congest pod A: a 19 Mb/s iperf stream toward serverA saturates the
    # s01->s02 and s02->serverA egress ports.
    UdpSink(net.host("serverA"))
    congestion = UdpCbrFlow(
        net.host("device"), net.address_of("serverA"), mbps(19),
        rng=RandomStreams(7).get("iperf"),
    )
    congestion.run_for(10.0)
    sim.run(until=6.0)
    show_ranking("Pod A congested — INT pushes the scheduler toward pod B:")

    # Congestion ends; registers drain and the ranking recovers.
    sim.run(until=16.0)
    show_ranking("Congestion over — ranking converges back:")

    print(f"\nProbe reports collected: {scheduler.collector.reports_ingested}")
    print(f"Links tracked by the telemetry store: {scheduler.store.known_link_count()}")


if __name__ == "__main__":
    main()
