#!/usr/bin/env python
"""Reproduce Fig. 3 and feed the calibration into the scheduler.

Sweeps egress-port utilization on the two-host / one-switch topology,
measuring the per-probing-interval maximum queue depth (via INT registers
and probes) and RTT (via ping) — then turns the measured pairs into the
queue<->utilization curve the bandwidth estimator inverts, and fits the
queue->latency conversion factor k that Algorithm 1 uses (automating what
the paper leaves as future work).

Run:  python examples/calibration_curve.py [--duration SECONDS]
"""

import argparse

from repro.core.estimators import DelayEstimator
from repro.experiments.calibration import (
    calibration_to_curve,
    run_calibration_sweep,
)
from repro.experiments.report import render_calibration


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="seconds per utilization level (paper: 300)",
    )
    args = parser.parse_args()

    levels = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    print(f"Sweeping {len(levels)} utilization levels, "
          f"{args.duration:.0f}s each (paper: 300s each)...\n")
    points = run_calibration_sweep(levels, duration=args.duration)

    print(render_calibration(points))

    # 1. The queue -> utilization curve (Section III-D's inversion).
    curve = calibration_to_curve(points)
    print("\nCalibrated queue->utilization curve:")
    for q in (0, 2, 5, 10, 20, 40):
        print(f"  max queue {q:>3} pkts  ->  estimated utilization {curve.utilization(q)*100:5.1f}%")

    # 2. The queue -> latency factor k (Section III-C; paper fixes k = 20 ms
    #    manually and defers auto-tuning).
    baseline_rtt = points[0].mean_rtt
    samples = [(p.mean_max_qdepth, (p.mean_rtt - 0) / 2.0) for p in points]
    k = DelayEstimator.calibrated_k(
        [(q, rtt) for q, rtt in samples], baseline_rtt / 2.0
    )
    print(f"\nLeast-squares fit of the conversion factor: k = {k*1e3:.1f} ms/packet")
    print("(the paper uses k = 20 ms; pass k and curve into NetworkAwareScheduler)")


if __name__ == "__main__":
    main()
