#!/usr/bin/env python
"""Regenerate every table and figure in the paper's evaluation section.

Runs, in order: Fig. 3 (calibration), Figs. 5/6/7 (policy comparisons per
Table I size class), Fig. 8 (per-task gain ECDF), Fig. 9 (probing-interval
sweep), and prints each as a text table.  The output of ``--scale full`` is
what EXPERIMENTS.md records.

Scales:
  smoke  — minutes:   2 size classes, 36 tasks, Table I x0.2
  quick  — ~0.5 hour: all 4 size classes, 36 tasks, Table I x0.2 (default)
  full   — hours:     all 4 size classes, 200 tasks, Table I x1.0 (the paper)

Run:  python examples/full_reproduction.py [--scale quick] [--out report.md]
"""

import argparse
import sys
import time

from repro.edge.task import SizeClass
from repro.experiments.calibration import run_calibration_sweep
from repro.experiments.comparison import (
    FIG5_CONFIG,
    FIG6_CONFIG,
    FIG7_CONFIG,
    run_comparison,
)
from repro.experiments.ecdf import fraction_above, paired_gains
from repro.experiments.harness import (
    FULL_SCALE,
    POLICY_AWARE,
    POLICY_NEAREST,
    POLICY_RANDOM,
    QUICK_SCALE,
    ExperimentConfig,
    ExperimentScale,
)
from repro.experiments.probing_sweep import run_probing_sweep
from repro.experiments.report import (
    render_calibration,
    render_comparison,
    render_ecdf_points,
    render_probing_sweep,
)

SCALES = {
    "smoke": (QUICK_SCALE, (SizeClass.VS, SizeClass.S), 20.0, (0.1, 30.0)),
    "quick": (QUICK_SCALE, tuple(SizeClass), 30.0, (0.1, 5.0, 10.0, 20.0, 30.0)),
    "full": (FULL_SCALE, tuple(SizeClass), 300.0, (0.1, 5.0, 10.0, 20.0, 30.0)),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None, help="also write to file")
    args = parser.parse_args()
    scale, classes, calib_duration, intervals = SCALES[args.scale]

    lines = []

    def emit(text: str = "") -> None:
        print(text)
        sys.stdout.flush()
        lines.append(text)

    started = time.time()
    emit(f"# Reproduction report (scale={args.scale}, seed={args.seed})")
    emit(f"Tasks per run: {scale.total_tasks}; Table I x{scale.size_scale:g}")

    # ---- Fig. 3 -----------------------------------------------------------
    emit("\n## Fig. 3 — max queue depth & RTT vs utilization")
    points = run_calibration_sweep(
        (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        duration=calib_duration,
        seed=args.seed,
    )
    emit(render_calibration(points))

    # ---- Figs. 5/6/7 -------------------------------------------------------
    figures = [
        ("Fig. 5 — serverless, delay ranking (completion time)", FIG5_CONFIG, "completion"),
        ("Fig. 6 — distributed, delay ranking (completion time)", FIG6_CONFIG, "completion"),
        ("Fig. 7 — distributed, bandwidth ranking (transfer time)", FIG7_CONFIG, "transfer"),
    ]
    comparisons = {}
    for title, base, measure in figures:
        emit(f"\n## {title}")
        from dataclasses import replace

        comparison = run_comparison(
            replace(base, scale=scale, seed=args.seed),
            size_classes=classes,
            policies=(POLICY_AWARE, POLICY_NEAREST, POLICY_RANDOM),
        )
        comparisons[title] = comparison
        emit(render_comparison(comparison, measure=measure))

    # ---- Fig. 8 ------------------------------------------------------------
    emit("\n## Fig. 8 — ECDF of per-task completion-time gain vs nearest")
    fig7 = comparisons[figures[2][0]]
    sc = SizeClass.S if SizeClass.S in classes else classes[0]
    gains = paired_gains(
        fig7.result(sc, POLICY_AWARE), fig7.result(sc, POLICY_NEAREST)
    )
    emit(render_ecdf_points(gains))
    emit(
        f"tasks with zero-or-negative gain: {100*(1-fraction_above(gains, 0.0)):.0f}%  "
        f"(paper: 19-38% depending on setup)"
    )

    # ---- Fig. 9 ------------------------------------------------------------
    emit("\n## Fig. 9 — probing interval vs mean transfer time")
    sweeps = [
        run_probing_sweep(name, intervals=intervals, seed=args.seed)
        for name in ("traffic1", "traffic2")
    ]
    emit(render_probing_sweep(sweeps))

    emit(f"\nTotal wall-clock: {time.time() - started:.0f}s")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        print(f"\nReport written to {args.out}")


if __name__ == "__main__":
    main()
