"""Setuptools shim.

The offline environment ships setuptools 65.5 without the ``wheel`` package,
so PEP 660 editable installs fail; this shim enables the legacy
``pip install -e . --no-build-isolation --no-use-pep517`` path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
