"""Ablation: adaptive probe-rate control vs fixed probing rates.

The paper fixes the probing period at 100 ms and shows (Fig. 9) that slower
fixed rates hurt; auto-tuning is future work.  The adaptive controller
(`repro.telemetry.adaptive`) probes fast only while congestion is visible.
This ablation measures the two quantities that trade off:

* probing overhead (probes actually emitted);
* detection latency (how quickly new congestion appears in the store).
"""

import pytest

from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.engine import Simulator
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.telemetry.adaptive import AdaptiveProbingController, ProbeRateListener
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.core.telemetry_store import TelemetryStore
from repro.units import mbps


def _build(adaptive: bool, fixed_interval: float = 0.1):
    """Fig. 4 network with mesh probing; idle 0-10 s, congested 10-15 s."""
    sim = Simulator()
    topo = build_fig4_network(sim, RandomStreams(2))
    net = topo.network
    collector = IntCollector(net.host(topo.scheduler_name))
    store = TelemetryStore(sim)
    collector.subscribe(store.update)
    all_addrs = [net.address_of(n) for n in topo.node_names]
    senders = []
    for name in topo.node_names:
        host = net.host(name)
        if name == topo.scheduler_name:
            ProbeResponder(host, collector=collector)
        else:
            ProbeResponder(host, collector_addr=topo.scheduler_addr)
        sender = ProbeSender(
            host, [a for a in all_addrs if a != host.addr],
            interval=fixed_interval, probe_size=256,
        )
        sender.start()
        senders.append(sender)
        if adaptive:
            ProbeRateListener(host, sender)
    if adaptive:
        AdaptiveProbingController(
            net.host(topo.scheduler_name), collector,
            [net.address_of(n) for n in topo.node_names],
            fast_interval=0.1, slow_interval=1.0, cooldown=1.0,
        )
    for name in topo.node_names:
        UdpSink(net.host(name))
    for i, src in enumerate(("node3", "node5")):
        UdpCbrFlow(
            net.host(src), net.address_of("node8"), mbps(12),
            rng=RandomStreams(50 + i).get("f"),
        ).run_for(5.0, delay=10.0)
    return sim, topo, store, senders


def _detection_time(sim, store, net, deadline=16.0):
    """Sim time at which the store first shows the pod-4 congestion."""
    probe_point = (("sw", 4), ("sw", 12))  # s04 -> s12, the convergence port
    hit = {}

    def check():
        if "t" not in hit and store.max_qdepth(*probe_point) >= 3:
            hit["t"] = sim.now

    from repro.simnet.engine import PeriodicTimer

    timer = PeriodicTimer(sim, 0.05, check)
    timer.start()
    sim.run(until=deadline)
    return hit.get("t")


def test_adaptive_probing_cuts_idle_overhead(benchmark):
    def run():
        sim_a, topo_a, store_a, senders_a = _build(adaptive=True)
        det_a = _detection_time(sim_a, store_a, topo_a.network)
        probes_a = sum(s.probes_sent for s in senders_a)

        sim_f, topo_f, store_f, senders_f = _build(adaptive=False, fixed_interval=0.1)
        det_f = _detection_time(sim_f, store_f, topo_f.network)
        probes_f = sum(s.probes_sent for s in senders_f)
        return det_a, probes_a, det_f, probes_f

    det_a, probes_a, det_f, probes_f = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both detect the congestion that starts at t=10.
    assert det_f is not None and det_a is not None
    assert det_f >= 10.0 and det_a >= 10.0
    # Adaptive detection lags by at most ~one slow interval + decision period.
    assert det_a - det_f < 2.0
    # And it costs far fewer probes over the (mostly idle) run.
    assert probes_a < 0.45 * probes_f


def test_fixed_slow_probing_detects_late_or_never(benchmark):
    def run():
        sim, topo, store, senders = _build(adaptive=False, fixed_interval=5.0)
        det = _detection_time(sim, store, topo.network)
        return det

    det = benchmark.pedantic(run, rounds=1, iterations=1)
    # 5 s fixed probing: detection no earlier than the first post-onset probe.
    assert det is None or det >= 10.0
