"""Table I — workload size classes.

Validates the generator against the paper's table and benchmarks workload
plan materialization (the only Table I 'result' is the specification
itself)."""

import pytest

from repro.edge.task import TABLE_I, SizeClass, sample_task
from repro.edge.workload import WORKLOAD_DISTRIBUTED, WorkloadSpec, build_plan
from repro.simnet.random import RandomStreams
from repro.units import kb, ms


def test_table1_ranges_match_paper(benchmark):
    expected = {
        SizeClass.VS: ((kb(0), kb(1000)), (ms(0), ms(2000))),
        SizeClass.S: ((kb(1500), kb(2500)), (ms(2500), ms(4500))),
        SizeClass.M: ((kb(3000), kb(4000)), (ms(5000), ms(7000))),
        SizeClass.L: ((kb(4500), kb(5500)), (ms(7500), ms(9500))),
    }
    for size_class, (data_range, exec_range) in expected.items():
        got_data, got_exec = TABLE_I[size_class]
        assert got_data == data_range
        assert got_exec == pytest.approx(exec_range)


def test_table1_sampler_benchmark(benchmark):
    rng = RandomStreams(0).get("bench")

    def draw_all_classes():
        return [sample_task(rng, sc) for sc in SizeClass for _ in range(50)]

    samples = benchmark(draw_all_classes)
    assert len(samples) == 200


def test_workload_plan_benchmark(benchmark):
    spec = WorkloadSpec(
        workload=WORKLOAD_DISTRIBUTED, size_class=SizeClass.M, total_tasks=200
    )
    devices = [f"node{i}" for i in range(1, 8)]

    def build():
        return build_plan(spec, devices, RandomStreams(3).get("w"))

    plan = benchmark(build)
    assert sum(len(j.task_shapes) for j in plan.jobs) == 200
