"""Fig. 7 — distributed workload, bandwidth-based ranking, transfer times.

Paper: 28-40 % transfer-time reduction vs nearest, 22-35 % completion-time
reduction; bandwidth-based selection is willing to pick *distant* servers
when the available bandwidth there is higher."""

import pytest

from conftest import cached_run


def _transfer_means(size_label):
    return {
        policy: cached_run(policy, "distributed", "bandwidth", size_label).mean_transfer_time()
        for policy in ("aware", "nearest", "random")
    }


def test_fig7_transfer_gain(benchmark):
    means = benchmark.pedantic(lambda: _transfer_means("S"), rounds=1, iterations=1)
    gain = 100 * (means["nearest"] - means["aware"]) / means["nearest"]
    assert gain > 3.0, f"bandwidth ranking should cut transfer time, got {gain:+.1f}%"


def test_fig7_completion_also_improves(benchmark):
    aware = cached_run("aware", "distributed", "bandwidth", "S").mean_completion_time()
    nearest = cached_run("nearest", "distributed", "bandwidth", "S").mean_completion_time()
    assert aware < nearest


def test_fig7_random_worst_transfer(benchmark):
    means = _transfer_means("S")
    assert means["aware"] < means["random"]


def test_fig7_bandwidth_ranking_uses_remote_servers(benchmark):
    """Unlike nearest, the bandwidth policy sometimes offloads outside the
    device's pod — the behaviour the paper's Section IV-B highlights."""
    from repro.experiments.fig4_topology import build_fig4_network
    from repro.simnet.engine import Simulator
    from repro.simnet.random import RandomStreams

    topo = build_fig4_network(Simulator(), RandomStreams(0))
    pod_of_addr = {
        topo.network.address_of(n): pod for n, pod in topo.pod_of.items()
    }
    res = cached_run("aware", "distributed", "bandwidth", "S")
    device_pod = {n: topo.pod_of[n] for n in topo.pod_of}
    cross_pod = sum(
        1
        for r in res.records_in_order
        if r.server_addr is not None
        and pod_of_addr[r.server_addr] != device_pod[r.device]
    )
    assert cross_pod > 0
