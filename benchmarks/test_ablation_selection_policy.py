"""Ablation: the paper's two scheduler modes, head to head.

Mode 1 (evaluated in the paper): sorted single-metric ranking, devices take
the top entries.  Mode 2 (described but not evaluated): raw (delay,
bandwidth) pairs with a device-side policy — here the estimated-finish-time
policy, which weighs delay vs bandwidth *per task size*.

Distributed jobs mix task sizes, so per-task selection has room to improve
on a single global metric.
"""

from dataclasses import replace
from functools import lru_cache

import pytest

from repro.edge.task import SizeClass
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    QUICK_SCALE,
    ExperimentConfig,
    run_experiment,
)


@lru_cache(maxsize=8)
def run(metric: str, selection: str, policy: str = POLICY_AWARE):
    config = ExperimentConfig(
        policy=policy,
        workload="distributed",
        metric=metric,
        selection=selection,
        size_class=SizeClass.S,
        scale=QUICK_SCALE,
        seed=0,
    )
    return run_experiment(config)


def test_raw_mode_runs_end_to_end(benchmark):
    res = benchmark.pedantic(
        lambda: run("raw", "min_completion"), rounds=1, iterations=1
    )
    assert res.tasks_failed == 0
    assert res.tasks_completed == QUICK_SCALE.total_tasks


def test_min_completion_competitive_with_fixed_metrics(benchmark):
    def measure():
        return {
            "min_completion": run("raw", "min_completion").mean_completion_time(),
            "bandwidth": run("bandwidth", "top_k").mean_completion_time(),
            "delay": run("delay", "top_k").mean_completion_time(),
        }

    means = benchmark.pedantic(measure, rounds=1, iterations=1)
    best_fixed = min(means["bandwidth"], means["delay"])
    # The per-task policy must be in the same league as the better fixed
    # metric (it optimizes the same estimates, just per task).
    assert means["min_completion"] <= best_fixed * 1.15
    print()
    print({k: round(v, 2) for k, v in means.items()})


def test_min_completion_beats_nearest(benchmark):
    aware = run("raw", "min_completion").mean_completion_time()
    nearest = run("delay", "top_k", policy=POLICY_NEAREST).mean_completion_time()
    assert aware < nearest
