"""Section III-A overhead claim — probing costs 120 Kb/s per sender
(10 pkt/s x 1.5 KB), about 1.1 % of a 10 Mb/s link, versus the rapidly
growing cost of embedding INT in every data packet."""

import pytest

from repro.p4.headers import HOP_RECORD_SIZE
from repro.simnet.engine import Simulator
from repro.simnet.random import RandomStreams
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.units import kbps, mbps
from repro.experiments.fig4_topology import build_fig4_network


def test_paper_overhead_arithmetic(benchmark):
    """10 packets/s x 1.5 KB = 120 Kb/s = 1.2 % of 10 Mb/s."""
    sim = Simulator()
    topo = build_fig4_network(sim, RandomStreams(0))
    sender = ProbeSender(
        topo.network.host("node1"), [topo.scheduler_addr], interval=0.1, probe_size=1500
    )
    assert sender.overhead_bps == pytest.approx(kbps(120))
    assert sender.overhead_bps / mbps(10) == pytest.approx(0.012, abs=0.002)


def test_measured_probe_traffic_matches_offered(benchmark):
    """Run probing for 10 s of sim time and measure actual bytes on the
    sender's uplink."""
    def run():
        sim = Simulator()
        topo = build_fig4_network(sim, RandomStreams(0))
        collector = IntCollector(topo.network.host("node6"))
        ProbeResponder(topo.network.host("node6"), collector=collector)
        sender = ProbeSender(
            topo.network.host("node1"), [topo.scheduler_addr],
            interval=0.1, probe_size=1500,
        )
        sender.start()
        sim.run(until=10.0)
        link = topo.network.host("node1").ports[0].link
        carried = link.bytes_carried["a"]  # node1 -> leaf direction
        return carried * 8.0 / 10.0, collector.reports_ingested

    rate, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rate == pytest.approx(kbps(120), rel=0.05)
    assert reports >= 95  # ~100 probes in 10 s, minus boundary effects


def test_per_packet_int_would_cost_more(benchmark):
    """The design alternative the paper rejects: INT metadata appended to
    every data frame.  With 17 B/hop and 5 hops that is 5.7 % of every
    1500 B frame — already ~48x the register+probe design's relative cost
    at 10 Mb/s, and it grows with hop count."""
    per_packet_fraction = 5 * HOP_RECORD_SIZE / 1500
    probe_fraction = kbps(120) / mbps(10) / 10  # amortized over 10 Mb/s x 10 nodes
    assert per_packet_fraction > 0.05
    assert per_packet_fraction > probe_fraction


def test_measured_per_packet_int_overhead(benchmark):
    """Measure (not just compute) the rejected design: run a bulk flow
    through switches embedding INT in every packet and compare the on-wire
    telemetry fraction against the register+probe approach's amortized
    cost in the same setting."""
    from repro.p4.per_packet_int import PerPacketIntProgram, PerPacketIntSink
    from repro.simnet.flows import UdpCbrFlow
    from repro.simnet.packet import MTU
    from repro.simnet.topology import Network
    from repro.units import ms

    def run():
        sim = Simulator()
        net = Network(
            sim, RandomStreams(0), switch_service_jitter=0.0,
            program_factory=PerPacketIntProgram,
        )
        net.add_host("h1")
        net.add_host("h2")
        for s in ("s01", "s02", "s03", "s04", "s05"):
            net.add_switch(s)
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(2))
        for a, b in (("s01", "s02"), ("s02", "s03"), ("s03", "s04"), ("s04", "s05")):
            net.connect(a, b, rate_bps=mbps(20), delay=ms(2))
        net.attach_host("h2", "s05", fabric_rate_bps=mbps(20), delay=ms(2))
        net.finalize()
        sink = PerPacketIntSink(net.host("h2"), 5201)
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(10),
            packet_size=MTU, dst_port=5201, burstiness="cbr",
        )
        flow.run_for(5.0)
        sim.run(until=6.0)
        return sink

    sink = benchmark.pedantic(run, rounds=1, iterations=1)
    # 5 hops of 17 B on 1500 B frames: ~5.4 % of the wire.
    assert sink.overhead_fraction == pytest.approx(
        5 * HOP_RECORD_SIZE / (MTU_BYTES + 5 * HOP_RECORD_SIZE), rel=0.01
    )
    # The register+probe design amortizes 120 Kb/s per node over the same
    # 10 Mb/s of traffic: ~1.2 %, several times cheaper — and independent of
    # how many packets the workload sends.
    register_probe_fraction = kbps(120) / mbps(10)
    assert sink.overhead_fraction > 3 * register_probe_fraction


MTU_BYTES = 1500
