"""Fig. 3 — max queue depth and RTT vs egress-port utilization.

Paper's observations this bench reproduces:

* max queue depth stays small (<5 packets) up to ~50 % utilization, then
  grows sharply toward full utilization;
* RTT sits at the 40 ms baseline when idle and inflates several-fold at
  full utilization.

Durations are shortened from the paper's 300 s per level; the shape is
stable well before that.
"""

from functools import lru_cache

import pytest

from repro.experiments.calibration import run_calibration
from repro.experiments.report import render_calibration

DURATION = 20.0


@lru_cache(maxsize=16)
def point(utilization: float):
    return run_calibration(utilization, duration=DURATION, seed=1)


def test_fig3_idle_baseline(benchmark):
    p = benchmark.pedantic(lambda: point(0.0), rounds=1, iterations=1)
    assert p.mean_rtt == pytest.approx(0.040, abs=0.005)  # paper: ~40 ms
    assert p.mean_max_qdepth < 1.0


def test_fig3_queue_growth_shape(benchmark):
    levels = (0.0, 0.3, 0.5, 0.7, 0.9, 1.0)
    points = benchmark.pedantic(
        lambda: [point(u) for u in levels], rounds=1, iterations=1
    )
    queues = [p.mean_max_qdepth for p in points]
    # Monotone growth (allowing sampling noise of half a packet)...
    assert all(b >= a - 0.5 for a, b in zip(queues, queues[1:]))
    # ...small below 50 % utilization, pronounced at 90-100 %.
    assert queues[2] < 5.0
    assert queues[4] > queues[2] + 2.0
    assert queues[5] > 5.0
    print()
    print(render_calibration(points))


def test_fig3_delay_inflation(benchmark):
    idle, busy = benchmark.pedantic(
        lambda: (point(0.0), point(1.0)), rounds=1, iterations=1
    )
    # Paper: 40 ms -> ~250 ms at full utilization; our queues are bounded by
    # the 64-packet BMv2 buffer so we require a >=1.5x inflation.
    assert busy.mean_rtt > idle.mean_rtt * 1.5
