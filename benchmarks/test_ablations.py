"""Ablations of the design choices DESIGN.md calls out.

* **Probe coverage** (star vs mesh): the paper probes node->scheduler only
  and *assumes* full coverage; mesh probing guarantees it.  The ablation
  quantifies what the assumption is worth.
* **Queue->latency conversion factor k**: k = 0 reduces Algorithm 1 to
  pure link-latency ranking (no congestion term) — the INT signal is
  switched off while everything else stays identical.
* **Compute-aware extension**: scheduling against loaded servers with and
  without load reports."""

import pytest

from conftest import BENCH_SCALE, BENCH_SEED, cached_run


class TestProbeCoverage:
    def test_mesh_and_star_probing_comparable(self, benchmark):
        """Mesh probing guarantees the coverage the paper assumes; star is
        the paper's literal layout.  Full coverage adds visibility but also
        more noise surface (every port contributes transient readings), so
        neither dominates — the ablation pins them to the same league and
        both far ahead of the nearest baseline."""

        def run():
            mesh = cached_run("aware", "serverless", "delay", "S", probe_layout="mesh")
            star = cached_run("aware", "serverless", "delay", "S", probe_layout="star")
            nearest = cached_run("nearest", "serverless", "delay", "S")
            return (
                mesh.mean_completion_time(),
                star.mean_completion_time(),
                nearest.mean_completion_time(),
            )

        mesh_t, star_t, nearest_t = benchmark.pedantic(run, rounds=1, iterations=1)
        print(f"\nmesh={mesh_t:.2f}s star={star_t:.2f}s nearest={nearest_t:.2f}s")
        ratio = mesh_t / star_t
        assert 1 / 1.5 < ratio < 1.5
        assert mesh_t < nearest_t and star_t < nearest_t

    def test_star_probing_still_functional(self, benchmark):
        res = cached_run("aware", "serverless", "delay", "S", probe_layout="star")
        assert res.tasks_failed == 0
        assert res.probe_reports > 0


class TestConversionFactor:
    def test_k_zero_disables_congestion_avoidance(self, benchmark):
        """With k = 0 the scheduler ignores queue telemetry entirely; the
        full k = 20 ms scheduler must not be worse."""

        def run():
            with_k = cached_run("aware", "serverless", "delay", "S", k=0.020)
            without_k = cached_run("aware", "serverless", "delay", "S", k=0.0)
            return with_k.mean_completion_time(), without_k.mean_completion_time()

        with_k_t, without_k_t = benchmark.pedantic(run, rounds=1, iterations=1)
        assert with_k_t <= without_k_t * 1.05

    def test_k_zero_close_to_nearest(self, benchmark):
        """Sanity: k = 0 ranking is latency-only and should behave like a
        (dynamic-latency) nearest policy, not like the INT-driven one."""
        k0 = cached_run("aware", "serverless", "delay", "S", k=0.0)
        nearest = cached_run("nearest", "serverless", "delay", "S")
        ratio = k0.mean_completion_time() / nearest.mean_completion_time()
        assert 0.5 < ratio < 1.5


class TestServiceJitterFidelity:
    def test_jitter_regenerates_downstream_queues(self, benchmark):
        """Without forwarding jitter, a smooth 95 %-utilization flow queues
        only at its first bottleneck and INT sees nothing downstream — the
        substrate fidelity detail the reproduction depends on."""
        from repro.simnet.engine import Simulator
        from repro.simnet.flows import UdpCbrFlow, UdpSink
        from repro.simnet.random import RandomStreams
        from repro.simnet.topology import Network
        from repro.units import mbps, ms

        def downstream_queue(jitter):
            sim = Simulator()
            net = Network(sim, RandomStreams(1), switch_service_jitter=jitter)
            for h in ("h1", "h2"):
                net.add_host(h)
            for s in ("s01", "s02", "s03"):
                net.add_switch(s)
            net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
            net.connect("s01", "s02", rate_bps=mbps(20), delay=ms(5))
            net.connect("s02", "s03", rate_bps=mbps(20), delay=ms(5))
            net.attach_host("h2", "s03", fabric_rate_bps=mbps(20), delay=ms(5))
            net.finalize()
            UdpSink(net.host("h2"))
            flow = UdpCbrFlow(
                net.host("h1"), net.address_of("h2"), mbps(19),
                rng=RandomStreams(2).get("f"),
            )
            flow.run_for(10.0)
            sim.run(until=11.0)
            # Queue at the *last* switch's egress toward h2.
            port = net.port_toward("s03", "h2")
            return net.switch("s03").ports[port].queue.stats.max_depth_seen

        assert downstream_queue(0.15) > downstream_queue(0.0)


class TestComputeAwareExtension:
    def test_compute_aware_avoids_loaded_server(self, benchmark):
        """Directly exercise the extension: with load reports the scheduler
        must steer away from a server that is already saturated."""
        from repro.core.extensions import ComputeAwareScheduler
        from repro.experiments.fig4_topology import build_fig4_network
        from repro.simnet.engine import Simulator
        from repro.simnet.random import RandomStreams
        from repro.telemetry.probe import ProbeResponder, ProbeSender

        def run():
            sim = Simulator()
            topo = build_fig4_network(sim, RandomStreams(0))
            net = topo.network
            workers = [net.address_of(n) for n in topo.worker_names]
            sched = ComputeAwareScheduler(
                net.host(topo.scheduler_name), workers,
                link_capacity_bps=topo.fabric_rate_bps, mean_exec_time=5.0,
            )
            all_addrs = [net.address_of(n) for n in topo.node_names]
            for name in topo.node_names:
                host = net.host(name)
                if name == topo.scheduler_name:
                    ProbeResponder(host, collector=sched.collector)
                else:
                    ProbeResponder(host, collector_addr=topo.scheduler_addr)
                ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()
            sim.run(until=1.0)
            node8 = net.address_of("node8")
            before = sched.rank(net.address_of("node7"), "delay")[0][0]
            sched._loads[node8] = (4, 4, sim.now)
            after = sched.rank(net.address_of("node7"), "delay")[0][0]
            return before, after, node8

        before, after, node8 = benchmark.pedantic(run, rounds=1, iterations=1)
        assert before == node8
        assert after != node8
