"""Fig. 5 — serverless workload, delay-based ranking.

Paper: network-aware beats nearest by 17-31 % in average task completion
time, with the largest gains on smaller classes; random is the worst
overall.  At benchmark scale we assert the ordering and a positive gain
band, not the exact percentages."""

import pytest

from conftest import cached_run


def _gain(size_label, measure="completion", size_scale=None, total_tasks=None):
    aware = cached_run(
        "aware", "serverless", "delay", size_label,
        size_scale=size_scale, total_tasks=total_tasks,
    )
    nearest = cached_run(
        "nearest", "serverless", "delay", size_label,
        size_scale=size_scale, total_tasks=total_tasks,
    )
    if measure == "completion":
        a, n = aware.mean_completion_time(), nearest.mean_completion_time()
    else:
        a, n = aware.mean_transfer_time(), nearest.mean_transfer_time()
    return 100.0 * (n - a) / n


def test_fig5_small_class(benchmark):
    gain = benchmark.pedantic(lambda: _gain("S"), rounds=1, iterations=1)
    assert gain > 3.0, f"network-aware should beat nearest, got {gain:+.1f}%"


def test_fig5_very_small_class(benchmark):
    # VS tasks are small enough to run at the paper's full Table I sizes
    # (<= 1 MB) and with a larger task count; at reduced scale/count the VS
    # comparison degenerates into sampling noise (few assignment changes).
    gain = benchmark.pedantic(
        lambda: _gain("VS", size_scale=1.0, total_tasks=100), rounds=1, iterations=1
    )
    assert gain > 3.0, f"VS should benefit from delay ranking, got {gain:+.1f}%"


def test_fig5_random_is_worst(benchmark):
    def run():
        aware = cached_run("aware", "serverless", "delay", "S")
        random_ = cached_run("random", "serverless", "delay", "S")
        return aware.mean_completion_time(), random_.mean_completion_time()

    aware_t, random_t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert aware_t < random_t


def test_fig5_transfer_time_also_improves(benchmark):
    assert _gain("S", measure="transfer") > 3.0


def test_fig5_all_tasks_complete(benchmark):
    for policy in ("aware", "nearest", "random"):
        res = cached_run(policy, "serverless", "delay", "S")
        assert res.tasks_failed == 0
        assert res.tasks_completed == res.config.scale.total_tasks
