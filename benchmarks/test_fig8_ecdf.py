"""Fig. 8 — ECDF of per-task completion-time gain over nearest.

Paper: a minority of tasks (19-38 % depending on workload/metric) see zero
or negative gain — measurement jitter de-prioritizes nearest nodes even
when congestion is negligible — while a solid majority gains, some tasks by
more than 60 %."""

import pytest

from conftest import cached_run
from repro.experiments.ecdf import fraction_above, gain_ecdf, paired_gains
from repro.experiments.report import render_ecdf_points


def _gains(workload, metric):
    aware = cached_run("aware", workload, metric, "S")
    nearest = cached_run("nearest", workload, metric, "S")
    return paired_gains(aware, nearest)


def test_fig8_ecdf_valid_distribution(benchmark):
    gains = benchmark.pedantic(
        lambda: _gains("distributed", "bandwidth"), rounds=1, iterations=1
    )
    x, f = gain_ecdf(gains)
    assert len(x) == len(gains)
    assert f[-1] == pytest.approx(1.0)
    print()
    print(render_ecdf_points(gains))


def test_fig8_majority_of_tasks_gain(benchmark):
    gains = _gains("distributed", "bandwidth")
    assert fraction_above(gains, 0.0) > 0.5


def test_fig8_negative_tail_exists_but_bounded(benchmark):
    """The paper's jitter-driven tail: some tasks lose, but not most."""
    gains = _gains("distributed", "bandwidth")
    negative = 1.0 - fraction_above(gains, 0.0)
    assert negative < 0.5


def test_fig8_some_tasks_gain_strongly(benchmark):
    gains = _gains("distributed", "bandwidth")
    assert fraction_above(gains, 0.2) > 0.1


def test_fig8_serverless_delay_variant(benchmark):
    gains = _gains("serverless", "delay")
    assert fraction_above(gains, 0.0) > 0.4
