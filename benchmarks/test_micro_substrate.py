"""Micro-benchmarks of the simulation substrate.

These are not paper figures; they track the cost of the hot paths so
regressions in simulator performance (which multiply every experiment's
wall-clock) are visible."""

import pytest

from repro.p4.headers import IntHopRecord, append_hop_record, decode_probe_payload, encode_probe_header
from repro.simnet.engine import Simulator
from repro.simnet.flows import MSS, ReliableTransfer, TransferSinkApp, UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms


def test_engine_event_throughput(benchmark):
    def churn():
        sim = Simulator()
        count = 50_000

        def noop():
            pass

        for i in range(count):
            sim.schedule(i * 1e-6, noop)
        sim.run()
        return sim.events_executed

    executed = benchmark(churn)
    assert executed == 50_000


def test_packet_forwarding_throughput(benchmark):
    """End-to-end CBR through one switch: events/packet cost."""

    def run():
        sim = Simulator()
        net = Network(sim, RandomStreams(0), switch_service_jitter=0.0)
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(1))
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(1))
        net.finalize()
        UdpSink(net.host("h2"))
        flow = UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(18), burstiness="cbr")
        flow.run_for(10.0)
        sim.run(until=11.0)
        return flow.packets_emitted

    emitted = benchmark.pedantic(run, rounds=3, iterations=1)
    assert emitted > 10_000


def test_transport_transfer_cost(benchmark):
    def run():
        sim = Simulator()
        net = Network(sim, RandomStreams(0), switch_service_jitter=0.0)
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
        net.finalize()
        TransferSinkApp(net.host("h2"), 6000)
        transfer = ReliableTransfer(net.host("h1"), net.address_of("h2"), 6000, 1_000_000)
        transfer.start()
        sim.run(until=120.0)
        return transfer

    transfer = benchmark.pedantic(run, rounds=3, iterations=1)
    assert transfer.done


def test_int_stack_encode_decode(benchmark):
    record = IntHopRecord(
        switch_id=7, egress_port=2, max_qdepth=12, link_latency=0.0106, egress_ts=123.456
    )

    def roundtrip():
        payload = encode_probe_header(0)
        for _ in range(5):
            payload = append_hop_record(payload, record)
        return decode_probe_payload(payload)

    records = benchmark(roundtrip)
    assert len(records) == 5
