"""Fig. 6 — distributed workload (3 tasks/job), delay-based ranking.

Paper: gain over nearest is 7-13 %, smaller than the serverless case
because the scheduler must place three tasks at once (the tail picks are
necessarily worse than the single best)."""

import pytest

from conftest import cached_run


def _means(size_label):
    return {
        policy: cached_run(policy, "distributed", "delay", size_label).mean_completion_time()
        for policy in ("aware", "nearest", "random")
    }


def test_fig6_aware_beats_nearest(benchmark):
    means = benchmark.pedantic(lambda: _means("S"), rounds=1, iterations=1)
    gain = 100 * (means["nearest"] - means["aware"]) / means["nearest"]
    assert gain > 2.0, f"expected positive distributed-workload gain, got {gain:+.1f}%"


def test_fig6_aware_beats_random(benchmark):
    means = _means("S")
    assert means["aware"] < means["random"]


def test_fig6_three_distinct_servers_per_job(benchmark):
    res = cached_run("aware", "distributed", "delay", "S")
    by_job = {}
    for record in res.records_in_order:
        by_job.setdefault(record.job_id, set()).add(record.server_addr)
    full_jobs = [s for s in by_job.values() if len(s) == 3]
    # Every 3-task job used 3 distinct servers.
    assert all(len(s) == 3 for j, s in by_job.items() if len(s) >= 2)
    assert full_jobs


def test_fig6_gain_smaller_than_serverless(benchmark):
    """The paper's cross-figure observation: distributed gains < serverless
    gains (checked with slack — both are positive, serverless is not
    dramatically smaller)."""
    serverless = {
        p: cached_run(p, "serverless", "delay", "S").mean_completion_time()
        for p in ("aware", "nearest")
    }
    distributed = {
        p: cached_run(p, "distributed", "delay", "S").mean_completion_time()
        for p in ("aware", "nearest")
    }
    g_serverless = (serverless["nearest"] - serverless["aware"]) / serverless["nearest"]
    g_distributed = (distributed["nearest"] - distributed["aware"]) / distributed["nearest"]
    assert g_distributed < g_serverless + 0.10
