"""Ablation: probe route layouts — star (paper), mesh, greedy set cover.

Section III-A defers probe route optimization and assumes full coverage.
The greedy set-cover layout (``repro.telemetry.coverage``) achieves the
coverage mesh probing guarantees at a fraction of the probe count.  This
ablation measures all three layouts on coverage, probe overhead, and
scheduling quality.
"""

from functools import lru_cache

import pytest

from conftest import cached_run
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.engine import Simulator
from repro.simnet.random import RandomStreams
from repro.telemetry.coverage import all_fabric_ports, coverage_of, greedy_probe_cover


def _layout_pairs(topo, layout):
    net = topo.network
    if layout == "star":
        return [(n, topo.scheduler_name) for n in topo.worker_names]
    if layout == "mesh":
        return [
            (a, b) for a in topo.node_names for b in topo.node_names if a != b
        ]
    return greedy_probe_cover(net)


def test_layout_coverage_and_cost(benchmark):
    def measure():
        topo = build_fig4_network(Simulator(), RandomStreams(0))
        out = {}
        total = len(all_fabric_ports(topo.network))
        for layout in ("star", "mesh", "optimized"):
            pairs = _layout_pairs(topo, layout)
            covered = len(coverage_of(topo.network, pairs))
            out[layout] = (len(pairs), covered, total)
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    star_pairs, star_cov, total = results["star"]
    mesh_pairs, mesh_cov, _ = results["mesh"]
    opt_pairs, opt_cov, _ = results["optimized"]
    print()
    for layout, (pairs, covered, tot) in results.items():
        print(f"  {layout:>9}: {pairs:2d} probe pairs cover {covered}/{tot} directed ports")
    # The paper's coverage assumption fails for star probing...
    assert star_cov < total
    # ...mesh and the optimizer both achieve everything reachable...
    assert mesh_cov == opt_cov
    # ...and the optimizer does it with far fewer probes than mesh.
    assert opt_pairs <= mesh_pairs / 3
    assert opt_pairs <= star_pairs + 3  # and barely more than star


def test_optimized_layout_scheduling_quality(benchmark):
    def measure():
        opt = cached_run("aware", "serverless", "delay", "S", probe_layout="optimized")
        mesh = cached_run("aware", "serverless", "delay", "S", probe_layout="mesh")
        nearest = cached_run("nearest", "serverless", "delay", "S")
        return (
            opt.mean_completion_time(),
            mesh.mean_completion_time(),
            nearest.mean_completion_time(),
        )

    opt_t, mesh_t, nearest_t = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\noptimized={opt_t:.2f}s mesh={mesh_t:.2f}s nearest={nearest_t:.2f}s")
    # Optimized probing preserves the scheduling gain.
    assert opt_t < nearest_t
    assert opt_t / mesh_t < 1.4
