"""Fig. 9 — probing interval vs average data transfer time.

Paper: the 0.1 s default clearly beats SNMP-like 30 s intervals (>20 %
difference) because stale telemetry misroutes tasks into congestion; the
effect shows under both slowly-changing (Traffic 1) and rapidly-changing
(Traffic 2) background patterns.

Probing intervals and scenario periods run *unscaled* — the figure is about
the staleness-to-dynamics ratio, which shrinking either side would distort.
Only Table I task sizes are reduced for benchmark runtime.
"""

from functools import lru_cache

import pytest

from repro.experiments.probing_sweep import run_probing_sweep

# Paper intervals {0.1, 5, 10, 20, 30}; the benchmark sweeps the endpoints
# plus one midpoint to bound runtime.
INTERVALS = (0.1, 10.0, 30.0)


@lru_cache(maxsize=4)
def sweep(scenario: str):
    return run_probing_sweep(scenario, intervals=INTERVALS, seed=0)


def test_fig9_traffic2_fast_dynamics(benchmark):
    result = benchmark.pedantic(lambda: sweep("traffic2"), rounds=1, iterations=1)
    series = dict(result.series())
    assert series[0.1] < series[30.0], (
        f"default probing should beat SNMP-rate probing: {series}"
    )
    print()
    print({k: round(v, 2) for k, v in series.items()})


def test_fig9_traffic1_slow_dynamics(benchmark):
    result = benchmark.pedantic(lambda: sweep("traffic1"), rounds=1, iterations=1)
    series = dict(result.series())
    assert series[0.1] < series[30.0] * 1.05
    print()
    print({k: round(v, 2) for k, v in series.items()})


def test_fig9_all_intervals_complete(benchmark):
    for scenario in ("traffic1", "traffic2"):
        for interval, res in sweep(scenario).results.items():
            assert res.tasks_failed == 0, (scenario, interval)
