"""Ablation: INT-driven vs SNMP-counter-driven network awareness.

This is the paper's *motivation* (Sections I–II) turned into a measurement:
"traditional network monitoring practices ... reporting frequency in the
order of tens of seconds falls short to capture transient congestion
events".  Both schedulers are network-aware; they differ only in telemetry:

* INT: 100 ms register collection via probes (queue occupancy + latency);
* SNMP: 30 s out-of-band port-counter polls (window-average utilization).

Under rapidly-changing congestion (Traffic 2: 5 s bursts) the INT scheduler
should outperform the SNMP one; under slowly-changing congestion the gap
should narrow — SNMP's model is fine when the network changes slower than
the poll interval.
"""

from dataclasses import replace
from functools import lru_cache

import pytest

from repro.edge.background import TRAFFIC_1, TRAFFIC_2
from repro.edge.task import SizeClass
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_SNMP,
    QUICK_SCALE,
    ExperimentConfig,
    ExperimentScale,
    run_experiment,
)

# Unscaled time: staleness-vs-dynamics ratios must stay the paper's.
SCALE = ExperimentScale(
    size_scale=QUICK_SCALE.size_scale,
    total_tasks=QUICK_SCALE.total_tasks,
    mean_interarrival=QUICK_SCALE.mean_interarrival,
    time_scale=1.0,
)


@lru_cache(maxsize=8)
def run(policy: str, scenario_name: str):
    scenario = {"traffic1": TRAFFIC_1, "traffic2": TRAFFIC_2}[scenario_name]
    config = ExperimentConfig(
        policy=policy,
        workload="distributed",
        metric="bandwidth",
        size_class=SizeClass.S,
        scale=SCALE,
        scenario=scenario,
        seed=0,
        snmp_poll_interval=30.0,
    )
    return run_experiment(config)


def test_int_beats_snmp_under_fast_dynamics(benchmark):
    def measure():
        int_res = run(POLICY_AWARE, "traffic2")
        snmp_res = run(POLICY_SNMP, "traffic2")
        return int_res.mean_transfer_time(), snmp_res.mean_transfer_time()

    int_t, snmp_t = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert int_t < snmp_t, (
        f"INT ({int_t:.2f}s) should beat 30s SNMP polling ({snmp_t:.2f}s) "
        "under 5s-burst congestion"
    )


def test_gap_narrows_under_slow_dynamics(benchmark):
    def measure():
        out = {}
        for scenario in ("traffic1", "traffic2"):
            int_t = run(POLICY_AWARE, scenario).mean_transfer_time()
            snmp_t = run(POLICY_SNMP, scenario).mean_transfer_time()
            out[scenario] = (snmp_t - int_t) / snmp_t
        return out

    gaps = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Fast dynamics: a clear INT advantage.  Slow dynamics: SNMP remains
    # usable (its disadvantage is no more than ~1.5x the fast-dynamics gap).
    assert gaps["traffic2"] > 0.0
    assert gaps["traffic1"] < gaps["traffic2"] + 0.25


def test_both_policies_complete_all_tasks(benchmark):
    for scenario in ("traffic1", "traffic2"):
        for policy in (POLICY_AWARE, POLICY_SNMP):
            assert run(policy, scenario).tasks_failed == 0
