"""Shared benchmark configuration.

Figure benchmarks run the real experiment pipeline at ``QUICK_SCALE`` (the
paper's setup shrunk ~5x: 36 tasks, Table I sizes x0.2, scenario times x0.2)
with a fixed seed, then assert the *shape* of the paper's result — who wins
and roughly by how much — and record wall-clock cost via pytest-benchmark.

Runs are memoised per configuration so a figure's baseline run is computed
once even when several assertions consume it.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.edge.background import DEFAULT_SCENARIO, TRAFFIC_1, TRAFFIC_2
from repro.edge.task import SizeClass
from repro.experiments.harness import (
    QUICK_SCALE,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)

BENCH_SEED = 0
BENCH_SCALE = QUICK_SCALE

_SCENARIOS = {
    "default": DEFAULT_SCENARIO,
    "traffic1": TRAFFIC_1,
    "traffic2": TRAFFIC_2,
}
_CLASSES = {c.label: c for c in SizeClass}


@lru_cache(maxsize=64)
def cached_run(
    policy: str,
    workload: str,
    metric: str,
    size_label: str,
    probing_interval: float = 0.1,
    scenario: str = "default",
    probe_layout: str = "mesh",
    k: float = 0.020,
    size_scale: float = None,
    total_tasks: int = None,
) -> ExperimentResult:
    scale = BENCH_SCALE
    if size_scale is not None or total_tasks is not None:
        from repro.experiments.harness import ExperimentScale

        scale = ExperimentScale(
            size_scale=size_scale if size_scale is not None else BENCH_SCALE.size_scale,
            total_tasks=total_tasks if total_tasks is not None else BENCH_SCALE.total_tasks,
            mean_interarrival=BENCH_SCALE.mean_interarrival,
            time_scale=BENCH_SCALE.time_scale,
        )
    config = ExperimentConfig(
        policy=policy,
        workload=workload,
        metric=metric,
        size_class=_CLASSES[size_label],
        seed=BENCH_SEED,
        scale=scale,
        scenario=_SCENARIOS[scenario],
        probing_interval=probing_interval,
        probe_layout=probe_layout,
        k=k,
    )
    return run_experiment(config)


@pytest.fixture
def run():
    return cached_run
