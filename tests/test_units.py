"""Unit-conversion helpers."""

import pytest

from repro import units


def test_ms_to_seconds():
    assert units.ms(10) == pytest.approx(0.010)


def test_us_to_seconds():
    assert units.us(250) == pytest.approx(250e-6)


def test_ns_to_seconds():
    assert units.ns(1500) == pytest.approx(1.5e-6)


def test_seconds_identity():
    assert units.seconds(2.5) == 2.5


def test_to_ms_roundtrip():
    assert units.to_ms(units.ms(42.0)) == pytest.approx(42.0)


def test_to_us_roundtrip():
    assert units.to_us(units.us(17.0)) == pytest.approx(17.0)


def test_kb_uses_decimal_kilobytes():
    # Table I uses KB = 10^3 bytes.
    assert units.kb(1000) == 1_000_000


def test_kib_uses_binary():
    assert units.kib(1) == 1024


def test_mb():
    assert units.mb(5.5) == 5_500_000


def test_bytes_rounds():
    assert units.bytes_(10.6) == 11


def test_to_kb_to_mb():
    assert units.to_kb(1500) == pytest.approx(1.5)
    assert units.to_mb(2_500_000) == pytest.approx(2.5)


def test_mbps():
    assert units.mbps(20) == 20e6


def test_kbps_gbps():
    assert units.kbps(120) == 120e3
    assert units.gbps(1) == 1e9


def test_to_mbps_roundtrip():
    assert units.to_mbps(units.mbps(3.7)) == pytest.approx(3.7)


def test_transmission_time_1500B_20Mbps():
    # The paper's probe frame: 1500 B at 20 Mb/s = 0.6 ms.
    assert units.transmission_time(1500, units.mbps(20)) == pytest.approx(0.0006)


def test_transmission_time_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.transmission_time(1500, 0)


def test_bytes_at_rate():
    # 120 Kb/s for 1 s = 15 KB (the paper's probe overhead arithmetic).
    assert units.bytes_at_rate(units.kbps(120), 1.0) == 15_000


def test_bytes_at_rate_rejects_negative_duration():
    with pytest.raises(ValueError):
        units.bytes_at_rate(1e6, -1.0)
