"""Trace analysis: flow stats, throughput series, residence, drops."""

import pytest

from repro.analysis.traces import (
    drop_hotspots,
    flow_stats,
    hop_residence_times,
    queue_depth_summary,
    throughput_timeseries,
)
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.simnet.trace import PacketTracer
from repro.units import mbps


def _traced_cbr(sim, net, rate=mbps(4), duration=3.0):
    nodes = list(net.hosts.values()) + list(net.switches.values())
    tracer = PacketTracer(nodes)
    UdpSink(net.host("h2"))
    flow = UdpCbrFlow(net.host("h1"), net.address_of("h2"), rate, burstiness="cbr")
    flow.run_for(duration)
    sim.run(until=duration + 1.0)
    return tracer, flow


class TestFlowStats:
    def test_throughput_matches_offered(self, sim, line3):
        tracer, flow = _traced_cbr(sim, line3)
        stats = flow_stats(tracer.events, "h2")[flow.flow_id]
        assert stats.throughput_bps == pytest.approx(mbps(4), rel=0.1)
        assert stats.packets == flow.packets_emitted

    def test_unseen_node_empty(self, sim, line3):
        tracer, flow = _traced_cbr(sim, line3)
        assert flow_stats(tracer.events, "h3") == {}


class TestThroughputSeries:
    def test_bins_cover_duration(self, sim, line3):
        tracer, flow = _traced_cbr(sim, line3, duration=3.0)
        series = throughput_timeseries(tracer.events, "h2", bin_width=1.0)
        assert len(series) == 3
        for _t, rate in series:
            assert rate == pytest.approx(mbps(4), rel=0.15)

    def test_flow_filter(self, sim, line3):
        net = line3
        nodes = list(net.hosts.values()) + list(net.switches.values())
        tracer = PacketTracer(nodes)
        UdpSink(net.host("h2"))
        f1 = UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(2), burstiness="cbr")
        f2 = UdpCbrFlow(net.host("h3"), net.address_of("h2"), mbps(6), burstiness="cbr")
        f1.run_for(2.0)
        f2.run_for(2.0)
        sim.run(until=3.0)
        only_f1 = throughput_timeseries(tracer.events, "h2", flow_id=f1.flow_id)
        assert only_f1[0][1] == pytest.approx(mbps(2), rel=0.2)

    def test_empty_events(self):
        assert throughput_timeseries([], "h2") == []

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            throughput_timeseries([], "h2", bin_width=0.0)


class TestResidenceAndDrops:
    def test_residence_times_positive_under_load(self, sim, line3):
        net = line3
        nodes = list(net.hosts.values()) + list(net.switches.values())
        tracer = PacketTracer(nodes)
        UdpSink(net.host("h2"))
        # Bursty (Poisson) near-saturation load: queueing is guaranteed.
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(19),
            rng=RandomStreams(3).get("f"),
        )
        flow.run_for(3.0)
        sim.run(until=4.0)
        residence = hop_residence_times(tracer.events)
        assert "s01" in residence
        # Several packets waited at least one full serialization (0.6 ms).
        assert max(residence["s01"]) > 0.0006

    def test_drop_hotspots(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(1), delay=0.0, queue_capacity=2)
        net.finalize()
        tracer = PacketTracer([net.host("a"), net.host("b")])
        a = net.host("a")
        for i in range(10):
            a.send(a.new_packet(net.address_of("b"), dst_port=9, size_bytes=1500))
        sim.run()
        hotspots = drop_hotspots(tracer.events)
        assert hotspots[0][0] == "a"
        assert hotspots[0][1] == 7

    def test_no_drops_empty(self, sim, line3):
        tracer, _ = _traced_cbr(sim, line3, rate=mbps(1))
        assert drop_hotspots(tracer.events) == []


class TestQueueDepthSummary:
    def test_summary_under_load(self, sim, line3):
        net = line3
        tracer = PacketTracer([net.switch("s01")])
        UdpSink(net.host("h2"))
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(19),
            rng=RandomStreams(3).get("f"),
        )
        flow.run_for(3.0)
        sim.run(until=4.0)
        summary = queue_depth_summary(tracer.events, "s01")
        assert summary is not None
        assert summary["max"] >= summary["p95"] >= summary["p50"] >= 0
        assert summary["max"] > 1

    def test_unseen_node_none(self, sim, line3):
        assert queue_depth_summary([], "s01") is None
