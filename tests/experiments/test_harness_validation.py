"""ExperimentConfig validation for the mode-2 / legacy additions."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentConfig


def test_raw_metric_with_min_completion_accepted():
    config = ExperimentConfig(metric="raw", selection="min_completion")
    assert config.selection == "min_completion"


def test_min_completion_requires_raw_metric():
    with pytest.raises(ExperimentError):
        ExperimentConfig(metric="delay", selection="min_completion")


def test_raw_metric_requires_aware_policy():
    with pytest.raises(ExperimentError):
        ExperimentConfig(policy="nearest", metric="raw")


def test_unknown_selection_rejected():
    with pytest.raises(ExperimentError):
        ExperimentConfig(selection="coin_flip")


def test_snmp_policy_accepted():
    config = ExperimentConfig(policy="snmp", snmp_poll_interval=10.0)
    assert config.snmp_poll_interval == 10.0


def test_raw_with_top_k_accepted():
    # Raw ranking with the plain top-k policy: legal (entries are in address
    # order, so top-k degrades to address order — allowed but discouraged).
    config = ExperimentConfig(metric="raw", selection="top_k")
    assert config.metric == "raw"
