"""Comparison, ECDF, and probing-sweep harnesses (tiny scales)."""

import pytest

from repro.edge.task import SizeClass
from repro.errors import ExperimentError
from repro.experiments.comparison import run_comparison
from repro.experiments.ecdf import fraction_above, gain_ecdf, paired_gains
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    ExperimentConfig,
    ExperimentScale,
    run_experiment,
)
from repro.experiments.probing_sweep import run_probing_sweep
from repro.experiments import report

pytestmark = pytest.mark.slow

TINY = ExperimentScale(size_scale=0.05, total_tasks=6, mean_interarrival=0.4, time_scale=0.08)


@pytest.fixture(scope="module")
def tiny_comparison():
    base = ExperimentConfig(workload="serverless", metric="delay", scale=TINY, seed=3)
    return run_comparison(
        base,
        size_classes=(SizeClass.VS,),
        policies=(POLICY_AWARE, POLICY_NEAREST),
    )


class TestComparison:
    def test_all_cells_present(self, tiny_comparison):
        assert set(tiny_comparison.results) == {
            (SizeClass.VS, POLICY_AWARE),
            (SizeClass.VS, POLICY_NEAREST),
        }

    def test_mean_time_accessors(self, tiny_comparison):
        for measure in ("completion", "transfer"):
            t = tiny_comparison.mean_time(SizeClass.VS, POLICY_AWARE, measure)
            assert t > 0

    def test_gain_percent_computed(self, tiny_comparison):
        gain = tiny_comparison.gain_percent(SizeClass.VS)
        assert -100.0 < gain < 100.0

    def test_missing_cell_rejected(self, tiny_comparison):
        with pytest.raises(ExperimentError):
            tiny_comparison.result(SizeClass.L, POLICY_AWARE)

    def test_unknown_measure_rejected(self, tiny_comparison):
        with pytest.raises(ExperimentError):
            tiny_comparison.mean_time(SizeClass.VS, POLICY_AWARE, "vibes")

    def test_as_rows_shape(self, tiny_comparison):
        rows = tiny_comparison.as_rows()
        assert len(rows) == 1
        label, aware, nearest, random_, gain = rows[0]
        assert label == "VS"

    def test_render_comparison(self, tiny_comparison):
        text = report.render_comparison(tiny_comparison)
        assert "VS" in text and "gain" in text


class TestEcdf:
    def test_paired_gains(self, tiny_comparison):
        gains = paired_gains(
            tiny_comparison.result(SizeClass.VS, POLICY_AWARE),
            tiny_comparison.result(SizeClass.VS, POLICY_NEAREST),
        )
        assert len(gains) == TINY.total_tasks
        assert all(-5.0 < g < 1.0 for g in gains)

    def test_gain_ecdf_monotone(self, tiny_comparison):
        gains = paired_gains(
            tiny_comparison.result(SizeClass.VS, POLICY_AWARE),
            tiny_comparison.result(SizeClass.VS, POLICY_NEAREST),
        )
        x, f = gain_ecdf(gains)
        assert list(x) == sorted(x)
        assert f[-1] == pytest.approx(1.0)

    def test_fraction_above(self):
        assert fraction_above([0.1, 0.3, -0.2, 0.5], 0.2) == pytest.approx(0.5)

    def test_unpaired_runs_rejected(self, tiny_comparison):
        other = run_experiment(
            ExperimentConfig(
                workload="serverless", metric="delay", scale=TINY, seed=99,
                policy=POLICY_NEAREST, size_class=SizeClass.VS,
            )
        )
        with pytest.raises(ExperimentError):
            paired_gains(tiny_comparison.result(SizeClass.VS, POLICY_AWARE), other)

    def test_render_ecdf_points(self, tiny_comparison):
        gains = paired_gains(
            tiny_comparison.result(SizeClass.VS, POLICY_AWARE),
            tiny_comparison.result(SizeClass.VS, POLICY_NEAREST),
        )
        text = report.render_ecdf_points(gains)
        assert "cumulative" in text


class TestProbingSweep:
    def test_sweep_runs_and_reports(self):
        base = ExperimentConfig(
            workload="distributed", metric="bandwidth", scale=TINY, seed=3
        )
        sweep = run_probing_sweep("traffic2", intervals=(0.1, 10.0), base_config=base)
        series = sweep.series()
        assert [i for i, _ in series] == [0.1, 10.0]
        assert all(t > 0 for _, t in series)
        text = report.render_probing_sweep([sweep])
        assert "traffic2" in text

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError):
            run_probing_sweep("traffic9")
