"""Fig. 3 calibration experiment (short-duration variants for CI)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.calibration import (
    calibration_to_curve,
    run_calibration,
    run_calibration_sweep,
)

pytestmark = pytest.mark.slow


def test_idle_link_baseline_rtt():
    point = run_calibration(0.0, duration=12.0)
    # Paper: ~40 ms RTT at 0 % utilization (4 x 10 ms links).
    assert point.mean_rtt == pytest.approx(0.040, abs=0.004)
    assert point.mean_max_qdepth < 1.0


def test_high_utilization_builds_queues_and_delay():
    idle = run_calibration(0.0, duration=12.0)
    busy = run_calibration(0.95, duration=12.0)
    assert busy.mean_max_qdepth > idle.mean_max_qdepth + 3
    assert busy.mean_rtt > idle.mean_rtt


def test_queue_growth_monotone_in_utilization():
    """The Fig. 3 left panel's qualitative shape."""
    points = run_calibration_sweep((0.0, 0.5, 0.95), duration=12.0)
    q = [p.mean_max_qdepth for p in points]
    assert q[0] <= q[1] <= q[2]
    assert q[2] > q[0]


def test_sweep_feeds_curve():
    points = run_calibration_sweep((0.0, 0.6, 0.95), duration=10.0)
    curve = calibration_to_curve(points)
    assert curve.utilization(0.0) <= curve.utilization(50.0)
    assert curve.utilization(1000.0) == pytest.approx(points[-1].utilization)


def test_samples_counted():
    point = run_calibration(0.5, duration=10.0, probing_interval=0.1)
    assert point.qdepth_samples == pytest.approx(100, abs=15)
    assert point.rtt_samples >= 8


def test_validation():
    with pytest.raises(ExperimentError):
        run_calibration(5.0)
    with pytest.raises(ExperimentError):
        run_calibration(0.5, duration=1.0)
