"""The Fig. 4 topology must realize every property the paper states."""

import pytest

from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.random import RandomStreams
from repro.units import mbps, ms


@pytest.fixture
def topo(sim):
    return build_fig4_network(sim, RandomStreams(0))


def test_eight_nodes_twelve_switches(topo):
    assert len(topo.network.hosts) == 8
    assert len(topo.network.switches) == 12
    assert len(topo.node_names) == 8


def test_node6_is_scheduler(topo):
    assert topo.scheduler_name == "node6"
    assert topo.scheduler_addr == topo.network.address_of("node6")
    assert len(topo.worker_names) == 7
    assert "node6" not in topo.worker_names


def test_uniform_link_delay(topo):
    for link in topo.network.links.values():
        assert link.propagation_delay == pytest.approx(ms(10))


def test_fabric_rate_is_20mbps(topo):
    assert topo.fabric_rate_bps == mbps(20)
    for link in topo.network.links.values():
        # Every switch-egress direction runs at the fabric rate.
        assert min(link.rate_ab_bps, link.rate_ba_bps) == pytest.approx(mbps(20))


def test_in_pod_pairs_are_three_hops_apart(topo):
    """'Node 7 and Node 8 are the nearest nodes for each other.'"""
    net = topo.network
    for a, b in [("node1", "node2"), ("node3", "node4"),
                 ("node5", "node6"), ("node7", "node8")]:
        path = net.shortest_path(a, b)
        assert len(path) - 2 == 3  # 3 switches between the hosts


def test_in_pod_pair_is_strictly_nearest(topo):
    net = topo.network
    dist = {
        other: len(net.shortest_path("node7", other)) - 2
        for other in topo.node_names
        if other != "node7"
    }
    assert dist["node8"] == 3
    assert all(d > 3 for name, d in dist.items() if name != "node8")


def test_cross_pod_distances(topo):
    net = topo.network
    # Adjacent pods: 4 switches.  Opposite pods: 5 switches.
    assert len(net.shortest_path("node1", "node3")) - 2 == 4
    assert len(net.shortest_path("node1", "node5")) - 2 == 5


def test_switch_names_sorted_like_ids(topo):
    """Lexicographic name order must match numeric switch-id order so the
    control plane and the scheduler tie-break identically."""
    switches = sorted(topo.network.switches.values(), key=lambda s: s.name)
    ids = [s.switch_id for s in switches]
    assert ids == sorted(ids)


def test_pod_assignment(topo):
    assert topo.pod_of["node1"] == topo.pod_of["node2"] == 1
    assert topo.pod_of["node7"] == topo.pod_of["node8"] == 4


def test_cores_form_ring(topo):
    g = topo.network.graph()
    for i in range(4):
        a = topo.core_names[i]
        b = topo.core_names[(i + 1) % 4]
        assert g.has_edge(a, b)


def test_unknown_scheduler_rejected(sim):
    with pytest.raises(ValueError):
        build_fig4_network(sim, RandomStreams(0), scheduler_name="node99")


def test_every_host_single_homed(topo):
    for host in topo.network.hosts.values():
        assert len(host.ports) == 1
