"""JSON export of experiment results."""

import json

import pytest

from repro.edge.task import SizeClass
from repro.experiments.export import (
    calibration_to_dict,
    comparison_to_dict,
    config_to_dict,
    dump_json,
    result_to_dict,
    sweep_to_dict,
    task_record_to_dict,
)
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    ExperimentConfig,
    ExperimentScale,
    run_experiment,
)

pytestmark = pytest.mark.slow

TINY = ExperimentScale(size_scale=0.05, total_tasks=4, mean_interarrival=0.4, time_scale=0.08)


@pytest.fixture(scope="module")
def tiny_result():
    return run_experiment(
        ExperimentConfig(policy=POLICY_AWARE, size_class=SizeClass.VS, scale=TINY, seed=2)
    )


def test_config_roundtrips_to_json(tiny_result):
    payload = config_to_dict(tiny_result.config)
    assert json.loads(json.dumps(payload)) == payload
    assert payload["policy"] == POLICY_AWARE
    assert payload["size_class"] == "VS"


def test_result_dict_serializable(tiny_result):
    payload = result_to_dict(tiny_result)
    text = json.dumps(payload)
    back = json.loads(text)
    assert back["tasks_completed"] == 4
    assert len(back["tasks"]) == 4
    assert back["mean_completion_time"] > 0


def test_result_without_tasks(tiny_result):
    payload = result_to_dict(tiny_result, include_tasks=False)
    assert "tasks" not in payload


def test_task_record_fields(tiny_result):
    record = tiny_result.records_in_order[0]
    payload = task_record_to_dict(record)
    assert payload["completion_time"] == pytest.approx(record.completion_time)
    assert payload["device"].startswith("node")


def test_dump_json(tmp_path, tiny_result):
    path = tmp_path / "result.json"
    dump_json(result_to_dict(tiny_result), str(path))
    loaded = json.loads(path.read_text())
    assert loaded["config"]["seed"] == 2


def test_comparison_export():
    from repro.experiments.comparison import run_comparison

    comparison = run_comparison(
        ExperimentConfig(workload="serverless", metric="delay", scale=TINY, seed=2),
        size_classes=(SizeClass.VS,),
        policies=(POLICY_AWARE, POLICY_NEAREST),
    )
    payload = comparison_to_dict(comparison)
    json.dumps(payload)
    assert len(payload["cells"]) == 2
    assert "VS" in payload["gains_vs_nearest_percent"]


def test_calibration_and_sweep_export():
    from repro.experiments.calibration import run_calibration
    from repro.experiments.probing_sweep import run_probing_sweep

    points = [run_calibration(0.0, duration=6.0)]
    payload = calibration_to_dict(points)
    json.dumps(payload)
    assert payload["points"][0]["mean_rtt"] > 0

    base = ExperimentConfig(
        workload="distributed", metric="bandwidth", scale=TINY, seed=2
    )
    sweep = run_probing_sweep("traffic2", intervals=(0.1,), base_config=base)
    payload = sweep_to_dict(sweep)
    json.dumps(payload)
    assert payload["series"][0]["probing_interval"] == 0.1
