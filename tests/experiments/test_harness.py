"""The experiment harness: end-to-end runs and the pairing guarantee."""

import pytest

from repro.edge.task import SizeClass
from repro.errors import ExperimentError
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    POLICY_RANDOM,
    ExperimentConfig,
    ExperimentScale,
    run_experiment,
)

pytestmark = pytest.mark.slow


TINY = ExperimentScale(size_scale=0.05, total_tasks=6, mean_interarrival=0.4, time_scale=0.08)


def _cfg(**kw):
    base = dict(policy=POLICY_AWARE, size_class=SizeClass.VS, scale=TINY, seed=11)
    base.update(kw)
    return ExperimentConfig(**base)


class TestRun:
    @pytest.mark.parametrize("policy", [POLICY_AWARE, POLICY_NEAREST, POLICY_RANDOM])
    def test_all_policies_complete(self, policy):
        res = run_experiment(_cfg(policy=policy))
        assert res.tasks_completed == TINY.total_tasks
        assert res.tasks_failed == 0
        assert res.queries_served >= TINY.total_tasks  # serverless: 1 query/job

    def test_metrics_positive(self):
        res = run_experiment(_cfg())
        assert res.mean_completion_time() > 0
        assert res.mean_transfer_time() >= 0
        assert res.mean_completion_time() > res.mean_transfer_time()

    def test_probe_reports_collected(self):
        res = run_experiment(_cfg())
        assert res.probe_reports > 0

    def test_distributed_workload(self):
        res = run_experiment(_cfg(workload="distributed", metric="bandwidth"))
        assert res.tasks_completed == TINY.total_tasks

    def test_star_probe_layout(self):
        res = run_experiment(_cfg(probe_layout="star"))
        assert res.tasks_completed == TINY.total_tasks
        assert res.probe_reports > 0


class TestPairing:
    def test_same_seed_same_workload_across_policies(self):
        """The paper's fairness requirement: identical submissions."""
        res_a = run_experiment(_cfg(policy=POLICY_AWARE))
        res_b = run_experiment(_cfg(policy=POLICY_RANDOM))
        a = [(r.device, r.data_bytes, r.exec_time, r.submitted_at) for r in res_a.records_in_order]
        b = [(r.device, r.data_bytes, r.exec_time, r.submitted_at) for r in res_b.records_in_order]
        assert a == b

    def test_same_config_fully_deterministic(self):
        r1 = run_experiment(_cfg())
        r2 = run_experiment(_cfg())
        t1 = [r.completion_time for r in r1.records_in_order]
        t2 = [r.completion_time for r in r2.records_in_order]
        assert t1 == t2

    def test_different_seed_differs(self):
        r1 = run_experiment(_cfg(seed=1))
        r2 = run_experiment(_cfg(seed=2))
        s1 = [(r.device, r.data_bytes) for r in r1.records_in_order]
        s2 = [(r.device, r.data_bytes) for r in r2.records_in_order]
        assert s1 != s2


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(policy="psychic")

    def test_unknown_metric_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(metric="vibes")

    def test_unknown_probe_layout_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(probe_layout="carrier-pigeon")

    def test_bad_probing_interval_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(probing_interval=0.0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(size_scale=0.0, total_tasks=1, mean_interarrival=1.0, time_scale=1.0)
        with pytest.raises(ExperimentError):
            ExperimentScale(size_scale=1.0, total_tasks=0, mean_interarrival=1.0, time_scale=1.0)
