"""Reference topology builders."""

import pytest

from repro.errors import TopologyError
from repro.experiments.topologies import build_fat_tree, build_linear, build_star
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.random import RandomStreams


class TestLinear:
    def test_structure(self, sim):
        net, hosts = build_linear(sim, RandomStreams(0), num_switches=5)
        assert len(net.switches) == 5
        assert len(net.hosts) == 5
        assert net.shortest_path("h1", "h5") == [
            "h1", "s01", "s02", "s03", "s04", "s05", "h5",
        ]

    def test_end_to_end_delivery(self, sim):
        net, hosts = build_linear(sim, RandomStreams(0), num_switches=3)
        got = []
        net.host("h3").bind(PROTO_UDP, 9, lambda p: got.append(p.hop_count))
        h1 = net.host("h1")
        h1.send(h1.new_packet(net.address_of("h3"), dst_port=9))
        sim.run()
        assert got == [3]

    def test_int_stack_grows_with_chain_length(self, sim):
        """Probes through an n-switch chain collect n records."""
        from repro.telemetry.collector import IntCollector
        from repro.telemetry.probe import ProbeResponder, ProbeSender

        net, hosts = build_linear(sim, RandomStreams(0), num_switches=6)
        collector = IntCollector(net.host("h6"))
        ProbeResponder(net.host("h6"), collector=collector)
        ProbeSender(net.host("h1"), [net.address_of("h6")]).start()
        sim.run(until=0.5)
        assert collector.last_report.hop_count == 6

    def test_validation(self, sim):
        with pytest.raises(TopologyError):
            build_linear(sim, num_switches=0)


class TestStar:
    def test_structure(self, sim):
        net, hosts = build_star(sim, RandomStreams(0), num_hosts=4)
        assert len(net.switches) == 1
        assert len(net.hosts) == 4
        assert net.shortest_path("h1", "h4") == ["h1", "s01", "h4"]

    def test_validation(self, sim):
        with pytest.raises(TopologyError):
            build_star(sim, num_hosts=1)


class TestFatTree:
    def test_structure(self, sim):
        net, hosts = build_fat_tree(sim, RandomStreams(0), pods=3, hosts_per_leaf=2)
        assert len(net.switches) == 5  # 2 spines + 3 leaves
        assert len(net.hosts) == 6
        # Cross-leaf paths go leaf -> spine -> leaf.
        path = net.shortest_path("h1", "h3")
        assert len(path) == 5
        assert path[2] in ("s01", "s02")

    def test_equal_cost_tie_breaks_to_lower_spine(self, sim):
        net, hosts = build_fat_tree(sim, RandomStreams(0), pods=2)
        path = net.shortest_path("h1", "h3")
        assert path[2] == "s01"  # deterministic lexicographic choice

    def test_scheduler_runs_on_fat_tree(self, sim):
        """The core pipeline is topology-agnostic: full run on the fabric."""
        from repro.core import NetworkAwareScheduler
        from repro.telemetry.probe import ProbeResponder, ProbeSender

        net, hosts = build_fat_tree(sim, RandomStreams(1), pods=2, hosts_per_leaf=2)
        scheduler_host = hosts[-1]
        servers = [net.address_of(h) for h in hosts[:-1]]
        sched = NetworkAwareScheduler(
            net.host(scheduler_host), servers, link_capacity_bps=20e6
        )
        all_addrs = [net.address_of(h) for h in hosts]
        for h in hosts:
            host = net.host(h)
            if h == scheduler_host:
                ProbeResponder(host, collector=sched.collector)
            else:
                ProbeResponder(host, collector_addr=net.address_of(scheduler_host))
            ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()
        sim.run(until=1.0)
        ranking = sched.rank(net.address_of(hosts[0]), "delay")
        assert len(ranking) == len(servers) - 1
        # Same-leaf neighbour is the closest.
        assert ranking[0][0] == net.address_of(hosts[1])

    def test_validation(self, sim):
        with pytest.raises(TopologyError):
            build_fat_tree(sim, pods=0)
