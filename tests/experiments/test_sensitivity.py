"""Sensitivity sweeps (tiny scales; shapes only)."""

import pytest

from repro.edge.task import SizeClass
from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentConfig, ExperimentScale
from repro.experiments.sensitivity import sweep_k, sweep_probing_parameter

pytestmark = pytest.mark.slow

TINY = ExperimentScale(size_scale=0.05, total_tasks=6, mean_interarrival=0.4, time_scale=0.08)
BASE = ExperimentConfig(
    workload="serverless", metric="delay", size_class=SizeClass.VS,
    scale=TINY, seed=5,
)


def test_sweep_k_produces_gain_series():
    result = sweep_k(values=(0.0, 0.020), base_config=BASE)
    series = result.series()
    assert [v for v, _ in series] == [0.0, 0.020]
    for _value, gain in series:
        assert -100.0 < gain < 100.0


def test_sweep_k_rejects_negative():
    with pytest.raises(ExperimentError):
        sweep_k(values=(-1.0,), base_config=BASE)


def test_best_value_selection():
    result = sweep_k(values=(0.0, 0.020), base_config=BASE)
    assert result.best_value() in (0.0, 0.020)


def test_generic_parameter_sweep():
    result = sweep_probing_parameter(
        "probing_interval", (0.1, 1.0), base_config=BASE
    )
    assert set(result.runs) == {0.1, 1.0}
    assert result.nearest is not None


def test_generic_sweep_rejects_unknown_field():
    with pytest.raises(ExperimentError):
        sweep_probing_parameter("warp_factor", (1.0,), base_config=BASE)


def test_unknown_measure_rejected():
    result = sweep_k(values=(0.020,), base_config=BASE)
    with pytest.raises(ExperimentError):
        result.gain_percent(0.020, measure="vibes")
    with pytest.raises(ExperimentError):
        result.gain_percent(99.0)
