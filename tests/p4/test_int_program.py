"""The paper's INT program: register updates, probe collection, timestamps.

These tests drive real packets through small finalized networks so the
program executes exactly as it does in experiments."""

import pytest

from repro.p4.headers import decode_probe_payload, encode_probe_header
from repro.simnet.addressing import PORT_PROBE, PROTO_UDP
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.packet import FLAG_PROBE, MTU
from repro.simnet.random import RandomStreams
from repro.units import mbps, ms


def _probe_packet(host, dst_addr, size=MTU):
    pkt = host.new_packet(
        dst_addr,
        protocol=PROTO_UDP,
        dst_port=PORT_PROBE,
        size_bytes=size,
        payload=encode_probe_header(0),
        flags=FLAG_PROBE,
    )
    pkt.size_bytes = size
    return pkt


@pytest.fixture
def quiet_line3(sim, quiet_network_factory):
    """Deterministic h1 - s01 - s02 - {h2, h3} network."""
    net = quiet_network_factory()
    for h in ("h1", "h2", "h3"):
        net.add_host(h)
    for s in ("s01", "s02"):
        net.add_switch(s)
    net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
    net.connect("s01", "s02", rate_bps=mbps(20), delay=ms(10))
    net.attach_host("h2", "s02", fabric_rate_bps=mbps(20), delay=ms(10))
    net.attach_host("h3", "s02", fabric_rate_bps=mbps(20), delay=ms(10))
    net.finalize()
    return net


def _capture_probe(net, host_name):
    got = []
    net.host(host_name).bind(PROTO_UDP, PORT_PROBE, lambda p: got.append(p))
    return got


class TestProbePath:
    def test_probe_collects_one_record_per_switch(self, sim, quiet_line3):
        net = quiet_line3
        got = _capture_probe(net, "h2")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h2")))
        sim.run()
        records = decode_probe_payload(got[0].payload)
        assert [r.switch_id for r in records] == [1, 2]

    def test_record_ports_point_downstream(self, sim, quiet_line3):
        net = quiet_line3
        got = _capture_probe(net, "h3")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h3")))
        sim.run()
        records = decode_probe_payload(got[0].payload)
        # s01's egress toward s02; s02's egress toward h3.
        assert records[0].egress_port == net.port_toward("s01", "s02")
        assert records[1].egress_port == net.port_toward("s02", "h3")

    def test_first_hop_link_latency_measured(self, sim, quiet_line3):
        """Host stamps at dequeue; s01 measures host->switch link latency
        (10 ms propagation + 1500 B / 200 Mb/s serialization)."""
        net = quiet_line3
        got = _capture_probe(net, "h2")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h2")))
        sim.run()
        records = decode_probe_payload(got[0].payload)
        assert records[0].link_latency == pytest.approx(ms(10) + 1500 * 8 / mbps(200), abs=1e-5)

    def test_inter_switch_link_latency_measured(self, sim, quiet_line3):
        net = quiet_line3
        got = _capture_probe(net, "h2")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h2")))
        sim.run()
        records = decode_probe_payload(got[0].payload)
        # 10 ms propagation + 1500 B / 20 Mb/s serialization = 10.6 ms.
        assert records[1].link_latency == pytest.approx(0.0106, abs=1e-4)

    def test_link_latency_excludes_queueing(self, sim, quiet_line3):
        """Congest s01->s02, then probe: the *latency* field must stay at the
        uncongested value (measurement happens before enqueue) even though
        the probe itself waited in the queue."""
        net = quiet_line3
        UdpSink(net.host("h2"))
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(19.5),
            rng=RandomStreams(1).get("f"),
        )
        flow.run_for(2.0)
        got = _capture_probe(net, "h3")
        h1 = net.host("h1")
        sim.schedule(1.0, lambda: h1.send(_probe_packet(h1, net.address_of("h3"))))
        sim.run(until=4.0)
        records = decode_probe_payload(got[0].payload)
        assert records[1].link_latency == pytest.approx(0.0106, abs=5e-4)

    def test_probe_padding_keeps_wire_size(self, sim, quiet_line3):
        net = quiet_line3
        got = _capture_probe(net, "h2")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h2"), size=MTU))
        sim.run()
        assert got[0].size_bytes == MTU  # INT stack fits within the padding

    def test_probe_grows_if_stack_exceeds_padding(self, sim, quiet_line3):
        net = quiet_line3
        got = _capture_probe(net, "h2")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h2"), size=44))  # minimal
        sim.run()
        assert got[0].size_bytes > 44


class TestRegisterSemantics:
    def test_data_packets_update_max_register(self, sim, quiet_line3):
        net = quiet_line3
        UdpSink(net.host("h2"))
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(19),
            rng=RandomStreams(2).get("f"),
        )
        flow.run_for(3.0)
        sim.run(until=3.5)
        s01 = net.switch("s01")
        port = net.port_toward("s01", "s02")
        reg_val = s01.program.register("max_qdepth").read(port)
        assert reg_val == s01.ports[port].queue.stats.max_depth_seen
        assert reg_val > 0

    def test_probe_resets_register(self, sim, quiet_line3):
        net = quiet_line3
        UdpSink(net.host("h2"))
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(19),
            rng=RandomStreams(2).get("f"),
        )
        flow.run_for(1.0)
        got = _capture_probe(net, "h2")
        h1 = net.host("h1")
        sim.schedule(1.5, lambda: h1.send(_probe_packet(h1, net.address_of("h2"))))
        sim.run(until=2.0)
        records = decode_probe_payload(got[0].payload)
        assert records[0].max_qdepth > 0  # probe picked the accumulated max
        s01 = net.switch("s01")
        port = net.port_toward("s01", "s02")
        assert s01.program.register("max_qdepth").read(port) == 0  # and reset it

    def test_uncongested_port_reports_zero(self, sim, quiet_line3):
        net = quiet_line3
        got = _capture_probe(net, "h2")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h2")))
        sim.run()
        records = decode_probe_payload(got[0].payload)
        assert all(r.max_qdepth == 0 for r in records)

    def test_counters(self, sim, quiet_line3):
        net = quiet_line3
        _capture_probe(net, "h2")
        h1 = net.host("h1")
        h1.send(_probe_packet(h1, net.address_of("h2")))
        h1.send(h1.new_packet(net.address_of("h2"), dst_port=99, size_bytes=100))
        sim.run()
        prog = net.switch("s01").program
        assert prog.probes_processed == 1
        assert prog.data_packets_observed == 1
