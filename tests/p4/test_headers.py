"""INT probe header codec: framing, clamping, error handling."""

import pytest

from repro.errors import PacketError
from repro.p4.headers import (
    HOP_RECORD_SIZE,
    PROBE_HEADER_SIZE,
    IntHopRecord,
    append_hop_record,
    decode_probe_payload,
    encode_hop_record,
    encode_probe_header,
)


def _record(**kw):
    base = dict(switch_id=3, egress_port=1, max_qdepth=17, link_latency=0.0105, egress_ts=2.5)
    base.update(kw)
    return IntHopRecord(**base)


def test_empty_probe_header():
    payload = encode_probe_header(0)
    assert len(payload) == PROBE_HEADER_SIZE
    assert decode_probe_payload(payload) == []


def test_single_hop_roundtrip():
    payload = append_hop_record(encode_probe_header(0), _record())
    records = decode_probe_payload(payload)
    assert len(records) == 1
    r = records[0]
    assert (r.switch_id, r.egress_port, r.max_qdepth) == (3, 1, 17)
    assert r.link_latency == pytest.approx(0.0105, abs=1e-6)
    assert r.egress_ts == pytest.approx(2.5, abs=1e-6)


def test_multi_hop_preserves_path_order():
    payload = encode_probe_header(0)
    for sid in (5, 2, 9):
        payload = append_hop_record(payload, _record(switch_id=sid))
    assert [r.switch_id for r in decode_probe_payload(payload)] == [5, 2, 9]


def test_payload_length_grows_by_record_size():
    p0 = encode_probe_header(0)
    p1 = append_hop_record(p0, _record())
    assert len(p1) - len(p0) == HOP_RECORD_SIZE


def test_first_hop_latency_sentinel():
    payload = append_hop_record(encode_probe_header(0), _record(link_latency=None))
    assert decode_probe_payload(payload)[0].link_latency is None


def test_negative_latency_survives():
    """Clock jitter can make measured latency slightly negative; the codec
    must not corrupt it (signed field)."""
    payload = append_hop_record(encode_probe_header(0), _record(link_latency=-0.00015))
    assert decode_probe_payload(payload)[0].link_latency == pytest.approx(-0.00015, abs=1e-6)


def test_qdepth_saturates_at_16_bits():
    payload = append_hop_record(encode_probe_header(0), _record(max_qdepth=2**20))
    assert decode_probe_payload(payload)[0].max_qdepth == 0xFFFF


def test_bad_magic_rejected():
    with pytest.raises(PacketError):
        decode_probe_payload(b"XX\x01\x00")


def test_truncated_header_rejected():
    with pytest.raises(PacketError):
        decode_probe_payload(b"NT")


def test_inconsistent_length_rejected():
    payload = append_hop_record(encode_probe_header(0), _record())
    with pytest.raises(PacketError):
        decode_probe_payload(payload + b"junk")
    with pytest.raises(PacketError):
        decode_probe_payload(payload[:-1])


def test_append_to_inconsistent_payload_rejected():
    payload = append_hop_record(encode_probe_header(0), _record())
    with pytest.raises(PacketError):
        append_hop_record(payload + b"x", _record())


def test_bad_version_rejected():
    payload = bytearray(encode_probe_header(0))
    payload[2] = 99
    with pytest.raises(PacketError):
        decode_probe_payload(bytes(payload))


def test_record_field_validation():
    with pytest.raises(PacketError):
        IntHopRecord(switch_id=-1, egress_port=0, max_qdepth=0, link_latency=None, egress_ts=0.0)
    with pytest.raises(PacketError):
        IntHopRecord(switch_id=1, egress_port=300, max_qdepth=0, link_latency=None, egress_ts=0.0)
    with pytest.raises(PacketError):
        IntHopRecord(switch_id=1, egress_port=0, max_qdepth=-2, link_latency=None, egress_ts=0.0)


def test_hop_count_limit():
    payload = encode_probe_header(0)
    for i in range(255):
        payload = append_hop_record(payload, _record(switch_id=i % 100))
    with pytest.raises(PacketError):
        append_hop_record(payload, _record())


def test_encode_hop_record_size():
    assert len(encode_hop_record(_record())) == HOP_RECORD_SIZE
