"""Per-packet INT (the rejected alternative): embedding and overhead."""

import pytest

from repro.p4.headers import HOP_RECORD_SIZE
from repro.p4.per_packet_int import PerPacketIntProgram, PerPacketIntSink
from repro.simnet.flows import UdpCbrFlow
from repro.simnet.packet import MTU
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms


@pytest.fixture
def per_packet_net(sim):
    """h1 - s01 - s02 - h2 with per-packet INT on every switch."""
    net = Network(
        sim, RandomStreams(0),
        clock_offset_std=0.0, clock_jitter_std=0.0, switch_service_jitter=0.0,
        program_factory=PerPacketIntProgram,
    )
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    net.add_switch("s02")
    net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
    net.connect("s01", "s02", rate_bps=mbps(20), delay=ms(5))
    net.attach_host("h2", "s02", fabric_rate_bps=mbps(20), delay=ms(5))
    net.finalize()
    return net


def _send_one(net, size=1000, port=5201):
    h1 = net.host("h1")
    h1.send(h1.new_packet(net.address_of("h2"), dst_port=port, size_bytes=size))


class TestEmbedding:
    def test_stack_grows_per_hop(self, sim, per_packet_net):
        net = per_packet_net
        stacks = []
        PerPacketIntSink(net.host("h2"), 5201, on_stack=stacks.append)
        _send_one(net)
        sim.run()
        assert len(stacks) == 1
        assert [r.switch_id for r in stacks[0]] == [1, 2]

    def test_wire_size_grows_per_hop(self, sim, per_packet_net):
        net = per_packet_net
        received = []
        net.host("h2").bind(17, 5201, lambda p: received.append(p.size_bytes))
        _send_one(net, size=1000)
        sim.run()
        assert received == [1000 + 2 * HOP_RECORD_SIZE]

    def test_queue_depth_is_instantaneous(self, sim, per_packet_net):
        """Per-packet INT reports the queue the packet itself observed."""
        net = per_packet_net
        stacks = []
        PerPacketIntSink(net.host("h2"), 5201, on_stack=stacks.append)
        # Burst: later packets observe deeper queues at s01.
        for _ in range(8):
            _send_one(net)
        sim.run()
        first_hop_depths = [s[0].max_qdepth for s in stacks]
        assert first_hop_depths[0] == 0
        assert max(first_hop_depths) >= 3

    def test_link_latency_measured(self, sim, per_packet_net):
        net = per_packet_net
        stacks = []
        PerPacketIntSink(net.host("h2"), 5201, on_stack=stacks.append)
        _send_one(net)
        sim.run()
        # Second hop's upstream link: 5 ms + 1017 B / 20 Mb/s.
        latency = stacks[0][1].link_latency
        assert latency == pytest.approx(ms(5) + (1000 + HOP_RECORD_SIZE) * 8 / mbps(20), abs=2e-4)

    def test_program_counters(self, sim, per_packet_net):
        net = per_packet_net
        PerPacketIntSink(net.host("h2"), 5201)
        for _ in range(3):
            _send_one(net)
        sim.run()
        prog = net.switch("s01").program
        assert prog.records_embedded == 3
        assert prog.bytes_added == 3 * HOP_RECORD_SIZE


class TestOverhead:
    def test_overhead_fraction_matches_arithmetic(self, sim, per_packet_net):
        """Full-MTU packets over 2 hops: overhead = 2x17 / (1500+34)."""
        net = per_packet_net
        sink = PerPacketIntSink(net.host("h2"), 5201)
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(5),
            packet_size=MTU, dst_port=5201, burstiness="cbr",
        )
        flow.run_for(2.0)
        sim.run(until=3.0)
        expected = 2 * HOP_RECORD_SIZE / (MTU + 2 * HOP_RECORD_SIZE)
        assert sink.overhead_fraction == pytest.approx(expected, rel=1e-6)
        assert sink.packets > 100

    def test_overhead_reduces_effective_goodput(self, sim, per_packet_net):
        """At saturation, telemetry bytes displace data bytes: goodput on a
        20 Mb/s path drops by the overhead fraction."""
        net = per_packet_net
        sink = PerPacketIntSink(net.host("h2"), 5201)
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(30),  # oversubscribe
            packet_size=MTU, dst_port=5201, burstiness="cbr",
        )
        flow.run_for(5.0)
        sim.run(until=5.0)
        goodput = (sink.total_bytes - sink.telemetry_bytes) * 8.0 / 5.0
        assert goodput < mbps(20) * 0.99
