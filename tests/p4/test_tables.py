"""Match-action tables."""

import pytest

from repro.errors import DataPlaneError
from repro.p4.tables import ExactMatchTable, LpmTable


def test_miss_runs_default_action():
    t = ExactMatchTable("fwd", default_action="drop")
    assert t.lookup(42) == ("drop", {})
    assert t.misses == 1


def test_hit_returns_action_and_params():
    t = ExactMatchTable("fwd")
    t.add_entry(7, "forward", port=3)
    assert t.lookup(7) == ("forward", {"port": 3})
    assert t.hits == 1


def test_duplicate_add_rejected():
    t = ExactMatchTable("fwd")
    t.add_entry(1, "forward", port=0)
    with pytest.raises(DataPlaneError):
        t.add_entry(1, "forward", port=1)


def test_set_entry_upserts():
    t = ExactMatchTable("fwd")
    t.set_entry(1, "forward", port=0)
    t.set_entry(1, "forward", port=2)
    assert t.lookup(1)[1]["port"] == 2
    assert len(t) == 1


def test_remove_entry():
    t = ExactMatchTable("fwd")
    t.add_entry(1, "forward", port=0)
    t.remove_entry(1)
    assert 1 not in t
    with pytest.raises(DataPlaneError):
        t.remove_entry(1)


def test_entries_copy():
    t = ExactMatchTable("fwd")
    t.add_entry(1, "forward", port=0)
    entries = t.entries()
    entries[2] = ("forward", {})
    assert 2 not in t


class TestLpm:
    def test_longest_prefix_wins(self):
        t = LpmTable("routes", width=8)
        t.add_entry(0b1010_0000, 4, "forward", port=1)  # 1010/4
        t.add_entry(0b1010_1000, 6, "forward", port=2)  # 101010/6
        assert t.lookup(0b1010_1011)[1]["port"] == 2
        assert t.lookup(0b1010_0011)[1]["port"] == 1

    def test_miss_runs_default(self):
        t = LpmTable("routes", width=8, default_action="drop")
        t.add_entry(0b1100_0000, 2, "forward", port=0)
        assert t.lookup(0b0000_0001) == ("drop", {})
        assert t.misses == 1

    def test_catch_all_prefix(self):
        t = LpmTable("routes", width=8)
        t.add_entry(0, 0, "forward", port=9)
        assert t.lookup(0xFF)[1]["port"] == 9

    def test_exact_prefix(self):
        t = LpmTable("routes", width=8)
        t.add_entry(42, 8, "forward", port=3)
        assert t.lookup(42)[1]["port"] == 3
        assert t.lookup(43) == ("drop", {})

    def test_duplicate_prefix_rejected(self):
        t = LpmTable("routes", width=8)
        t.add_entry(0b1010_0000, 4, "forward", port=1)
        with pytest.raises(DataPlaneError):
            t.add_entry(0b1010_1111, 4, "forward", port=2)  # same /4 prefix

    def test_validation(self):
        with pytest.raises(DataPlaneError):
            LpmTable("bad", width=0)
        t = LpmTable("routes", width=8)
        with pytest.raises(DataPlaneError):
            t.add_entry(1, 9, "forward", port=0)
        with pytest.raises(DataPlaneError):
            t.add_entry(256, 8, "forward", port=0)

    def test_len_counts_all_entries(self):
        t = LpmTable("routes", width=8)
        t.add_entry(0, 0, "forward", port=0)
        t.add_entry(0b1000_0000, 1, "forward", port=1)
        assert len(t) == 2

    def test_hit_counter(self):
        t = LpmTable("routes", width=8)
        t.add_entry(0, 0, "forward", port=0)
        t.lookup(5)
        t.lookup(6)
        assert t.hits == 2
