"""Register array extern."""

import pytest

from repro.errors import DataPlaneError
from repro.p4.registers import RegisterArray


def test_initial_values():
    reg = RegisterArray("r", 4, initial=7)
    assert reg.snapshot() == [7, 7, 7, 7]


def test_write_read():
    reg = RegisterArray("r", 2)
    reg.write(1, 42)
    assert reg.read(1) == 42
    assert reg.read(0) == 0


def test_bounds_checked():
    reg = RegisterArray("r", 2)
    with pytest.raises(DataPlaneError):
        reg.read(2)
    with pytest.raises(DataPlaneError):
        reg.write(-1, 0)
    with pytest.raises(DataPlaneError):
        reg.max_update(5, 1)
    with pytest.raises(DataPlaneError):
        reg.read_and_reset(2)


def test_size_validated():
    with pytest.raises(DataPlaneError):
        RegisterArray("r", 0)


def test_max_update_keeps_maximum():
    reg = RegisterArray("r", 1)
    assert reg.max_update(0, 5) == 5
    assert reg.max_update(0, 3) == 5  # smaller value ignored
    assert reg.max_update(0, 9) == 9
    assert reg.read(0) == 9


def test_read_and_reset_restores_initial():
    reg = RegisterArray("r", 1, initial=2)
    reg.write(0, 30)
    assert reg.read_and_reset(0) == 30
    assert reg.read(0) == 2


def test_access_counters():
    reg = RegisterArray("r", 1)
    reg.write(0, 1)
    reg.read(0)
    reg.max_update(0, 2)
    reg.read_and_reset(0)
    assert reg.writes == 3
    assert reg.reads == 2


def test_snapshot_is_a_copy():
    reg = RegisterArray("r", 2)
    snap = reg.snapshot()
    snap[0] = 99
    assert reg.read(0) == 0
