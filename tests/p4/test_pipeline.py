"""Pipeline driver: stage sequencing, resource declaration, error handling."""

import pytest

from repro.errors import DataPlaneError
from repro.p4.forwarding import PlainForwardingProgram
from repro.p4.pipeline import P4Program, PipelineContext
from repro.simnet.packet import Packet
from repro.units import mbps


class _RecordingProgram(P4Program):
    """Logs stage invocations."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def parse(self, ctx):
        self.calls.append("parse")

    def ingress(self, ctx):
        self.calls.append("ingress")
        ctx.set_egress_port(0)

    def egress(self, ctx):
        self.calls.append("egress")

    def deparse(self, ctx):
        self.calls.append("deparse")


def _switch_with(sim, quiet_network_factory, program_factory):
    """A wired (but not finalized) switch bound to a custom program —
    custom test programs have no route-installation hook."""
    net = quiet_network_factory()
    net.add_host("a")
    net.add_host("b")
    switch = net.add_switch("s01")
    net.connect("a", "s01", rate_bps=mbps(10), delay=0.0)
    net.connect("s01", "b", rate_bps=mbps(10), delay=0.0)
    switch.bind_program(program_factory())
    return switch


def test_declare_register_and_table():
    prog = P4Program()
    reg = prog.declare_register("r", 4)
    table = prog.declare_table("t")
    assert prog.register("r") is reg
    assert prog.table("t") is table


def test_duplicate_declaration_rejected():
    prog = P4Program()
    prog.declare_register("r", 1)
    with pytest.raises(DataPlaneError):
        prog.declare_register("r", 1)
    prog.declare_table("t")
    with pytest.raises(DataPlaneError):
        prog.declare_table("t")


def test_unknown_resource_rejected():
    prog = P4Program()
    with pytest.raises(DataPlaneError):
        prog.register("nope")
    with pytest.raises(DataPlaneError):
        prog.table("nope")


def test_double_bind_rejected(sim, quiet_network_factory):
    switch = _switch_with(sim, quiet_network_factory, PlainForwardingProgram)
    with pytest.raises(DataPlaneError):
        switch.program.bind(switch)


def test_ingress_stage_sequence(sim, quiet_network_factory):
    switch = _switch_with(sim, quiet_network_factory, _RecordingProgram)
    prog = switch.program
    prog.process_ingress(Packet(1, 2), 0)
    assert prog.calls == ["parse", "ingress"]


def test_egress_stage_sequence(sim, quiet_network_factory):
    switch = _switch_with(sim, quiet_network_factory, _RecordingProgram)
    prog = switch.program
    prog.process_egress(Packet(1, 2), 0, 3)
    assert prog.calls == ["parse", "egress", "deparse"]


def test_unbound_program_rejected():
    prog = _RecordingProgram()
    with pytest.raises(DataPlaneError):
        prog.process_ingress(Packet(1, 2), 0)
    with pytest.raises(DataPlaneError):
        prog.process_egress(Packet(1, 2), 0, 0)


def test_ingress_must_forward_or_drop(sim, quiet_network_factory):
    class Lazy(P4Program):
        def ingress(self, ctx):
            pass  # neither forwards nor drops

    switch = _switch_with(sim, quiet_network_factory, Lazy)
    with pytest.raises(DataPlaneError):
        switch.program.process_ingress(Packet(1, 2), 0)


def test_context_carries_enq_depth(sim, quiet_network_factory):
    seen = []

    class DepthSpy(P4Program):
        def ingress(self, ctx):
            ctx.set_egress_port(0)

        def egress(self, ctx):
            seen.append(ctx.enq_depth)

    switch = _switch_with(sim, quiet_network_factory, DepthSpy)
    switch.program.process_egress(Packet(1, 2), 0, 5)
    assert seen == [5]


def test_mark_drop(sim):
    ctx = PipelineContext(Packet(1, 2), None, 0)
    assert not ctx.dropped
    ctx.mark_drop()
    assert ctx.dropped
