"""Property tests: estimator and ranking invariants."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import ecdf
from repro.core.estimators import DelayEstimator, QdepthUtilizationCurve


knots = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    ),
    min_size=2,
    max_size=10,
).map(lambda pts: sorted({q: u for q, u in pts}.items()))


@given(knots, st.floats(min_value=-10.0, max_value=200.0, allow_nan=False))
def test_curve_output_always_in_unit_interval(pts, q):
    # Force monotone utilization by cummax.
    mono = []
    best = 0.0
    for depth, util in pts:
        best = max(best, util)
        mono.append((depth, best))
    if len(mono) < 2:
        return
    curve = QdepthUtilizationCurve(mono)
    u = curve.utilization(q)
    assert 0.0 <= u <= 1.0


@given(knots)
def test_curve_monotone_everywhere(pts):
    mono = []
    best = 0.0
    for depth, util in pts:
        best = max(best, util)
        mono.append((depth, best))
    if len(mono) < 2:
        return
    curve = QdepthUtilizationCurve(mono)
    qs = [i * 0.5 for i in range(0, 250)]
    vals = [curve.utilization(q) for q in qs]
    assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))


@given(
    st.lists(
        st.tuples(st.integers(0, 60), st.floats(min_value=0.0, max_value=2.0, allow_nan=False)),
        min_size=1,
        max_size=30,
    ),
    st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
)
def test_calibrated_k_nonnegative_and_finite(samples, baseline):
    k = DelayEstimator.calibrated_k(samples, baseline)
    assert k >= 0.0
    assert math.isfinite(k)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
def test_ecdf_properties(values):
    x, f = ecdf(values)
    assert len(x) == len(f) == len(values)
    assert list(x) == sorted(values)
    assert all(0 < fi <= 1.0 for fi in f)
    assert all(b >= a for a, b in zip(f, f[1:]))
    assert f[-1] == 1.0
