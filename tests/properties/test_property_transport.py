"""Property tests: the reliable transport delivers under arbitrary
queue capacities (loss patterns) and transfer sizes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.flows import MSS, ReliableTransfer, TransferSinkApp
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms


@given(
    nbytes=st.integers(min_value=0, max_value=80 * MSS),
    queue_capacity=st.integers(min_value=2, max_value=64),
    delay_ms=st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
)
@settings(max_examples=25, deadline=None)
def test_transfer_always_completes_with_exact_bytes(nbytes, queue_capacity, delay_ms):
    """Whatever the (loss-inducing) queue size and link delay, the transport
    terminates and the receiver got exactly the bytes sent."""
    sim = Simulator()
    net = Network(
        sim, RandomStreams(0),
        clock_offset_std=0.0, clock_jitter_std=0.0, switch_service_jitter=0.0,
    )
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(delay_ms),
                    queue_capacity=queue_capacity)
    net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(delay_ms),
                    queue_capacity=queue_capacity)
    net.finalize()
    sink = TransferSinkApp(net.host("h2"), 6000)
    transfer = ReliableTransfer(net.host("h1"), net.address_of("h2"), 6000, nbytes)
    transfer.start()
    sim.run(until=2000.0)
    assert transfer.done, (
        f"transfer stuck: acked {transfer.cum_acked}/{transfer.total_segments}"
    )
    if nbytes > 0:
        state = sink.completed[0]
        assert state.bytes_received == nbytes
        assert state.complete
    assert transfer.elapsed <= sim.now


@given(sizes=st.lists(st.integers(min_value=1, max_value=20 * MSS), min_size=2, max_size=4))
@settings(max_examples=15, deadline=None)
def test_concurrent_transfers_all_complete(sizes):
    """N transfers sharing one bottleneck all terminate."""
    sim = Simulator()
    net = Network(
        sim, RandomStreams(0),
        clock_offset_std=0.0, clock_jitter_std=0.0, switch_service_jitter=0.0,
    )
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
    net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(5))
    net.finalize()
    TransferSinkApp(net.host("h2"), 6000)
    transfers = [
        ReliableTransfer(net.host("h1"), net.address_of("h2"), 6000, n) for n in sizes
    ]
    for t in transfers:
        t.start()
    sim.run(until=3000.0)
    assert all(t.done for t in transfers)
