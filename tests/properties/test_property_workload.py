"""Property tests: workload and background plans are well-formed for any
valid specification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.background import BackgroundTraffic, TrafficScenario
from repro.edge.task import TABLE_I, SizeClass
from repro.edge.workload import (
    WORKLOAD_DISTRIBUTED,
    WORKLOAD_SERVERLESS,
    WorkloadSpec,
    build_plan,
)
from repro.simnet.random import RandomStreams

DEVICES = ["node1", "node2", "node3", "node7"]

specs = st.builds(
    WorkloadSpec,
    workload=st.sampled_from([WORKLOAD_SERVERLESS, WORKLOAD_DISTRIBUTED]),
    size_class=st.sampled_from(list(SizeClass)),
    total_tasks=st.integers(1, 120),
    mean_interarrival=st.floats(0.05, 10.0, allow_nan=False),
    scale=st.floats(0.01, 1.0, allow_nan=False),
)


@given(specs, st.integers(0, 2**20))
@settings(max_examples=80)
def test_plan_invariants(spec, seed):
    plan = build_plan(spec, DEVICES, RandomStreams(seed).get("w"))
    # Exact task count.
    assert sum(len(j.task_shapes) for j in plan.jobs) == spec.total_tasks
    # Job sizes: all full except possibly the last.
    sizes = [len(j.task_shapes) for j in plan.jobs]
    assert all(s == spec.tasks_per_job for s in sizes[:-1])
    assert 1 <= sizes[-1] <= spec.tasks_per_job
    # Arrivals strictly increase and devices come from the pool.
    times = [j.arrival_time for j in plan.jobs]
    assert all(b > a for a, b in zip(times, times[1:]))
    assert all(j.device_name in DEVICES for j in plan.jobs)
    # Shapes respect the (scaled) Table I ranges.
    (d_lo, d_hi), (e_lo, e_hi) = TABLE_I[spec.size_class]
    for job in plan.jobs:
        for data, exec_time in job.task_shapes:
            assert 0 <= data <= d_hi * spec.scale + 1
            assert 0 <= exec_time <= e_hi * spec.scale + 1e-9


@given(specs, st.integers(0, 2**20))
@settings(max_examples=30)
def test_plan_paired_across_calls(spec, seed):
    p1 = build_plan(spec, DEVICES, RandomStreams(seed).get("w"))
    p2 = build_plan(spec, DEVICES, RandomStreams(seed).get("w"))
    assert p1.jobs == p2.jobs


scenarios = st.builds(
    TrafficScenario,
    name=st.just("prop"),
    slots=st.integers(1, 4),
    duration_choices=st.lists(st.floats(0.5, 30.0, allow_nan=False), min_size=1, max_size=3).map(tuple),
    gap_choices=st.lists(st.floats(0.0, 30.0, allow_nan=False), min_size=1, max_size=3).map(tuple),
    stagger=st.floats(0.0, 20.0, allow_nan=False),
    rate_fraction_range=st.tuples(st.floats(0.1, 0.5), st.floats(0.5, 1.0)),
)


@given(scenarios, st.integers(0, 2**20), st.floats(5.0, 120.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_background_plan_invariants(scenario, seed, horizon):
    from repro.simnet.engine import Simulator
    from repro.simnet.topology import Network
    from repro.units import mbps, ms

    sim = Simulator()
    net = Network(sim, RandomStreams(0))
    for h in ("h1", "h2", "h3"):
        net.add_host(h)
    net.add_switch("s01")
    for h in ("h1", "h2", "h3"):
        net.attach_host(h, "s01", fabric_rate_bps=mbps(20), delay=ms(1))
    net.finalize()
    bg = BackgroundTraffic(
        sim,
        {n: net.host(n) for n in net.hosts},
        {n: net.address_of(n) for n in net.hosts},
        scenario,
        RandomStreams(seed).get("bg"),
        link_capacity_bps=mbps(20),
        horizon=horizon,
    )
    starts = [p.start_time for p in bg.plan]
    assert starts == sorted(starts)
    lo, hi = scenario.rate_fraction_range
    for p in bg.plan:
        assert p.src_name != p.dst_name
        assert 0.0 <= p.start_time < horizon
        assert lo * mbps(20) <= p.rate_bps <= hi * mbps(20) + 1e-6
        assert p.duration in scenario.duration_choices
