"""Property tests: topology inference and the telemetry store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.telemetry_store import TelemetryStore
from repro.core.topology_inference import InferredTopology
from repro.p4.headers import IntHopRecord
from repro.simnet.engine import Simulator
from repro.telemetry.records import ProbeReport, host_node, switch_node


# Random "physical" paths: host -> switches -> host, no repeated switches.
paths = st.builds(
    lambda src, switches, dst: [host_node(src)]
    + [switch_node(s) for s in switches]
    + [host_node(dst)],
    src=st.integers(1, 5),
    switches=st.lists(st.integers(10, 30), unique=True, max_size=6),
    dst=st.integers(6, 9),
)


@given(st.lists(paths, min_size=1, max_size=15))
@settings(max_examples=80)
def test_observed_endpoints_always_connected(observed):
    topo = InferredTopology()
    for path in observed:
        topo.observe_path(path)
    # Every observed (src, dst) pair must be connected by *some* inferred
    # path whose intermediate nodes are switches.
    for path in observed:
        found = topo.path(path[0], path[-1])
        assert found[0] == path[0]
        assert found[-1] == path[-1]
        assert all(n[0] == "sw" for n in found[1:-1])
        # The inferred path can never beat the shortest observation.
        assert len(found) <= len(path)


@given(st.lists(paths, min_size=1, max_size=15))
@settings(max_examples=40)
def test_inferred_edges_only_from_observations(observed):
    topo = InferredTopology()
    legit = set()
    for path in observed:
        topo.observe_path(path)
        legit.update(zip(path, path[1:]))
    assert set(topo.graph.edges) == legit


qdepth_updates = st.lists(
    st.tuples(
        st.floats(0.0, 10.0, allow_nan=False),   # inter-report gap
        st.integers(0, 60),                       # reading
    ),
    min_size=1,
    max_size=30,
)


@given(qdepth_updates)
@settings(max_examples=60, deadline=None)
def test_store_qdepth_never_below_latest_window_max(updates):
    """After any update sequence, the stored value is >= the largest reading
    delivered within the last window, and never negative."""
    sim = Simulator()
    store = TelemetryStore(sim, staleness=1e9, qdepth_window=0.5)

    def report(q):
        return ProbeReport(
            probe_src=1, probe_dst=2, seq=0, sent_at=0.0, received_at=0.0,
            records=[IntHopRecord(switch_id=7, egress_port=0, max_qdepth=q,
                                  link_latency=0.01, egress_ts=0.0)],
            final_link_latency=0.01,
        )

    recent = []
    for gap, reading in updates:
        sim.schedule(gap, lambda: None)
        sim.run()
        store.update(report(reading))
        recent = [(t, q) for t, q in recent if sim.now - t <= 0.5]
        recent.append((sim.now, reading))
        stored = store.max_qdepth(switch_node(7), host_node(2))
        assert stored >= max(q for _t, q in recent)
        assert stored >= 0
