"""Property tests: greedy probe cover completeness and determinism."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.telemetry.coverage import (
    all_fabric_ports,
    coverage_of,
    greedy_probe_cover,
    ports_covered_by_pair,
)


def _random_network(seed: int) -> Network:
    """A random connected topology: a switch spanning tree plus a few extra
    switch-switch links, with each host single-homed to a random switch."""
    rng = random.Random(seed)
    n_switches = rng.randint(2, 6)
    n_hosts = rng.randint(2, 5)
    net = Network(Simulator(), streams=RandomStreams(seed))
    switches = [f"s{i}" for i in range(1, n_switches + 1)]
    hosts = [f"h{i}" for i in range(1, n_hosts + 1)]
    for name in hosts:
        net.add_host(name)
    for name in switches:
        net.add_switch(name)
    connected = set()
    for i, name in enumerate(switches[1:], start=1):
        peer = switches[rng.randrange(i)]
        net.connect(name, peer, rate_bps=20e6, delay=1e-3)
        connected.add(frozenset((name, peer)))
    for _ in range(rng.randint(0, n_switches)):
        a, b = rng.sample(switches, 2)
        if frozenset((a, b)) not in connected:
            net.connect(a, b, rate_bps=20e6, delay=1e-3)
            connected.add(frozenset((a, b)))
    for name in hosts:
        net.connect(name, rng.choice(switches), rate_bps=20e6, delay=1e-3)
    net.finalize()
    return net


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_cover_is_complete_over_reachable_ports(seed):
    """The chosen pairs cover every port any host-pair probe can reach."""
    net = _random_network(seed)
    hosts = sorted(net.hosts)
    reachable = set()
    for src in hosts:
        for dst in hosts:
            if src != dst:
                reachable |= ports_covered_by_pair(net, src, dst)
    pairs = greedy_probe_cover(net)
    assert coverage_of(net, pairs) >= reachable
    # Reachability never exceeds the fabric's port set.
    assert reachable <= all_fabric_ports(net)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_cover_is_deterministic_and_non_redundant(seed):
    """Two independent builds of the same topology produce the same pair
    sequence, source order doesn't matter, and every chosen pair strictly
    grows coverage (the greedy never picks a useless probe)."""
    first = greedy_probe_cover(_random_network(seed))
    net = _random_network(seed)
    assert greedy_probe_cover(net) == first
    shuffled = sorted(net.hosts, reverse=True)
    assert greedy_probe_cover(net, sources=shuffled) == first
    covered = set()
    for src, dst in first:
        gained = ports_covered_by_pair(net, src, dst) - covered
        assert gained, (src, dst)
        covered |= gained


def test_tie_break_picks_lexicographically_smallest():
    """Three hosts on one switch: every pair covers exactly one port, so
    every greedy round is a pure tie — the scan order fixes the winner."""
    net = Network(Simulator(), streams=RandomStreams(0))
    for name in ("h1", "h2", "h3"):
        net.add_host(name)
    net.add_switch("s1")
    for name in ("h1", "h2", "h3"):
        net.connect(name, "s1", rate_bps=20e6, delay=1e-3)
    net.finalize()
    assert greedy_probe_cover(net) == [
        ("h1", "h2"), ("h1", "h3"), ("h2", "h1"),
    ]
