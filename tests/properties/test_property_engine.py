"""Property tests: event-engine ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.engine import Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), st.integers(0, 1)),
        max_size=40,
    )
)
def test_cancelled_events_never_fire(spec):
    sim = Simulator()
    fired = []
    cancelled_ids = set()
    for i, (delay, cancel) in enumerate(spec):
        handle = sim.schedule(delay, lambda i=i: fired.append(i))
        if cancel:
            sim.cancel(handle)
            cancelled_ids.add(i)
    sim.run()
    assert cancelled_ids.isdisjoint(fired)
    assert len(fired) == len(spec) - len(cancelled_ids)


@given(st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False), min_size=1, max_size=30))
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    last = [0.0]

    sim.run()
    for a, b in zip(observed, observed[1:]):
        assert b >= a


@given(
    st.integers(1, 20),
    st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
)
@settings(max_examples=50)
def test_same_time_events_fire_fifo(n, t):
    sim = Simulator()
    fired = []
    for i in range(n):
        sim.schedule(t, fired.append, i)
    sim.run()
    assert fired == list(range(n))


@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=30))
def test_run_until_windows_partition_execution(delays):
    """Running in two windows executes exactly the same events as one run."""
    sim1 = Simulator()
    fired1 = []
    sim2 = Simulator()
    fired2 = []
    for d in delays:
        sim1.schedule(d, fired1.append, d)
        sim2.schedule(d, fired2.append, d)
    sim1.run()
    sim2.run(until=5.0)
    sim2.run()
    assert sorted(fired1) == sorted(fired2)
