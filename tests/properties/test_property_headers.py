"""Property tests: the INT header codec round-trips arbitrary stacks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p4.headers import (
    IntHopRecord,
    append_hop_record,
    decode_probe_payload,
    encode_probe_header,
)

# Field ranges the encoder guarantees to preserve exactly.
records = st.builds(
    IntHopRecord,
    switch_id=st.integers(0, 0xFFFF),
    egress_port=st.integers(0, 0xFF),
    max_qdepth=st.integers(0, 0xFFFF),
    link_latency=st.one_of(
        st.none(),
        st.floats(min_value=-1.0, max_value=60.0, allow_nan=False).map(
            lambda x: round(x, 6)  # codec resolution: 1 µs
        ),
    ),
    egress_ts=st.floats(min_value=0.0, max_value=1e6, allow_nan=False).map(
        lambda x: round(x, 6)
    ),
)


@given(st.lists(records, max_size=20))
@settings(max_examples=200)
def test_roundtrip_preserves_stack(stack):
    payload = encode_probe_header(0)
    for record in stack:
        payload = append_hop_record(payload, record)
    decoded = decode_probe_payload(payload)
    assert len(decoded) == len(stack)
    for orig, got in zip(stack, decoded):
        assert got.switch_id == orig.switch_id
        assert got.egress_port == orig.egress_port
        assert got.max_qdepth == orig.max_qdepth
        if orig.link_latency is None:
            assert got.link_latency is None
        else:
            assert abs(got.link_latency - orig.link_latency) < 1e-6
        assert abs(got.egress_ts - orig.egress_ts) < 1e-6


@given(st.lists(records, min_size=1, max_size=10), st.integers(1, 16))
def test_truncation_always_detected(stack, cut):
    payload = encode_probe_header(0)
    for record in stack:
        payload = append_hop_record(payload, record)
    import pytest

    from repro.errors import PacketError

    with pytest.raises(PacketError):
        decode_probe_payload(payload[:-cut])


@given(st.binary(max_size=64))
def test_arbitrary_bytes_never_crash(data):
    """The collector decodes hostile payloads: must raise PacketError or
    return records, never anything else."""
    from repro.errors import PacketError

    try:
        decode_probe_payload(data)
    except PacketError:
        pass
