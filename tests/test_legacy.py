"""Legacy SNMP-style monitoring and the counter-driven scheduler."""

import pytest

from repro.core.client import SchedulerClient
from repro.errors import SchedulingError, TelemetryError
from repro.experiments.fig4_topology import build_fig4_network
from repro.legacy import SnmpPoller, SnmpScheduler
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.units import mbps


class TestSnmpPoller:
    def test_discovers_all_switch_egress_ports(self, sim, line3):
        poller = SnmpPoller(sim, line3, poll_interval=1.0)
        # s01: 2 ports; s02: 3 ports.
        assert len(poller.known_ports()) == 5
        assert ("s01", "s02") in poller.known_ports()

    def test_idle_port_reads_zero(self, sim, line3):
        poller = SnmpPoller(sim, line3, poll_interval=1.0)
        poller.start()
        sim.run(until=3.0)
        assert poller.utilization("s01", "s02") == 0.0
        assert poller.polls_completed == 3

    def test_utilization_matches_offered_load(self, sim, line3):
        poller = SnmpPoller(sim, line3, poll_interval=1.0)
        poller.start()
        UdpSink(line3.host("h2"))
        UdpCbrFlow(
            line3.host("h1"), line3.address_of("h2"), mbps(10), burstiness="cbr"
        ).run_for(5.0)
        sim.run(until=5.0)
        assert poller.utilization("s01", "s02") == pytest.approx(0.5, abs=0.08)

    def test_counters_reflect_previous_window_only(self, sim, line3):
        """A burst that ends before the poll still shows up in that window's
        average, diluted — the staleness INT avoids."""
        poller = SnmpPoller(sim, line3, poll_interval=10.0)
        poller.start()
        UdpSink(line3.host("h2"))
        UdpCbrFlow(
            line3.host("h1"), line3.address_of("h2"), mbps(20), burstiness="cbr"
        ).run_for(2.0)  # 2 s of 100 % inside a 10 s window
        sim.run(until=10.5)
        sample = poller.sample("s01", "s02")
        assert sample is not None
        assert sample.utilization == pytest.approx(0.2, abs=0.05)  # diluted 5x

    def test_unpolled_port_returns_zero(self, sim, line3):
        poller = SnmpPoller(sim, line3, poll_interval=1.0)
        assert poller.utilization("s01", "s02") == 0.0
        assert poller.sample("s01", "s02") is None

    def test_validation(self, sim, line3):
        with pytest.raises(TelemetryError):
            SnmpPoller(sim, line3, poll_interval=0.0)


class TestSnmpScheduler:
    @pytest.fixture
    def system(self, sim, streams):
        topo = build_fig4_network(sim, streams)
        net = topo.network
        worker_addrs = [net.address_of(n) for n in topo.worker_names]
        poller = SnmpPoller(sim, net, poll_interval=1.0)
        poller.start()
        sched = SnmpScheduler(
            net.host(topo.scheduler_name), worker_addrs, net, poller
        )
        for n in topo.node_names:
            UdpSink(net.host(n))
        return topo, sched, poller

    def test_idle_ranking_matches_hop_count(self, sim, system):
        topo, sched, _ = system
        net = topo.network
        sim.run(until=2.0)
        ranking = sched.rank(net.address_of("node7"), "delay")
        assert ranking[0][0] == net.address_of("node8")  # in-pod nearest

    def test_idle_bandwidth_is_capacity(self, sim, system):
        topo, sched, _ = system
        net = topo.network
        sim.run(until=2.0)
        ranking = sched.rank(net.address_of("node7"), "bandwidth")
        assert ranking[0][1] == pytest.approx(topo.fabric_rate_bps)

    def test_sustained_congestion_detected(self, sim, system):
        """SNMP does see congestion — when it persists across poll windows."""
        topo, sched, _ = system
        net = topo.network
        for i, src in enumerate(("node3", "node5")):
            UdpCbrFlow(
                net.host(src), net.address_of("node8"), mbps(12),
                rng=RandomStreams(60 + i).get("f"),
            ).run_for(10.0)
        sim.run(until=5.0)
        ranking = sched.rank(net.address_of("node7"), "bandwidth")
        by_addr = dict(ranking)
        assert by_addr[net.address_of("node8")] < topo.fabric_rate_bps * 0.7

    def test_transient_burst_missed_with_slow_polling(self, sim, streams):
        """The paper's core claim: a burst shorter than the poll window is
        invisible (diluted) to SNMP-rate monitoring."""
        topo = build_fig4_network(sim, streams)
        net = topo.network
        worker_addrs = [net.address_of(n) for n in topo.worker_names]
        poller = SnmpPoller(sim, net, poll_interval=30.0)
        poller.start()
        sched = SnmpScheduler(
            net.host(topo.scheduler_name), worker_addrs, net, poller,
        )
        for n in topo.node_names:
            UdpSink(net.host(n))
        for i, src in enumerate(("node3", "node5")):
            UdpCbrFlow(
                net.host(src), net.address_of("node8"), mbps(12),
                rng=RandomStreams(70 + i).get("f"),
            ).run_for(3.0, delay=1.0)  # 3 s burst inside the 30 s window
        sim.run(until=6.0)  # burst over, no poll has completed yet
        ranking = sched.rank(net.address_of("node7"), "bandwidth")
        # Blissfully unaware: node8's path still estimates full capacity.
        assert dict(ranking)[net.address_of("node8")] == pytest.approx(
            topo.fabric_rate_bps
        )

    def test_unknown_metric_rejected(self, sim, system):
        topo, sched, _ = system
        with pytest.raises(SchedulingError):
            sched.rank(topo.network.address_of("node1"), "vibes")

    def test_protocol_roundtrip(self, sim, system):
        topo, sched, _ = system
        client = SchedulerClient(topo.network.host("node1"), topo.scheduler_addr)
        out = []
        client.query("delay", out.append)
        sim.run(until=sim.now + 5.0)
        assert out and len(out[0]) == 6


class TestHarnessIntegration:
    @pytest.mark.slow
    def test_snmp_policy_runs_end_to_end(self):
        from repro.edge.task import SizeClass
        from repro.experiments.harness import (
            POLICY_SNMP,
            ExperimentConfig,
            ExperimentScale,
            run_experiment,
        )

        tiny = ExperimentScale(
            size_scale=0.05, total_tasks=6, mean_interarrival=0.4, time_scale=0.08
        )
        res = run_experiment(ExperimentConfig(
            policy=POLICY_SNMP, size_class=SizeClass.VS, scale=tiny, seed=11,
        ))
        assert res.tasks_completed == 6
        assert res.tasks_failed == 0
