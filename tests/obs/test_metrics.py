"""Metrics registry: instruments, caching, clocks, and the null sink."""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    NULL_SINK,
    NullSink,
)


class TestNullSink:
    def test_falsy(self):
        assert not NULL_SINK
        assert not bool(NullSink())

    def test_absorbs_any_chain(self):
        # Unguarded instrumentation degrades to no-ops returning the sink.
        out = NULL_SINK.metrics.counter("x", node="n1").inc(3)
        assert isinstance(out, NullSink)
        assert NULL_SINK.events.packet_dropped(queue="q") is NULL_SINK


class TestCounter:
    def test_increment_and_timestamp(self):
        t = [0.0]
        reg = MetricsRegistry(clock=lambda: t[0])
        c = reg.counter("probes_sent_total", node="h1")
        c.inc()
        t[0] = 2.5
        c.inc(4)
        assert c.value == 5.0
        assert c.updated_at == 2.5

    def test_rejects_negative(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot_shape(self):
        c = MetricsRegistry().counter("x", a="1")
        c.inc()
        snap = c.snapshot()
        assert snap["kind"] == "metric"
        assert snap["type"] == "counter"
        assert snap["labels"] == {"a": "1"}
        assert snap["value"] == 1.0


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("queue_depth", port="s1[0]")
        assert g.value is None
        g.set(7.0)
        g.add(-2.0)
        assert g.value == 5.0


class TestHistogram:
    def test_bucketing(self):
        h = MetricsRegistry().histogram("delay", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["buckets"] == {"0.01": 1, "0.1": 1, "1.0": 1, "+Inf": 1}
        assert snap["min"] == 0.005 and snap["max"] == 5.0
        assert snap["mean"] == pytest.approx(sum((0.005, 0.05, 0.5, 5.0)) / 4)

    def test_boundary_lands_in_bucket(self):
        h = Histogram("x", (), lambda: 0.0, buckets=(1.0, 2.0))
        h.observe(1.0)  # bisect_left: a value equal to a bound fills it
        assert h.counts[0] == 1

    def test_empty_mean_is_none(self):
        h = MetricsRegistry().histogram("x")
        assert h.mean is None


class TestRegistry:
    def test_same_name_labels_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a=1) is reg.counter("x", a=1)
        assert reg.counter("x", a=1) is not reg.counter("x", a=2)
        assert len(reg) == 2

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x", other="label")

    def test_bind_clock_rewires_existing(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        reg.bind_clock(lambda: 42.0)
        c.inc()
        assert c.updated_at == 42.0

    def test_snapshot_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        snaps = reg.snapshot()
        assert [s["name"] for s in snaps] == ["a", "b"]
        assert len(reg.instruments()) == 2
