"""QuantileDigest: accuracy bounds, exact mergeability, serialization."""

import math
import random

import pytest

from repro.obs.quantiles import QuantileDigest


class TestBasics:
    def test_empty_digest_has_no_quantiles(self):
        d = QuantileDigest()
        assert d.quantile(0.5) is None
        assert len(d) == 0

    def test_single_value(self):
        d = QuantileDigest()
        d.add(1.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            # One sample: every quantile is clamped to the observed range.
            assert d.quantile(q) == pytest.approx(1.0, rel=0.05)

    def test_min_max_exact(self):
        d = QuantileDigest()
        d.extend([0.123, 4.567, 0.00089])
        assert d.min == 0.00089
        assert d.max == 4.567

    def test_quantile_relative_accuracy(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        d = QuantileDigest()
        d.extend(values)
        ordered = sorted(values)
        for q in (0.5, 0.95, 0.99):
            truth = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            got = d.quantile(q)
            # One log-bin of relative error: 8 decades / 256 bins ~ 7.5%.
            assert got == pytest.approx(truth, rel=0.10)

    def test_out_of_range_values_clamped_to_min_max(self):
        d = QuantileDigest(lo=1.0, hi=10.0, bins=8)
        d.extend([0.5, 0.5, 100.0])   # all under/overflow
        assert d.quantile(0.0) == 0.5
        assert d.quantile(1.0) == 100.0
        assert d.underflow == 2
        assert d.overflow == 1

    def test_nonpositive_values_go_to_underflow(self):
        d = QuantileDigest()
        d.add(0.0)
        d.add(-3.0)
        assert d.underflow == 2
        assert d.quantile(0.5) == -3.0   # clamped to exact min

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            QuantileDigest(lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            QuantileDigest(bins=0)
        d = QuantileDigest()
        with pytest.raises(ValueError):
            d.quantile(1.5)
        with pytest.raises(ValueError):
            d.add(1.0, count=0)

    def test_weighted_add(self):
        d = QuantileDigest()
        d.add(1.0, count=99)
        d.add(100.0, count=1)
        assert d.count == 100
        assert d.quantile(0.5) == pytest.approx(1.0, rel=0.05)


class TestMerge:
    def _digest(self, values):
        d = QuantileDigest()
        d.extend(values)
        return d

    def test_merge_equals_single_pass(self):
        rng = random.Random(13)
        values = [rng.expovariate(1.0) for _ in range(900)]
        whole = self._digest(values)
        parts = [
            self._digest(values[:300]),
            self._digest(values[300:600]),
            self._digest(values[600:]),
        ]
        merged = parts[0]
        merged.merge(parts[1]).merge(parts[2])
        # Bit-exact: merging integer bin counts loses nothing.
        assert merged.to_dict() == whole.to_dict()

    def test_merge_associative_and_commutative_exactly(self):
        rng = random.Random(5)
        chunks = [[rng.expovariate(2.0) for _ in range(100)] for _ in range(3)]
        a, b, c = (self._digest(chunk) for chunk in chunks)
        ab_c = a.merged(b).merged(c)
        a_bc = self._digest(chunks[0]).merged(
            self._digest(chunks[1]).merged(self._digest(chunks[2]))
        )
        c_b_a = self._digest(chunks[2]).merged(
            self._digest(chunks[1])
        ).merged(self._digest(chunks[0]))
        assert ab_c.to_dict() == a_bc.to_dict() == c_b_a.to_dict()

    def test_merge_empty_is_identity(self):
        d = self._digest([1.0, 2.0, 3.0])
        before = d.to_dict()
        d.merge(QuantileDigest())
        assert d.to_dict() == before

    def test_mismatched_layout_raises(self):
        with pytest.raises(ValueError):
            QuantileDigest().merge(QuantileDigest(bins=16))
        with pytest.raises(ValueError):
            QuantileDigest().merge(QuantileDigest(lo=1e-3, hi=1e4))

    def test_merged_does_not_mutate(self):
        a = self._digest([1.0])
        b = self._digest([2.0])
        before_a, before_b = a.to_dict(), b.to_dict()
        out = a.merged(b)
        assert a.to_dict() == before_a
        assert b.to_dict() == before_b
        assert out.count == 2


class TestSerialization:
    def test_round_trip(self):
        d = QuantileDigest()
        d.extend([0.001, 0.5, 7.0, 2e5, -1.0])
        back = QuantileDigest.from_dict(d.to_dict())
        assert back == d
        assert back.quantile(0.5) == d.quantile(0.5)

    def test_to_dict_is_json_ready(self):
        import json

        d = QuantileDigest()
        d.extend([0.1, 1.0, 10.0])
        text = json.dumps(d.to_dict(), sort_keys=True)
        assert QuantileDigest.from_dict(json.loads(text)) == d

    def test_empty_round_trip(self):
        d = QuantileDigest()
        assert QuantileDigest.from_dict(d.to_dict()) == d
