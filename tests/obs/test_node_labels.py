"""Node-label round trips: every node-id kind must survive label/parse.

``repro.obs.audit.node_label`` and ``repro.core.ranking._node_label`` both
render a :data:`~repro.telemetry.records.TelemetryNodeId` as ``kind:index``;
``repro.obs.telquality._parse_label`` (shared by the counterfactual
observatory's hop-age computation) inverts them.  The telemetry plane has
exactly two node-id constructors — ``switch_node`` and ``host_node`` — and
staleness attribution silently drops any hop whose label fails to parse, so
a formatting drift here would surface only as quietly-empty age bins.
"""

import pytest

from repro.core.ranking import _node_label
from repro.obs.audit import node_label
from repro.obs.telquality import _parse_label
from repro.telemetry.records import host_node, switch_node

ALL_NODE_KINDS = [
    switch_node(0),
    switch_node(3),
    switch_node(1234),
    host_node(0),
    host_node(101),
]


class TestRoundTrip:
    @pytest.mark.parametrize("node", ALL_NODE_KINDS, ids=str)
    def test_audit_label_parses_back(self, node):
        assert _parse_label(node_label(node)) == node

    @pytest.mark.parametrize("node", ALL_NODE_KINDS, ids=str)
    def test_ranking_label_parses_back(self, node):
        assert _parse_label(_node_label(node)) == node

    @pytest.mark.parametrize("node", ALL_NODE_KINDS, ids=str)
    def test_both_renderers_agree(self, node):
        assert node_label(node) == _node_label(node)

    def test_constructors_cover_the_expected_kinds(self):
        # New node kinds must be added to ALL_NODE_KINDS above (and the
        # parse-back checked) — this canary fails when one appears.
        assert {node[0] for node in ALL_NODE_KINDS} == {"sw", "host"}
        assert switch_node(3) == ("sw", 3)
        assert host_node(101) == ("host", 101)

    def test_tuple_passthrough(self):
        assert _parse_label(("sw", 3)) == ("sw", 3)

    @pytest.mark.parametrize(
        "bad", ["", "sw", "sw:", "sw:x", ":3", "sw:3:4", None, 7, ["sw", 3]]
    )
    def test_malformed_labels_return_none(self, bad):
        assert _parse_label(bad) is None
