"""End-to-end: periodic sampling + health rules on a real experiment run."""

import pytest

from repro.edge.task import SizeClass
from repro.experiments.harness import (
    POLICY_AWARE,
    ExperimentConfig,
    ExperimentScale,
    run_experiment,
)
from repro.obs import HealthRule, Observability

pytestmark = pytest.mark.slow

TINY = ExperimentScale(size_scale=0.05, total_tasks=6, mean_interarrival=0.4, time_scale=0.08)


def _run(policy=POLICY_AWARE, **obs_kw):
    obs = Observability(run={"policy": policy}, **obs_kw)
    config = ExperimentConfig(
        policy=policy, size_class=SizeClass.VS, scale=TINY, seed=11
    )
    res = run_experiment(config, obs=obs)
    return res, obs


class TestSampledRun:
    def test_expected_series_present(self):
        _, obs = _run(sample_interval=0.5)
        assert obs.timeseries is not None
        assert obs.timeseries.ticks > 0
        names = set(obs.timeseries.names())
        assert {
            "link_utilization", "queue_depth", "queue_depth_frac",
            "server_running", "server_queued", "telemetry_node_age",
            "probe_loss_rate",
        } <= names

    def test_health_monitor_built_from_probing_interval(self):
        _, obs = _run(sample_interval=0.5)
        assert obs.health is not None
        assert {r.name for r in obs.health.rules} == {
            "queue_saturation", "telemetry_stale", "estimate_drift", "probe_loss",
            "coverage_gap", "staleness_ceiling", "regret_ceiling",
        }

    def test_timeseries_records_appended_after_existing_kinds(self):
        _, obs = _run(sample_interval=0.5)
        records = obs.snapshot_records()
        kinds = [r["kind"] for r in records]
        assert "timeseries" in kinds
        # All timeseries records come after every other kind (prefix
        # byte-identity when sampling is disabled).
        first_ts = kinds.index("timeseries")
        assert all(k == "timeseries" for k in kinds[first_ts:])
        assert all(r["run"] == {"policy": POLICY_AWARE} for r in records)

    def test_unsampled_hub_records_unchanged_by_feature(self):
        _, plain = _run()
        assert plain.timeseries is None
        assert plain.health is None
        records = plain.snapshot_records()
        assert all(r["kind"] != "timeseries" for r in records)
        assert not any(
            r.get("event") == "alert" for r in records if r["kind"] == "event"
        )

    def test_sampling_does_not_perturb_task_outcomes(self):
        res_plain, _ = _run()
        res_sampled, _ = _run(sample_interval=0.5)
        plain = [
            (r.task_id, r.server_addr, r.completion_time)
            for r in res_plain.records_in_order
        ]
        sampled = [
            (r.task_id, r.server_addr, r.completion_time)
            for r in res_sampled.records_in_order
        ]
        assert plain == sampled

    def test_custom_health_rules_override_defaults(self):
        # A rule guaranteed to fire: any utilization >= 0 for one tick.
        rules = [
            HealthRule("always", series="probe_loss_rate",
                       threshold=0.0, consecutive=1)
        ]
        _, obs = _run(sample_interval=0.5, health_rules=rules)
        assert [r.name for r in obs.health.rules] == ["always"]
        alerts = obs.events.of_kind("alert")
        assert alerts and alerts[0].fields["rule"] == "always"

    def test_summary_includes_sampling_sections(self):
        _, obs = _run(sample_interval=0.5)
        summary = obs.summary()
        assert summary["timeseries"]["interval"] == 0.5
        assert summary["timeseries"]["ticks"] == obs.timeseries.ticks
        assert summary["health"]["rules"] == 7

    def test_link_utilization_values_sane(self):
        _, obs = _run(sample_interval=0.5)
        for series in obs.timeseries.all_series():
            if series.name != "link_utilization":
                continue
            for _t, value in series.points:
                assert 0.0 <= value <= 2.0, series.snapshot()
