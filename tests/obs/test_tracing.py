"""Span tracing: assembly, segment telescoping, exports, and the report."""

import json
import math

import pytest

from repro.edge.metrics import TaskRecord
from repro.edge.task import SizeClass
from repro.obs.tracing import (
    SEGMENT_NAMES,
    SpanTracer,
    render_trace_report,
    task_segments,
    write_chrome_trace,
)
from repro.simnet.trace import HopEvent


def _record(**overrides):
    base = dict(
        task_id=1,
        job_id=1,
        device="d01",
        workload="serverless",
        size_class=SizeClass.VS,
        data_bytes=500_000,
        exec_time=0.8,
        submitted_at=1.0,
        server_addr=42,
        ranking_received_at=1.1,
        transfer_started=1.1,
        transfer_completed=1.6,
        result_received_at=3.0,
        retransmissions=0,
        failed=False,
    )
    base.update(overrides)
    return TaskRecord(**base)


def _traced_task(tracer, record, *, arrived=1.5, exec_start=1.7, exec_end=2.5):
    """Stage the server-side lifecycle and assemble one task trace."""
    for event, t in (
        ("arrived", arrived),
        ("exec_start", exec_start),
        ("exec_end", exec_end),
        ("result_sent", exec_end),
    ):
        tracer._clock = lambda t=t: t
        tracer.task_server_event(record.task_id, event, server_addr=record.server_addr)
    tracer.assemble([record])


class TestSegments:
    def test_segments_telescope_to_completion_time(self):
        record = _record()
        segments = task_segments(
            record, arrived=1.5, exec_start=1.7, exec_end=2.5
        )
        assert set(segments) == set(SEGMENT_NAMES)
        assert sum(segments.values()) == pytest.approx(
            record.completion_time, abs=1e-12
        )

    def test_missing_boundary_returns_none(self):
        record = _record()
        assert task_segments(record, arrived=None, exec_start=1.7, exec_end=2.5) is None
        assert task_segments(
            _record(failed=True), arrived=1.5, exec_start=1.7, exec_end=2.5
        ) is None
        assert task_segments(
            _record(ranking_received_at=None), arrived=1.5, exec_start=1.7, exec_end=2.5
        ) is None

    def test_non_monotone_boundaries_rejected(self):
        # An exec_start before arrival (overlapping retry attempts) must not
        # produce a negative segment.
        record = _record()
        assert task_segments(record, arrived=1.8, exec_start=1.7, exec_end=2.5) is None


class TestTaskAssembly:
    def test_span_tree_shape(self):
        tracer = SpanTracer()
        record = _record()
        _traced_task(tracer, record)
        names = [s.name for s in tracer.spans]
        assert names == [
            "task", "scheduling", "transfer", "server_queue",
            "execute", "result_return",
        ]
        root = tracer.spans[0]
        assert root.parent_id is None
        assert all(s.parent_id == root.span_id for s in tracer.spans[1:])
        assert root.attributes["segments"] is not None
        assert root.attributes["end_to_end"] == pytest.approx(2.0)

    def test_decision_span_nested_under_scheduling(self):
        tracer = SpanTracer()
        record = _record()
        tracer.task_request(record.task_id, request_id=7)
        tracer._clock = lambda: 1.0
        tracer.decision_query(7)
        tracer._clock = lambda: 1.05
        tracer.decision(7, scheduler="NetworkAwareScheduler", estimated_delay=math.inf)
        _traced_task(tracer, record)
        by_name = {s.name: s for s in tracer.spans}
        decision = by_name["scheduler_decision"]
        assert decision.parent_id == by_name["scheduling"].span_id
        # inf never reaches the wire (canonical_json rejects it).
        assert decision.attributes["estimated_delay"] is None

    def test_failed_task_root_closes_at_last_event(self):
        tracer = SpanTracer()
        record = _record(failed=True, result_received_at=None)
        _traced_task(tracer, record)
        root = tracer.spans[0]
        assert root.attributes["failed"] is True
        assert root.attributes["segments"] is None
        assert root.end == 2.5  # last server event

    def test_assemble_is_idempotent(self):
        tracer = SpanTracer()
        record = _record()
        _traced_task(tracer, record)
        n = len(tracer.spans)
        tracer.assemble([record])
        assert len(tracer.spans) == n


class TestProbeAssembly:
    def _hop(self, t, node, kind, depth=None):
        return HopEvent(
            time=t, node=node, kind=kind, packet_id=9,
            flow_id=-1, seq=1, size_bytes=64, enq_depth=depth,
        )

    def test_probe_trace_with_hops(self):
        tracer = SpanTracer()
        tracer._clock = lambda: 0.0
        tracer.probe_sent(src=1, dst=5, seq=1, packet_id=9)
        tracer._clock = lambda: 0.02
        tracer.probe_ingested(src=1, dst=5, seq=1, hops=2)

        class FakeTracer:
            events = [
                self._hop(0.005, "s01", "ingress"),
                self._hop(0.006, "s01", "egress", depth=3),
                self._hop(0.015, "s02", "ingress"),
                HopEvent(time=0.016, node="s02", kind="truncated",
                         packet_id=-1, flow_id=-1, seq=-1, size_bytes=0),
            ]

        tracer.packet_tracer = FakeTracer()
        tracer.assemble([])
        names = [s.name for s in tracer.spans]
        assert names == ["probe", "hop", "hop", "collect"]
        root, hop1, hop2, collect = tracer.spans
        assert root.attributes["lost"] is False
        assert hop1.attributes == {"node": "s01", "dropped": False, "enq_depth": 3}
        assert hop2.attributes["node"] == "s02"
        assert collect.attributes["hops_applied"] == 2
        # The truncation sentinel (packet_id -1) never joins a probe trace.
        assert all(s.start >= 0.0 for s in tracer.spans)

    def test_lost_probe_marked(self):
        tracer = SpanTracer()
        tracer._clock = lambda: 0.0
        tracer.probe_sent(src=1, dst=5, seq=1, packet_id=9)
        tracer.assemble([])
        root = tracer.spans[0]
        assert root.attributes["lost"] is True
        assert root.end == root.start  # no hops seen either
        assert [s.name for s in tracer.spans] == ["probe"]

    def test_sampling(self):
        tracer = SpanTracer(probe_sample=25)
        assert tracer.wants_probe(1)
        assert not tracer.wants_probe(2)
        assert tracer.wants_probe(26)
        pred = tracer.probe_predicate()

        class P:
            is_probe = True
            seq = 26

        assert pred(P())
        P.seq = 27
        assert not pred(P())
        P.is_probe = False
        P.seq = 26
        assert not pred(P())


class TestOverflow:
    def test_max_spans_cap_counts_drops(self):
        tracer = SpanTracer(max_spans=2)
        assert tracer.record_span("t", "a", 0.0, 1.0) == 1
        assert tracer.record_span("t", "b", 0.0, 1.0) == 2
        assert tracer.record_span("t", "c", 0.0, 1.0) is None
        assert tracer.record_span("t", "d", 0.0, 1.0) is None
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SpanTracer(probe_sample=0)
        with pytest.raises(ValueError):
            SpanTracer(max_spans=0)


def _span_records():
    tracer = SpanTracer()
    record = _record()
    tracer.task_request(record.task_id, request_id=7)
    tracer._clock = lambda: 1.0
    tracer.decision_query(7)
    tracer._clock = lambda: 1.05
    tracer.decision(
        7, scheduler="NetworkAwareScheduler", estimated_delay=0.09,
        telemetry_age_max=0.03,
    )
    _traced_task(tracer, record)
    out = []
    for snap in tracer.snapshot():
        snap["run"] = {"policy": "aware", "seed": "3"}
        out.append(snap)
    return out


class TestReport:
    def test_empty(self):
        assert "no span records found" in render_trace_report([])
        assert "no span records found" in render_trace_report(
            [{"kind": "metric", "name": "x"}]
        )

    def test_decomposition_and_estimate(self):
        text = render_trace_report(_span_records())
        assert "1 task, 0 probe" in text
        assert "policy=aware" in text
        assert "critical path" in text
        for name in SEGMENT_NAMES:
            assert name in text
        assert "max residual" in text
        assert "Algorithm-1 estimate" in text
        assert "vs measured transfer" in text
        assert "telemetry snapshot age at decision" in text


class TestChromeExport:
    def test_structure(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(_span_records(), str(path))
        assert n == 7  # task root + 5 segments + decision
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == n
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        root = next(e for e in xs if e["name"] == "task")
        assert root["ts"] == pytest.approx(1.0 * 1e6)
        assert root["dur"] == pytest.approx(2.0 * 1e6)
        assert root["cat"] == "task"
        # Children reference the root via args.parent_id.
        child = next(e for e in xs if e["name"] == "scheduling")
        assert child["args"]["parent_id"] == root["args"]["span_id"]

    def test_non_span_records_skipped(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace([{"kind": "metric", "name": "x"}], str(path))
        assert n == 0
        assert json.loads(path.read_text())["traceEvents"] == []
