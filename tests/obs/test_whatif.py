"""Unit tests for the counterfactual decision observatory."""

import pytest

from repro.obs import Observability
from repro.obs.whatif import (
    BandwidthFirstPolicy,
    EstimateGreedyPolicy,
    OraclePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    default_policies,
    render_whatif_report,
    replay_decisions,
)


def _decision(
    time=1.0, requester=100, chosen=1,
    candidates=((1, 0.30, 0.32), (2, 0.20, 0.25), (3, 0.40, 0.50)),
):
    """One decision-audit dict: (addr, estimated, truth) triples."""
    return {
        "kind": "decision-audit",
        "time": time,
        "requester_addr": requester,
        "metric": "delay",
        "chosen_addr": chosen,
        "candidates": [
            {"server_addr": a, "value": e, "estimated_delay": e, "truth_delay": t}
            for a, e, t in candidates
        ],
    }


class TestPolicies:
    CTX = {"index": 0, "requester_addr": 100, "time": 1.0}

    def test_estimate_greedy_follows_estimates(self):
        cands = _decision()["candidates"]
        assert EstimateGreedyPolicy().choose(cands, self.CTX) == 2

    def test_estimate_greedy_falls_back_to_value(self):
        # Baseline audits carry no estimated_delay; the rank value stands in.
        cands = [
            {"server_addr": 1, "value": 3, "truth_delay": 0.3},
            {"server_addr": 2, "value": 1, "truth_delay": 0.5},
        ]
        assert EstimateGreedyPolicy().choose(cands, self.CTX) == 2

    def test_oracle_picks_true_best(self):
        cands = _decision()["candidates"]
        assert OraclePolicy().choose(cands, self.CTX) == 2

    def test_random_is_deterministic_per_index(self):
        cands = _decision()["candidates"]
        first = RandomPolicy().choose(cands, {"index": 7})
        again = RandomPolicy().choose(cands, {"index": 7})
        assert first == again
        picks = {RandomPolicy().choose(cands, {"index": i}) for i in range(40)}
        assert len(picks) > 1  # actually varies across decisions

    def test_round_robin_cycles_per_requester(self):
        policy = RoundRobinPolicy()
        cands = _decision()["candidates"]
        seq = [policy.choose(cands, {"requester_addr": 100}) for _ in range(4)]
        assert seq == [1, 2, 3, 1]
        # A different requester has its own cursor.
        assert policy.choose(cands, {"requester_addr": 200}) == 1

    def test_bandwidth_first_minimizes_bottleneck_qdepth(self):
        cands = [
            {"server_addr": 1, "truth_delay": 0.1,
             "hops": [{"qdepth": 4}, {"qdepth": 9}]},
            {"server_addr": 2, "truth_delay": 0.2,
             "hops": [{"qdepth": 5}, {"qdepth": 5}]},
        ]
        assert BandwidthFirstPolicy().choose(cands, self.CTX) == 2

    def test_default_policies_fresh_instances(self):
        a, b = default_policies(), default_policies()
        names = [p.name for p in a]
        assert names == [
            "estimate-greedy", "random", "round-robin", "bandwidth-first",
            "oracle",
        ]
        assert all(x is not y for x, y in zip(a, b))


class TestReplay:
    def test_regret_and_policy_scores(self):
        # chosen=1 (truth .32) vs best=2 (truth .25): regret .07 per decision
        body = replay_decisions([_decision(), _decision(time=2.0)])
        assert body["decisions"] == 2
        assert body["replayed"] == 2
        assert body["skipped"] == 0
        assert body["actual"]["regret_total"] == pytest.approx(0.14)
        by_name = {p["policy"]: p for p in body["policies"]}
        # estimate-greedy picks 2 (est .20): wins both, zero regret.
        assert by_name["estimate-greedy"]["regret_total"] == 0.0
        assert by_name["estimate-greedy"]["wins"] == 2
        assert by_name["estimate-greedy"]["differs"] == 2
        # oracle is zero regret by construction.
        assert by_name["oracle"]["regret_total"] == 0.0

    def test_oracle_zero_regret_always(self):
        decisions = [
            _decision(time=t, chosen=c, candidates=cands)
            for t, c, cands in (
                (1.0, 3, ((1, 0.1, 0.9), (3, 0.5, 0.2))),
                (2.0, 1, ((1, 0.1, 0.15), (2, 0.2, 0.15))),
            )
        ]
        body = replay_decisions(decisions)
        oracle = next(p for p in body["policies"] if p["policy"] == "oracle")
        assert oracle["regret_total"] == 0.0

    def test_skip_rules(self):
        no_chosen = _decision()
        no_chosen["chosen_addr"] = None
        no_truth = _decision()
        for cand in no_truth["candidates"]:
            cand["truth_delay"] = None
        raw = _decision()
        raw["metric"] = "raw"
        body = replay_decisions([_decision(), no_chosen, no_truth, raw])
        assert body["decisions"] == 3  # raw not a delay decision
        assert body["replayed"] == 1
        assert body["skipped"] == 2

    def test_staleness_bins_reconcile(self):
        decisions = [_decision(time=float(i)) for i in range(5)]
        ages = [0.04, 0.04, 0.25, 3.0, None]  # interval 0.1
        body = replay_decisions(decisions, probing_interval=0.1, ages=ages)
        bins = {b["label"]: b for b in body["staleness"]["bins"]}
        assert bins["[0x, 0.5x)"]["count"] == 2
        assert bins["[2x, 5x)"]["count"] == 1
        assert bins[">= 20x"]["count"] == 1
        assert bins["unknown"]["count"] == 1
        assert sum(b["count"] for b in body["staleness"]["bins"]) == 5
        total = sum(b["regret_total"] for b in body["staleness"]["bins"])
        assert total == pytest.approx(body["actual"]["regret_total"])

    def test_window_attribution_from_exported_events(self):
        events = [
            {"kind": "event", "event": "probe_lost", "time": 1.05,
             "src": 1, "dst": 2, "seq": 9, "lost": 1},
            {"kind": "event", "event": "fault_injected", "time": 2.5,
             "fault": "link_down", "target": "l1"},
        ]
        decisions = [_decision(time=t) for t in (1.0, 2.0, 3.0)]
        body = replay_decisions(decisions, probing_interval=0.1, events=events)
        # Loss window [0.85, 1.05] covers t=1.0 only.
        assert body["loss_windows"]["in"]["count"] == 1
        assert body["loss_windows"]["out"]["count"] == 2
        # Unrecovered fault stays open: covers t=3.0 only.
        assert body["fault_windows"]["in"]["count"] == 1
        assert body["fault_windows"]["out"]["count"] == 2

    def test_replay_is_bit_exact_across_invocations(self):
        from repro.runner.spec import canonical_json

        decisions = [
            _decision(time=float(i), requester=100 + i % 3) for i in range(30)
        ]
        first = replay_decisions(decisions, probing_interval=0.1)
        again = replay_decisions(decisions, probing_interval=0.1)
        assert canonical_json(first) == canonical_json(again)

    def test_duplicate_policy_names_rejected(self):
        with pytest.raises(ValueError):
            replay_decisions([_decision()], policies=[OraclePolicy(), OraclePolicy()])


class TestLiveCollection:
    def test_hub_disabled_by_default(self):
        obs = Observability()
        assert obs.whatif is None
        assert all(r["kind"] != "whatif" for r in obs.snapshot_records())

    def test_snapshot_appends_single_record_last(self):
        obs = Observability(whatif=True)
        obs.audit.record(
            requester_addr=100, metric="delay",
            candidates=_decision()["candidates"], chosen_addr=1,
        )
        obs.whatif.decision(0.5, None, _decision()["candidates"], 1)
        records = obs.snapshot_records()
        assert records[-1]["kind"] == "whatif"
        assert sum(1 for r in records if r["kind"] == "whatif") == 1
        assert records[-1]["replayed"] == 1
        assert records[-1]["actual"]["regret_total"] == pytest.approx(0.07)

    def test_take_max_regret_cursor(self):
        obs = Observability(whatif=True)
        wi = obs.whatif
        assert wi.take_max_regret() is None
        wi.decision(0.5, None, _decision()["candidates"], 1)   # regret .07
        wi.decision(0.6, None, _decision()["candidates"], 2)   # regret 0
        assert wi.take_max_regret() == pytest.approx(0.07)
        assert wi.take_max_regret() is None  # window drained

    def test_summary_section(self):
        obs = Observability(whatif=True)
        obs.whatif.configure(probing_interval=0.1)
        obs.whatif.decision(0.5, None, _decision()["candidates"], 1)
        assert obs.summary()["whatif"] == {
            "interval": 0.1, "decisions": 1, "priced": 1,
        }


class TestAuditOverflowWarning:
    def test_one_shot_warning_with_final_drop_count(self):
        obs = Observability(max_decisions=2)
        for _ in range(5):
            obs.audit.record(
                requester_addr=100, metric="delay",
                candidates=[], chosen_addr=None,
            )
        records = obs.snapshot_records()
        warnings = [
            r for r in records
            if r["kind"] == "event" and r.get("event") == "warning"
            and r.get("reason") == "decision_audit_overflow"
        ]
        assert len(warnings) == 1
        assert warnings[0]["dropped"] == 3
        assert warnings[0]["max_decisions"] == 2
        # One-shot: a second snapshot does not emit another warning.
        again = [
            r for r in obs.snapshot_records()
            if r["kind"] == "event"
            and r.get("reason") == "decision_audit_overflow"
        ]
        assert len(again) == 1

    def test_no_warning_when_nothing_dropped(self):
        obs = Observability()
        obs.audit.record(
            requester_addr=100, metric="delay", candidates=[], chosen_addr=None
        )
        assert not [
            r for r in obs.snapshot_records()
            if r.get("reason") == "decision_audit_overflow"
        ]

    def test_surfaced_in_obs_report(self):
        from repro.obs.export import render_obs_report

        obs = Observability(run={"policy": "aware"}, max_decisions=1)
        for _ in range(3):
            obs.audit.record(
                requester_addr=100, metric="delay",
                candidates=[], chosen_addr=None,
            )
        text = render_obs_report(obs.snapshot_records())
        assert "decision audit overflow" in text
        assert "2 decisions dropped" in text


class TestReport:
    def _records(self):
        obs = Observability(run={"policy": "aware"}, whatif=True)
        obs.whatif.configure(probing_interval=0.1)
        for i in range(4):
            cands = _decision(time=float(i))["candidates"]
            obs.audit.record(
                requester_addr=100, metric="delay",
                candidates=cands, chosen_addr=1,
            )
            obs.whatif.decision(float(i), None, cands, 1)
        return obs.snapshot_records()

    def test_cross_checks_all_ok(self):
        text = render_whatif_report(self._records())
        assert "oracle hindsight check" in text
        assert "decision-audit delay decisions: OK" in text
        assert "vs actual total" in text
        assert "MISMATCH" not in text

    def test_mismatch_flagged_on_tampered_record(self):
        records = self._records()
        (wi,) = [r for r in records if r["kind"] == "whatif"]
        wi["policies"][0]["regret_total"] += 1.0
        assert "MISMATCH" in render_whatif_report(records)

    def test_telquality_reconciliation_when_present(self):
        records = self._records()
        run = records[0].get("run")
        records.append({
            "kind": "telquality", "run": run,
            "attribution": {"decisions": 4},
        })
        text = render_whatif_report(records)
        assert "telquality attribution decisions: OK" in text
        assert "MISMATCH" not in text

    def test_telquality_reconciliation_skipped_for_baselines(self):
        """A baseline scheduler consults no telemetry store, so telquality
        attributes zero decisions while whatif replays all of them — the
        report must call that structural, not MISMATCH."""
        records = self._records()
        run = records[0].get("run")
        records.append({
            "kind": "telquality", "run": run,
            "attribution": {"decisions": 0},
        })
        text = render_whatif_report(records)
        assert "telquality reconciliation: skipped" in text
        assert "MISMATCH" not in text

    def test_telquality_zero_with_consulted_hops_is_mismatch(self):
        """...but zero attributed decisions on a run whose staleness bins
        show consulted telemetry is a genuine disagreement."""
        records = self._records()
        run = records[0].get("run")
        (wi,) = [r for r in records if r["kind"] == "whatif"]
        wi["staleness"]["bins"][0]["count"] += 1
        records.append({
            "kind": "telquality", "run": run,
            "attribution": {"decisions": 0},
        })
        text = render_whatif_report(records)
        assert "telquality attribution decisions: MISMATCH" in text

    def test_offline_fallback_without_whatif_record(self):
        records = [r for r in self._records() if r["kind"] != "whatif"]
        text = render_whatif_report(records)
        assert "replaying decision audits offline" in text
        assert "estimate-greedy" in text

    def test_placeholder_without_usable_records(self):
        text = render_whatif_report([{"kind": "metric"}])
        assert "--whatif" in text

    def test_report_round_trips_through_json(self):
        import json

        records = json.loads(json.dumps(self._records()))
        assert render_whatif_report(records) == render_whatif_report(
            self._records()
        )
