"""Telemetry-quality observatory: coverage ledger, freshness, attribution."""

import json
import math

import pytest

from repro.obs.events import EventLog
from repro.obs.telquality import (
    AGE_BIN_EDGES,
    TelemetryQuality,
    render_telemetry_report,
)
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network


@pytest.fixture
def star3(sim):
    """Three hosts on one switch: ports (s1,h1), (s1,h2), (s1,h3)."""
    net = Network(sim, streams=RandomStreams(0))
    for name in ("h1", "h2", "h3"):
        net.add_host(name)
    net.add_switch("s1")
    for name in ("h1", "h2", "h3"):
        net.connect(name, "s1", rate_bps=20e6, delay=1e-3)
    net.finalize()
    return net


class _StubReport:
    """Just the surface TelemetryQuality reads from a decoded probe."""

    def __init__(self, net, src, dst, observations, latencies, collected_at):
        self.probe_src = net.hosts[src].addr
        self.probe_dst = net.hosts[dst].addr
        self.collected_at = collected_at
        self._observations = observations
        self._latencies = latencies

    def port_observations(self):
        return list(self._observations)

    def link_latencies(self):
        return list(self._latencies)


def _report(net, src, dst, at):
    """A probe src -> s1 -> dst: one qdepth stamping and one latency."""
    sw = ("sw", net.switches["s1"].switch_id)
    src_node = ("host", net.hosts[src].addr)
    dst_node = ("host", net.hosts[dst].addr)
    return _StubReport(
        net, src, dst,
        observations=[(sw, dst_node, 0, 3)],
        latencies=[(src_node, sw, 0.002), (sw, dst_node, 0.001)],
        collected_at=at,
    )


class _StubState:
    def __init__(self, latency_updated_at=-1.0, qdepth_updated_at=-1.0):
        self.latency_updated_at = latency_updated_at
        self.qdepth_updated_at = qdepth_updated_at


class _StubStore:
    def __init__(self, states):
        self._states = states

    def link_state(self, u, v):
        return self._states.get((u, v))


def _candidate(est, truth, path=()):
    return {"estimated_delay": est, "truth_delay": truth, "path": list(path)}


class TestCoverageLedger:
    def test_observed_ports_and_pairs(self, sim, star3):
        tq = TelemetryQuality()
        tq.attach_network(star3)
        tq.configure(layout="star", pairs=[("h1", "h2")], probing_interval=0.1)
        tq.report_ingested(_report(star3, "h1", "h2", 1.0))
        tq.report_ingested(_report(star3, "h1", "h2", 1.1))
        coverage = tq._coverage_section()
        assert coverage["total_ports"] == 3
        assert coverage["observed_ports"] == 1
        assert coverage["blind"] == [["s1", "h1"], ["s1", "h3"]]
        (port,) = coverage["ports"]
        assert (port["u"], port["v"]) == ("s1", "h2")
        assert port["observations"] == 2
        assert port["effective_interval"] == pytest.approx(0.1)
        assert port["pairs"] == [["h1", "h2"]]

    def test_blind_set_checked_against_layout_prediction(self, sim, star3):
        tq = TelemetryQuality()
        tq.attach_network(star3)
        # The (h1, h2) probe covers exactly (s1, h2): prediction matches.
        tq.configure(layout="star", pairs=[("h1", "h2")], probing_interval=0.1)
        tq.report_ingested(_report(star3, "h1", "h2", 1.0))
        assert tq._coverage_section()["matches_prediction"] is True
        # A probe the layout never promised lights up (s1, h3): divergence.
        tq.report_ingested(_report(star3, "h1", "h3", 2.0))
        coverage = tq._coverage_section()
        assert coverage["matches_prediction"] is False
        assert coverage["expected_blind"] == [["s1", "h1"], ["s1", "h3"]]

    def test_coverage_fraction_none_before_configure(self, sim, star3):
        tq = TelemetryQuality()
        tq.attach_network(star3)
        assert tq.coverage_fraction() is None
        tq.configure(layout="mesh", pairs=[], probing_interval=0.1)
        assert tq.coverage_fraction() == 0.0
        tq.report_ingested(_report(star3, "h1", "h2", 1.0))
        assert tq.coverage_fraction() == pytest.approx(1.0 / 3.0)


class TestFreshness:
    def test_register_refresh_gaps(self, sim, star3):
        tq = TelemetryQuality()
        tq.attach_network(star3)
        tq.configure(layout="star", pairs=[("h1", "h2")], probing_interval=0.1)
        for at in (1.0, 1.1, 1.3):
            tq.report_ingested(_report(star3, "h1", "h2", at))
        section = tq._freshness_section()
        by_key = {(r["node"], r["register"]): r for r in section["registers"]}
        assert by_key[("s1", "qdepth")]["refreshes"] == 3
        assert by_key[("s1", "latency")]["refreshes"] == 3
        # The final switch -> host latency reading has no switch register.
        assert set(by_key) == {("s1", "qdepth"), ("s1", "latency")}

    def test_decision_age_digest_and_sampler_cursor(self):
        tq = TelemetryQuality()
        tq.probing_interval = 0.1
        store = _StubStore({
            (("host", 1), ("sw", 1)): _StubState(0.8, 0.9),
            (("sw", 1), ("host", 2)): _StubState(0.5, -1.0),
        })
        tq.decision(1.0, store, [
            _candidate(0.01, 0.02, ["host:1", "sw:1", "host:2"]),
        ])
        assert tq.decision_age.count == 2   # one age per consulted hop
        assert tq.take_max_decision_age() == pytest.approx(0.5)
        assert tq.take_max_decision_age() is None   # cursor advanced


class TestAttribution:
    def test_skip_rules_mirror_delay_error_stats(self):
        tq = TelemetryQuality()
        store = _StubStore({})
        tq.decision(1.0, store, [
            _candidate(None, 0.02),            # estimate missing
            _candidate(math.inf, 0.02),        # unreachable estimate
            _candidate(0.01, None),            # truth missing
            _candidate(0.01, 0.02),            # accepted
        ])
        assert tq.samples_skipped == 3
        assert len(tq._samples) == 1

    def test_bins_partition_samples(self):
        tq = TelemetryQuality()
        tq.probing_interval = 1.0
        # Hop ages 0.2 (bin 0), 3.0 (bin [2x,5x)), 50.0 (>= 20x tail).
        store = _StubStore({
            (("host", 1), ("sw", 1)): _StubState(0.0, 0.0),
        })
        for now, err in ((0.2, 0.01), (3.0, -0.02), (50.0, 0.05)):
            tq.decision(now, store, [
                _candidate(err, 0.0, ["host:1", "sw:1"]),
            ])
        # A candidate with no resolvable hops lands in the unknown bin.
        tq.decision(60.0, store, [_candidate(0.01, 0.0, ["host:9", "sw:9"])])
        section = tq._attribution_section(None)
        by_label = {b["label"]: b for b in section["bins"]}
        assert by_label["[0x, 0.5x)"]["count"] == 1
        assert by_label["[2x, 5x)"]["count"] == 1
        assert by_label[">= 20x"]["count"] == 1
        assert by_label["unknown"]["count"] == 1
        assert sum(b["count"] for b in section["bins"]) == section["samples"]
        assert by_label["[2x, 5x)"]["mean_error"] == pytest.approx(-0.02)
        assert by_label["[2x, 5x)"]["mean_abs_error"] == pytest.approx(0.02)
        assert len(section["bins"]) == len(AGE_BIN_EDGES) + 1

    def test_loss_and_fault_window_split(self):
        tq = TelemetryQuality()
        tq.probing_interval = 0.1
        store = _StubStore({})
        tq.decision(1.0, store, [_candidate(0.01, 0.0)])   # inside windows
        tq.decision(5.0, store, [_candidate(0.04, 0.0)])   # outside
        events = EventLog()
        events.probe_lost(src=1, dst=2, seq=9, lost=2, time=1.1)
        events.fault_injected(fault="link_down", target="s1", time=0.9)
        events.fault_recovered(fault="link_down", target="s1", time=1.5)
        section = tq._attribution_section(events)
        loss = section["loss_windows"]
        assert loss["windows"] == 1
        assert loss["in"]["count"] == 1 and loss["out"]["count"] == 1
        assert loss["in"]["mean_abs_error"] == pytest.approx(0.01)
        fault = section["fault_windows"]
        assert fault["windows"] == 1
        assert fault["in"]["count"] == 1 and fault["out"]["count"] == 1

    def test_unrecovered_fault_window_stays_open(self):
        tq = TelemetryQuality()
        store = _StubStore({})
        tq.decision(100.0, store, [_candidate(0.01, 0.0)])
        events = EventLog()
        events.fault_injected(fault="server_down", target="node3", time=2.0)
        section = tq._attribution_section(events)
        assert section["fault_windows"]["in"]["count"] == 1


class TestSnapshot:
    def test_snapshot_is_deterministic(self, sim, star3):
        def build():
            tq = TelemetryQuality()
            tq.attach_network(star3)
            tq.configure(
                layout="star", pairs=[("h2", "h1"), ("h1", "h2")],
                probing_interval=0.1,
            )
            tq.report_ingested(_report(star3, "h1", "h2", 1.0))
            tq.decision(1.5, _StubStore({}), [_candidate(0.01, 0.02)])
            return tq.snapshot_records()

        first, second = build(), build()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        (record,) = first
        assert record["kind"] == "telquality"
        assert record["pairs"] == [["h1", "h2"], ["h2", "h1"]]   # sorted


class TestReport:
    def test_placeholder_on_pre_observatory_export(self):
        text = render_telemetry_report([{"kind": "metric", "name": "x"}])
        assert "no telemetry-quality records" in text
        assert "--telquality" in text

    def test_report_cross_checks_audit_totals(self, sim, star3):
        tq = TelemetryQuality()
        tq.attach_network(star3)
        tq.configure(layout="star", pairs=[("h1", "h2")], probing_interval=0.1)
        tq.report_ingested(_report(star3, "h1", "h2", 1.0))
        tq.decision(1.5, _StubStore({}), [_candidate(0.01, 0.02)])
        (record,) = tq.snapshot_records()
        audit = {
            "kind": "decision-audit", "metric": "delay",
            "candidates": [{"estimated_delay": 0.01, "truth_delay": 0.02}],
        }
        text = render_telemetry_report([audit, record])
        assert "bin counts sum to 1 vs 1 decision-audit samples: OK" in text
        assert "coverage: 1/3 directed ports observed" in text
        # Drop the audit record: the cross-check reports the mismatch.
        extra = dict(audit)
        extra["candidates"] = audit["candidates"] * 2
        assert "MISMATCH" in render_telemetry_report([extra, record])
