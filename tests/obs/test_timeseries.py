"""Series ring buffer + TimeSeriesStore: decimation invariants, sampling."""

import pytest

from repro.obs.timeseries import Series, TimeSeriesStore


def _fill(series, n, t0=0.0, dt=1.0):
    for i in range(n):
        series.offer(t0 + i * dt, float(i))


class TestSeriesDecimation:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Series("x", (), capacity=3)
        with pytest.raises(ValueError):
            Series("x", (), capacity=0)

    def test_no_decimation_below_capacity(self):
        s = Series("x", (), capacity=8)
        _fill(s, 7)
        assert s.stride == 1
        assert [v for _, v in s.points] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_stride_doubles_on_overflow(self):
        s = Series("x", (), capacity=8)
        _fill(s, 8)
        assert s.stride == 2
        # Survivors are exactly the even offers.
        assert [v for _, v in s.points] == [0.0, 2.0, 4.0, 6.0]

    def test_retained_points_are_stride_multiples(self):
        s = Series("x", (), capacity=8)
        _fill(s, 100)
        assert s.offered == 100
        assert len(s.points) < s.capacity
        # Invariant: every retained point's offer index is a multiple of the
        # current stride (values were the offer index).
        assert all(v % s.stride == 0 for _, v in s.points)

    def test_bounded_forever(self):
        s = Series("x", (), capacity=4)
        _fill(s, 10_000)
        assert len(s.points) < 4
        assert s.offered == 10_000

    def test_decimation_deterministic(self):
        a = Series("x", (), capacity=16)
        b = Series("x", (), capacity=16)
        _fill(a, 1000)
        _fill(b, 1000)
        assert a.snapshot() == b.snapshot()

    def test_snapshot_shape(self):
        s = Series("util", (("link", "l1"),), capacity=8)
        s.offer(0.5, 0.25)
        snap = s.snapshot()
        assert snap == {
            "kind": "timeseries",
            "name": "util",
            "labels": {"link": "l1"},
            "stride": 1,
            "offered": 1,
            "points": [[0.5, 0.25]],
        }


class TestStore:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(0.0)
        with pytest.raises(ValueError):
            TimeSeriesStore(-1.0)

    def test_samplers_run_in_registration_order(self):
        store = TimeSeriesStore(1.0)
        calls = []
        store.register(lambda s, now: calls.append(("a", now)))
        store.register(lambda s, now: calls.append(("b", now)))
        store.tick(2.0)
        assert calls == [("a", 2.0), ("b", 2.0)]
        assert store.ticks == 1

    def test_record_creates_series_and_last_values(self):
        store = TimeSeriesStore(0.5)
        store.register(lambda s, now: s.record("depth", now, 3, queue="q0"))
        store.tick(1.0)
        series = store.series("depth", queue="q0")
        assert series is not None
        assert series.points == [(1.0, 3.0)]
        assert store.last_values == {("depth", (("queue", "q0"),)): 3.0}

    def test_last_values_reset_each_tick(self):
        store = TimeSeriesStore(0.5)
        seen = {"first": True}

        def sampler(s, now):
            if seen.pop("first", None):
                s.record("x", now, 1.0)

        store.register(sampler)
        store.tick(1.0)
        assert store.last_values
        store.tick(2.0)
        assert store.last_values == {}

    def test_snapshot_sorted_with_interval(self):
        store = TimeSeriesStore(0.25)
        store.record("b", 0.0, 1.0)
        store.record("a", 0.0, 2.0, link="z")
        store.record("a", 0.0, 3.0, link="a")
        snap = store.snapshot()
        assert [(r["name"], r["labels"]) for r in snap] == [
            ("a", {"link": "a"}), ("a", {"link": "z"}), ("b", {}),
        ]
        assert all(r["interval"] == 0.25 for r in snap)

    def test_names(self):
        store = TimeSeriesStore(1.0)
        store.record("b", 0.0, 1.0)
        store.record("a", 0.0, 1.0, link="x")
        store.record("a", 0.0, 1.0, link="y")
        assert store.names() == ["a", "b"]
        assert len(store) == 3
