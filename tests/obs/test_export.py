"""Exporters: JSONL round-trip, CSV, and the obs-report renderer."""

import json

from repro.obs import Observability
from repro.obs.export import (
    flatten_labels,
    read_jsonl,
    render_obs_report,
    write_jsonl,
    write_metrics_csv,
)


def _populated_hub(run=None):
    obs = Observability(run=run)
    obs.metrics.counter("probes_sent_total", src=1).inc(5)
    obs.metrics.gauge("run_sim_time_seconds").set(30.0)
    obs.events.packet_dropped(queue="s1[0]", flow_id=2, seq=7, size_bytes=1500,
                              is_probe=False)
    obs.audit.record(
        requester_addr=1,
        metric="delay",
        candidates=[
            {"server_addr": 2, "value": 0.03, "estimated_delay": 0.03,
             "truth_delay": 0.01},
            {"server_addr": 3, "value": 0.05, "estimated_delay": 0.05,
             "truth_delay": 0.06},
        ],
        chosen_addr=2,
    )
    return obs


class TestJsonl:
    def test_round_trip(self, tmp_path):
        obs = _populated_hub(run={"policy": "aware"})
        path = str(tmp_path / "run.jsonl")
        n = write_jsonl(obs.snapshot_records(), path)
        records = read_jsonl(path)
        assert len(records) == n == 4
        kinds = {r["kind"] for r in records}
        assert kinds == {"metric", "event", "decision-audit"}
        assert all(r["run"] == {"policy": "aware"} for r in records)

    def test_append_mode(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl([{"kind": "metric", "name": "a"}], path)
        write_jsonl([{"kind": "metric", "name": "b"}], path, append=True)
        assert [r["name"] for r in read_jsonl(path)] == ["a", "b"]

    def test_lines_are_single_json_objects(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl(_populated_hub().snapshot_records(), path)
        with open(path) as fh:
            for line in fh:
                assert isinstance(json.loads(line), dict)


class TestCsv:
    def test_metrics_only(self, tmp_path):
        path = str(tmp_path / "metrics.csv")
        n = write_metrics_csv(_populated_hub().snapshot_records(), path)
        text = open(path).read()
        assert n == 2
        assert "probes_sent_total" in text and "src=1" in text
        assert "packet" not in text  # events excluded

    def test_label_values_with_separators_survive(self, tmp_path):
        """Regression: a label value containing ``,`` or ``=`` used to merge
        into the neighbouring pair in the flattened labels column."""
        obs = Observability()
        obs.metrics.counter("c", queue="s1[0],s1[1]", note="a=b", path="x\\y").inc()
        path = str(tmp_path / "metrics.csv")
        write_metrics_csv(obs.snapshot_records(), path)
        text = open(path).read()
        assert r"queue=s1[0]\,s1[1]" in text
        assert r"note=a\=b" in text
        assert "path=x\\\\y" in text

    def test_flatten_labels_escaping_round_trips(self):
        flat = flatten_labels({"b": "x,y", "a": "p=q"})
        # Sorted keys; separators inside values are escaped, so splitting on
        # unescaped commas recovers exactly two pairs.
        assert flat == r"a=p\=q,b=x\,y"
        import re

        pairs = re.split(r"(?<!\\),", flat)
        assert len(pairs) == 2


class TestReport:
    def test_summary_counts_and_error(self, tmp_path):
        obs = _populated_hub(run={"policy": "aware", "size_class": "S"})
        report = render_obs_report(obs.snapshot_records())
        assert "metric 2, event 1, decision-audit 1" in report
        assert "packet_dropped" in report
        assert "policy=aware" in report
        assert "delay error" in report
        # mean abs error of (0.03-0.01, 0.05-0.06) = 15 ms
        assert "abs 15.00 ms" in report

    def test_no_truth_prints_na(self):
        obs = Observability(run={"policy": "nearest"})
        obs.audit.record(
            requester_addr=1, metric="delay",
            candidates=[{"server_addr": 2, "value": 1}], chosen_addr=2,
        )
        report = render_obs_report(obs.snapshot_records())
        assert "n/a" in report

    def test_probe_loss_summary_per_run(self):
        obs = Observability(run={"policy": "aware"})
        obs.events.probe_lost(src=1, dst=5, seq=10, lost=3)
        obs.events.probe_lost(src=1, dst=5, seq=20, lost=1)
        obs.events.probe_lost(src=2, dst=5, seq=7, lost=2)
        other = Observability(run={"policy": "nearest"})
        other.events.probe_lost(src=1, dst=5, seq=4, lost=1)
        records = obs.snapshot_records() + other.snapshot_records()
        report = render_obs_report(records)
        assert "probe loss (collector seq gaps):" in report
        assert "policy=aware: 6 probes lost across 3 gap events (2 src/dst pairs)" in report
        assert "policy=nearest: 1 probes lost across 1 gap events (1 src/dst pairs)" in report

    def test_probe_loss_per_pair_table(self):
        obs = Observability(run={"policy": "aware"})
        obs.events.probe_lost(src=1, dst=5, seq=10, lost=3)
        obs.events.probe_lost(src=1, dst=5, seq=20, lost=1)
        obs.events.probe_lost(src=2, dst=5, seq=7, lost=2)
        report = render_obs_report(obs.snapshot_records())
        # One sorted row per (src, dst) pair under the run's summary line.
        assert "1 -> 5: 4 lost in 2 gap(s)" in report
        assert "2 -> 5: 2 lost in 1 gap(s)" in report
        assert report.index("1 -> 5") < report.index("2 -> 5")

    def test_no_probe_loss_section_when_clean(self):
        report = render_obs_report(_populated_hub().snapshot_records())
        assert "probe loss" not in report

    def test_telquality_counted_in_header(self):
        records = _populated_hub().snapshot_records()
        assert "telquality 0" in render_obs_report(records)
        records.append({"kind": "telquality"})
        assert "telquality 1" in render_obs_report(records)

    def test_whatif_counted_in_header(self):
        records = _populated_hub().snapshot_records()
        assert "whatif 0" in render_obs_report(records)
        records.append({"kind": "whatif"})
        assert "whatif 1" in render_obs_report(records)

    def test_delay_error_line_reports_skipped_candidates(self):
        obs = Observability(run={"policy": "aware"})
        obs.audit.record(
            requester_addr=1, metric="delay", chosen_addr=2,
            candidates=[
                {"server_addr": 2, "estimated_delay": 0.03, "truth_delay": 0.01},
                {"server_addr": 3, "estimated_delay": 0.05, "truth_delay": None},
            ],
        )
        report = render_obs_report(obs.snapshot_records())
        assert "1 skipped" in report

    def test_resilience_section_surfaces_failures(self):
        obs = Observability()
        obs.events.emit(
            "runner_run_failed", label="calibration u=0.5",
            spec_hash="abc123def456", failure_kind="crash",
            error_type="WorkerCrash", message="worker died with SIGKILL",
            attempts=2, exit_signal="SIGKILL",
        )
        obs.events.emit(
            "runner_run_retry", spec_hash="abc123def456", attempt=1,
            failure_kind="crash", error_type="WorkerCrash", backoff_s=0.5,
        )
        obs.events.emit(
            "cache_corrupt", spec_hash="beefbeefbeef",
            reason="checksum mismatch",
        )
        report = render_obs_report(obs.snapshot_records())
        assert "runner resilience:" in report
        assert "failed runs: 1" in report
        assert "calibration u=0.5: crash/WorkerCrash after 2 attempt(s), signal SIGKILL" in report
        assert "retries: 1 (crash 1)" in report
        assert "corrupt cache entries evicted: 1 (beefbeefbeef)" in report

    def test_no_resilience_section_when_clean(self):
        report = render_obs_report(_populated_hub().snapshot_records())
        assert "runner resilience" not in report


class TestSummary:
    def test_run_summary_digest(self):
        obs = _populated_hub(run={"policy": "aware"})
        summary = obs.summary()
        assert summary["instruments"] == 2
        assert summary["events"] == 1
        assert summary["decisions"] == 1
        assert summary["delay_error"]["samples"] == 2
        assert summary["events_by_kind"] == {"packet_dropped": 1}


class TestObsReportProfileSection:
    def test_profile_record_renders_table(self):
        from repro.obs.export import render_obs_report

        record = {
            "kind": "profile",
            "profile": {
                "events_total": 42,
                "queue_high_water": 3,
                "wall_s": 0.5,
                "by_type": {"Host.on_ingress": {"count": 42, "wall_s": 0.4}},
                "phases": {"Host.on_ingress;demux": {"count": 42, "wall_s": 0.3}},
                "overhead": {"phase_pairs": 42, "clock_reads": 50,
                             "total_s": 0.001, "fraction_of_wall": 0.002},
                "memory": None,
                "phase_coverage": {"Host.on_ingress": 0.75},
            },
        }
        text = render_obs_report([record])
        assert "profile 1" in text
        assert "engine profile:" in text
        assert "Host.on_ingress" in text
        assert ";demux" in text

    def test_counts_line_includes_profile_kind(self):
        from repro.obs.export import render_obs_report

        assert "profile 0" in render_obs_report([])
