"""Decision audit trail: records, error stats, ground truth, explanations."""

import math

import pytest

from repro.core.estimators import BandwidthEstimator, DelayEstimator
from repro.core.ranking import explain_bandwidth, explain_delay
from repro.core.telemetry_store import TelemetryStore
from repro.obs.audit import (
    DecisionAudit,
    NetworkGroundTruth,
    delay_error_stats,
    node_label,
)
from repro.telemetry.records import host_node, switch_node
from repro.units import mbps


class TestDecisionAudit:
    def test_record_and_snapshot(self):
        audit = DecisionAudit(clock=lambda: 12.4)
        audit.record(
            requester_addr=1,
            metric="delay",
            candidates=[{"server_addr": 2, "value": 0.02}],
            chosen_addr=2,
        )
        snap = audit.snapshot()[0]
        assert snap["kind"] == "decision-audit"
        assert snap["time"] == 12.4
        assert snap["chosen_addr"] == 2
        assert snap["candidates"][0]["value"] == 0.02

    def test_cap(self):
        audit = DecisionAudit(max_decisions=1)
        for _ in range(3):
            audit.record(
                requester_addr=1, metric="delay", candidates=[], chosen_addr=None
            )
        assert len(audit) == 1
        assert audit.dropped_decisions == 2


class TestDelayErrorStats:
    def test_pairs_and_skips(self):
        stats = delay_error_stats(
            [
                {"estimated_delay": 0.03, "truth_delay": 0.01},
                {"estimated_delay": 0.01, "truth_delay": 0.02},
                {"estimated_delay": math.inf, "truth_delay": 0.01},  # unreachable
                {"value": 2, "truth_delay": 0.01},                   # baseline: no estimate
                {"estimated_delay": 0.05},                           # no truth
            ]
        )
        assert stats["samples"] == 2
        assert stats["skipped"] == 3
        assert stats["mean_error"] == pytest.approx((0.02 - 0.01) / 2)
        assert stats["mean_abs_error"] == pytest.approx(0.015)

    def test_empty(self):
        stats = delay_error_stats([])
        assert stats["samples"] == 0
        assert stats["mean_abs_error"] is None


def _seeded_store(sim, path, qdepths=None, latency=0.010):
    """A TelemetryStore that believes in one directed path."""
    store = TelemetryStore(sim)
    store.topology.observe_path(path)
    for u, v in zip(path, path[1:]):
        state = store._state(u, v)
        state.latency_ewma = latency
        state.latency_updated_at = sim.now
        if qdepths and (u, v) in qdepths:
            state.qdepth_readings.append((sim.now, qdepths[(u, v)]))
            state.qdepth_updated_at = sim.now
    return store


class TestExplanations:
    def test_explain_delay_matches_estimator(self, sim):
        path = [host_node(1), switch_node(1), switch_node(2), host_node(2)]
        store = _seeded_store(
            sim, path, qdepths={(switch_node(1), switch_node(2)): 10}
        )
        est = DelayEstimator(store, k=0.02, qdepth_floor=3)
        detail = explain_delay(est, host_node(1), host_node(2))
        assert detail["value"] == pytest.approx(est.delay_between(host_node(1), host_node(2)))
        assert detail["path"] == [node_label(n) for n in path]
        # The congested switch hop carries the k*Q term; host hop never does.
        by_hop = {(h["u"], h["v"]): h for h in detail["hops"]}
        congested = by_hop[("sw:1", "sw:2")]
        assert congested["qdepth"] == 10
        assert congested["queue_term"] == pytest.approx(0.2)
        assert by_hop[("host:1", "sw:1")]["queue_term"] == 0.0

    def test_explain_delay_below_floor_charges_nothing(self, sim):
        path = [host_node(1), switch_node(1), host_node(2)]
        store = _seeded_store(sim, path, qdepths={(switch_node(1), host_node(2)): 2})
        est = DelayEstimator(store, k=0.02, qdepth_floor=3)
        detail = explain_delay(est, host_node(1), host_node(2))
        hop = detail["hops"][1]
        assert hop["qdepth"] == 2 and hop["queue_term"] == 0.0

    def test_explain_delay_unreachable(self, sim):
        store = TelemetryStore(sim)
        est = DelayEstimator(store)
        detail = explain_delay(est, host_node(1), host_node(9))
        assert detail["value"] == math.inf and detail["hops"] == []

    def test_explain_bandwidth_matches_estimator(self, sim):
        path = [host_node(1), switch_node(1), host_node(2)]
        store = _seeded_store(sim, path, qdepths={(switch_node(1), host_node(2)): 20})
        est = BandwidthEstimator(store, link_capacity_bps=mbps(20))
        detail = explain_bandwidth(est, host_node(1), host_node(2))
        assert detail["value"] == pytest.approx(
            est.throughput_between(host_node(1), host_node(2))
        )
        assert detail["hops"][1]["qdepth"] == 20
        assert 0.0 <= detail["hops"][1]["utilization"] <= 1.0


class TestNetworkGroundTruth:
    def test_idle_path_is_pure_propagation(self, sim, line3):
        truth = NetworkGroundTruth(line3)
        # h1 -> h2 crosses three 10 ms links with empty queues.
        delay = truth.true_delay_between(
            line3.address_of("h1"), line3.address_of("h2")
        )
        assert delay == pytest.approx(0.030)

    def test_backlog_adds_serialization(self, sim, line3):
        net = line3
        h1 = net.host("h1")
        truth = NetworkGroundTruth(net)
        idle = truth.true_delay_between(net.address_of("h1"), net.address_of("h2"))
        # Stuff h1's uplink queue without running the sim: packets sit queued.
        for i in range(5):
            h1.send(h1.new_packet(net.address_of("h2"), dst_port=9, size_bytes=1500))
        loaded = truth.true_delay_between(net.address_of("h1"), net.address_of("h2"))
        assert loaded > idle

    def test_hop_truth_labels(self, sim, line3):
        truth = NetworkGroundTruth(line3)
        sw_id = line3.switch("s01").switch_id
        hop = truth.hop_truth(host_node(line3.address_of("h1")), switch_node(sw_id))
        assert hop["u"].startswith("host:") and hop["v"] == f"sw:{sw_id}"
        assert hop["true_qdepth"] == 0

    def test_unresolvable_path_returns_none(self, sim, line3):
        truth = NetworkGroundTruth(line3)
        assert truth.path_truth([host_node(1), ("sw", 999)]) is None
