"""Unit tests for the performance observatory rendering layer."""

import pytest

from repro.obs.perf import (
    MemoryCapture,
    collapsed_stacks,
    flamegraph_svg,
    render_perf_report,
    sparkline,
)


def _summary():
    """Synthetic profile: one handler, two phases, one nested phase."""
    return {
        "events_total": 100,
        "queue_high_water": 5,
        "wall_s": 1.0,
        "by_type": {
            "Switch.on_ingress": {"count": 80, "wall_s": 0.8},
            "Host.on_ingress": {"count": 20, "wall_s": 0.2},
        },
        "phases": {
            "Switch.on_ingress;p4_pipeline": {"count": 80, "wall_s": 0.5},
            "Switch.on_ingress;p4_pipeline;routing": {"count": 80, "wall_s": 0.3},
            "Switch.on_ingress;enqueue": {"count": 80, "wall_s": 0.25},
        },
        "overhead": {"phase_pairs": 240, "clock_reads": 300,
                     "total_s": 0.01, "fraction_of_wall": 0.01},
        "memory": None,
        "phase_coverage": {"Switch.on_ingress": 0.9375},
    }


class TestCollapsedStacks:
    def test_lines_are_path_space_self_us(self):
        lines = collapsed_stacks(_summary()).splitlines()
        table = dict(line.rsplit(" ", 1) for line in lines)
        # Self time: handler minus direct children, phase minus nested.
        assert int(table["Switch.on_ingress"]) == 50_000  # 0.8 - 0.75
        assert int(table["Switch.on_ingress;p4_pipeline"]) == 200_000
        assert int(table["Switch.on_ingress;p4_pipeline;routing"]) == 300_000
        assert int(table["Switch.on_ingress;enqueue"]) == 250_000
        assert int(table["Host.on_ingress"]) == 200_000

    def test_zero_self_time_nodes_dropped(self):
        summary = _summary()
        # Children exactly cover the parent: parent's self time is zero.
        summary["by_type"]["Switch.on_ingress"]["wall_s"] = 0.75
        text = collapsed_stacks(summary)
        assert "\nSwitch.on_ingress " not in "\n" + text.replace(";", "_")

    def test_trailing_newline_and_sorted(self):
        text = collapsed_stacks(_summary())
        assert text.endswith("\n")
        paths = [line.rsplit(" ", 1)[0] for line in text.splitlines()]
        assert paths == sorted(paths)

    def test_empty_summary(self):
        assert collapsed_stacks({"by_type": {}, "phases": {}}) == ""


class TestFlamegraphSvg:
    def test_self_contained(self):
        svg = flamegraph_svg(_summary())
        assert svg.startswith("<svg")
        assert "<script" not in svg
        assert "src=" not in svg and "href" not in svg
        assert "url(" not in svg and "@import" not in svg

    def test_frames_and_tooltips(self):
        svg = flamegraph_svg(_summary())
        assert "<title>" in svg
        assert "p4_pipeline" in svg and "routing" in svg
        assert "Host.on_ingress" in svg

    def test_deterministic(self):
        assert flamegraph_svg(_summary()) == flamegraph_svg(_summary())

    def test_children_clamped_into_parent(self):
        """Clock noise making children sum past the parent must not
        overflow the parent's box."""
        summary = _summary()
        summary["phases"]["Switch.on_ingress;p4_pipeline"]["wall_s"] = 0.7
        summary["phases"]["Switch.on_ingress;enqueue"]["wall_s"] = 0.4
        svg = flamegraph_svg(summary)  # must not raise; widths stay finite
        assert svg.count("<rect") >= 4

    def test_empty_profile_placeholder(self):
        svg = flamegraph_svg({"by_type": {}, "phases": {}})
        assert "no profile samples" in svg

    def test_escapes_markup_in_names(self):
        summary = {
            "by_type": {"<evil>&name": {"count": 1, "wall_s": 1.0}},
            "phases": {},
        }
        svg = flamegraph_svg(summary)
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg


class TestSparkline:
    def test_shape(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█" and len(line) == 3

    def test_none_gap_renders_as_space(self):
        assert sparkline([0.0, None, 1.0])[1] == " "

    def test_constant_series(self):
        assert sparkline([2.0, 2.0]) == "▁▁"

    def test_all_none(self):
        assert sparkline([None, None]) == ""


class TestMemoryCapture:
    def test_gc_counters_always_captured(self):
        capture = MemoryCapture()
        capture.start()
        junk = [[i] for i in range(1000)]
        del junk
        out = capture.stop()
        assert set(out) == {
            "gc_collections", "gc_collected", "gc_uncollectable",
            "allocated_blocks_delta", "tracemalloc",
        }
        assert out["tracemalloc"] is None

    def test_tracemalloc_top_sites(self):
        capture = MemoryCapture(tracemalloc_top=5)
        capture.start()
        keep = [bytearray(4096) for _ in range(50)]
        out = capture.stop()
        del keep
        tm = out["tracemalloc"]
        assert tm is not None
        assert 0 < len(tm["top"]) <= 5
        assert tm["total_kb"] > 0 and tm["sites"] > 0
        site = tm["top"][0]["site"]
        assert ":" in site and site.count("/") <= 2  # 3-component tail

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            MemoryCapture().stop()


def _record(serial_s, *, parallel_valid=True, phases=None, commit="abc"):
    return {
        "grid": {"figure": "fig5", "scale": "smoke", "runs": 12},
        "serial_s": serial_s,
        "parallel_s": serial_s / 2.0,
        "parallel_valid": parallel_valid,
        "parallel_speedup": 2.0,
        "cached_s": serial_s / 10.0,
        "cached_speedup": 10.0,
        "provenance": {"recorded_at": "2026-01-01T00:00:00Z",
                       "git_commit": commit},
        "profile": {
            "by_type": {"Switch.on_ingress": {"count": 10, "wall_s": serial_s * 0.5}},
            "phases": phases if phases is not None else {
                "Switch.on_ingress;enqueue": {"count": 10, "wall_s": serial_s * 0.3},
            },
        },
    }


class TestRenderPerfReport:
    def test_empty_history(self):
        assert "history is empty" in render_perf_report([])

    def test_trend_over_two_records(self):
        text = render_perf_report([_record(10.0), _record(8.0)])
        assert "2 history record(s)" in text
        assert "@abc" in text
        assert "serial_s" in text and "-20.0%" in text and "(better)" in text
        assert "top phase movers" in text
        assert "Switch.on_ingress;enqueue" in text

    def test_invalid_parallel_records_excluded(self):
        text = render_perf_report([
            _record(10.0, parallel_valid=False),
            _record(8.0, parallel_valid=False),
        ])
        assert "parallel timings from 2 record(s)" in text
        # The parallel rows render as all-dashes, never as numbers.
        parallel_row = next(
            line for line in text.splitlines()
            if line.strip().startswith("parallel_s")
        )
        assert "5.0" not in parallel_row and "4.0" not in parallel_row

    def test_no_phase_movement_vs_no_profile(self):
        same = [_record(10.0), _record(10.0)]
        assert "no phase movement" in render_perf_report(same)
        bare = [
            {k: v for k, v in _record(10.0).items() if k != "profile"}
            for _ in range(2)
        ]
        assert "no profile data" in render_perf_report(bare)

    def test_from_to_selection_and_bounds(self):
        records = [_record(10.0), _record(5.0), _record(20.0)]
        text = render_perf_report(records, frm=1, to=2)
        assert "record 1 -> 2" in text
        text = render_perf_report(records, frm=-2, to=-1)
        assert "record 1 -> 2" in text
        with pytest.raises(ValueError):
            render_perf_report(records, frm=5, to=-1)
        with pytest.raises(ValueError):
            render_perf_report(records, frm=0, to=-9)

    def test_new_phase_marked(self):
        old = _record(10.0, phases={})
        new = _record(10.0)
        text = render_perf_report([old, new])
        assert "(new)" in text
