"""End-to-end: an experiment run with the observability hub attached."""

import pytest

from repro.edge.task import SizeClass
from repro.experiments.harness import (
    POLICY_AWARE,
    POLICY_NEAREST,
    ExperimentConfig,
    ExperimentScale,
    run_experiment,
)
from repro.obs import Observability

pytestmark = pytest.mark.slow

TINY = ExperimentScale(size_scale=0.05, total_tasks=6, mean_interarrival=0.4, time_scale=0.08)


def _run(policy=POLICY_AWARE, **obs_kw):
    obs = Observability(run={"policy": policy}, **obs_kw)
    config = ExperimentConfig(
        policy=policy, size_class=SizeClass.VS, scale=TINY, seed=11
    )
    res = run_experiment(config, obs=obs)
    return res, obs


class TestAttachedRun:
    def test_all_record_kinds_present(self):
        res, obs = _run(probe_sample=1)
        records = obs.snapshot_records()
        kinds = {r["kind"] for r in records}
        assert kinds == {"metric", "event", "decision-audit"}
        assert all(r["run"] == {"policy": POLICY_AWARE} for r in records)
        assert res.obs is obs

    def test_probe_traffic_counted(self):
        _, obs = _run(probe_sample=1)
        counts = obs.events.counts_by_kind()
        assert counts.get("probe_sent", 0) > 0
        assert counts.get("probe_received", 0) > 0
        sent = sum(
            inst.value
            for inst in obs.metrics.instruments()
            if inst.name == "probes_sent_total"
        )
        assert sent >= counts["probe_sent"] > 0

    def test_aware_decisions_carry_explanations_and_truth(self):
        _, obs = _run()
        decisions = obs.audit.snapshot()
        assert decisions, "aware policy should audit at least one decision"
        cand = decisions[0]["candidates"][0]
        assert "estimated_delay" in cand
        assert "truth_delay" in cand
        assert cand["hops"], "per-hop decomposition expected"
        hop = cand["hops"][0]
        assert {"u", "v", "link_delay", "qdepth", "queue_term"} <= set(hop)
        assert decisions[0]["chosen_addr"] is not None

    def test_baseline_decisions_have_truth_but_no_estimate(self):
        _, obs = _run(policy=POLICY_NEAREST)
        decisions = obs.audit.snapshot()
        assert decisions
        cand = decisions[0]["candidates"][0]
        assert "truth_delay" in cand
        assert "estimated_delay" not in cand

    def test_task_lifecycle_mirrored(self):
        res, obs = _run()
        transitions = obs.events.of_kind("task_transition")
        states = {e.fields["state"] for e in transitions}
        assert "submitted" in states
        assert "result_received" in states
        completed = [e for e in transitions if e.fields["state"] == "result_received"]
        assert len(completed) == res.tasks_completed
        # Mirrored events carry sim times, not the post-run clock value.
        assert all(0.0 <= e.time <= res.sim_time for e in transitions)

    def test_summary_is_sane(self):
        _, obs = _run()
        s = obs.summary()
        assert s["run"] == {"policy": POLICY_AWARE}
        assert s["instruments"] > 0
        assert s["events"] > 0
        assert s["decisions"] > 0
        assert s["delay_error"]["samples"] > 0
