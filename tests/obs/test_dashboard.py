"""Dashboard renderer: self-containment, determinism, section content."""

import re

from repro.obs.dashboard import render_dashboard, write_dashboard


def _sample_records():
    run = {"policy": "aware", "seed": 0}
    return [
        {
            "kind": "timeseries", "name": "link_utilization",
            "labels": {"link": "l1", "direction": "a"},
            "stride": 1, "offered": 3, "interval": 0.5,
            "points": [[0.5, 0.1], [1.0, 0.6], [1.5, 0.3]],
            "run": run,
        },
        {
            "kind": "timeseries", "name": "queue_depth",
            "labels": {"queue": "s1[0]"},
            "stride": 1, "offered": 3, "interval": 0.5,
            "points": [[0.5, 0.0], [1.0, 12.0], [1.5, 4.0]],
            "run": run,
        },
        {
            "kind": "timeseries", "name": "server_running",
            "labels": {"server": "h2"},
            "stride": 1, "offered": 2, "interval": 0.5,
            "points": [[0.5, 1.0], [1.0, 2.0]],
            "run": run,
        },
        {
            "kind": "timeseries", "name": "decision_abs_error",
            "labels": {},
            "stride": 1, "offered": 2, "interval": 0.5,
            "points": [[0.5, 0.01], [1.0, 0.02]],
            "run": run,
        },
        {
            "kind": "event", "event": "alert", "time": 1.0,
            "rule": "queue_saturation", "series": "queue_depth_frac",
            "target": "queue=s1[0]", "value": 0.95, "threshold": 0.9,
            "state": "fire", "run": run,
        },
        {
            "kind": "event", "event": "alert", "time": 1.5,
            "rule": "queue_saturation", "series": "queue_depth_frac",
            "target": "queue=s1[0]", "value": 0.1, "threshold": 0.9,
            "state": "clear", "run": run,
        },
        {
            "kind": "metric", "type": "histogram",
            "name": "task_completion_seconds",
            "labels": {"size_class": "VS"},
            "count": 3, "sum": 1.5, "min": 0.4, "max": 0.6, "mean": 0.5,
            "p50": 0.5, "p95": 0.6, "p99": 0.6,
            "buckets": {}, "updated_at": 2.0, "run": run,
        },
    ]


class TestRender:
    def test_single_self_contained_html(self):
        html = render_dashboard(_sample_records())
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        # No external resources whatsoever.
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" not in html
        assert not re.search(r"<link\b", html)
        assert not re.search(r"\bsrc\s*=", html)

    def test_sections_rendered(self):
        html = render_dashboard(_sample_records())
        assert "<svg" in html
        assert "Link utilization" in html
        assert "Queue depth" in html
        assert "Server load" in html
        assert "Alerts" in html
        assert "Decision error" in html
        assert "Completion-time quantiles" in html
        assert "queue_saturation" in html
        assert "direction=a,link=l1" in html

    def test_deterministic_rerender(self):
        records = _sample_records()
        assert render_dashboard(records) == render_dashboard(records)
        # Record order must not matter for section content: reversed input
        # renders identically because every section sorts.
        assert render_dashboard(records) == render_dashboard(records[::-1])

    def test_empty_records_still_valid_page(self):
        html = render_dashboard([])
        assert html.startswith("<!DOCTYPE html>")
        assert "no link-utilization samples" in html
        assert "no alerts" in html
        assert "no completion-time histograms" in html

    def test_unclosed_alert_extends_to_window_end(self):
        records = [r for r in _sample_records() if r.get("state") != "clear"]
        html = render_dashboard(records)
        assert 'class="fire"' in html

    def test_labels_escaped(self):
        records = [{
            "kind": "timeseries", "name": "link_utilization",
            "labels": {"link": "<bad&>"},
            "stride": 1, "offered": 1, "interval": 0.5,
            "points": [[0.5, 0.1]],
        }]
        html = render_dashboard(records)
        assert "<bad&>" not in html
        assert "&lt;bad&amp;&gt;" in html

    def test_write_dashboard(self, tmp_path):
        path = tmp_path / "dash.html"
        write_dashboard(_sample_records(), str(path), title="t<&>")
        text = path.read_text()
        assert text == render_dashboard(_sample_records(), title="t<&>")
        assert "t&lt;&amp;&gt;" in text


def _profile_record():
    return {
        "kind": "profile",
        "profile": {
            "events_total": 100,
            "queue_high_water": 5,
            "wall_s": 1.0,
            "by_type": {"Switch.on_ingress": {"count": 80, "wall_s": 0.8}},
            "phases": {
                "Switch.on_ingress;p4_pipeline": {"count": 80, "wall_s": 0.5},
            },
            "overhead": {"phase_pairs": 80, "clock_reads": 100,
                         "total_s": 0.01, "fraction_of_wall": 0.01},
            "memory": None,
            "phase_coverage": {"Switch.on_ingress": 0.625},
        },
    }


class TestProfileSection:
    def test_profile_section_rendered_with_flamegraph(self):
        html = render_dashboard(_sample_records() + [_profile_record()])
        assert "Engine profile" in html
        section = html.split("Engine profile", 1)[1]
        assert "Switch.on_ingress" in section
        assert "p4_pipeline" in section
        assert "profiler overhead" in section
        assert "<svg" in section

    def test_page_with_profile_stays_self_contained(self):
        html = render_dashboard(_sample_records() + [_profile_record()])
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" not in html
        assert not re.search(r"\bsrc\s*=", html)

    def test_placeholder_when_no_profile(self):
        html = render_dashboard(_sample_records())
        assert "no engine profile" in html

    def test_profile_only_export_still_valid_page(self):
        html = render_dashboard([_profile_record()])
        assert html.startswith("<!DOCTYPE html>")
        assert "no link-utilization samples" in html
        assert "Engine profile" in html

    def test_deterministic_with_profile(self):
        records = _sample_records() + [_profile_record()]
        assert render_dashboard(records) == render_dashboard(records)


def _telquality_record():
    return {
        "kind": "telquality",
        "layout": "star",
        "probing_interval": 0.1,
        "pairs": [["h1", "h2"]],
        "run": {"policy": "aware", "seed": 0},
        "coverage": {
            "total_ports": 3, "observed_ports": 1, "expected_ports": 1,
            "blind": [["s1", "h1"], ["s1", "h3"]],
            "expected_blind": [["s1", "h1"], ["s1", "h3"]],
            "matches_prediction": True,
            "ports": [{
                "u": "s1", "v": "h2", "observations": 4,
                "first": 1.0, "last": 1.3, "effective_interval": 0.1,
                "pairs": [["h1", "h2"]],
            }],
        },
        "freshness": {
            "registers": [{
                "node": "s1", "register": "qdepth", "refreshes": 4,
                "age": {"lo": 1e-4, "hi": 1e4, "bins": 256, "count": 3,
                        "underflow": 0, "overflow": 0, "min": 0.1,
                        "max": 0.1, "counts": {"120": 3}},
            }],
            "decision_age": None,
        },
        "attribution": {
            "interval": 0.1, "decisions": 2, "samples": 2, "skipped": 0,
            "bins": [
                {"label": "[0x, 0.5x)", "lo_multiple": 0.0,
                 "hi_multiple": 0.5, "count": 2, "mean_error": 0.01,
                 "mean_abs_error": 0.01},
                {"label": "unknown", "lo_multiple": None,
                 "hi_multiple": None, "count": 0, "mean_error": None,
                 "mean_abs_error": None},
            ],
            "loss_windows": {
                "windows": 1,
                "in": {"count": 1, "mean_error": 0.01, "mean_abs_error": 0.01},
                "out": {"count": 1, "mean_error": 0.01, "mean_abs_error": 0.01},
            },
            "fault_windows": {
                "windows": 0,
                "in": {"count": 0, "mean_error": None, "mean_abs_error": None},
                "out": {"count": 2, "mean_error": 0.01, "mean_abs_error": 0.01},
            },
        },
    }


class TestTelqualitySections:
    def test_panels_rendered(self):
        html = render_dashboard(_sample_records() + [_telquality_record()])
        assert "Telemetry coverage" in html
        assert "Telemetry freshness" in html
        assert "Error vs telemetry age" in html
        coverage = html.split("Telemetry coverage", 1)[1]
        assert "1/3 directed ports observed (33%)" in coverage
        assert "matches the layout&#x27;s predicted blind set" in coverage
        assert "s1&rarr;h2" in coverage
        freshness = html.split("Telemetry freshness", 1)[1]
        assert "qdepth" in freshness
        age = html.split("Error vs telemetry age", 1)[1]
        assert "[0x, 0.5x)" in age
        assert "probe-loss windows: 1" in age

    def test_page_with_telquality_stays_self_contained(self):
        html = render_dashboard(_sample_records() + [_telquality_record()])
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" not in html
        assert not re.search(r"\bsrc\s*=", html)

    def test_old_format_export_renders_placeholders_from_file(self, tmp_path):
        """A pre-observatory export (no telquality records anywhere) loaded
        back off disk still renders every panel as a placeholder."""
        from repro.obs.export import read_jsonl, write_jsonl

        path = tmp_path / "old.jsonl"
        write_jsonl(_sample_records() + [_profile_record()], str(path))
        html = render_dashboard(read_jsonl(str(path)))
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("no telemetry-quality records") == 3
        assert "Link utilization" in html

    def test_deterministic_with_telquality(self):
        records = _sample_records() + [_telquality_record()]
        assert render_dashboard(records) == render_dashboard(records)
        assert render_dashboard(records) == render_dashboard(records[::-1])


def _whatif_record():
    return {
        "kind": "whatif",
        "run": {"policy": "aware", "seed": 0},
        "interval": 0.1,
        "decisions": 3,
        "replayed": 2,
        "skipped": 1,
        "actual": {
            "regret_total": 0.07,
            "regret_mean": 0.035,
            "regret_digest": {
                "lo": 1e-4, "hi": 1e4, "bins": 256, "count": 2,
                "underflow": 1, "overflow": 0, "min": 0.0, "max": 0.07,
                "counts": {"90": 1},
            },
        },
        "policies": [
            {"policy": "estimate-greedy", "regret_total": 0.0,
             "regret_mean": 0.0, "wins": 1, "ties": 1, "losses": 0,
             "differs": 1},
            {"policy": "oracle", "regret_total": 0.0, "regret_mean": 0.0,
             "wins": 1, "ties": 1, "losses": 0, "differs": 1},
        ],
        "staleness": {"bins": []},
        "loss_windows": {
            "windows": 0,
            "in": {"count": 0, "regret_total": 0.0, "regret_mean": None},
            "out": {"count": 2, "regret_total": 0.07, "regret_mean": 0.035},
        },
        "fault_windows": {
            "windows": 0,
            "in": {"count": 0, "regret_total": 0.0, "regret_mean": None},
            "out": {"count": 2, "regret_total": 0.07, "regret_mean": 0.035},
        },
    }


class TestWhatifSections:
    def test_panels_rendered(self):
        html = render_dashboard(_sample_records() + [_whatif_record()])
        assert "Regret CDF" in html
        assert "Policy comparison" in html
        cdf = html.split("Regret CDF", 1)[1]
        assert "regret CDF" in cdf
        assert "per-decision regret" in cdf
        policies = html.split("Policy comparison", 1)[1]
        assert "(actual)" in policies
        assert "estimate-greedy" in policies
        assert "oracle" in policies
        assert "3 delay decisions" in policies
        assert "2 replayed" in policies

    def test_page_with_whatif_stays_self_contained(self):
        html = render_dashboard(_sample_records() + [_whatif_record()])
        assert "http://" not in html
        assert "https://" not in html
        assert "<script" not in html
        assert not re.search(r"\bsrc\s*=", html)

    def test_old_format_export_renders_placeholders(self):
        html = render_dashboard(_sample_records() + [_telquality_record()])
        assert html.count("no what-if records") == 2

    def test_empty_digest_degrades_gracefully(self):
        record = _whatif_record()
        record["actual"]["regret_digest"] = None
        html = render_dashboard(_sample_records() + [record])
        assert "no replayed decisions" in html

    def test_deterministic_with_whatif(self):
        records = _sample_records() + [_whatif_record()]
        assert render_dashboard(records) == render_dashboard(records)
        assert render_dashboard(records) == render_dashboard(records[::-1])
