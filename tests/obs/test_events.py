"""Structured event log: typed helpers, caps, and snapshots."""

import pytest

from repro.obs.events import EVENT_KINDS, EventLog


class TestEmission:
    def test_clock_stamps_events(self):
        t = [1.5]
        log = EventLog(clock=lambda: t[0])
        log.warning("boom")
        t[0] = 3.0
        log.packet_dropped(queue="s1[0]", flow_id=7)
        assert [e.time for e in log.events] == [1.5, 3.0]

    def test_time_override_for_mirroring(self):
        log = EventLog(clock=lambda: 99.0)
        log.task_transition(task_id=1, state="submitted", time=0.25)
        assert log.events[0].time == 0.25

    def test_typed_helpers_cover_schema(self):
        log = EventLog()
        log.probe_sent(src=1, dst=2, seq=3)
        log.probe_received(src=1, dst=2, seq=3, hops=4)
        log.probe_lost(src=1, dst=2, seq=9, lost=2)
        log.queue_threshold(queue="s1[0]", depth=48, threshold=48, direction="up")
        log.task_transition(task_id=5, state="failed")
        log.warning("bad probe", src=1)
        log.packet_dropped(queue="s1[1]")
        log.fault_injected(fault="link_down", target="s01<->s02")
        log.fault_recovered(fault="link_up", target="s01<->s02")
        log.node_quarantined(node="node7", age=3.5)
        log.node_unquarantined(node="node7")
        log.alert(rule="queue_saturation", series="queue_depth_frac",
                  target="queue=s1[0]", value=0.95, threshold=0.9,
                  state="fire", time=1.0)
        log.runner_run_failed(label="aware/VS seed=0", spec_hash="abc123",
                              failure_kind="crash", error_type="WorkerCrash",
                              message="worker died with SIGKILL", attempts=2,
                              exit_signal="SIGKILL")
        log.runner_run_retry(spec_hash="abc123", attempt=1,
                             failure_kind="crash", error_type="WorkerCrash",
                             backoff_s=0.5)
        log.cache_corrupt(spec_hash="abc123", reason="checksum mismatch")
        assert set(log.counts_by_kind()) == set(EVENT_KINDS)

    def test_snapshot_is_jsonl_ready(self):
        import json

        log = EventLog()
        log.probe_lost(src=1, dst=2, seq=9, lost=2)
        snap = log.snapshot()[0]
        assert snap["kind"] == "event"
        assert snap["event"] == "probe_lost"
        assert snap["lost"] == 2
        json.dumps(snap)  # must be JSON-native


class TestBounds:
    def test_cap_counts_but_drops(self):
        log = EventLog(max_events=2)
        for i in range(5):
            log.warning("w", i=i)
        assert len(log) == 2
        assert log.dropped_events == 3
        assert log.counts_by_kind() == {"warning": 5}  # emits, not retained

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)


class TestQueries:
    def test_of_kind_filters(self):
        log = EventLog()
        log.warning("a")
        log.probe_sent(src=1, dst=2, seq=1)
        log.warning("b")
        assert [e.fields["reason"] for e in log.of_kind("warning")] == ["a", "b"]
