"""HealthMonitor: rule validation, streaks, fire/clear edge semantics."""

import pytest

from repro.obs.events import EventLog
from repro.obs.health import HealthMonitor, HealthRule, default_rules
from repro.obs.timeseries import TimeSeriesStore


def _monitor(rules):
    events = EventLog()
    return HealthMonitor(rules, events), events


def _tick(monitor, store, now, values):
    """Simulate one sampler tick recording ``{series: value}``."""
    store.tick(now)
    for name, value in values.items():
        store.record(name, now, value)
    monitor.evaluate(store, now)


def _alerts(events):
    return [
        (e.time, e.fields["rule"], e.fields["state"]) for e in events.of_kind("alert")
    ]


class TestRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthRule("r", series="s", threshold=1.0, consecutive=0)
        with pytest.raises(ValueError):
            HealthRule("r", series="s", threshold=1.0, comparison="gt")

    def test_breached_gte_and_lte(self):
        gte = HealthRule("r", series="s", threshold=2.0)
        assert gte.breached(2.0) and gte.breached(3.0) and not gte.breached(1.9)
        lte = HealthRule("r", series="s", threshold=2.0, comparison="lte")
        assert lte.breached(2.0) and lte.breached(1.0) and not lte.breached(2.1)

    def test_default_rules_parameterized_by_probing_interval(self):
        rules = {r.name: r for r in default_rules(0.1)}
        assert set(rules) == {
            "queue_saturation", "telemetry_stale", "estimate_drift", "probe_loss",
            "coverage_gap", "staleness_ceiling", "regret_ceiling",
        }
        assert rules["telemetry_stale"].threshold == pytest.approx(0.5)
        assert rules["staleness_ceiling"].threshold == pytest.approx(1.0)
        # A coverage gap is "too little", not "too much".
        assert rules["coverage_gap"].comparison == "lte"
        assert rules["coverage_gap"].breached(0.8)
        assert not rules["coverage_gap"].breached(0.95)
        # Regret is an absolute latency cost, same scale as estimate_drift.
        assert rules["regret_ceiling"].series == "decision_regret_max"
        assert rules["regret_ceiling"].threshold == pytest.approx(0.25)

    def test_duplicate_rule_names_rejected(self):
        rule = HealthRule("dup", series="s", threshold=1.0)
        with pytest.raises(ValueError):
            HealthMonitor([rule, rule], EventLog())


class TestEdges:
    def test_fires_only_after_n_consecutive(self):
        monitor, events = _monitor(
            [HealthRule("sat", series="q", threshold=0.9, consecutive=3)]
        )
        store = TimeSeriesStore(1.0)
        _tick(monitor, store, 1.0, {"q": 0.95})
        _tick(monitor, store, 2.0, {"q": 0.95})
        assert _alerts(events) == []
        _tick(monitor, store, 3.0, {"q": 0.95})
        assert _alerts(events) == [(3.0, "sat", "fire")]
        # Still breached: no repeat fire.
        _tick(monitor, store, 4.0, {"q": 0.99})
        assert _alerts(events) == [(3.0, "sat", "fire")]

    def test_dip_resets_streak(self):
        monitor, events = _monitor(
            [HealthRule("sat", series="q", threshold=0.9, consecutive=3)]
        )
        store = TimeSeriesStore(1.0)
        _tick(monitor, store, 1.0, {"q": 0.95})
        _tick(monitor, store, 2.0, {"q": 0.95})
        _tick(monitor, store, 3.0, {"q": 0.1})    # dip: streak back to zero
        _tick(monitor, store, 4.0, {"q": 0.95})
        _tick(monitor, store, 5.0, {"q": 0.95})
        assert _alerts(events) == []
        _tick(monitor, store, 6.0, {"q": 0.95})
        assert _alerts(events) == [(6.0, "sat", "fire")]

    def test_single_clear_edge_and_refire(self):
        monitor, events = _monitor(
            [HealthRule("sat", series="q", threshold=0.9, consecutive=1)]
        )
        store = TimeSeriesStore(1.0)
        _tick(monitor, store, 1.0, {"q": 0.95})
        _tick(monitor, store, 2.0, {"q": 0.1})
        _tick(monitor, store, 3.0, {"q": 0.1})    # already clear: no edge
        _tick(monitor, store, 4.0, {"q": 0.95})   # re-fire after clear
        assert _alerts(events) == [
            (1.0, "sat", "fire"), (2.0, "sat", "clear"), (4.0, "sat", "fire"),
        ]
        assert monitor.alerts_fired == 2
        assert monitor.alerts_cleared == 1

    def test_absent_series_leaves_state_untouched(self):
        monitor, events = _monitor(
            [HealthRule("sat", series="q", threshold=0.9, consecutive=2)]
        )
        store = TimeSeriesStore(1.0)
        _tick(monitor, store, 1.0, {"q": 0.95})
        _tick(monitor, store, 2.0, {})            # sampler had nothing
        _tick(monitor, store, 3.0, {"q": 0.95})   # streak resumes at 2
        assert _alerts(events) == [(3.0, "sat", "fire")]

    def test_labeled_instances_tracked_independently(self):
        monitor, events = _monitor(
            [HealthRule("sat", series="q", threshold=0.9, consecutive=1)]
        )
        store = TimeSeriesStore(1.0)
        store.tick(1.0)
        store.record("q", 1.0, 0.95, queue="q0")
        store.record("q", 1.0, 0.1, queue="q1")
        monitor.evaluate(store, 1.0)
        fired = events.of_kind("alert")
        assert len(fired) == 1
        assert fired[0].fields["target"] == "queue=q0"
        assert monitor.active_alerts() == [("sat", (("queue", "q0"),))]

    def test_alert_event_fields(self):
        monitor, events = _monitor(
            [HealthRule("sat", series="q", threshold=0.9, consecutive=1)]
        )
        store = TimeSeriesStore(1.0)
        _tick(monitor, store, 2.5, {"q": 0.95})
        event = events.of_kind("alert")[0]
        assert event.time == 2.5
        assert event.fields == {
            "rule": "sat", "series": "q", "target": "",
            "value": 0.95, "threshold": 0.9, "state": "fire",
        }

    def test_summary(self):
        monitor, _events = _monitor(
            [HealthRule("sat", series="q", threshold=0.9, consecutive=1)]
        )
        store = TimeSeriesStore(1.0)
        _tick(monitor, store, 1.0, {"q": 0.95})
        assert monitor.summary() == {
            "rules": 1, "alerts_fired": 1, "alerts_cleared": 0, "active": 1,
        }

    def test_lte_rule_fires_below_threshold(self):
        monitor, events = _monitor(
            [HealthRule("low", series="rate", threshold=0.5,
                        consecutive=1, comparison="lte")]
        )
        store = TimeSeriesStore(1.0)
        _tick(monitor, store, 1.0, {"rate": 0.2})
        assert _alerts(events) == [(1.0, "low", "fire")]
