"""Device-side task timeouts."""

import pytest

from repro.core.baselines import NearestScheduler
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.edge.task import Job, SizeClass, Task
from repro.errors import WorkloadError
from repro.experiments.fig4_topology import build_fig4_network
from repro.units import kb


def _task(exec_time=0.2):
    return Task(job_id=0, size_class=SizeClass.VS, data_bytes=kb(20), exec_time=exec_time)


@pytest.fixture
def fig4(sim, streams):
    return build_fig4_network(sim, streams)


def _scheduler(fig4):
    net = fig4.network
    worker_addrs = [net.address_of(n) for n in fig4.worker_names]
    NearestScheduler(net.host(fig4.scheduler_name), worker_addrs, net)


def test_timeout_validation(sim, fig4):
    with pytest.raises(WorkloadError):
        EdgeDevice(
            fig4.network.host("node1"), fig4.scheduler_addr, MetricsCollector(),
            task_timeout=0.0,
        )


def test_task_without_server_times_out(sim, fig4):
    """No EdgeServer anywhere: the upload is absorbed by nothing, no result
    ever returns, and the timeout converts the task to a terminal failure."""
    _scheduler(fig4)
    metrics = MetricsCollector()
    done = []
    device = EdgeDevice(
        fig4.network.host("node1"), fig4.scheduler_addr, metrics,
        task_timeout=20.0, on_job_done=done.append,
    )
    device.submit_job(Job(device_name="node1", workload="serverless", tasks=[_task()]))
    sim.run(until=60.0)
    record = metrics.records[0]
    assert record.failed
    assert device.tasks_timed_out == 1
    assert len(done) == 1  # the job completes (as failed), not hangs
    assert metrics.all_done()


def test_fast_task_not_timed_out(sim, fig4):
    _scheduler(fig4)
    for name in fig4.worker_names:
        if name != "node1":
            EdgeServer(fig4.network.host(name))
    metrics = MetricsCollector()
    device = EdgeDevice(
        fig4.network.host("node1"), fig4.scheduler_addr, metrics,
        task_timeout=60.0,
    )
    device.submit_job(Job(device_name="node1", workload="serverless", tasks=[_task()]))
    sim.run(until=120.0)
    record = metrics.records[0]
    assert record.complete
    assert device.tasks_timed_out == 0


def test_timeout_disabled_by_default(sim, fig4):
    _scheduler(fig4)
    metrics = MetricsCollector()
    device = EdgeDevice(fig4.network.host("node1"), fig4.scheduler_addr, metrics)
    device.submit_job(Job(device_name="node1", workload="serverless", tasks=[_task()]))
    sim.run(until=120.0)  # no servers: task stays pending forever
    record = metrics.records[0]
    assert not record.failed
    assert record.result_received_at is None
