"""Device-side selection policies and the raw scheduler mode."""

import pytest

from repro.core.scheduler import METRIC_RAW, NetworkAwareScheduler
from repro.edge.policies import min_completion_time, top_k
from repro.edge.task import Job, SizeClass, Task
from repro.errors import SchedulingError
from repro.experiments.fig4_topology import build_fig4_network
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.units import kb, mb, mbps


def _job(n_tasks=3, data=kb(100)):
    if isinstance(data, int):
        data = [data] * n_tasks
    tasks = [
        Task(job_id=0, size_class=SizeClass.S, data_bytes=d, exec_time=1.0)
        for d in data
    ]
    return Job(device_name="node1", workload="distributed", tasks=tasks)


class TestTopK:
    def test_assigns_best_first(self):
        ranking = [(10, 0.1), (20, 0.2), (30, 0.3)]
        assert top_k(_job(2), ranking) == [10, 20]

    def test_wraps_when_short(self):
        ranking = [(10, 0.1), (20, 0.2)]
        assert top_k(_job(3), ranking) == [10, 20, 10]

    def test_empty_ranking_rejected(self):
        with pytest.raises(SchedulingError):
            top_k(_job(1), [])


class TestMinCompletionTime:
    def test_requires_raw_values(self):
        with pytest.raises(SchedulingError):
            min_completion_time(_job(1), [(10, 0.5)])

    def test_small_task_takes_low_delay_server(self):
        # Server 10: low delay, poor bandwidth.  Server 20: the reverse.
        ranking = [(10, (0.010, mbps(1))), (20, (0.100, mbps(20)))]
        job = _job(1, data=[kb(1)])  # 1 KB: delay dominates
        assert min_completion_time(job, ranking) == [10]

    def test_large_task_takes_high_bandwidth_server(self):
        ranking = [(10, (0.010, mbps(1))), (20, (0.100, mbps(20)))]
        job = _job(1, data=[mb(5)])  # 5 MB: bandwidth dominates
        assert min_completion_time(job, ranking) == [20]

    def test_largest_task_gets_best_pipe(self):
        ranking = [(10, (0.010, mbps(20))), (20, (0.010, mbps(5)))]
        job = _job(2, data=[kb(10), mb(5)])  # small first, huge second
        assignment = min_completion_time(job, ranking)
        assert assignment[1] == 10  # the 5 MB task got the 20 Mb/s server
        assert assignment[0] == 20  # distinct servers

    def test_pool_reuse_when_more_tasks_than_servers(self):
        ranking = [(10, (0.010, mbps(20)))]
        job = _job(3, data=[kb(10)] * 3)
        assert min_completion_time(job, ranking) == [10, 10, 10]

    def test_zero_bandwidth_server_avoided(self):
        ranking = [(10, (0.001, 0.0)), (20, (0.5, mbps(10)))]
        job = _job(1, data=[kb(100)])
        assert min_completion_time(job, ranking) == [20]


class TestRawMetricEndToEnd:
    def test_raw_ranking_carries_both_estimates(self, sim, streams):
        topo = build_fig4_network(sim, streams)
        net = topo.network
        worker_addrs = [net.address_of(n) for n in topo.worker_names]
        sched = NetworkAwareScheduler(
            net.host(topo.scheduler_name), worker_addrs,
            link_capacity_bps=topo.fabric_rate_bps,
        )
        all_addrs = [net.address_of(n) for n in topo.node_names]
        for name in topo.node_names:
            host = net.host(name)
            if name == topo.scheduler_name:
                ProbeResponder(host, collector=sched.collector)
            else:
                ProbeResponder(host, collector_addr=topo.scheduler_addr)
            ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()
        sim.run(until=1.0)
        ranking = sched.rank(net.address_of("node7"), METRIC_RAW)
        assert len(ranking) == 6
        addrs = [a for a, _ in ranking]
        assert addrs == sorted(addrs)  # unsorted mode: address order
        for _addr, (delay, bandwidth) in ranking:
            assert 0 < delay < 1.0
            assert 0 < bandwidth <= topo.fabric_rate_bps
