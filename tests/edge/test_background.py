"""Background congestion scenarios: planning and replay."""

import pytest

from repro.edge.background import (
    DEFAULT_SCENARIO,
    TRAFFIC_1,
    TRAFFIC_2,
    BackgroundTraffic,
    TrafficScenario,
)
from repro.errors import WorkloadError
from repro.simnet.flows import UdpSink
from repro.simnet.random import RandomStreams
from repro.units import mbps


class TestScenario:
    def test_paper_scenarios_defined(self):
        assert TRAFFIC_1.duration_choices == (30.0,)
        assert TRAFFIC_1.gap_choices == (30.0,)
        assert TRAFFIC_1.stagger == 10.0
        assert TRAFFIC_2.duration_choices == (5.0,)
        assert TRAFFIC_2.slots == 3

    def test_default_scenario_one_or_two_transfers(self):
        assert DEFAULT_SCENARIO.slots == 2
        assert set(DEFAULT_SCENARIO.duration_choices) == {30.0, 60.0}

    def test_scaled_shrinks_times_only(self):
        scaled = TRAFFIC_1.scaled(0.1)
        assert scaled.duration_choices == (3.0,)
        assert scaled.gap_choices == (3.0,)
        assert scaled.stagger == pytest.approx(1.0)
        assert scaled.slots == TRAFFIC_1.slots
        assert scaled.rate_fraction_range == TRAFFIC_1.rate_fraction_range

    def test_scaled_validation(self):
        with pytest.raises(WorkloadError):
            TRAFFIC_1.scaled(0.0)

    def test_scenario_validation(self):
        with pytest.raises(WorkloadError):
            TrafficScenario("x", 0, (1.0,), (0.0,), 0.0, (0.5, 1.0))
        with pytest.raises(WorkloadError):
            TrafficScenario("x", 1, (), (0.0,), 0.0, (0.5, 1.0))
        with pytest.raises(WorkloadError):
            TrafficScenario("x", 1, (1.0,), (0.0,), 0.0, (0.0, 1.0))


class TestBackgroundTraffic:
    def _bg(self, sim, net, scenario=DEFAULT_SCENARIO, seed=0, horizon=50.0):
        hosts = {n: net.host(n) for n in net.hosts}
        addrs = {n: net.address_of(n) for n in net.hosts}
        return BackgroundTraffic(
            sim, hosts, addrs, scenario,
            RandomStreams(seed).get("bg"),
            link_capacity_bps=mbps(20),
            horizon=horizon,
        )

    def test_plan_deterministic_per_seed(self, sim, line3):
        p1 = self._bg(sim, line3, seed=5).plan
        p2 = self._bg(sim, line3, seed=5).plan
        assert p1 == p2

    def test_plan_sorted_by_start(self, sim, line3):
        plan = self._bg(sim, line3).plan
        starts = [p.start_time for p in plan]
        assert starts == sorted(starts)

    def test_src_dst_distinct(self, sim, line3):
        for p in self._bg(sim, line3).plan:
            assert p.src_name != p.dst_name

    def test_rates_within_fraction_range(self, sim, line3):
        lo, hi = DEFAULT_SCENARIO.rate_fraction_range
        for p in self._bg(sim, line3).plan:
            assert lo * mbps(20) <= p.rate_bps <= hi * mbps(20)

    def test_plan_covers_horizon(self, sim, line3):
        bg = self._bg(sim, line3, horizon=100.0)
        assert bg.plan[-1].start_time < 100.0
        # Slots keep cycling until the horizon.
        assert bg.plan[-1].start_time + bg.plan[-1].duration >= 50.0

    def test_traffic_actually_flows(self, sim, line3):
        for n in line3.hosts:
            UdpSink(line3.host(n))
        bg = self._bg(sim, line3, scenario=TRAFFIC_2, horizon=10.0)
        bg.start()
        sim.run(until=10.0)
        assert bg.transfers_started > 0
        assert sum(f.packets_emitted for f in bg.flows) > 100

    def test_stop_halts_flows(self, sim, line3):
        for n in line3.hosts:
            UdpSink(line3.host(n))
        bg = self._bg(sim, line3, scenario=TRAFFIC_2, horizon=10.0)
        bg.start()
        sim.run(until=3.0)
        bg.stop()
        emitted = sum(f.packets_emitted for f in bg.flows)
        sim.run(until=4.0)
        # Already-launched flows stopped; later planned launches may still
        # fire but each new flow is immediately... they are separate flows.
        assert sum(f.packets_emitted for f in bg.flows[:len(bg.flows)] ) >= emitted

    def test_needs_two_hosts(self, sim, line3):
        with pytest.raises(WorkloadError):
            BackgroundTraffic(
                sim, {"h1": line3.host("h1")}, {"h1": 1}, DEFAULT_SCENARIO,
                RandomStreams(0).get("bg"), link_capacity_bps=mbps(20), horizon=1.0,
            )
