"""Table I size classes and task/job construction."""

import pytest

from repro.edge.task import TABLE_I, Job, SizeClass, Task, sample_task
from repro.errors import WorkloadError
from repro.simnet.random import RandomStreams
from repro.units import kb, ms


RNG = RandomStreams(0).get("t")


class TestTableI:
    def test_all_four_classes_defined(self):
        assert set(TABLE_I) == {SizeClass.VS, SizeClass.S, SizeClass.M, SizeClass.L}

    def test_paper_ranges(self):
        (d_lo, d_hi), (e_lo, e_hi) = TABLE_I[SizeClass.L]
        assert (d_lo, d_hi) == (kb(4500), kb(5500))
        assert (e_lo, e_hi) == (pytest.approx(ms(7500)), pytest.approx(ms(9500)))

    def test_classes_do_not_overlap_and_increase(self):
        ordered = [SizeClass.VS, SizeClass.S, SizeClass.M, SizeClass.L]
        for a, b in zip(ordered, ordered[1:]):
            assert TABLE_I[a][0][1] < TABLE_I[b][0][0]
            assert TABLE_I[a][1][1] < TABLE_I[b][1][0]

    def test_labels(self):
        assert [c.label for c in (SizeClass.VS, SizeClass.S, SizeClass.M, SizeClass.L)] == [
            "VS", "S", "M", "L",
        ]


class TestSampling:
    @pytest.mark.parametrize("size_class", list(SizeClass))
    def test_samples_within_class_range(self, size_class):
        (d_lo, d_hi), (e_lo, e_hi) = TABLE_I[size_class]
        for _ in range(50):
            data, exec_time = sample_task(RNG, size_class)
            assert d_lo <= data <= d_hi
            assert e_lo <= exec_time <= e_hi

    def test_scale_shrinks_both_dimensions(self):
        data, exec_time = sample_task(RNG, SizeClass.L, scale=0.1)
        (d_lo, d_hi), (e_lo, e_hi) = TABLE_I[SizeClass.L]
        assert data <= d_hi * 0.1 + 1
        assert exec_time <= e_hi * 0.1 + 1e-9

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            sample_task(RNG, SizeClass.S, scale=0.0)

    def test_sampling_deterministic_per_seed(self):
        a = sample_task(RandomStreams(4).get("w"), SizeClass.M)
        b = sample_task(RandomStreams(4).get("w"), SizeClass.M)
        assert a == b


class TestTaskJob:
    def test_task_ids_unique(self):
        t1 = Task(job_id=1, size_class=SizeClass.S, data_bytes=1, exec_time=1.0)
        t2 = Task(job_id=1, size_class=SizeClass.S, data_bytes=1, exec_time=1.0)
        assert t1.task_id != t2.task_id

    def test_negative_task_fields_rejected(self):
        with pytest.raises(WorkloadError):
            Task(job_id=1, size_class=SizeClass.S, data_bytes=-1, exec_time=1.0)
        with pytest.raises(WorkloadError):
            Task(job_id=1, size_class=SizeClass.S, data_bytes=1, exec_time=-1.0)

    def test_empty_job_rejected(self):
        with pytest.raises(WorkloadError):
            Job(device_name="node1", workload="serverless", tasks=[])

    def test_job_size_class(self):
        t = Task(job_id=0, size_class=SizeClass.M, data_bytes=1, exec_time=1.0)
        job = Job(device_name="node1", workload="serverless", tasks=[t])
        assert job.size_class == SizeClass.M

    def test_default_requirements_empty(self):
        t = Task(job_id=0, size_class=SizeClass.M, data_bytes=1, exec_time=1.0)
        assert t.requirements == frozenset()
