"""Workload plans: determinism, pairing, job/task accounting."""

import pytest

from repro.edge.task import SizeClass
from repro.edge.workload import (
    WORKLOAD_DISTRIBUTED,
    WORKLOAD_SERVERLESS,
    WorkloadSpec,
    build_plan,
)
from repro.errors import WorkloadError
from repro.simnet.random import RandomStreams


DEVICES = ["node1", "node2", "node3"]


def _spec(**kw):
    base = dict(
        workload=WORKLOAD_SERVERLESS,
        size_class=SizeClass.S,
        total_tasks=20,
        mean_interarrival=1.0,
    )
    base.update(kw)
    return WorkloadSpec(**base)


class TestSpec:
    def test_serverless_one_task_per_job(self):
        assert _spec().tasks_per_job == 1
        assert _spec().num_jobs == 20

    def test_distributed_three_tasks_per_job(self):
        spec = _spec(workload=WORKLOAD_DISTRIBUTED, total_tasks=20)
        assert spec.tasks_per_job == 3
        assert spec.num_jobs == 7  # ceil(20/3)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            _spec(workload="weird")
        with pytest.raises(WorkloadError):
            _spec(total_tasks=0)
        with pytest.raises(WorkloadError):
            _spec(mean_interarrival=0.0)
        with pytest.raises(WorkloadError):
            _spec(scale=-1.0)


class TestPlan:
    def test_total_tasks_exact(self):
        spec = _spec(workload=WORKLOAD_DISTRIBUTED, total_tasks=20)
        plan = build_plan(spec, DEVICES, RandomStreams(0).get("w"))
        assert sum(len(j.task_shapes) for j in plan.jobs) == 20
        # Last job carries the remainder (20 = 6*3 + 2).
        assert len(plan.jobs[-1].task_shapes) == 2

    def test_arrivals_strictly_increasing(self):
        plan = build_plan(_spec(), DEVICES, RandomStreams(0).get("w"))
        times = [j.arrival_time for j in plan.jobs]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_same_seed_identical_plan(self):
        p1 = build_plan(_spec(), DEVICES, RandomStreams(9).get("w"))
        p2 = build_plan(_spec(), DEVICES, RandomStreams(9).get("w"))
        assert p1.jobs == p2.jobs

    def test_different_seed_differs(self):
        p1 = build_plan(_spec(), DEVICES, RandomStreams(1).get("w"))
        p2 = build_plan(_spec(), DEVICES, RandomStreams(2).get("w"))
        assert p1.jobs != p2.jobs

    def test_devices_come_from_pool(self):
        plan = build_plan(_spec(), DEVICES, RandomStreams(0).get("w"))
        assert {j.device_name for j in plan.jobs} <= set(DEVICES)

    def test_start_time_offsets_arrivals(self):
        plan = build_plan(_spec(), DEVICES, RandomStreams(0).get("w"), start_time=100.0)
        assert plan.jobs[0].arrival_time > 100.0

    def test_task_shapes_respect_class(self):
        from repro.edge.task import TABLE_I

        plan = build_plan(_spec(size_class=SizeClass.M), DEVICES, RandomStreams(0).get("w"))
        (d_lo, d_hi), (e_lo, e_hi) = TABLE_I[SizeClass.M]
        for job in plan.jobs:
            for data, exec_time in job.task_shapes:
                assert d_lo <= data <= d_hi
                assert e_lo <= exec_time <= e_hi

    def test_empty_device_list_rejected(self):
        with pytest.raises(WorkloadError):
            build_plan(_spec(), [], RandomStreams(0).get("w"))

    def test_horizon(self):
        plan = build_plan(_spec(), DEVICES, RandomStreams(0).get("w"))
        assert plan.horizon == plan.jobs[-1].arrival_time
