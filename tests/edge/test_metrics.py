"""Task records and aggregation."""

import pytest

from repro.edge.metrics import MetricsCollector, TaskRecord
from repro.edge.task import SizeClass
from repro.errors import ExperimentError


def _record(task_id=1, size_class=SizeClass.S, submitted=0.0, transfer=(1.0, 3.0), result=10.0):
    r = TaskRecord(
        task_id=task_id,
        job_id=1,
        device="node1",
        workload="serverless",
        size_class=size_class,
        data_bytes=1000,
        exec_time=5.0,
        submitted_at=submitted,
    )
    if transfer:
        r.transfer_started, r.transfer_completed = transfer
    if result is not None:
        r.result_received_at = result
    return r


class TestTaskRecord:
    def test_transfer_time(self):
        assert _record().transfer_time == pytest.approx(2.0)

    def test_completion_time(self):
        assert _record().completion_time == pytest.approx(10.0)

    def test_incomplete_transfer_raises(self):
        r = _record(transfer=None)
        with pytest.raises(ExperimentError):
            _ = r.transfer_time

    def test_no_result_raises(self):
        r = _record(result=None)
        with pytest.raises(ExperimentError):
            _ = r.completion_time

    def test_complete_flag(self):
        assert _record().complete
        assert not _record(result=None).complete
        failed = _record()
        failed.failed = True
        assert not failed.complete


class TestCollector:
    def test_duplicate_rejected(self):
        mc = MetricsCollector()
        mc.add(_record(task_id=1))
        with pytest.raises(ExperimentError):
            mc.add(_record(task_id=1))

    def test_get_unknown_rejected(self):
        with pytest.raises(ExperimentError):
            MetricsCollector().get(9)

    def test_all_done_semantics(self):
        mc = MetricsCollector()
        mc.add(_record(task_id=1))
        pending = _record(task_id=2, result=None)
        mc.add(pending)
        assert not mc.all_done()
        pending.failed = True  # terminal failure counts as done
        assert mc.all_done()

    def test_mean_completion_by_class(self):
        mc = MetricsCollector()
        mc.add(_record(task_id=1, size_class=SizeClass.S, result=10.0))
        mc.add(_record(task_id=2, size_class=SizeClass.S, result=20.0))
        mc.add(_record(task_id=3, size_class=SizeClass.L, result=100.0))
        assert mc.mean_completion_time(SizeClass.S) == pytest.approx(15.0)
        assert mc.mean_completion_time() == pytest.approx(130.0 / 3)

    def test_mean_transfer(self):
        mc = MetricsCollector()
        mc.add(_record(task_id=1, transfer=(0.0, 2.0)))
        mc.add(_record(task_id=2, transfer=(0.0, 4.0)))
        assert mc.mean_transfer_time() == pytest.approx(3.0)

    def test_empty_aggregation_raises(self):
        with pytest.raises(ExperimentError):
            MetricsCollector().mean_completion_time()

    def test_by_size_class_partition(self):
        mc = MetricsCollector()
        mc.add(_record(task_id=1, size_class=SizeClass.S))
        mc.add(_record(task_id=2, size_class=SizeClass.M))
        groups = mc.by_size_class()
        assert {c: len(v) for c, v in groups.items()} == {SizeClass.S: 1, SizeClass.M: 1}

    def test_failed_list(self):
        mc = MetricsCollector()
        bad = _record(task_id=1, result=None)
        bad.failed = True
        mc.add(bad)
        assert len(mc.failed()) == 1
        assert mc.completed() == []

    def test_completion_times_map(self):
        mc = MetricsCollector()
        mc.add(_record(task_id=7, result=4.0))
        assert mc.completion_times() == {7: pytest.approx(4.0)}
