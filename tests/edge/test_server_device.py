"""Edge server execution and device submission flow, end to end."""

import pytest

from repro.core.baselines import NearestScheduler
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.edge.task import Job, SizeClass, Task
from repro.errors import WorkloadError
from repro.simnet.flows import MSS, ReliableTransfer
from repro.units import kb


def _task(data=kb(50), exec_time=0.5, requirements=frozenset()):
    return Task(
        job_id=0,
        size_class=SizeClass.VS,
        data_bytes=data,
        exec_time=exec_time,
        requirements=requirements,
    )


def _upload(sim, net, server_host, meta, nbytes=kb(10)):
    """Send a task upload directly to a server, bypassing the scheduler."""
    transfer = ReliableTransfer(
        net.host("h1"), net.address_of(server_host), 6000, nbytes, metadata=meta
    )
    transfer.start()
    return transfer


class TestEdgeServer:
    def test_executes_and_replies(self, sim, line3):
        net = line3
        server = EdgeServer(net.host("h2"))
        results = []
        device_host = net.host("h1")
        port = device_host.ephemeral_port()
        device_host.bind(17, port, lambda p: results.append(p.message))
        meta = {
            "task_id": 1, "exec_time": 0.5,
            "reply_addr": device_host.addr, "reply_port": port,
        }
        _upload(sim, net, "h2", meta)
        sim.run(until=30.0)
        assert server.tasks_received == 1
        assert server.tasks_completed == 1
        assert results[0][:3] == ("task_result", 1, True)

    def test_execution_takes_exec_time(self, sim, line3):
        net = line3
        EdgeServer(net.host("h2"))
        arrival = {}
        device_host = net.host("h1")
        port = device_host.ephemeral_port()
        device_host.bind(17, port, lambda p: arrival.setdefault("t", sim.now))
        meta = {"task_id": 1, "exec_time": 2.0,
                "reply_addr": device_host.addr, "reply_port": port}
        _upload(sim, net, "h2", meta, nbytes=MSS)
        sim.run(until=30.0)
        assert arrival["t"] > 2.0  # at least the execution time

    def test_concurrency_limit_queues(self, sim, line3):
        net = line3
        server = EdgeServer(net.host("h2"), max_concurrent=1)
        device_host = net.host("h1")
        port = device_host.ephemeral_port()
        done = []
        device_host.bind(17, port, lambda p: done.append((p.message[1], sim.now)))
        for tid in (1, 2):
            meta = {"task_id": tid, "exec_time": 1.0,
                    "reply_addr": device_host.addr, "reply_port": port}
            _upload(sim, net, "h2", meta, nbytes=MSS)
        sim.run(until=30.0)
        # The bare handler never ACKs, so results repeat; keep first per task.
        first = {}
        for tid, t in done:
            first.setdefault(tid, t)
        assert set(first) == {1, 2}
        # Serialized execution: second completion >= 1 s after the first.
        assert abs(first[2] - first[1]) >= 1.0

    def test_capability_mismatch_rejected(self, sim, line3):
        net = line3
        server = EdgeServer(net.host("h2"), capabilities={"cpu"})
        device_host = net.host("h1")
        port = device_host.ephemeral_port()
        results = []
        device_host.bind(17, port, lambda p: results.append(p.message))
        meta = {"task_id": 5, "exec_time": 0.1,
                "reply_addr": device_host.addr, "reply_port": port,
                "requirements": frozenset({"gpu"})}
        _upload(sim, net, "h2", meta, nbytes=MSS)
        sim.run(until=30.0)
        assert server.tasks_rejected == 1
        assert results[0][:3] == ("task_result", 5, False)

    def test_result_retransmitted_until_acked(self, sim, line3):
        """No ACK from the device: the server retries with backoff."""
        net = line3
        server = EdgeServer(net.host("h2"))
        device_host = net.host("h1")
        port = device_host.ephemeral_port()
        copies = []
        device_host.bind(17, port, lambda p: copies.append(sim.now))  # never acks
        meta = {"task_id": 1, "exec_time": 0.1,
                "reply_addr": device_host.addr, "reply_port": port}
        _upload(sim, net, "h2", meta, nbytes=MSS)
        sim.run(until=10.0)
        assert len(copies) >= 3
        assert server.result_retransmissions >= 2

    def test_non_task_flow_ignored(self, sim, line3):
        net = line3
        server = EdgeServer(net.host("h2"))
        transfer = ReliableTransfer(
            net.host("h1"), net.address_of("h2"), 6000, MSS, metadata={"foo": 1}
        )
        transfer.start()
        sim.run(until=10.0)
        assert server.tasks_received == 0
        assert transfer.done  # transport still completed

    def test_invalid_params_rejected(self, sim, line3):
        with pytest.raises(WorkloadError):
            EdgeServer(line3.host("h2"), max_concurrent=0)
        with pytest.raises(WorkloadError):
            EdgeServer(line3.host("h3"), result_size=10_000)


class TestEdgeDevice:
    def _system(self, sim, fig4_topo):
        """Nearest scheduler + servers + one device on node1."""
        net = fig4_topo.network
        worker_addrs = [net.address_of(n) for n in fig4_topo.worker_names]
        NearestScheduler(
            net.host(fig4_topo.scheduler_name), worker_addrs, net
        )
        for name in fig4_topo.worker_names:
            if name != "node1":
                EdgeServer(net.host(name))
        metrics = MetricsCollector()
        done_jobs = []
        device = EdgeDevice(
            net.host("node1"), fig4_topo.scheduler_addr, metrics,
            on_job_done=done_jobs.append,
        )
        return device, metrics, done_jobs

    @pytest.fixture
    def fig4(self, sim, streams):
        from repro.experiments.fig4_topology import build_fig4_network

        return build_fig4_network(sim, streams)

    def test_serverless_job_completes(self, sim, fig4):
        device, metrics, done_jobs = self._system(sim, fig4)
        job = Job(device_name="node1", workload="serverless", tasks=[_task()])
        device.submit_job(job)
        sim.run(until=120.0)
        assert len(done_jobs) == 1
        record = metrics.records[0]
        assert record.complete
        assert record.completion_time > record.transfer_time > 0
        # Nearest for node1 is node2 (same pod).
        assert record.server_addr == fig4.network.address_of("node2")

    def test_distributed_job_uses_distinct_servers(self, sim, fig4):
        device, metrics, _ = self._system(sim, fig4)
        job = Job(
            device_name="node1", workload="distributed",
            tasks=[_task(), _task(), _task()],
        )
        device.submit_job(job)
        sim.run(until=180.0)
        servers = {r.server_addr for r in metrics.records}
        assert len(servers) == 3
        assert all(r.complete for r in metrics.records)

    def test_wrong_device_rejected(self, sim, fig4):
        device, _, _ = self._system(sim, fig4)
        job = Job(device_name="node9", workload="serverless", tasks=[_task()])
        with pytest.raises(WorkloadError):
            device.submit_job(job)

    def test_all_timestamps_monotone(self, sim, fig4):
        device, metrics, _ = self._system(sim, fig4)
        device.submit_job(Job(device_name="node1", workload="serverless", tasks=[_task()]))
        sim.run(until=120.0)
        r = metrics.records[0]
        assert (
            r.submitted_at
            <= r.ranking_received_at
            <= r.transfer_started
            <= r.transfer_completed
            <= r.result_received_at
        )

    def test_job_counters(self, sim, fig4):
        device, _, _ = self._system(sim, fig4)
        device.submit_job(Job(device_name="node1", workload="serverless", tasks=[_task()]))
        sim.run(until=120.0)
        assert device.jobs_submitted == device.jobs_completed == 1
