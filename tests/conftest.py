"""Shared fixtures: simulators and small reference networks."""

from __future__ import annotations

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(12345)


@pytest.fixture
def dumbbell(sim, streams):
    """h1 -- s01 -- h2: the Fig. 3 calibration topology."""
    net = Network(sim, streams)
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
    net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
    net.finalize()
    return net


@pytest.fixture
def line3(sim, streams):
    """h1 -- s01 -- s02 -- {h2, h3}: two switches, a shared middle link."""
    net = Network(sim, streams)
    for h in ("h1", "h2", "h3"):
        net.add_host(h)
    for s in ("s01", "s02"):
        net.add_switch(s)
    net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
    net.connect("s01", "s02", rate_bps=mbps(20), delay=ms(10))
    net.attach_host("h2", "s02", fabric_rate_bps=mbps(20), delay=ms(10))
    net.attach_host("h3", "s02", fabric_rate_bps=mbps(20), delay=ms(10))
    net.finalize()
    return net


@pytest.fixture
def quiet_network_factory(sim):
    """Factory for networks with deterministic clocks and service times —
    tests asserting exact timings use this."""

    def make(streams=None) -> Network:
        return Network(
            sim,
            streams if streams is not None else RandomStreams(0),
            clock_offset_std=0.0,
            clock_jitter_std=0.0,
            switch_service_jitter=0.0,
        )

    return make
