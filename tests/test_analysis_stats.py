"""Statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, ecdf, mean, percentile, summarize


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


def test_mean_empty_rejected():
    with pytest.raises(ValueError):
        mean([])


def test_percentile():
    values = list(range(101))
    assert percentile(values, 50) == pytest.approx(50.0)
    assert percentile(values, 95) == pytest.approx(95.0)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([], 50)


def test_ecdf_basic():
    x, f = ecdf([3.0, 1.0, 2.0])
    assert list(x) == [1.0, 2.0, 3.0]
    assert list(f) == pytest.approx([1 / 3, 2 / 3, 1.0])


def test_ecdf_empty_rejected():
    with pytest.raises(ValueError):
        ecdf([])


def test_bootstrap_ci_contains_mean_for_tight_data():
    values = [5.0] * 50
    lo, hi = bootstrap_ci(values)
    assert lo == hi == pytest.approx(5.0)


def test_bootstrap_ci_orders_bounds():
    rng = np.random.default_rng(0)
    values = rng.normal(10, 2, size=100)
    lo, hi = bootstrap_ci(values, rng=np.random.default_rng(1))
    assert lo < float(np.mean(values)) < hi


def test_bootstrap_deterministic_with_rng():
    values = [1.0, 2.0, 3.0, 4.0]
    a = bootstrap_ci(values, rng=np.random.default_rng(7))
    b = bootstrap_ci(values, rng=np.random.default_rng(7))
    assert a == b


def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.p50 == pytest.approx(2.5)


def test_summarize_single_value_has_zero_std():
    assert summarize([3.0]).std == 0.0
