"""Probe sender, responder, and collector working over a real network."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import DEFAULT_PROBE_INTERVAL, ProbeResponder, ProbeSender
from repro.units import kbps, mbps, ms


class TestProbeSender:
    def test_sends_at_interval(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        ProbeResponder(net.host("h3"), collector=collector)
        sender = ProbeSender(net.host("h1"), [net.address_of("h3")], interval=0.1)
        sender.start()
        sim.run(until=1.0)
        assert sender.probes_sent == 10
        assert collector.reports_ingested == 10

    def test_default_interval_is_100ms(self):
        assert DEFAULT_PROBE_INTERVAL == 0.1

    def test_overhead_matches_paper(self, sim, line3):
        """Paper Section III-A: 10 pkt/s x 1.5 KB = 120 Kb/s per sender."""
        sender = ProbeSender(line3.host("h1"), [line3.address_of("h3")])
        assert sender.overhead_bps == pytest.approx(kbps(120))

    def test_excludes_self_target(self, sim, line3):
        sender = ProbeSender(
            line3.host("h1"),
            [line3.address_of("h1"), line3.address_of("h3")],
        )
        assert sender.targets == [line3.address_of("h3")]

    def test_no_targets_rejected(self, sim, line3):
        with pytest.raises(TelemetryError):
            ProbeSender(line3.host("h1"), [])

    def test_bad_interval_rejected(self, sim, line3):
        with pytest.raises(TelemetryError):
            ProbeSender(line3.host("h1"), [1], interval=0.0)

    def test_undersized_probe_rejected(self, sim, line3):
        with pytest.raises(TelemetryError):
            ProbeSender(line3.host("h1"), [1], probe_size=10)

    def test_multiple_targets_per_tick(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        ProbeResponder(net.host("h3"), collector=collector)
        ProbeResponder(net.host("h2"), collector_addr=net.address_of("h3"))
        sender = ProbeSender(
            net.host("h1"),
            [net.address_of("h2"), net.address_of("h3")],
            interval=0.1,
            probe_size=256,
        )
        sender.start()
        sim.run(until=1.0)
        assert sender.probes_sent == 20


class TestResponderAndCollector:
    def test_local_collector_path(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        responder = ProbeResponder(net.host("h3"), collector=collector)
        sender = ProbeSender(net.host("h1"), [net.address_of("h3")])
        sender.start()
        sim.run(until=0.5)
        assert responder.probes_terminated > 0
        assert responder.reports_forwarded == 0
        report = collector.last_report
        assert report.probe_src == net.address_of("h1")
        assert report.probe_dst == net.address_of("h3")
        assert [r.switch_id for r in report.records] == [1, 2]

    def test_remote_responder_forwards(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        responder = ProbeResponder(net.host("h2"), collector_addr=net.address_of("h3"))
        sender = ProbeSender(net.host("h1"), [net.address_of("h2")])
        sender.start()
        sim.run(until=0.5)
        assert responder.reports_forwarded > 0
        report = collector.last_report
        assert report.probe_dst == net.address_of("h2")
        assert [r.switch_id for r in report.records] == [1, 2]

    def test_responder_requires_destination(self, sim, line3):
        with pytest.raises(TelemetryError):
            ProbeResponder(line3.host("h2"))

    def test_final_link_latency_present(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        ProbeResponder(net.host("h3"), collector=collector)
        ProbeSender(net.host("h1"), [net.address_of("h3")]).start()
        sim.run(until=0.5)
        final = collector.last_report.final_link_latency
        assert final == pytest.approx(ms(10) + 1500 * 8 / mbps(20), abs=2e-3)

    def test_malformed_wrapped_report_counted(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        h1 = net.host("h1")
        from repro.telemetry.probe import PORT_PROBE_REPORT

        pkt = h1.new_packet(
            net.address_of("h3"), dst_port=PORT_PROBE_REPORT, message=("garbage",)
        )
        h1.send(pkt)
        sim.run(until=0.5)
        assert collector.reports_malformed == 1
        assert collector.reports_ingested == 0

    def test_wrapped_report_payload_not_bytes_counted(self, sim, line3):
        """A 7-tuple whose payload field isn't bytes is rejected without
        raising — the mesh path must survive a buggy or hostile forwarder."""
        net = line3
        collector = IntCollector(net.host("h3"))
        h1 = net.host("h1")
        from repro.telemetry.probe import PORT_PROBE_REPORT

        bad = ("src", "dst", 0, 0.0, 0.0, {"not": "bytes"}, None)
        h1.send(h1.new_packet(
            net.address_of("h3"), dst_port=PORT_PROBE_REPORT, message=bad
        ))
        sim.run(until=0.5)
        assert collector.reports_malformed == 1
        assert collector.reports_ingested == 0

    def test_wrapped_report_malformed_probe_payload_counted(self, sim, line3):
        """Well-formed wrapper around a garbage probe payload: counted as
        malformed by the inner decode, never raises out of the handler."""
        net = line3
        collector = IntCollector(net.host("h3"))
        h1 = net.host("h1")
        from repro.telemetry.probe import PORT_PROBE_REPORT

        wrapped = (1, 3, 0, 0.0, 0.1, b"NOTAPROBE", None)
        h1.send(h1.new_packet(
            net.address_of("h3"), dst_port=PORT_PROBE_REPORT, message=wrapped
        ))
        sim.run(until=0.5)
        assert collector.reports_malformed == 1
        assert collector.reports_ingested == 0

    def test_wrapped_report_accepts_bytearray_payload(self, sim, line3):
        """The mesh path round-trips a real probe payload carried as a
        bytearray (the other branch of the isinstance check)."""
        net = line3
        collector = IntCollector(net.host("h3"))
        responder = ProbeResponder(net.host("h2"), collector_addr=net.address_of("h3"))
        ProbeSender(net.host("h1"), [net.address_of("h2")]).start()
        sim.run(until=0.5)
        assert responder.reports_forwarded > 0
        assert collector.reports_malformed == 0
        # The newest forward may still be in flight at the cutoff.
        assert collector.reports_ingested >= responder.reports_forwarded - 1 > 0

    def test_malformed_probe_payload_counted(self, sim, line3):
        collector = IntCollector(line3.host("h3"))
        out = collector.ingest_probe(
            probe_src=1, probe_dst=2, seq=0, sent_at=0.0, received_at=0.0,
            payload=b"NOTAPROBE", final_link_latency=None,
        )
        assert out is None
        assert collector.reports_malformed == 1

    def test_subscribers_receive_reports(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        ProbeResponder(net.host("h3"), collector=collector)
        got = []
        collector.subscribe(got.append)
        ProbeSender(net.host("h1"), [net.address_of("h3")]).start()
        sim.run(until=0.35)
        assert len(got) == collector.reports_ingested > 0


class TestCollectorObservability:
    """With an Observability hub attached, malformed input is diagnosable."""

    def _attach(self, sim):
        from repro.obs import Observability

        obs = Observability()
        obs.bind_sim(sim)
        return obs

    def test_malformed_payload_emits_warning_with_context(self, sim, line3):
        obs = self._attach(sim)
        collector = IntCollector(line3.host("h3"))
        collector.ingest_probe(
            probe_src=7, probe_dst=2, seq=41, sent_at=0.0, received_at=0.0,
            payload=b"NOTAPROBE", final_link_latency=None,
        )
        warnings = obs.events.of_kind("warning")
        assert len(warnings) == 1
        fields = warnings[0].fields
        assert fields["reason"] == "malformed_probe_payload"
        assert fields["src"] == 7 and fields["seq"] == 41
        assert obs.metrics.counter("probe_reports_malformed_total").value == 1

    def test_malformed_wrapped_report_emits_warning(self, sim, line3):
        net = line3
        obs = self._attach(sim)
        collector = IntCollector(net.host("h3"))
        h1 = net.host("h1")
        from repro.telemetry.probe import PORT_PROBE_REPORT

        h1.send(h1.new_packet(
            net.address_of("h3"), dst_port=PORT_PROBE_REPORT, message=("garbage",)
        ))
        sim.run(until=0.5)
        assert collector.reports_malformed == 1
        warnings = obs.events.of_kind("warning")
        assert [e.fields["reason"] for e in warnings] == ["malformed_wrapped_report"]
        assert warnings[0].fields["src"] == net.address_of("h1")
        assert "seq" in warnings[0].fields

    def test_seq_gap_counts_lost_probes(self, sim, line3):
        obs = self._attach(sim)
        collector = IntCollector(line3.host("h3"))
        # Stream with stride 1: seqs 0, 1, then a jump to 4 -> 2 lost.
        for seq in (0, 1, 4):
            collector._track_loss(obs, src=1, dst=3, seq=seq)
        assert collector.probes_lost == 2
        lost = obs.events.of_kind("probe_lost")
        assert len(lost) == 1
        assert lost[0].fields["lost"] == 2

    def test_round_robin_stride_inferred(self, sim, line3):
        obs = self._attach(sim)
        collector = IntCollector(line3.host("h3"))
        # Two targets share one seq counter: this stream sees 0, 2, 4, ...
        for seq in (0, 2, 4, 6):
            collector._track_loss(obs, src=1, dst=3, seq=seq)
        assert collector.probes_lost == 0
        collector._track_loss(obs, src=1, dst=3, seq=10)  # skipped seq 8
        assert collector.probes_lost == 1

    def test_sender_restart_resets_stream(self, sim, line3):
        """Regression: a restarted sender (seq back to 0) must not book the
        climb back to the old front as thousands of lost probes."""
        obs = self._attach(sim)
        collector = IntCollector(line3.host("h3"))
        for seq in (500, 501, 502):
            collector._track_loss(obs, src=1, dst=3, seq=seq)
        # Sender reboots: stream restarts from 0 and counts up normally.
        for seq in (0, 1, 2, 3):
            collector._track_loss(obs, src=1, dst=3, seq=seq)
        assert collector.probes_lost == 0
        assert obs.events.of_kind("probe_lost") == []
        # The reset stream detects fresh gaps immediately.
        collector._track_loss(obs, src=1, dst=3, seq=6)
        assert collector.probes_lost == 2

    def test_duplicate_seq_ignored(self, sim, line3):
        obs = self._attach(sim)
        collector = IntCollector(line3.host("h3"))
        for seq in (0, 1, 1, 2):
            collector._track_loss(obs, src=1, dst=3, seq=seq)
        assert collector.probes_lost == 0

    def test_small_reorder_tolerated_without_reset(self, sim, line3):
        """A straggler within a few strides is reordering, not a restart:
        the stream keeps its front and its inferred stride."""
        obs = self._attach(sim)
        collector = IntCollector(line3.host("h3"))
        for seq in (0, 1, 2, 3):
            collector._track_loss(obs, src=1, dst=3, seq=seq)
        collector._track_loss(obs, src=1, dst=3, seq=2)  # late straggler
        assert collector._streams[(1, 3)] == (3, 1)
        collector._track_loss(obs, src=1, dst=3, seq=4)  # stream continues
        assert collector.probes_lost == 0
