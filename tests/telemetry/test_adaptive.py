"""Adaptive probing: rate control follows congestion state."""

import pytest

from repro.errors import TelemetryError
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.telemetry.adaptive import AdaptiveProbingController, ProbeRateListener
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.units import mbps


@pytest.fixture
def adaptive_system(sim, line3):
    """h1 probes h3 (collector); controller governs h1's rate."""
    net = line3
    collector = IntCollector(net.host("h3"))
    ProbeResponder(net.host("h3"), collector=collector)
    sender = ProbeSender(net.host("h1"), [net.address_of("h3")], interval=0.1)
    sender.start()
    ProbeRateListener(net.host("h1"), sender)
    controller = AdaptiveProbingController(
        net.host("h3"),
        collector,
        [net.address_of("h1")],
        fast_interval=0.1,
        slow_interval=1.0,
        cooldown=1.0,
    )
    return net, collector, sender, controller


def test_idle_network_slows_probing(sim, adaptive_system):
    net, collector, sender, controller = adaptive_system
    sim.run(until=5.0)
    assert controller.current_interval == 1.0
    assert sender.interval == 1.0
    assert controller.rate_changes == 1  # fast -> slow once


def test_congestion_restores_fast_probing(sim, adaptive_system):
    net, collector, sender, controller = adaptive_system
    sim.run(until=5.0)  # now slow
    UdpSink(net.host("h2"))
    flow = UdpCbrFlow(
        net.host("h1"), net.address_of("h2"), mbps(19),
        rng=RandomStreams(4).get("f"),
    )
    flow.run_for(4.0)
    sim.run(until=8.0)
    assert controller.current_interval == 0.1
    assert sender.interval == 0.1


def test_quiet_after_congestion_slows_again(sim, adaptive_system):
    net, collector, sender, controller = adaptive_system
    UdpSink(net.host("h2"))
    flow = UdpCbrFlow(
        net.host("h1"), net.address_of("h2"), mbps(19),
        rng=RandomStreams(4).get("f"),
    )
    flow.run_for(2.0)
    sim.run(until=2.5)
    assert controller.current_interval == 0.1
    sim.run(until=10.0)  # congestion over + cooldown elapsed
    assert controller.current_interval == 1.0


def test_overhead_reduced_when_idle(sim, adaptive_system):
    """Adaptive probing sends roughly 10x fewer probes on an idle network."""
    net, collector, sender, controller = adaptive_system
    sim.run(until=30.0)
    # ~first decision at 0.5s runs fast; after that 1/s.
    assert sender.probes_sent < 0.5 * (30.0 / 0.1)


def test_probe_sender_set_interval_validation(sim, line3):
    sender = ProbeSender(line3.host("h1"), [line3.address_of("h3")])
    with pytest.raises(TelemetryError):
        sender.set_interval(0.0)
    sender.set_interval(0.5)
    assert sender.interval == 0.5


def test_controller_validation(sim, line3):
    collector = IntCollector(line3.host("h3"))
    with pytest.raises(TelemetryError):
        AdaptiveProbingController(
            line3.host("h3"), collector, [1], fast_interval=2.0, slow_interval=1.0
        )
    with pytest.raises(TelemetryError):
        AdaptiveProbingController(
            line3.host("h3"), collector, [1], fast_interval=0.0
        )


def test_listener_ignores_garbage(sim, line3):
    net = line3
    sender = ProbeSender(net.host("h1"), [net.address_of("h3")], interval=0.1)
    listener = ProbeRateListener(net.host("h1"), sender)
    from repro.telemetry.adaptive import PORT_PROBE_CTRL

    h3 = net.host("h3")
    h3.send(h3.new_packet(net.address_of("h1"), dst_port=PORT_PROBE_CTRL, message="junk"))
    h3.send(h3.new_packet(net.address_of("h1"), dst_port=PORT_PROBE_CTRL,
                          message=("probe_rate", -5.0)))
    sim.run(until=1.0)
    assert listener.rate_updates == 0
    assert sender.interval == 0.1
