"""ProbeReport decoding helpers: path, latencies, port observations."""


from repro.p4.headers import IntHopRecord
from repro.telemetry.records import ProbeReport, host_node, switch_node


def _report():
    """Probe from host 10 through switches 1, 2 to host 20."""
    records = [
        IntHopRecord(switch_id=1, egress_port=2, max_qdepth=5, link_latency=0.010, egress_ts=1.0),
        IntHopRecord(switch_id=2, egress_port=0, max_qdepth=0, link_latency=0.011, egress_ts=1.01),
    ]
    return ProbeReport(
        probe_src=10,
        probe_dst=20,
        seq=1,
        sent_at=0.99,
        received_at=1.02,
        records=records,
        final_link_latency=0.0105,
        collected_at=1.02,
    )


def test_node_id_constructors_disjoint():
    assert switch_node(5) != host_node(5)
    assert switch_node(5) == ("sw", 5)
    assert host_node(5) == ("host", 5)


def test_path_nodes_order():
    assert _report().path_nodes() == [
        host_node(10), switch_node(1), switch_node(2), host_node(20),
    ]


def test_hop_count():
    assert _report().hop_count == 2


def test_link_latencies_alignment():
    """records[i].link_latency belongs to the link *upstream* of switch i;
    the final link gets the receiver-measured latency."""
    links = _report().link_latencies()
    assert links == [
        (host_node(10), switch_node(1), 0.010),
        (switch_node(1), switch_node(2), 0.011),
        (switch_node(2), host_node(20), 0.0105),
    ]


def test_port_observations_point_downstream():
    obs = _report().port_observations()
    assert obs == [
        (switch_node(1), switch_node(2), 2, 5),
        (switch_node(2), host_node(20), 0, 0),
    ]


def test_empty_report():
    report = ProbeReport(
        probe_src=1, probe_dst=2, seq=0, sent_at=0.0, received_at=0.0,
        records=[], final_link_latency=None,
    )
    assert report.path_nodes() == [host_node(1), host_node(2)]
    assert report.link_latencies() == [(host_node(1), host_node(2), None)]
    assert report.port_observations() == []
