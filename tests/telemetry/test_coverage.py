"""Probe route optimization (greedy set cover over directed ports)."""

import pytest

from repro.errors import TelemetryError
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.random import RandomStreams
from repro.telemetry.coverage import (
    all_fabric_ports,
    coverage_of,
    greedy_probe_cover,
    ports_covered_by_pair,
)


@pytest.fixture
def fig4(sim):
    return build_fig4_network(sim, RandomStreams(0))


class TestPortSets:
    def test_pair_coverage_follows_route(self, sim, fig4):
        net = fig4.network
        covered = ports_covered_by_pair(net, "node7", "node8")
        # Route: node7 - s11 - s04 - s12 - node8.
        assert covered == {("s11", "s04"), ("s04", "s12"), ("s12", "node8")}

    def test_coverage_is_directional(self, sim, fig4):
        net = fig4.network
        forward = ports_covered_by_pair(net, "node7", "node8")
        reverse = ports_covered_by_pair(net, "node8", "node7")
        assert forward.isdisjoint(reverse)

    def test_all_fabric_ports_count(self, sim, fig4):
        # 8 leaf-core links + 8 host links + 4 ring links = 20 links; each
        # link contributes switch-egress ports at its switch endpoints:
        # host links 1 each (8), leaf-core 2 each (16), ring 2 each (8).
        assert len(all_fabric_ports(fig4.network)) == 32

    def test_union_coverage(self, sim, fig4):
        net = fig4.network
        pairs = [("node7", "node8"), ("node8", "node7")]
        covered = coverage_of(net, pairs)
        assert len(covered) == 6


class TestGreedyCover:
    def test_cover_is_complete(self, sim, fig4):
        net = fig4.network
        pairs = greedy_probe_cover(net)
        covered = coverage_of(net, pairs)
        # Everything reachable by host-pair probes is covered.
        reachable = coverage_of(
            net,
            [(a, b) for a in net.hosts for b in net.hosts if a != b],
        )
        assert covered == reachable

    def test_cover_much_smaller_than_mesh(self, sim, fig4):
        pairs = greedy_probe_cover(fig4.network)
        mesh_size = 8 * 7
        assert len(pairs) < mesh_size / 2  # at least 2x cheaper than mesh

    def test_cover_deterministic(self, sim):
        t1 = build_fig4_network(sim, RandomStreams(0))
        pairs1 = greedy_probe_cover(t1.network)
        pairs2 = greedy_probe_cover(t1.network)
        assert pairs1 == pairs2

    def test_restricted_sources(self, sim, fig4):
        """Probing only from two hosts covers what those hosts can reach."""
        net = fig4.network
        pairs = greedy_probe_cover(net, sources=["node1", "node8"])
        assert all(src in ("node1", "node8") for src, _dst in pairs)
        covered = coverage_of(net, pairs)
        reachable = coverage_of(net, [("node1", "node8"), ("node8", "node1")])
        assert covered >= reachable

    def test_unreachable_required_port_rejected(self, sim, fig4):
        net = fig4.network
        with pytest.raises(TelemetryError):
            greedy_probe_cover(net, required={("s01", "mars")})

    def test_needs_two_hosts(self, sim, fig4):
        with pytest.raises(TelemetryError):
            greedy_probe_cover(fig4.network, sources=["node1"])

    def test_optimized_layout_feeds_real_probing(self, sim, fig4):
        """End-to-end: run probes only on the optimized pairs and verify the
        scheduler's store learns the same directed fabric ports."""
        from repro.core import TelemetryStore
        from repro.telemetry.collector import IntCollector
        from repro.telemetry.probe import ProbeResponder, ProbeSender

        net = fig4.network
        pairs = greedy_probe_cover(net)
        collector = IntCollector(net.host(fig4.scheduler_name))
        store = TelemetryStore(sim)
        collector.subscribe(store.update)
        for name in fig4.node_names:
            host = net.host(name)
            if name == fig4.scheduler_name:
                ProbeResponder(host, collector=collector)
            else:
                ProbeResponder(host, collector_addr=fig4.scheduler_addr)
        by_src = {}
        for src, dst in pairs:
            by_src.setdefault(src, []).append(net.address_of(dst))
        for src, targets in by_src.items():
            ProbeSender(net.host(src), targets, probe_size=256).start()
        sim.run(until=1.5)
        # Every switch adjacency in the optimized cover is in the store.
        expected = coverage_of(net, pairs)
        sw_edges = {
            (u, v)
            for u, v in store.topology.graph.edges
            if u[0] == "sw"
        }
        # Map names -> inferred ids for comparison.
        def to_id(name):
            if name in net.switches:
                return ("sw", net.switch(name).switch_id)
            return ("host", net.address_of(name))

        expected_ids = {(to_id(u), to_id(v)) for u, v in expected}
        assert expected_ids <= set(store.topology.graph.edges)
