"""Failure injection: the control protocols must survive loss, absence,
and hostile input — the simulator genuinely drops packets under load."""

import pytest

from repro.core import NetworkAwareScheduler
from repro.core.client import SchedulerClient
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.edge.task import Job, SizeClass, Task
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.addressing import PORT_PROBE, PROTO_UDP
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.packet import FLAG_PROBE, MTU
from repro.simnet.random import RandomStreams
from repro.telemetry.collector import IntCollector
from repro.telemetry.probe import PORT_PROBE_REPORT, ProbeResponder, ProbeSender
from repro.units import kb, mbps


def _task(data=kb(50), exec_time=0.2):
    return Task(job_id=0, size_class=SizeClass.VS, data_bytes=data, exec_time=exec_time)


class TestSchedulerAbsence:
    def test_no_scheduler_marks_tasks_failed(self, sim, streams):
        """Scheduler host is down (nothing bound on the port): the device
        retries, gives up, and marks the job's tasks failed — no hang."""
        topo = build_fig4_network(sim, streams)
        net = topo.network
        metrics = MetricsCollector()
        device = EdgeDevice(net.host("node1"), topo.scheduler_addr, metrics)
        device.submit_job(Job(device_name="node1", workload="serverless", tasks=[_task()]))
        sim.run(until=120.0)
        assert metrics.all_done()
        assert len(metrics.failed()) == 1
        assert device.client.failures == 1

    def test_queries_survive_congested_control_path(self, sim, streams):
        """Heavy cross-traffic on the scheduler's uplink loses some query or
        response datagrams; retries must still land every query."""
        topo = build_fig4_network(sim, streams)
        net = topo.network
        worker_addrs = [net.address_of(n) for n in topo.worker_names]
        from repro.core.baselines import NearestScheduler

        NearestScheduler(net.host(topo.scheduler_name), worker_addrs, net)
        UdpSink(net.host(topo.scheduler_name))
        # Two converging floods toward the scheduler's leaf.
        for i, src in enumerate(("node1", "node3")):
            UdpCbrFlow(
                net.host(src), topo.scheduler_addr, mbps(12),
                rng=RandomStreams(20 + i).get("f"),
            ).run_for(30.0)
        client = SchedulerClient(net.host("node7"), topo.scheduler_addr)
        results = []
        for i in range(10):
            sim.schedule(1.0 + i, lambda: client.query("delay", results.append))
        sim.run(until=90.0)
        assert len(results) == 10
        assert all(r for r in results)  # every query eventually answered


class TestHostileTelemetry:
    def test_corrupted_probe_payload_dropped_not_crashed(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        ProbeResponder(net.host("h3"), collector=collector)
        h1 = net.host("h1")
        # A probe-flagged packet with garbage payload.
        pkt = h1.new_packet(
            net.address_of("h3"),
            protocol=PROTO_UDP,
            dst_port=PORT_PROBE,
            size_bytes=MTU,
            payload=b"\xde\xad\xbe\xef" * 8,
            flags=FLAG_PROBE,
        )
        pkt.size_bytes = MTU
        h1.send(pkt)
        sim.run(until=1.0)
        assert collector.reports_malformed >= 1
        assert collector.reports_ingested == 0

    def test_spoofed_report_message_ignored(self, sim, line3):
        net = line3
        collector = IntCollector(net.host("h3"))
        h1 = net.host("h1")
        h1.send(h1.new_packet(
            net.address_of("h3"), dst_port=PORT_PROBE_REPORT,
            message=("not", "a", "report"),
        ))
        h1.send(h1.new_packet(
            net.address_of("h3"), dst_port=PORT_PROBE_REPORT,
            message=(1, 2, 3, 4.0, 5.0, "payload-not-bytes", None),
        ))
        sim.run(until=1.0)
        assert collector.reports_malformed == 2

    def test_scheduler_ignores_garbage_queries_under_probing(self, sim, streams):
        topo = build_fig4_network(sim, streams)
        net = topo.network
        worker_addrs = [net.address_of(n) for n in topo.worker_names]
        sched = NetworkAwareScheduler(
            net.host(topo.scheduler_name), worker_addrs,
            link_capacity_bps=topo.fabric_rate_bps,
        )
        ProbeResponder(net.host(topo.scheduler_name), collector=sched.collector)
        ProbeSender(net.host("node1"), [topo.scheduler_addr]).start()
        h = net.host("node2")
        for junk in ("hi", 42, ("sched_query",), ("sched_query", 1)):
            h.send(h.new_packet(topo.scheduler_addr, dst_port=5000, message=junk))
        sim.run(until=2.0)
        assert sched.queries_served == 0
        assert sched.collector.reports_ingested > 0  # telemetry unharmed


class TestDataPathLoss:
    def test_transfer_through_saturated_port_completes(self, sim, streams):
        """A task upload fighting a 19 Mb/s flood on its bottleneck: heavy
        loss, but the transport must finish and the task must complete."""
        topo = build_fig4_network(sim, streams)
        net = topo.network
        from repro.core.baselines import NearestScheduler

        worker_addrs = [net.address_of(n) for n in topo.worker_names]
        NearestScheduler(net.host(topo.scheduler_name), worker_addrs, net)
        for name in topo.worker_names:
            EdgeServer(net.host(name))
            UdpSink(net.host(name))
        UdpCbrFlow(
            net.host("node1"), net.address_of("node2"), mbps(19),
            rng=RandomStreams(30).get("f"),
        ).run_for(60.0)
        metrics = MetricsCollector()
        device = EdgeDevice(net.host("node1"), topo.scheduler_addr, metrics)
        # Nearest sends node1's task to node2 — straight into the flood.
        device.submit_job(Job(
            device_name="node1", workload="serverless",
            tasks=[_task(data=kb(300), exec_time=0.1)],
        ))
        sim.run(until=300.0)
        record = metrics.records[0]
        assert record.complete
        assert record.transfer_time > 0.3  # it suffered...
        # ...and retransmissions actually happened somewhere in the system.


class TestStaleness:
    def test_probing_stopped_means_no_congestion_claims(self, sim, streams):
        """If probing dies, stale readings must age out rather than pin the
        last observed congestion forever."""
        topo = build_fig4_network(sim, streams)
        net = topo.network
        worker_addrs = [net.address_of(n) for n in topo.worker_names]
        sched = NetworkAwareScheduler(
            net.host(topo.scheduler_name), worker_addrs,
            link_capacity_bps=topo.fabric_rate_bps, staleness=2.0,
        )
        all_addrs = [net.address_of(n) for n in topo.node_names]
        senders = []
        for name in topo.node_names:
            host = net.host(name)
            if name == topo.scheduler_name:
                ProbeResponder(host, collector=sched.collector)
            else:
                ProbeResponder(host, collector_addr=topo.scheduler_addr)
            s = ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256)
            s.start()
            senders.append(s)
        for name in topo.node_names:
            UdpSink(net.host(name))
        for i, src in enumerate(("node3", "node5")):
            UdpCbrFlow(
                net.host(src), net.address_of("node8"), mbps(12),
                rng=RandomStreams(40 + i).get("f"),
            ).run_for(3.0)
        sim.run(until=2.0)
        congested = dict(sched.rank(net.address_of("node7"), "bandwidth"))
        node8 = net.address_of("node8")
        assert congested[node8] < topo.fabric_rate_bps * 0.8
        # Probing dies; congestion also ends.  After staleness, estimates
        # must return to "no evidence of congestion".
        for s in senders:
            s.stop()
        sim.run(until=10.0)
        recovered = dict(sched.rank(net.address_of("node7"), "bandwidth"))
        assert recovered[node8] == pytest.approx(topo.fabric_rate_bps)
