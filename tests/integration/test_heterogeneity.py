"""Heterogeneous servers end to end: GPU tasks land only on GPU servers."""

import pytest

from repro.core.extensions import HeterogeneityAwareScheduler
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.edge.task import Job, SizeClass, Task
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.random import RandomStreams
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.units import kb


@pytest.fixture
def het_system(sim):
    """Fig. 4 with GPU capability only on node4 and node8."""
    topo = build_fig4_network(sim, RandomStreams(7))
    net = topo.network
    gpu_nodes = {"node4", "node8"}
    capabilities = {}
    for name in topo.worker_names:
        caps = {"gpu"} if name in gpu_nodes else set()
        EdgeServer(net.host(name), capabilities=caps)
        capabilities[net.address_of(name)] = caps
    worker_addrs = [net.address_of(n) for n in topo.worker_names]
    sched = HeterogeneityAwareScheduler(
        net.host(topo.scheduler_name), worker_addrs,
        link_capacity_bps=topo.fabric_rate_bps,
        capabilities=capabilities,
    )
    all_addrs = [net.address_of(n) for n in topo.node_names]
    for name in topo.node_names:
        host = net.host(name)
        if name == topo.scheduler_name:
            ProbeResponder(host, collector=sched.collector)
        else:
            ProbeResponder(host, collector_addr=topo.scheduler_addr)
        ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()
    return topo, sched, gpu_nodes


def _gpu_job(device, n_tasks=1):
    tasks = [
        Task(
            job_id=0, size_class=SizeClass.VS, data_bytes=kb(50),
            exec_time=0.2, requirements=frozenset({"gpu"}),
        )
        for _ in range(n_tasks)
    ]
    return Job(device_name=device, workload="serverless" if n_tasks == 1 else "distributed",
               tasks=tasks)


def test_gpu_task_lands_on_gpu_server(sim, het_system):
    topo, sched, gpu_nodes = het_system
    net = topo.network
    metrics = MetricsCollector()
    device = EdgeDevice(
        net.host("node1"), topo.scheduler_addr, metrics,
        metric=("delay", frozenset({"gpu"})),
    )
    sim.schedule(1.0, device.submit_job, _gpu_job("node1"))
    sim.run(until=60.0)
    record = metrics.records[0]
    assert record.complete
    assert net.name_of(record.server_addr) in gpu_nodes


def test_two_gpu_tasks_use_both_gpu_servers(sim, het_system):
    topo, sched, gpu_nodes = het_system
    net = topo.network
    metrics = MetricsCollector()
    device = EdgeDevice(
        net.host("node1"), topo.scheduler_addr, metrics,
        metric=("delay", frozenset({"gpu"})),
    )
    sim.schedule(1.0, device.submit_job, _gpu_job("node1", n_tasks=2))
    sim.run(until=60.0)
    servers = {net.name_of(r.server_addr) for r in metrics.records}
    assert servers == gpu_nodes
    assert all(r.complete for r in metrics.records)


def test_plain_task_unrestricted(sim, het_system):
    topo, sched, gpu_nodes = het_system
    net = topo.network
    metrics = MetricsCollector()
    device = EdgeDevice(net.host("node1"), topo.scheduler_addr, metrics, metric="delay")
    task = Task(job_id=0, size_class=SizeClass.VS, data_bytes=kb(50), exec_time=0.2)
    job = Job(device_name="node1", workload="serverless", tasks=[task])
    sim.schedule(1.0, device.submit_job, job)
    sim.run(until=60.0)
    record = metrics.records[0]
    assert record.complete
    # Unrestricted tasks go to the nearest-by-delay server (node2, in pod).
    assert net.name_of(record.server_addr) == "node2"


def test_unsatisfiable_requirement_fails_cleanly(sim, het_system):
    topo, sched, gpu_nodes = het_system
    net = topo.network
    metrics = MetricsCollector()
    device = EdgeDevice(
        net.host("node1"), topo.scheduler_addr, metrics,
        metric=("delay", frozenset({"quantum"})),
    )
    task = Task(
        job_id=0, size_class=SizeClass.VS, data_bytes=kb(50), exec_time=0.2,
        requirements=frozenset({"quantum"}),
    )
    job = Job(device_name="node1", workload="serverless", tasks=[task])
    sim.schedule(1.0, device.submit_job, job)
    sim.run(until=60.0)
    record = metrics.records[0]
    assert record.failed
    assert not record.complete


def test_server_side_double_check(sim, het_system):
    """Even if a mis-ranked task reaches a non-GPU server, the server
    rejects it instead of silently executing."""
    topo, sched, gpu_nodes = het_system
    net = topo.network
    from repro.simnet.flows import ReliableTransfer

    results = []
    h1 = net.host("node1")
    port = h1.ephemeral_port()
    h1.bind(17, port, lambda p: results.append(p.message))
    transfer = ReliableTransfer(
        h1, net.address_of("node2"), 6000, kb(10),
        metadata={
            "task_id": 999, "exec_time": 0.1,
            "reply_addr": h1.addr, "reply_port": port,
            "requirements": frozenset({"gpu"}),
        },
    )
    transfer.start()
    sim.run(until=30.0)
    assert results
    assert results[0][:3] == ("task_result", 999, False)
