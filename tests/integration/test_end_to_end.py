"""End-to-end integration: congestion -> INT -> ranking -> placement.

These tests build deterministic congestion scenarios and verify the entire
pipeline reacts the way the paper describes, across module boundaries."""

import pytest

from repro.core import NetworkAwareScheduler
from repro.edge.device import EdgeDevice
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.edge.task import Job, SizeClass, Task
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.random import RandomStreams
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.units import kb, mbps


@pytest.fixture
def system(sim):
    """Fig. 4 topology + servers + aware scheduler + mesh probing."""
    topo = build_fig4_network(sim, RandomStreams(3))
    net = topo.network
    worker_addrs = [net.address_of(n) for n in topo.worker_names]
    for name in topo.worker_names:
        EdgeServer(net.host(name))
        UdpSink(net.host(name))
    UdpSink(net.host(topo.scheduler_name))
    scheduler = NetworkAwareScheduler(
        net.host(topo.scheduler_name), worker_addrs,
        link_capacity_bps=topo.fabric_rate_bps,
    )
    all_addrs = [net.address_of(n) for n in topo.node_names]
    for name in topo.node_names:
        host = net.host(name)
        if name == topo.scheduler_name:
            ProbeResponder(host, collector=scheduler.collector)
        else:
            ProbeResponder(host, collector_addr=topo.scheduler_addr)
        ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()
    return topo, scheduler


def _congest(net, src, dst, rate, start, duration, seed=9):
    UdpCbrFlow(
        net.host(src), net.address_of(dst), rate,
        rng=RandomStreams(seed).get("cbr"),
    ).run_for(duration, delay=start)


def _congest_pod4(net, start, duration):
    """Two 12 Mb/s streams from different pods converge on node8: their
    join point (s04 -> s12) persistently oversubscribes, the way the
    paper's random background flows congest 'different regions'."""
    _congest(net, "node3", "node8", mbps(12), start, duration, seed=9)
    _congest(net, "node5", "node8", mbps(12), start, duration, seed=10)


class TestCongestionAvoidance:
    def test_delay_ranking_dodges_congested_pod(self, sim, system):
        topo, scheduler = system
        net = topo.network
        # Saturate the path into node8's pod while node7 queries.
        _congest_pod4(net, start=0.5, duration=8.0)
        sim.run(until=3.0)
        ranking = scheduler.rank(net.address_of("node7"), "delay")
        node8 = net.address_of("node8")
        # node8 is node7's nearest, but must not top the list under load.
        assert ranking[0][0] != node8
        ranking_by_addr = dict(ranking)
        assert ranking_by_addr[node8] > ranking[0][1]

    def test_ranking_recovers_after_congestion(self, sim, system):
        topo, scheduler = system
        net = topo.network
        _congest_pod4(net, start=0.5, duration=3.0)
        sim.run(until=8.0)  # congestion ended at 3.5, telemetry staleness 2 s
        ranking = scheduler.rank(net.address_of("node7"), "delay")
        assert ranking[0][0] == net.address_of("node8")

    def test_bandwidth_estimate_drops_under_load(self, sim, system):
        topo, scheduler = system
        net = topo.network
        sim.run(until=1.0)
        idle = dict(scheduler.rank(net.address_of("node7"), "bandwidth"))
        _congest_pod4(net, start=0.0, duration=6.0)
        sim.run(until=4.0)
        loaded = dict(scheduler.rank(net.address_of("node7"), "bandwidth"))
        node8 = net.address_of("node8")
        assert loaded[node8] < idle[node8] * 0.7

    def test_task_placed_away_from_congestion(self, sim, system):
        topo, scheduler = system
        net = topo.network
        _congest_pod4(net, start=0.5, duration=20.0)
        metrics = MetricsCollector()
        device = EdgeDevice(net.host("node7"), topo.scheduler_addr, metrics, metric="delay")
        task = Task(job_id=0, size_class=SizeClass.VS, data_bytes=kb(100), exec_time=0.2)
        job = Job(device_name="node7", workload="serverless", tasks=[task])
        sim.schedule(2.0, device.submit_job, job)
        sim.run(until=30.0)
        record = metrics.records[0]
        assert record.complete
        assert record.server_addr != net.address_of("node8")


class TestTelemetryPlane:
    def test_mesh_probing_learns_every_directed_host_pair(self, sim, system):
        topo, scheduler = system
        sim.run(until=1.0)
        store = scheduler.store
        hosts = [("host", topo.network.address_of(n)) for n in topo.node_names]
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    path = store.topology.path(src, dst)
                    assert path[0] == src and path[-1] == dst

    def test_inferred_paths_match_installed_routes(self, sim, system):
        """The scheduler's idea of the data path must agree with the routes
        the control plane installed (consistent tie-breaking)."""
        topo, scheduler = system
        net = topo.network
        sim.run(until=1.0)
        for a in ("node1", "node7", "node3"):
            for b in ("node4", "node8", "node5"):
                if a == b:
                    continue
                true_path = net.shortest_path(a, b)
                inferred = scheduler.store.topology.path(
                    ("host", net.address_of(a)), ("host", net.address_of(b))
                )
                inferred_names = [
                    net.name_of(i[1]) if i[0] == "host" else net.switch_by_id(i[1]).name
                    for i in inferred
                ]
                assert inferred_names == true_path, (a, b)

    def test_probe_overhead_negligible(self, sim, system):
        """Mesh probing with 256 B probes: per-uplink offered load stays
        below 1 % of the fabric rate."""
        topo, scheduler = system
        net = topo.network
        sim.run(until=5.0)
        for name in topo.node_names:
            link = net.host(name).ports[0].link
            rate = link.bytes_carried["a"] * 8.0 / 5.0
            assert rate < 0.02 * topo.fabric_rate_bps
