"""Acceptance: graceful degradation keeps jobs alive through a server crash.

The server-crash scenario kills the edge server on node7 mid-run on the
Fig. 4 topology.  With degradation on, the network-aware pipeline must
complete at least 90% of tasks by retrying lost ones against the next
ranked server.  The ablation (same faults, no retry/failover/quarantine)
must demonstrably lose tasks — otherwise the scenario proves nothing.
"""

import pytest

from repro.experiments.fault_scenarios import (
    assert_survival,
    compare_degradation,
    run_fault_scenario,
)
from repro.experiments.harness import (
    ExperimentConfig,
    POLICY_AWARE,
    SMOKE_SCALE,
)
from repro.errors import ExperimentError
from repro.faults import builtin_plan


@pytest.fixture(scope="module")
def crash_rows():
    """Server-crash grid for the aware policy: degradation on and off,
    identical seed and workload in both cells."""
    return compare_degradation(
        builtin_plan("server-crash"),
        policies=(POLICY_AWARE,),
        base_config=ExperimentConfig(scale=SMOKE_SCALE, seed=0),
    )


class TestServerCrashSurvival:
    def test_degraded_run_completes_90_percent(self, crash_rows):
        [degraded] = [r for r in crash_rows if r.degradation]
        assert degraded.total == SMOKE_SCALE.total_tasks
        assert degraded.completion_rate >= 0.90
        assert degraded.tasks_failed == 0

    def test_recovery_is_really_retry_and_failover(self, crash_rows):
        """The completions credited to degradation must come from the retry
        machinery actually firing, not from the crash missing all tasks."""
        [degraded] = [r for r in crash_rows if r.degradation]
        assert degraded.faults_fired >= 1
        assert degraded.tasks_retried >= 1
        assert degraded.failovers >= 1

    def test_ablation_demonstrably_loses_tasks(self, crash_rows):
        [ablated] = [r for r in crash_rows if not r.degradation]
        assert ablated.tasks_failed > 0
        assert ablated.completion_rate < 1.0

    def test_degradation_beats_ablation(self, crash_rows):
        [degraded] = [r for r in crash_rows if r.degradation]
        [ablated] = [r for r in crash_rows if not r.degradation]
        assert degraded.tasks_completed > ablated.tasks_completed

    def test_assert_survival_guard(self, crash_rows):
        assert_survival(crash_rows, policy=POLICY_AWARE, min_rate=0.90)
        with pytest.raises(ExperimentError):
            assert_survival(crash_rows, policy=POLICY_AWARE, min_rate=1.01)
        with pytest.raises(ExperimentError):
            assert_survival(crash_rows, policy="nearest", min_rate=0.5)


class TestOtherScenariosSurvive:
    @pytest.mark.parametrize("scenario", ["link-flap", "probe-blackout"])
    def test_degraded_aware_run_completes(self, scenario):
        result = run_fault_scenario(
            builtin_plan(scenario),
            policy=POLICY_AWARE,
            base_config=ExperimentConfig(scale=SMOKE_SCALE, seed=0),
        )
        assert result.faults_fired >= 1
        assert result.tasks_completed > 0
        assert result.metrics.all_done()
