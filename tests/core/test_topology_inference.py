"""Inferred topology: learning from path observations, path queries."""

import pytest

from repro.core.topology_inference import InferredTopology
from repro.errors import SchedulingError
from repro.telemetry.records import host_node, switch_node


H = host_node
S = switch_node


def _learned():
    """Two pods: h1-s1-s3-s2-h2 and h1-s1-s3-s4-h3 style paths."""
    topo = InferredTopology()
    topo.observe_path([H(1), S(1), S(3), S(2), H(2)])
    topo.observe_path([H(2), S(2), S(3), S(1), H(1)])
    topo.observe_path([H(1), S(1), S(3), S(4), H(3)])
    return topo


def test_observe_creates_directed_edges():
    topo = InferredTopology()
    topo.observe_path([H(1), S(1), H(2)])
    assert topo.has_edge(H(1), S(1))
    assert topo.has_edge(S(1), H(2))
    assert not topo.has_edge(S(1), H(1))  # reverse not observed


def test_node_classification():
    topo = _learned()
    assert topo.known_hosts() == {H(1), H(2), H(3)}
    assert topo.known_switches() == {S(1), S(2), S(3), S(4)}


def test_repeated_observation_idempotent():
    topo = InferredTopology()
    topo.observe_path([H(1), S(1), H(2)])
    edges_before = topo.edge_count()
    topo.observe_path([H(1), S(1), H(2)])
    assert topo.edge_count() == edges_before


def test_path_found():
    topo = _learned()
    assert topo.path(H(1), H(2)) == [H(1), S(1), S(3), S(2), H(2)]


def test_path_never_transits_host():
    """h2 -> h3 would be shortest via h1's edges if hosts forwarded; the
    learned directed graph must route around via switches only."""
    topo = _learned()
    path = topo.path(H(2), H(3))
    assert path[0] == H(2) and path[-1] == H(3)
    assert all(n[0] == "sw" for n in path[1:-1])


def test_unknown_endpoint_rejected():
    topo = _learned()
    with pytest.raises(SchedulingError):
        topo.path(H(99), H(1))
    with pytest.raises(SchedulingError):
        topo.path(H(1), H(99))


def test_unreachable_rejected():
    topo = InferredTopology()
    topo.observe_path([H(1), S(1), H(2)])
    topo.observe_path([H(3), S(2), H(4)])  # disjoint island
    with pytest.raises(SchedulingError):
        topo.path(H(1), H(4))


def test_trivial_path():
    topo = _learned()
    assert topo.path(H(1), H(1)) == [H(1)]


def test_min_hop_tie_breaks_by_node_id():
    """Two equal-hop routes: the one through the smaller switch id wins."""
    topo = InferredTopology()
    topo.observe_path([H(1), S(1), S(5), S(4), H(2)])
    topo.observe_path([H(1), S(1), S(2), S(4), H(2)])
    assert topo.path(H(1), H(2)) == [H(1), S(1), S(2), S(4), H(2)]


def test_reachable_hosts_sorted_and_excludes_origin():
    topo = _learned()
    assert topo.reachable_hosts(H(1)) == [H(2), H(3)]


def test_reachable_hosts_respects_direction():
    topo = InferredTopology()
    topo.observe_path([H(1), S(1), H(2)])  # only h1 -> h2 direction known
    assert topo.reachable_hosts(H(2)) == []
