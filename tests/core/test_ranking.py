"""Algorithm 1 and bandwidth ranking."""

import math

import pytest

from repro.core.estimators import BandwidthEstimator, DelayEstimator
from repro.core.ranking import rank_by_bandwidth, rank_by_delay
from repro.core.telemetry_store import TelemetryStore
from repro.p4.headers import IntHopRecord
from repro.telemetry.records import ProbeReport, host_node, switch_node
from repro.units import mbps

H = host_node
S = switch_node


@pytest.fixture
def store(sim):
    """Star: h1 can reach h2 (via s1-s2), h3 (via s1-s3); s1->s2 congested."""
    store = TelemetryStore(sim)

    def feed(dst_host, via_switch, qdepth):
        records = [
            IntHopRecord(switch_id=1, egress_port=via_switch, max_qdepth=qdepth,
                         link_latency=0.010, egress_ts=0.0),
            IntHopRecord(switch_id=via_switch, egress_port=0, max_qdepth=0,
                         link_latency=0.010, egress_ts=0.0),
        ]
        store.update(ProbeReport(
            probe_src=1, probe_dst=dst_host, seq=0, sent_at=0.0, received_at=0.0,
            records=records, final_link_latency=0.010,
        ))

    feed(dst_host=2, via_switch=2, qdepth=20)  # path to h2 congested
    feed(dst_host=3, via_switch=3, qdepth=0)   # path to h3 clean
    return store


def test_delay_ranking_prefers_uncongested(sim, store):
    est = DelayEstimator(store, k=0.020)
    ranked = rank_by_delay(est, H(1))
    assert [n for n, _ in ranked] == [H(3), H(2)]
    # h3: 3 x 10 ms; h2: 3 x 10 ms + 20 pkts x 20 ms.
    assert ranked[0][1] == pytest.approx(0.030)
    assert ranked[1][1] == pytest.approx(0.030 + 0.4)


def test_bandwidth_ranking_prefers_uncongested(sim, store):
    est = BandwidthEstimator(store, link_capacity_bps=mbps(20))
    ranked = rank_by_bandwidth(est, H(1))
    assert [n for n, _ in ranked] == [H(3), H(2)]
    assert ranked[0][1] == pytest.approx(mbps(20))
    assert ranked[1][1] < mbps(20)


def test_origin_excluded(sim, store):
    est = DelayEstimator(store)
    ranked = rank_by_delay(est, H(1), candidates=[H(1), H(2), H(3)])
    assert H(1) not in [n for n, _ in ranked]


def test_unknown_candidate_ranked_last_with_inf(sim, store):
    est = DelayEstimator(store)
    ranked = rank_by_delay(est, H(1), candidates=[H(2), H(3), H(99)])
    assert ranked[-1] == (H(99), math.inf)


def test_unknown_candidate_bandwidth_zero(sim, store):
    est = BandwidthEstimator(store, link_capacity_bps=mbps(20))
    ranked = rank_by_bandwidth(est, H(1), candidates=[H(2), H(3), H(99)])
    assert ranked[-1] == (H(99), 0.0)


def test_default_candidates_from_topology(sim, store):
    est = DelayEstimator(store)
    ranked = rank_by_delay(est, H(1))
    assert {n for n, _ in ranked} == {H(2), H(3)}


def test_tie_breaks_by_node_id(sim):
    """Identical telemetry for two candidates: smaller host address first."""
    store = TelemetryStore(sim)
    for dst in (5, 4):
        records = [IntHopRecord(switch_id=1, egress_port=dst, max_qdepth=0,
                                link_latency=0.010, egress_ts=0.0)]
        store.update(ProbeReport(
            probe_src=1, probe_dst=dst, seq=0, sent_at=0.0, received_at=0.0,
            records=records, final_link_latency=0.010,
        ))
    delay_ranked = rank_by_delay(DelayEstimator(store), H(1))
    bw_ranked = rank_by_bandwidth(BandwidthEstimator(store, link_capacity_bps=1e6), H(1))
    assert [n for n, _ in delay_ranked] == [H(4), H(5)]
    assert [n for n, _ in bw_ranked] == [H(4), H(5)]


def test_ranking_respects_explicit_candidates(sim, store):
    est = DelayEstimator(store)
    ranked = rank_by_delay(est, H(1), candidates=[H(2)])
    assert [n for n, _ in ranked] == [H(2)]
