"""Future-work extensions: compute-aware and heterogeneity-aware ranking."""

import pytest

from repro.core.extensions import ComputeAwareScheduler, HeterogeneityAwareScheduler
from repro.core.scheduler import METRIC_BANDWIDTH, METRIC_DELAY
from repro.edge.server import EdgeServer
from repro.errors import SchedulingError
from repro.experiments.fig4_topology import build_fig4_network
from repro.telemetry.probe import ProbeResponder, ProbeSender


@pytest.fixture
def fig4(sim, streams):
    return build_fig4_network(sim, streams)


def _wire_probing(fig4, sched):
    net = fig4.network
    all_addrs = [net.address_of(n) for n in fig4.node_names]
    for name in fig4.node_names:
        host = net.host(name)
        if name == fig4.scheduler_name:
            ProbeResponder(host, collector=sched.collector)
        else:
            ProbeResponder(host, collector_addr=fig4.scheduler_addr)
        ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()


def _worker_addrs(fig4):
    return [fig4.network.address_of(n) for n in fig4.worker_names]


class TestComputeAware:
    def _sched(self, fig4, **kw):
        return ComputeAwareScheduler(
            fig4.network.host(fig4.scheduler_name),
            _worker_addrs(fig4),
            link_capacity_bps=fig4.fabric_rate_bps,
            mean_exec_time=5.0,
            **kw,
        )

    def test_load_reports_consumed(self, sim, fig4):
        sched = self._sched(fig4)
        _wire_probing(fig4, sched)
        EdgeServer(
            fig4.network.host("node1"),
            load_report_addr=fig4.scheduler_addr,
            load_report_interval=0.5,
        )
        sim.run(until=2.0)
        assert sched.load_reports_received >= 3
        assert sched.server_load(fig4.network.address_of("node1")) == 0

    def test_loaded_server_penalized_in_delay_rank(self, sim, fig4):
        sched = self._sched(fig4)
        _wire_probing(fig4, sched)
        sim.run(until=1.0)
        node8 = fig4.network.address_of("node8")
        base = sched.rank(fig4.network.address_of("node7"), METRIC_DELAY)
        assert base[0][0] == node8  # idle: in-pod neighbour first
        # Report heavy load on node8 directly.
        sched._loads[node8] = (3, 2, sim.now)
        loaded = sched.rank(fig4.network.address_of("node7"), METRIC_DELAY)
        assert loaded[0][0] != node8
        penalty = dict(loaded)[node8] - dict(base)[node8]
        assert penalty == pytest.approx(5 * 5.0)  # load x mean_exec_time

    def test_loaded_server_discounted_in_bandwidth_rank(self, sim, fig4):
        sched = self._sched(fig4)
        _wire_probing(fig4, sched)
        sim.run(until=1.0)
        node8 = fig4.network.address_of("node8")
        base = dict(sched.rank(fig4.network.address_of("node7"), METRIC_BANDWIDTH))
        sched._loads[node8] = (1, 0, sim.now)
        loaded = dict(sched.rank(fig4.network.address_of("node7"), METRIC_BANDWIDTH))
        assert loaded[node8] == pytest.approx(base[node8] / 2.0)

    def test_stale_load_ignored(self, sim, fig4):
        sched = self._sched(fig4)
        node8 = fig4.network.address_of("node8")
        sched._loads[node8] = (5, 5, 0.0)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert sched.server_load(node8) == 0

    def test_negative_mean_exec_rejected(self, sim, fig4):
        with pytest.raises(SchedulingError):
            ComputeAwareScheduler(
                fig4.network.host(fig4.scheduler_name),
                _worker_addrs(fig4),
                link_capacity_bps=fig4.fabric_rate_bps,
                mean_exec_time=-1.0,
            )


class TestHeterogeneityAware:
    def _sched(self, fig4, capabilities):
        return HeterogeneityAwareScheduler(
            fig4.network.host(fig4.scheduler_name),
            _worker_addrs(fig4),
            link_capacity_bps=fig4.fabric_rate_bps,
            capabilities=capabilities,
        )

    def test_requirements_filter_candidates(self, sim, fig4):
        gpu_node = fig4.network.address_of("node2")
        sched = self._sched(fig4, {gpu_node: {"gpu"}})
        _wire_probing(fig4, sched)
        sim.run(until=1.0)
        ranked = sched.rank(
            fig4.network.address_of("node1"), (METRIC_DELAY, frozenset({"gpu"}))
        )
        assert [a for a, _ in ranked] == [gpu_node]

    def test_no_requirements_keeps_everyone(self, sim, fig4):
        sched = self._sched(fig4, {})
        _wire_probing(fig4, sched)
        sim.run(until=1.0)
        ranked = sched.rank(fig4.network.address_of("node1"), METRIC_DELAY)
        assert len(ranked) == 6

    def test_unsatisfiable_requirement_empty(self, sim, fig4):
        sched = self._sched(fig4, {})
        _wire_probing(fig4, sched)
        sim.run(until=1.0)
        ranked = sched.rank(
            fig4.network.address_of("node1"), (METRIC_DELAY, frozenset({"tpu"}))
        )
        assert ranked == []

    def test_register_capabilities(self, sim, fig4):
        sched = self._sched(fig4, {})
        addr = fig4.network.address_of("node3")
        sched.register_capabilities(addr, {"gpu", "keras"})
        assert sched.eligible(addr, frozenset({"gpu"}))
        assert not sched.eligible(addr, frozenset({"gpu", "fpga"}))
        assert sched.eligible(addr, frozenset())
