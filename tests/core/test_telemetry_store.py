"""Telemetry store: latency smoothing, windowed max queue, staleness."""

import pytest

from repro.core.telemetry_store import TelemetryStore
from repro.p4.headers import IntHopRecord
from repro.telemetry.records import ProbeReport, host_node, switch_node

H = host_node
S = switch_node


def _report(qdepth=0, latency=0.010, seq=0):
    records = [
        IntHopRecord(switch_id=1, egress_port=1, max_qdepth=qdepth, link_latency=latency, egress_ts=0.0)
    ]
    return ProbeReport(
        probe_src=10, probe_dst=20, seq=seq, sent_at=0.0, received_at=0.0,
        records=records, final_link_latency=latency,
    )


@pytest.fixture
def store(sim):
    return TelemetryStore(sim, staleness=2.0, qdepth_window=0.1)


def _advance(sim, dt):
    sim.schedule(dt, lambda: None)
    sim.run()


class TestLatency:
    def test_first_sample_sets_ewma(self, sim, store):
        store.update(_report(latency=0.012))
        assert store.link_delay(H(10), S(1)) == pytest.approx(0.012)

    def test_ewma_smoothing(self, sim, store):
        store.update(_report(latency=0.010))
        store.update(_report(latency=0.020))
        # alpha = 0.3: 0.3*0.020 + 0.7*0.010 = 0.013
        assert store.link_delay(H(10), S(1)) == pytest.approx(0.013)

    def test_default_when_unknown(self, sim, store):
        assert store.link_delay(S(5), S(6), default=0.042) == 0.042

    def test_stale_latency_returns_default(self, sim, store):
        store.update(_report(latency=0.010))
        _advance(sim, 3.0)  # beyond staleness=2.0
        assert store.link_delay(H(10), S(1), default=0.099) == 0.099

    def test_final_link_latency_recorded(self, sim, store):
        store.update(_report(latency=0.010))
        assert store.link_delay(S(1), H(20)) == pytest.approx(0.010)


class TestQdepth:
    def test_reading_recorded(self, sim, store):
        store.update(_report(qdepth=12))
        assert store.max_qdepth(S(1), H(20)) == 12

    def test_windowed_max_keeps_larger_reading(self, sim, store):
        """A second probe microseconds later reads the reset register (0);
        the store must not let it mask the real reading."""
        store.update(_report(qdepth=15))
        store.update(_report(qdepth=0))
        assert store.max_qdepth(S(1), H(20)) == 15

    def test_new_window_replaces_value(self, sim, store):
        store.update(_report(qdepth=15))
        _advance(sim, 0.2)  # past qdepth_window=0.1
        store.update(_report(qdepth=3))
        assert store.max_qdepth(S(1), H(20)) == 3

    def test_larger_value_always_wins_within_window(self, sim, store):
        store.update(_report(qdepth=3))
        store.update(_report(qdepth=9))
        assert store.max_qdepth(S(1), H(20)) == 9

    def test_stale_qdepth_reads_zero(self, sim, store):
        store.update(_report(qdepth=20))
        _advance(sim, 3.0)
        assert store.max_qdepth(S(1), H(20)) == 0

    def test_unknown_link_reads_zero(self, sim, store):
        assert store.max_qdepth(S(9), S(8)) == 0


class TestTopologyIntegration:
    def test_update_learns_topology(self, sim, store):
        store.update(_report())
        assert store.topology.has_edge(H(10), S(1))
        assert store.topology.has_edge(S(1), H(20))

    def test_reports_counted(self, sim, store):
        store.update(_report(seq=1))
        store.update(_report(seq=2))
        assert store.reports_processed == 2

    def test_link_state_inspection(self, sim, store):
        store.update(_report(qdepth=4, latency=0.011))
        state = store.link_state(S(1), H(20))
        assert state.max_qdepth == 4
        assert store.link_state(S(9), S(8)) is None

    def test_known_link_count(self, sim, store):
        store.update(_report())
        # h10->s1 (latency only) and s1->h20 (latency + qdepth).
        assert store.known_link_count() == 2
