"""Scheduler services over the wire: protocol, baselines, network-aware."""

import pytest

from repro.core.baselines import NearestScheduler, RandomScheduler
from repro.core.client import SchedulerClient
from repro.core.scheduler import METRIC_BANDWIDTH, METRIC_DELAY, NetworkAwareScheduler
from repro.errors import SchedulingError
from repro.experiments.fig4_topology import build_fig4_network
from repro.simnet.random import RandomStreams
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.units import mbps


@pytest.fixture
def fig4(sim, streams):
    return build_fig4_network(sim, streams)


def _worker_addrs(topo):
    return [topo.network.address_of(n) for n in topo.worker_names]


def _query(sim, topo, metric=METRIC_DELAY, device="node1", warmup=0.0):
    """Round-trip one query from a device; returns the ranking.

    ``warmup`` lets probe telemetry accumulate before the query — a live
    deployment queries a scheduler that has been collecting for a while."""
    if warmup > 0:
        sim.run(until=sim.now + warmup)
    client = SchedulerClient(topo.network.host(device), topo.scheduler_addr)
    out = []
    client.query(metric, out.append)
    sim.run(until=sim.now + 5.0)
    assert out, "no scheduler response"
    return out[0]


class TestProtocol:
    def test_query_response_roundtrip(self, sim, fig4):
        NearestScheduler(
            fig4.network.host(fig4.scheduler_name), _worker_addrs(fig4), fig4.network
        )
        ranking = _query(sim, fig4)
        assert len(ranking) == 6  # 7 workers minus the requester

    def test_requester_excluded_from_ranking(self, sim, fig4):
        NearestScheduler(
            fig4.network.host(fig4.scheduler_name), _worker_addrs(fig4), fig4.network
        )
        ranking = _query(sim, fig4, device="node3")
        assert fig4.network.address_of("node3") not in [a for a, _ in ranking]

    def test_garbage_query_ignored(self, sim, fig4):
        sched = NearestScheduler(
            fig4.network.host(fig4.scheduler_name), _worker_addrs(fig4), fig4.network
        )
        h = fig4.network.host("node1")
        h.send(h.new_packet(fig4.scheduler_addr, dst_port=5000, message="garbage"))
        sim.run(until=1.0)
        assert sched.queries_served == 0

    def test_needs_servers(self, sim, fig4):
        with pytest.raises(SchedulingError):
            NearestScheduler(fig4.network.host(fig4.scheduler_name), [], fig4.network)


class TestNearest:
    def test_in_pod_neighbor_ranked_first(self, sim, fig4):
        """node7 and node8 are each other's nearest nodes (paper text)."""
        sched = NearestScheduler(
            fig4.network.host(fig4.scheduler_name), _worker_addrs(fig4), fig4.network
        )
        ranking = _query(sim, fig4, device="node7")
        assert ranking[0][0] == fig4.network.address_of("node8")
        assert ranking[0][1] == 3.0  # 3 switch hops

    def test_hop_distances_symmetric(self, sim, fig4):
        sched = NearestScheduler(
            fig4.network.host(fig4.scheduler_name), _worker_addrs(fig4), fig4.network
        )
        a = fig4.network.address_of("node1")
        b = fig4.network.address_of("node4")
        assert sched.hop_distance(a, b) == sched.hop_distance(b, a)

    def test_unknown_pair_rejected(self, sim, fig4):
        sched = NearestScheduler(
            fig4.network.host(fig4.scheduler_name), _worker_addrs(fig4), fig4.network
        )
        with pytest.raises(SchedulingError):
            sched.hop_distance(1, 999)


class TestRandom:
    def test_ranking_is_permutation(self, sim, fig4):
        RandomScheduler(
            fig4.network.host(fig4.scheduler_name),
            _worker_addrs(fig4),
            RandomStreams(3).get("p"),
        )
        ranking = _query(sim, fig4)
        addrs = [a for a, _ in ranking]
        expected = set(_worker_addrs(fig4)) - {fig4.network.address_of("node1")}
        assert set(addrs) == expected

    def test_same_seed_same_sequence(self, sim, fig4):
        s1 = RandomScheduler(
            fig4.network.host(fig4.scheduler_name),
            _worker_addrs(fig4),
            RandomStreams(3).get("p"),
        )
        r1 = [s1.rank(1, METRIC_DELAY) for _ in range(3)]
        s2 = RandomScheduler.__new__(RandomScheduler)  # fresh rng, same seed
        s2.server_addrs = s1.server_addrs
        s2._rng = RandomStreams(3).get("p")
        r2 = [s2.rank(1, METRIC_DELAY) for _ in range(3)]
        assert r1 == r2


class TestNetworkAware:
    def _aware(self, sim, fig4):
        sched = NetworkAwareScheduler(
            fig4.network.host(fig4.scheduler_name),
            _worker_addrs(fig4),
            link_capacity_bps=fig4.fabric_rate_bps,
        )
        # Mesh probing so the scheduler learns the whole topology.
        net = fig4.network
        all_addrs = [net.address_of(n) for n in fig4.node_names]
        for name in fig4.node_names:
            host = net.host(name)
            if name == fig4.scheduler_name:
                ProbeResponder(host, collector=sched.collector)
            else:
                ProbeResponder(host, collector_addr=fig4.scheduler_addr)
            ProbeSender(host, [a for a in all_addrs if a != host.addr], probe_size=256).start()
        return sched

    def test_learns_full_topology(self, sim, fig4):
        sched = self._aware(sim, fig4)
        sim.run(until=1.0)
        assert len(sched.store.topology.known_switches()) == 12
        assert len(sched.store.topology.known_hosts()) == 8

    def test_delay_ranking_prefers_in_pod_when_idle(self, sim, fig4):
        self._aware(sim, fig4)
        ranking = _query(sim, fig4, metric=METRIC_DELAY, device="node7", warmup=1.0)
        assert ranking[0][0] == fig4.network.address_of("node8")

    def test_bandwidth_ranking_idle_reports_capacity(self, sim, fig4):
        self._aware(sim, fig4)
        ranking = _query(sim, fig4, metric=METRIC_BANDWIDTH, device="node1", warmup=1.0)
        assert ranking[0][1] == pytest.approx(mbps(20), rel=0.01)

    def test_unknown_metric_rejected(self, sim, fig4):
        sched = self._aware(sim, fig4)
        sim.run(until=0.5)
        with pytest.raises(SchedulingError):
            sched.rank(fig4.network.address_of("node1"), "nonsense")


class TestClient:
    def test_retry_on_loss(self, sim, fig4):
        """No scheduler service bound: the query times out and retries, then
        reports failure with an empty ranking."""
        client = SchedulerClient(fig4.network.host("node1"), fig4.scheduler_addr)
        out = []
        client.query(METRIC_DELAY, out.append, timeout=0.2, retries=2)
        sim.run(until=5.0)
        assert out == [[]]
        assert client.retries == 2
        assert client.failures == 1

    def test_concurrent_queries_correlated(self, sim, fig4):
        NearestScheduler(
            fig4.network.host(fig4.scheduler_name), _worker_addrs(fig4), fig4.network
        )
        client = SchedulerClient(fig4.network.host("node1"), fig4.scheduler_addr)
        results = {}
        for i in range(3):
            client.query(METRIC_DELAY, lambda r, i=i: results.setdefault(i, r))
        sim.run(until=5.0)
        assert set(results) == {0, 1, 2}
        assert all(results[i] for i in results)
