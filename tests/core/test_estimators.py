"""Delay/bandwidth estimators and the queue<->utilization curve."""

import pytest

from repro.core.estimators import (
    DEFAULT_K,
    BandwidthEstimator,
    DelayEstimator,
    QdepthUtilizationCurve,
)
from repro.core.telemetry_store import TelemetryStore
from repro.errors import SchedulingError
from repro.p4.headers import IntHopRecord
from repro.telemetry.records import ProbeReport, host_node, switch_node
from repro.units import mbps

H = host_node
S = switch_node


def _feed(store, *, qdepths=(0, 0), latencies=(0.010, 0.010), final=0.010):
    """Install a 2-switch path h1 -> s1 -> s2 -> h2 with given telemetry."""
    records = [
        IntHopRecord(switch_id=1, egress_port=1, max_qdepth=qdepths[0],
                     link_latency=latencies[0], egress_ts=0.0),
        IntHopRecord(switch_id=2, egress_port=1, max_qdepth=qdepths[1],
                     link_latency=latencies[1], egress_ts=0.0),
    ]
    store.update(ProbeReport(
        probe_src=1, probe_dst=2, seq=0, sent_at=0.0, received_at=0.0,
        records=records, final_link_latency=final,
    ))


@pytest.fixture
def store(sim):
    return TelemetryStore(sim)


class TestDelayEstimator:
    def test_uncongested_path_sums_link_delays(self, sim, store):
        _feed(store)
        est = DelayEstimator(store, k=0.020)
        # 3 links x 10 ms, no queueing.
        assert est.delay_between(H(1), H(2)) == pytest.approx(0.030)

    def test_queue_term_added_per_hop(self, sim, store):
        _feed(store, qdepths=(5, 4))
        est = DelayEstimator(store, k=0.020)
        # 30 ms links + k * (5 + 4) = 30 + 180 ms (both above the floor).
        assert est.delay_between(H(1), H(2)) == pytest.approx(0.030 + 0.020 * 9)

    def test_qdepth_noise_floor_suppresses_blips(self, sim, store):
        """Readings below the floor (Fig. 3's 'uncongested links still show
        a few packets of queue') contribute nothing."""
        _feed(store, qdepths=(2, 1))
        est = DelayEstimator(store, k=0.020, qdepth_floor=3)
        assert est.delay_between(H(1), H(2)) == pytest.approx(0.030)

    def test_qdepth_floor_zero_counts_everything(self, sim, store):
        _feed(store, qdepths=(2, 1))
        est = DelayEstimator(store, k=0.020, qdepth_floor=0)
        assert est.delay_between(H(1), H(2)) == pytest.approx(0.030 + 0.020 * 3)

    def test_negative_floor_rejected(self, sim, store):
        with pytest.raises(ValueError):
            DelayEstimator(store, qdepth_floor=-1)

    def test_k_zero_ignores_queues(self, sim, store):
        _feed(store, qdepths=(50, 50))
        est = DelayEstimator(store, k=0.0)
        assert est.delay_between(H(1), H(2)) == pytest.approx(0.030)

    def test_default_link_delay_for_unmeasured(self, sim, store):
        _feed(store, latencies=(None, 0.010))
        est = DelayEstimator(store, k=0.020, default_link_delay=0.007)
        assert est.delay_between(H(1), H(2)) == pytest.approx(0.007 + 0.010 + 0.010)

    def test_negative_k_rejected(self, sim, store):
        with pytest.raises(ValueError):
            DelayEstimator(store, k=-1.0)

    def test_unknown_path_raises(self, sim, store):
        _feed(store)
        est = DelayEstimator(store)
        with pytest.raises(SchedulingError):
            est.delay_between(H(1), H(99))

    def test_calibrated_k_recovers_slope(self):
        baseline = 0.040
        k_true = 0.015
        samples = [(q, baseline + k_true * q) for q in (0, 2, 5, 10, 20, 30)]
        k = DelayEstimator.calibrated_k(samples, baseline)
        assert k == pytest.approx(k_true, rel=1e-6)

    def test_calibrated_k_fallback_without_signal(self):
        assert DelayEstimator.calibrated_k([(0, 0.04)], 0.04) == DEFAULT_K

    def test_calibrated_k_never_negative(self):
        samples = [(10, 0.01)]  # delay *below* baseline
        assert DelayEstimator.calibrated_k(samples, 0.04) == 0.0


class TestCurve:
    def test_default_curve_monotone(self):
        curve = QdepthUtilizationCurve()
        values = [curve.utilization(q) for q in range(0, 80)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_endpoints_clamped(self):
        curve = QdepthUtilizationCurve()
        assert curve.utilization(0) == 0.0
        assert curve.utilization(10_000) == 1.0

    def test_interpolation_between_knots(self):
        curve = QdepthUtilizationCurve([(0, 0.0), (10, 1.0)])
        assert curve.utilization(5) == pytest.approx(0.5)

    def test_fig3_shape(self):
        """Below ~5 packets the default curve says <= 50 % utilization; at 30
        packets it says heavy congestion — the Fig. 3 relationship."""
        curve = QdepthUtilizationCurve()
        assert curve.utilization(4) < 0.5
        assert curve.utilization(30) >= 0.9

    def test_from_calibration(self):
        pairs = [(0.0, 0.5), (0.5, 4.0), (0.9, 25.0), (1.0, 40.0)]
        curve = QdepthUtilizationCurve.from_calibration(pairs)
        assert curve.utilization(0.5) == pytest.approx(0.0, abs=0.1)
        assert curve.utilization(40.0) == pytest.approx(1.0)
        assert curve.utilization(25.0) == pytest.approx(0.9, abs=0.05)

    def test_from_calibration_handles_nonmonotone_noise(self):
        # Measured queue dips at higher utilization: cummax smooths it.
        pairs = [(0.2, 3.0), (0.4, 2.0), (0.8, 10.0)]
        curve = QdepthUtilizationCurve.from_calibration(pairs)
        vals = [curve.utilization(q) for q in (0, 2, 3, 5, 10, 20)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            QdepthUtilizationCurve([(0, 0.0)])
        with pytest.raises(ValueError):
            QdepthUtilizationCurve([(0, 0.5), (10, 0.2)])  # decreasing
        with pytest.raises(ValueError):
            QdepthUtilizationCurve([(0, 0.0), (10, 1.5)])  # out of range


class TestBandwidthEstimator:
    def test_idle_path_estimates_full_capacity(self, sim, store):
        _feed(store)
        est = BandwidthEstimator(store, link_capacity_bps=mbps(20))
        assert est.throughput_between(H(1), H(2)) == pytest.approx(mbps(20))

    def test_bottleneck_minimum_rule(self, sim, store):
        _feed(store, qdepths=(30, 0))  # s1 egress congested
        est = BandwidthEstimator(store, link_capacity_bps=mbps(20))
        curve = QdepthUtilizationCurve()
        expected = mbps(20) * (1 - curve.utilization(30))
        assert est.throughput_between(H(1), H(2)) == pytest.approx(expected)

    def test_link_available_bw(self, sim, store):
        _feed(store, qdepths=(10, 0))
        est = BandwidthEstimator(store, link_capacity_bps=mbps(20))
        assert est.link_available_bw(S(1), S(2)) < mbps(20)
        assert est.link_available_bw(S(2), H(2)) == pytest.approx(mbps(20))

    def test_capacity_validated(self, sim, store):
        with pytest.raises(ValueError):
            BandwidthEstimator(store, link_capacity_bps=0)

    def test_degenerate_path_rejected(self, sim, store):
        _feed(store)
        est = BandwidthEstimator(store, link_capacity_bps=mbps(20))
        with pytest.raises(SchedulingError):
            est.path_throughput([H(1)])
