"""CLI: argument parsing and command dispatch (tiny workloads)."""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.slow


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "--figure", "fig99"])


def test_calibrate_command(capsys, tmp_path):
    out = tmp_path / "calib.txt"
    rc = main([
        "calibrate", "--levels", "0.0", "0.9",
        "--duration", "8", "--out", str(out),
    ])
    assert rc == 0
    text = out.read_text()
    assert "utilization" in text and "90%" in text
    assert "Fig. 3" in capsys.readouterr().out


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--scenarios", "traffic2", "--intervals", "0.1", "10.0",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "traffic2" in out and "probing interval" in out


def test_sensitivity_command(capsys, tmp_path):
    out = tmp_path / "sens.txt"
    rc = main([
        "sensitivity", "--parameter", "k", "--values", "0.02",
        "--scale", "smoke", "--size-class", "VS", "--out", str(out),
    ])
    assert rc == 0
    text = out.read_text()
    assert "sensitivity" in text and "best value" in text


def test_compare_command(capsys, tmp_path):
    out = tmp_path / "cmp.txt"
    rc = main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--out", str(out),
    ])
    assert rc == 0
    assert "gain vs nearest" in out.read_text()


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


def test_compare_obs_out_writes_all_record_kinds(capsys, tmp_path):
    from repro.obs.export import read_jsonl

    obs_out = tmp_path / "run.jsonl"
    rc = main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--obs-out", str(obs_out),
    ])
    assert rc == 0
    records = read_jsonl(str(obs_out))
    kinds = {r["kind"] for r in records}
    assert kinds == {"metric", "event", "decision-audit"}
    # Every record carries run labels identifying its comparison cell.
    policies = {r["run"]["policy"] for r in records}
    assert "aware" in policies and len(policies) >= 2


def test_obs_report_command(capsys, tmp_path):
    obs_out = tmp_path / "run.jsonl"
    main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--obs-out", str(obs_out),
    ])
    capsys.readouterr()
    report_out = tmp_path / "report.txt"
    rc = main(["obs-report", str(obs_out), "--out", str(report_out)])
    assert rc == 0
    text = report_out.read_text()
    assert "policy=aware" in text
    assert "delay error" in text

def test_telemetry_report_command(capsys, tmp_path):
    obs_out = tmp_path / "tq.jsonl"
    main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--telquality", "--obs-out", str(obs_out),
    ])
    capsys.readouterr()
    report_out = tmp_path / "report.txt"
    rc = main(["telemetry-report", str(obs_out), "--out", str(report_out)])
    assert rc == 0
    text = report_out.read_text()
    # Mesh probing on the default 12-switch topology covers every port.
    assert "coverage: 32/32 directed ports observed (100%)" in text
    assert "matches the layout's predicted blind set" in text
    assert "error vs telemetry age" in text
    assert "decision-audit samples: OK" in text
    assert "MISMATCH" not in text


def test_telemetry_report_placeholder_on_old_export(capsys, tmp_path):
    """A pre-observatory export (no telquality records) degrades to a
    pointer at the flag, exit 0."""
    from repro.obs.export import write_jsonl

    path = tmp_path / "old.jsonl"
    write_jsonl([{"kind": "metric", "name": "x", "type": "gauge"}], str(path))
    rc = main(["telemetry-report", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "no telemetry-quality records" in out
    assert "--telquality" in out


def test_telemetry_report_missing_file(capsys):
    rc = main(["telemetry-report", "/nonexistent/obs.jsonl"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_whatif_report_command(capsys, tmp_path):
    obs_out = tmp_path / "wi.jsonl"
    main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--whatif", "--obs-out", str(obs_out),
    ])
    capsys.readouterr()
    report_out = tmp_path / "report.txt"
    rc = main(["whatif-report", str(obs_out), "--out", str(report_out)])
    assert rc == 0
    text = report_out.read_text()
    assert "policy=aware" in text
    assert "oracle hindsight check" in text
    assert "decision-audit delay decisions: OK" in text
    assert "regret vs stalest consulted telemetry age" in text
    assert "MISMATCH" not in text


def test_whatif_report_offline_fallback_on_plain_export(capsys, tmp_path):
    """An export without whatif records but with ground-truth audits still
    replays offline (regret tables, no staleness attribution)."""
    obs_out = tmp_path / "plain.jsonl"
    main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--obs-out", str(obs_out),
    ])
    capsys.readouterr()
    rc = main(["whatif-report", str(obs_out)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replaying decision audits offline" in out
    assert "oracle" in out


def test_whatif_report_placeholder_on_unusable_export(capsys, tmp_path):
    from repro.obs.export import write_jsonl

    path = tmp_path / "old.jsonl"
    write_jsonl([{"kind": "metric", "name": "x", "type": "gauge"}], str(path))
    rc = main(["whatif-report", str(path)])
    assert rc == 0
    assert "--whatif" in capsys.readouterr().out


def test_whatif_report_missing_file(capsys):
    rc = main(["whatif-report", "/nonexistent/obs.jsonl"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_faults_lists_builtin_scenarios(capsys):
    rc = main(["faults"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("link-flap", "server-crash", "probe-blackout"):
        assert name in out


def test_faults_show_round_trips(capsys, tmp_path):
    from repro.faults import FaultPlan, builtin_plan

    plan_file = tmp_path / "plan.json"
    rc = main(["faults", "--show", "server-crash", "--out", str(plan_file)])
    assert rc == 0
    assert FaultPlan.load(str(plan_file)) == builtin_plan("server-crash")


def test_faults_run_emits_comparison(capsys):
    rc = main(["faults", "--run", "server-crash", "--scale", "smoke"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scenario: server-crash" in out
    assert "degr." in out and "failovers" in out


def test_faults_unknown_spec_clean_error(capsys):
    rc = main(["faults", "--run", "no-such-scenario"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "link-flap" in err  # the message lists what IS available


def test_compare_with_faults_flag(capsys, tmp_path):
    out = tmp_path / "cmp.txt"
    rc = main([
        "compare", "--figure", "fig5", "--scale", "smoke", "--classes", "VS",
        "--faults", "link-flap", "--no-degradation", "--out", str(out),
    ])
    assert rc == 0
    assert "gain vs nearest" in out.read_text()


def test_parser_accepts_runner_flags():
    args = build_parser().parse_args([
        "compare", "--scale", "smoke", "--jobs", "4", "--cache",
        "--cache-dir", "/tmp/rc",
    ])
    assert args.jobs == 4 and args.cache and args.cache_dir == "/tmp/rc"
    args = build_parser().parse_args(["compare", "--no-cache"])
    assert not args.cache


def test_compare_with_cache_reuses_results(capsys, tmp_path):
    cache_dir = tmp_path / "rc"
    argv = [
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--cache", "--cache-dir", str(cache_dir),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert len(list(cache_dir.glob("*.json"))) == 3  # one per policy
    assert main(argv) == 0
    captured = capsys.readouterr()
    warm = captured.out
    assert warm == cold  # cached rerun reproduces the report exactly
    assert "cache" in captured.err  # progress lines mention the hits


def test_cache_command_lists_and_clears(capsys, tmp_path):
    from repro.runner import ResultCache
    from repro.runner.spec import canonical_json

    cache_dir = tmp_path / "rc"
    cache = ResultCache(str(cache_dir))
    h = "a" * 64
    cache.put(h, canonical_json({"spec_hash": h, "payload": {}}).encode())

    assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "1 entries" in out and h in out

    assert main(["cache", "--clear", "--cache-dir", str(cache_dir)]) == 0
    assert "cleared 1" in capsys.readouterr().out
    assert list(cache_dir.glob("*.json")) == []


def test_faults_run_accepts_jobs_flag(capsys):
    rc = main(["faults", "--run", "probe-blackout", "--scale", "smoke"])
    assert rc == 0
    assert "scenario: probe-blackout" in capsys.readouterr().out


def test_compare_trace_out_and_profile(capsys, tmp_path):
    from repro.obs.export import read_jsonl

    trace_out = tmp_path / "trace.jsonl"
    rc = main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--trace-out", str(trace_out), "--profile",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "span records written" in out
    assert "engine profile:" in out
    records = read_jsonl(str(trace_out))
    assert records and all(r["kind"] == "span" for r in records)
    names = {r["name"] for r in records}
    assert {"task", "scheduling", "transfer", "execute", "probe", "hop"} <= names
    policies = {r["run"]["policy"] for r in records}
    assert "aware" in policies and len(policies) >= 2


def test_trace_report_command(capsys, tmp_path):
    import json

    trace_out = tmp_path / "trace.jsonl"
    main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--trace-out", str(trace_out),
    ])
    capsys.readouterr()
    chrome_out = tmp_path / "chrome.json"
    report_out = tmp_path / "report.txt"
    rc = main([
        "trace-report", str(trace_out),
        "--chrome", str(chrome_out), "--out", str(report_out),
    ])
    assert rc == 0
    text = report_out.read_text()
    assert "critical path" in text
    assert "Algorithm-1 estimate" in text
    doc = json.loads(chrome_out.read_text())
    assert doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "X"}


def test_trace_report_missing_file(capsys):
    rc = main(["trace-report", "/nonexistent/trace.jsonl"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_bench_runner_reports_profile(capsys, tmp_path):
    import json

    bench_out = tmp_path / "BENCH_runner.json"
    history = tmp_path / "history.jsonl"
    flamegraph = tmp_path / "flame.svg"
    collapsed = tmp_path / "flame.txt"
    rc = main([
        "bench-runner", "--scale", "smoke", "--jobs", "2",
        "--bench-out", str(bench_out), "--history", str(history),
        "--flamegraph-out", str(flamegraph), "--collapsed-out", str(collapsed),
    ])
    assert rc == 0
    report = json.loads(bench_out.read_text())
    assert report["byte_identical"] is True
    assert isinstance(report["parallel_valid"], bool)
    profile = report["profile"]
    assert profile["events_total"] > 0
    assert profile["queue_high_water"] > 0
    assert profile["by_type"]
    # Phase attribution made it into the report, with its overhead estimate.
    assert profile["phases"]
    assert any(";" in path for path in profile["phases"])
    assert profile["overhead"]["phase_pairs"] > 0
    assert profile["phase_coverage"]
    # The run landed in the ledger with a provenance stamp.
    from repro.runner.bench import read_history

    records = read_history(str(history))
    assert len(records) == 1
    assert records[0]["serial_s"] == report["serial_s"]
    assert "recorded_at" in records[0]["provenance"]
    # Flamegraph is a self-contained SVG; collapsed stacks parse as
    # "path count" lines.
    svg = flamegraph.read_text()
    assert svg.startswith("<svg") and "<script" not in svg
    assert "src=" not in svg and "href" not in svg
    lines = collapsed.read_text().splitlines()
    assert lines and all(l.rsplit(" ", 1)[1].isdigit() for l in lines)


def _fake_history_record(serial_s, *, parallel_valid=True, phases=None):
    record = {
        "grid": {"figure": "fig5", "scale": "smoke", "seed": 0, "runs": 12},
        "serial_s": serial_s,
        "parallel_s": serial_s / 2.0,
        "parallel_jobs": 2,
        "parallel_valid": parallel_valid,
        "parallel_speedup": 2.0,
        "cached_s": serial_s / 10.0,
        "cached_speedup": 10.0,
        "byte_identical": True,
        "diverging_cells": [],
        "host": {"cpus": 4, "python": "3.11.7", "platform": "linux"},
        "provenance": {"recorded_at": "2026-01-01T00:00:00Z", "git_commit": "abc1234"},
        "profile": {
            "events_total": 1000,
            "queue_high_water": 10,
            "wall_s": serial_s,
            "by_type": {"Switch.on_ingress": {"count": 500, "wall_s": serial_s * 0.6}},
            "phases": phases or {
                "Switch.on_ingress;p4_pipeline": {"count": 500, "wall_s": serial_s * 0.4},
                "Switch.on_ingress;enqueue": {"count": 500, "wall_s": serial_s * 0.15},
            },
            "overhead": {"phase_pairs": 1000, "clock_reads": 1000,
                         "total_s": 0.01, "fraction_of_wall": 0.01},
            "memory": None,
            "phase_coverage": {"Switch.on_ingress": 0.92},
        },
    }
    return record


def _write_history(path, records):
    import json

    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")


def test_perf_report_command(capsys, tmp_path):
    history = tmp_path / "history.jsonl"
    _write_history(history, [
        _fake_history_record(10.0),
        _fake_history_record(8.0),
    ])
    out = tmp_path / "report.txt"
    rc = main(["perf-report", str(history), "--out", str(out),
               "--flamegraph-out", str(tmp_path / "f.svg"),
               "--collapsed-out", str(tmp_path / "f.txt")])
    assert rc == 0
    text = out.read_text()
    assert "2 history record(s)" in text
    assert "serial_s" in text and "trend" in text
    assert "top phase movers" in text
    assert "Switch.on_ingress" in text
    assert (tmp_path / "f.svg").read_text().startswith("<svg")
    assert (tmp_path / "f.txt").read_text().strip()


def test_perf_report_missing_file(capsys):
    rc = main(["perf-report", "/nonexistent/history.jsonl"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_bench_compare_against_history_baseline(capsys, tmp_path):
    import json

    history = tmp_path / "history.jsonl"
    _write_history(history, [_fake_history_record(s) for s in (10.0, 11.0, 9.0)])
    candidate = tmp_path / "cand.json"
    candidate.write_text(json.dumps(_fake_history_record(10.5)))
    rc = main(["bench-compare", str(candidate), "--history", str(history)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rolling median of last 3" in out
    assert "verdict: OK" in out
    # A big regression against the median trips the gate ...
    candidate.write_text(json.dumps(_fake_history_record(100.0)))
    rc = main(["bench-compare", str(candidate), "--history", str(history)])
    assert rc == 1
    capsys.readouterr()
    # ... unless --warn-only downgrades it to advisory.
    rc = main([
        "bench-compare", str(candidate), "--history", str(history),
        "--warn-only",
    ])
    assert rc == 0
    assert "REGRESSION" in capsys.readouterr().out


def test_bench_compare_wrong_report_count(capsys, tmp_path):
    import json

    report = tmp_path / "r.json"
    report.write_text(json.dumps(_fake_history_record(10.0)))
    rc = main(["bench-compare", str(report)])
    assert rc == 2
    assert "pass two reports" in capsys.readouterr().err
    rc = main(["bench-compare", str(report), str(report),
               "--history", "/nonexistent/h.jsonl"])
    assert rc == 2
    assert "exactly one candidate" in capsys.readouterr().err


def test_bench_compare_skips_invalid_parallel_timing(capsys, tmp_path):
    import json

    base = _fake_history_record(10.0, parallel_valid=False)
    base["parallel_s"] = 500.0  # nonsense number from a 1-CPU runner
    cand = _fake_history_record(10.0)
    cand["parallel_s"] = 5.0
    base_path, cand_path = tmp_path / "b.json", tmp_path / "c.json"
    base_path.write_text(json.dumps(base))
    cand_path.write_text(json.dumps(cand))
    rc = main(["bench-compare", str(base_path), str(cand_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "parallel timing invalid" in out
    assert "verdict: OK" in out


def test_compare_sample_interval_emits_timeseries(capsys, tmp_path):
    from repro.obs.export import read_jsonl

    obs_out = tmp_path / "sampled.jsonl"
    rc = main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--sample-interval", "0.5",
        "--obs-out", str(obs_out),
    ])
    assert rc == 0
    records = read_jsonl(str(obs_out))
    ts = [r for r in records if r["kind"] == "timeseries"]
    assert ts
    names = {r["name"] for r in ts}
    assert {"link_utilization", "queue_depth", "server_running"} <= names
    assert all(r["interval"] == 0.5 for r in ts)


def test_dashboard_command_writes_self_contained_html(capsys, tmp_path):
    obs_out = tmp_path / "sampled.jsonl"
    main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--sample-interval", "0.5",
        "--obs-out", str(obs_out),
    ])
    capsys.readouterr()
    html_out = tmp_path / "dash.html"
    rc = main(["dashboard", str(obs_out), "--html-out", str(html_out)])
    assert rc == 0
    html = html_out.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html
    assert "http://" not in html and "https://" not in html
    assert "<script" not in html


def test_dashboard_missing_file(capsys):
    rc = main(["dashboard", "/nonexistent/obs.jsonl"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_bench_compare_identical_reports_ok(capsys, tmp_path):
    import json
    import shutil

    baseline = tmp_path / "base.json"
    shutil.copy("BENCH_runner.json", baseline)
    rc = main(["bench-compare", str(baseline), str(baseline)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OK" in out
    # Doctored candidate: 10x serial regression trips the gate.
    report = json.loads(baseline.read_text())
    report["serial_s"] *= 10
    candidate = tmp_path / "cand.json"
    candidate.write_text(json.dumps(report))
    rc = main(["bench-compare", str(baseline), str(candidate)])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_bench_compare_threshold_override(capsys, tmp_path):
    import json
    import shutil

    baseline = tmp_path / "base.json"
    shutil.copy("BENCH_runner.json", baseline)
    report = json.loads(baseline.read_text())
    report["serial_s"] *= 10
    candidate = tmp_path / "cand.json"
    candidate.write_text(json.dumps(report))
    rc = main([
        "bench-compare", str(baseline), str(candidate),
        "--threshold", "serial_s=20",
    ])
    assert rc == 0


def test_bench_compare_missing_file(capsys):
    rc = main(["bench-compare", "/nonexistent/a.json", "/nonexistent/b.json"])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err
