"""CLI: argument parsing and command dispatch (tiny workloads)."""

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.slow


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "--figure", "fig99"])


def test_calibrate_command(capsys, tmp_path):
    out = tmp_path / "calib.txt"
    rc = main([
        "calibrate", "--levels", "0.0", "0.9",
        "--duration", "8", "--out", str(out),
    ])
    assert rc == 0
    text = out.read_text()
    assert "utilization" in text and "90%" in text
    assert "Fig. 3" in capsys.readouterr().out


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--scenarios", "traffic2", "--intervals", "0.1", "10.0",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "traffic2" in out and "probing interval" in out


def test_sensitivity_command(capsys, tmp_path):
    out = tmp_path / "sens.txt"
    rc = main([
        "sensitivity", "--parameter", "k", "--values", "0.02",
        "--scale", "smoke", "--size-class", "VS", "--out", str(out),
    ])
    assert rc == 0
    text = out.read_text()
    assert "sensitivity" in text and "best value" in text


def test_compare_command(capsys, tmp_path):
    out = tmp_path / "cmp.txt"
    rc = main([
        "compare", "--figure", "fig5", "--scale", "smoke",
        "--classes", "VS", "--out", str(out),
    ])
    assert rc == 0
    assert "gain vs nearest" in out.read_text()
