"""What-if determinism: replay is offline-reproducible and byte-stable.

Acceptance tests for the counterfactual decision observatory: a grid run
with ``whatif=True`` must export byte-identical payloads serially, under
``jobs=4``, and through a cache round trip; enabling collection must not
change any task outcome; and re-replaying the exported decision audits
offline must reproduce the exported ``whatif`` record's policy totals
bit-exactly, with the oracle at exactly zero regret.
"""

import json

import pytest

from repro.experiments.harness import SMOKE_SCALE, ExperimentConfig
from repro.runner import ResultCache, Runner, RunSpec, expand_grid

pytestmark = pytest.mark.slow


def _grid():
    base = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE, seed=3))
    return expand_grid(
        base, {"policy": ["aware", "nearest"], "size_class": ["VS", "S"]}
    )


@pytest.fixture(scope="module")
def serial_results():
    return Runner(jobs=1, whatif=True).run(_grid())


class TestWhatifDeterminism:
    def test_jobs4_payloads_byte_identical_to_serial(self, serial_results):
        parallel = Runner(jobs=4, whatif=True).run(_grid())
        assert len(parallel) == len(serial_results) == 4
        for s, p in zip(serial_results, parallel):
            assert s.payload_json() == p.payload_json(), s.spec.label()

    def test_cache_round_trip_preserves_whatif(self, tmp_path, serial_results):
        cache = ResultCache(str(tmp_path))
        spec = _grid()[0]
        first = Runner(jobs=1, cache=cache, whatif=True).run([spec])[0]
        hit = Runner(jobs=1, cache=cache, whatif=True).run([spec])[0]
        assert hit.from_cache
        assert hit.payload_json() == first.payload_json()
        assert hit.payload_json() == serial_results[0].payload_json()

    def test_whatif_spec_hash_differs_from_plain(self):
        spec = _grid()[0]
        observed = spec.instrumented(whatif=True)
        assert observed.content_hash() != spec.content_hash()
        # Stamping is idempotent.
        assert observed.instrumented(whatif=True) is observed

    def test_payload_carries_one_whatif_record_per_run(self, serial_results):
        for result in serial_results:
            records = result.obs_records()
            whatif = [r for r in records if r["kind"] == "whatif"]
            assert len(whatif) == 1
            # The record appends at the very end of the export.
            assert records[-1]["kind"] == "whatif"
            assert whatif[0]["decisions"] == whatif[0]["replayed"] + whatif[0]["skipped"]

    def test_collection_does_not_perturb_outcomes(self, serial_results):
        """The payload minus obs_records equals the plain payload exactly —
        the replay hook reads candidate dicts the audit already built and
        never schedules simulator events of its own."""
        plain = Runner(jobs=1).run(_grid())
        for s, p in zip(serial_results, plain):
            observed_payload = json.loads(s.payload_json())
            observed_payload.pop("obs_records", None)
            plain_payload = json.loads(p.payload_json())
            plain_payload.pop("obs_records", None)
            assert observed_payload == plain_payload, s.spec.label()

    def test_filtered_export_matches_plain_obs_records(self, serial_results):
        """Dropping the whatif record yields the exact record stream a
        plain labeled run exports (the CI smoke proves the same with
        grep/cmp over the JSONL bytes)."""
        plain = Runner(jobs=1).run(
            [
                RunSpec.from_config(
                    s.spec.to_config(),
                    obs_run={
                        "policy": s.spec.policy,
                        "size_class": s.spec.size_class,
                        "seed": s.spec.seed,
                    },
                )
                for s in serial_results
            ]
        )
        for s, p in zip(serial_results, plain):
            filtered = [r for r in s.obs_records() if r["kind"] != "whatif"]
            assert filtered == p.obs_records(), s.spec.label()

    def test_offline_replay_matches_exported_record(self, serial_results):
        """Acceptance: re-walking the exported decision audits with the
        same engine reproduces the exported policy totals bit-exactly, the
        oracle sits at exactly zero regret, and the staleness bins sum to
        the replayed decision count and the actual regret total."""
        from repro.runner.spec import canonical_json
        from repro.obs.whatif import replay_decisions

        for result in serial_results:
            records = result.obs_records()
            (wi,) = [r for r in records if r["kind"] == "whatif"]
            decisions = [
                r for r in records
                if r["kind"] == "decision-audit" and r.get("metric") == "delay"
            ]
            events = [r for r in records if r["kind"] == "event"]
            offline = replay_decisions(
                decisions, probing_interval=wi["interval"], events=events
            )
            assert offline["replayed"] == wi["replayed"]
            assert offline["skipped"] == wi["skipped"]
            assert canonical_json(offline["policies"]) == canonical_json(
                wi["policies"]
            ), result.spec.label()
            oracle = next(
                p for p in wi["policies"] if p["policy"] == "oracle"
            )
            assert oracle["regret_total"] == 0.0
            bins = wi["staleness"]["bins"]
            assert sum(b["count"] for b in bins) == wi["replayed"]
            assert sum(b["regret_total"] for b in bins) == pytest.approx(
                wi["actual"]["regret_total"]
            )
            # Replaying twice is bit-exact.
            again = replay_decisions(
                decisions, probing_interval=wi["interval"], events=events
            )
            assert canonical_json(offline) == canonical_json(again)

    def test_staleness_bins_reconcile_with_telquality(self):
        """Both observatories on one run gate the same decisions: the
        whatif record's delay-decision count equals the telquality
        attribution's."""
        spec = _grid()[0]
        result = Runner(jobs=1, telquality=True, whatif=True).run([spec])[0]
        records = result.obs_records()
        (wi,) = [r for r in records if r["kind"] == "whatif"]
        (tq,) = [r for r in records if r["kind"] == "telquality"]
        assert wi["decisions"] == tq["attribution"]["decisions"]
        # And the whatif record still appends after telquality.
        kinds = [r["kind"] for r in records]
        assert kinds.index("whatif") > kinds.index("telquality")
