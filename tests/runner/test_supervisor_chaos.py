"""Harness chaos: killed, hung, and raising workers under supervision.

Chaos is injected deterministically through the ``REPRO_CHAOS`` environment
variable (inherited by spawn-started workers, see
``repro.runner.supervisor._inject_chaos``): rules match a substring of the
run's canonical spec JSON and make the worker SIGKILL itself, hang forever,
or raise, on chosen attempt numbers.
"""

import json

import pytest

from repro.runner import (
    CalibrationSpec,
    ResultCache,
    RunInterrupted,
    Runner,
    RunsFailedError,
    default_run_timeout,
)
from repro.runner.supervisor import (
    DEFAULT_TIMEOUT_FLOOR_S,
    backoff_delay,
)

pytestmark = pytest.mark.slow


def _spec(utilization=0.25):
    # Cheapest legal calibration run; utilization doubles as the chaos
    # match key because it appears verbatim in the canonical spec JSON.
    return CalibrationSpec(utilization=utilization, duration=6.0)


def _chaos(monkeypatch, *rules):
    monkeypatch.setenv("REPRO_CHAOS", json.dumps(list(rules)))


class TestUnits:
    def test_backoff_doubles_and_caps(self):
        assert backoff_delay(1) == 0.5
        assert backoff_delay(2) == 1.0
        assert backoff_delay(10) == 30.0

    def test_default_timeout_has_floor(self):
        assert default_run_timeout(_spec()) == DEFAULT_TIMEOUT_FLOOR_S

    def test_default_timeout_scales_with_duration(self):
        spec = CalibrationSpec(utilization=0.5, duration=100.0)
        assert default_run_timeout(spec) == 2000.0

    def test_interrupted_message_names_resume(self):
        exc = RunInterrupted(
            completed=3, failed=1, total=12, journal_path="sweep.journal"
        )
        assert "3/12" in str(exc)
        assert "resume with: repro resume sweep.journal" in str(exc)


class TestSupervisedChaos:
    def test_killed_worker_is_a_structured_crash(self, monkeypatch):
        _chaos(monkeypatch, {"match": '"utilization":0.25', "action": "kill"})
        runner = Runner(jobs=2, retries=0, on_failure="keep")
        result = runner.run([_spec(0.25)])[0]
        assert not result.ok
        assert result.payload == {}
        failure = result.failure
        assert failure["kind"] == "crash"
        assert failure["error_type"] == "WorkerCrash"
        assert failure["signal"] == "SIGKILL"
        assert failure["attempts"] == 1
        assert runner.stats.failed == 1 and runner.stats.executed == 0
        with pytest.raises(Exception, match="no payload"):
            result.calibration_point()

    def test_hung_worker_times_out_without_losing_others(self, monkeypatch):
        _chaos(monkeypatch, {"match": '"utilization":0.25', "action": "hang"})
        runner = Runner(jobs=2, retries=0, run_timeout=3.0, on_failure="keep")
        hung, fine = runner.run([_spec(0.25), _spec(0.75)])
        assert not hung.ok
        assert hung.failure["kind"] == "timeout"
        assert hung.failure["run_timeout_s"] == 3.0
        assert hung.failure["signal"] == "SIGKILL"
        assert fine.ok
        assert fine.calibration_point().utilization == 0.75

    def test_raising_worker_carries_exception_envelope(self, monkeypatch):
        _chaos(monkeypatch, {"match": "", "action": "raise"})
        # jobs=1 + positive run_timeout also routes through the supervisor.
        runner = Runner(jobs=1, retries=0, run_timeout=60.0, on_failure="keep")
        result = runner.run([_spec()])[0]
        failure = result.failure
        assert failure["kind"] == "exception"
        assert failure["error_type"] == "RuntimeError"
        assert "chaos" in failure["message"]
        assert "RuntimeError" in failure["traceback"]

    def test_retry_on_fresh_worker_recovers(self, monkeypatch):
        _chaos(
            monkeypatch,
            {"match": "", "action": "kill", "attempts": [1]},
        )
        runner = Runner(jobs=2, retries=1, backoff_base=0.05)
        result = runner.run([_spec()])[0]
        assert result.ok
        assert result.provenance["attempts"] == 2
        assert result.provenance["executor"] == "supervised"
        assert runner.stats.retried == 1
        assert runner.stats.executed == 1 and runner.stats.failed == 0

    def test_failure_raises_after_full_grid_and_never_caches(
        self, monkeypatch, tmp_path
    ):
        _chaos(monkeypatch, {"match": '"utilization":0.25', "action": "kill"})
        cache = ResultCache(str(tmp_path / "cache"))
        runner = Runner(jobs=2, retries=0, cache=cache)
        bad, good = _spec(0.25), _spec(0.75)
        with pytest.raises(RunsFailedError, match="1 of 2") as excinfo:
            runner.run([bad, good])
        assert len(excinfo.value.failures) == 1
        assert len(excinfo.value.results) == 2
        # The surviving cell was attempted and persisted before the raise;
        # the failed cell must never be cached.
        assert cache.entries() == [good.content_hash()]


class TestSerialResilience:
    def test_exception_retry_in_process(self, monkeypatch):
        from repro.runner.runner import _execute_envelope_json as real

        calls = {"n": 0}

        def flaky(spec_json):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient")
            return real(spec_json)

        monkeypatch.setattr("repro.runner.runner._execute_envelope_json", flaky)
        runner = Runner(jobs=1, retries=1, backoff_base=0.0)
        result = runner.run([_spec()])[0]
        assert result.ok
        assert result.provenance["executor"] == "serial"
        assert result.provenance["attempts"] == 2
        assert runner.stats.retried == 1

    def test_exhausted_retries_keep_failure_envelope(self, monkeypatch):
        def always_broken(spec_json):
            raise ValueError("permanent")

        monkeypatch.setattr(
            "repro.runner.runner._execute_envelope_json", always_broken
        )
        runner = Runner(jobs=1, retries=1, backoff_base=0.0, on_failure="keep")
        result = runner.run([_spec()])[0]
        assert result.failure["kind"] == "exception"
        assert result.failure["error_type"] == "ValueError"
        assert result.failure["attempts"] == 2
        assert runner.stats.retried == 1 and runner.stats.failed == 1

    def test_interrupt_persists_completed_work(self, monkeypatch, tmp_path):
        from repro.runner.journal import RunJournal
        from repro.runner.runner import _execute_envelope_json as real

        first, second = _spec(0.25), _spec(0.75)

        def interrupt_second(spec_json):
            if '"utilization":0.75' in spec_json:
                raise KeyboardInterrupt
            return real(spec_json)

        monkeypatch.setattr(
            "repro.runner.runner._execute_envelope_json", interrupt_second
        )
        cache = ResultCache(str(tmp_path / "cache"))
        journal = RunJournal(str(tmp_path / "sweep.journal"))
        runner = Runner(jobs=1, cache=cache, journal=journal)
        with pytest.raises(RunInterrupted) as excinfo:
            runner.run([first, second])
        exc = excinfo.value
        assert exc.completed == 1 and exc.total == 2
        assert exc.journal_path == journal.path
        # Completed cell is on disk; the journal knows exactly what's left.
        assert cache.entries() == [first.content_hash()]
        state = journal.load()
        assert state.interrupted is True
        assert state.status[first.content_hash()] == "done"
        assert state.pending == [second.content_hash()]
