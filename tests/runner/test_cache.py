"""Content-addressed result cache: exact bytes, atomicity, invalidation."""

import json
import os

from repro.runner.cache import ResultCache
from repro.runner.spec import canonical_json, content_hash


def _envelope_bytes(spec_hash, payload=None):
    return canonical_json(
        {"spec_hash": spec_hash, "payload": payload or {"x": 1}}
    ).encode("utf-8")


class TestCacheBasics:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get("a" * 64) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_get_exact_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        h = content_hash({"spec": 1})
        data = _envelope_bytes(h)
        cache.put(h, data)
        assert cache.get(h) == data
        assert cache.hits == 1

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "b" * 64
        cache.put(h, _envelope_bytes(h, {"v": 1}))
        newer = _envelope_bytes(h, {"v": 2})
        cache.put(h, newer)
        assert cache.get(h) == newer

    def test_entries_len_size_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        hashes = sorted("%064x" % i for i in range(3))
        for h in hashes:
            cache.put(h, _envelope_bytes(h))
        assert cache.entries() == hashes
        assert len(cache) == 3
        assert cache.size_bytes() == sum(
            len(_envelope_bytes(h)) for h in hashes
        )
        assert cache.clear() == 3
        assert len(cache) == 0


class TestCacheIntegrity:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "c" * 64
        cache.put(h, _envelope_bytes(h))
        with open(cache.path(h), "w") as fh:
            fh.write("{truncated")
        assert cache.get(h) is None

    def test_misfiled_entry_is_a_miss(self, tmp_path):
        # An envelope stored under a hash it doesn't claim is not trusted.
        cache = ResultCache(str(tmp_path))
        wrong = "d" * 64
        cache.put(wrong, _envelope_bytes("e" * 64))
        assert cache.get(wrong) is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "f" * 64
        cache.put(h, b"[1,2,3]")
        assert cache.get(h) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "a" * 64
        cache.put(h, _envelope_bytes(h))
        assert [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")] == []

    def test_stored_file_is_valid_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "9" * 64
        cache.put(h, _envelope_bytes(h))
        with open(cache.path(h)) as fh:
            assert json.load(fh)["spec_hash"] == h


class TestCrashSafety:
    """Checksum sidecars: byte flips and truncation are caught, evicted with
    a warning, and reported as misses so the run recomputes."""

    def test_put_writes_checksum_sidecar(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "a" * 64
        cache.put(h, _envelope_bytes(h))
        with open(cache.sidecar_path(h)) as fh:
            digest = fh.read().strip()
        import hashlib

        assert digest == hashlib.sha256(_envelope_bytes(h)).hexdigest()

    def test_byte_flip_evicted_with_warning(self, tmp_path):
        # The flipped entry is still valid JSON naming the right hash — only
        # the checksum can catch it.
        corrupt = []
        cache = ResultCache(
            str(tmp_path), on_corrupt=lambda h, r: corrupt.append((h, r))
        )
        h = "b" * 64
        cache.put(h, _envelope_bytes(h, {"x": 1}))
        flipped = _envelope_bytes(h, {"x": 2})
        with open(cache.path(h), "wb") as fh:
            fh.write(flipped)
        assert cache.get(h) is None
        assert cache.evictions == 1
        assert len(corrupt) == 1 and corrupt[0][0] == h
        assert "checksum" in corrupt[0][1]
        # Evicted: entry and sidecar both gone, next put works cleanly.
        assert not os.path.exists(cache.path(h))
        assert not os.path.exists(cache.sidecar_path(h))
        cache.put(h, _envelope_bytes(h, {"x": 3}))
        assert cache.get(h) == _envelope_bytes(h, {"x": 3})

    def test_truncated_entry_evicted(self, tmp_path):
        corrupt = []
        cache = ResultCache(
            str(tmp_path), on_corrupt=lambda h, r: corrupt.append((h, r))
        )
        h = "c" * 64
        cache.put(h, _envelope_bytes(h))
        data = _envelope_bytes(h)
        with open(cache.path(h), "wb") as fh:
            fh.write(data[: len(data) // 2])
        assert cache.get(h) is None
        assert cache.evictions == 1 and len(corrupt) == 1

    def test_legacy_entry_without_sidecar_still_served(self, tmp_path):
        # Entries written before checksums existed fall back to the
        # structural (JSON + spec_hash) validation.
        cache = ResultCache(str(tmp_path))
        h = "d" * 64
        cache.put(h, _envelope_bytes(h))
        os.unlink(cache.sidecar_path(h))
        assert cache.get(h) == _envelope_bytes(h)

    def test_misfiled_entry_not_evicted(self, tmp_path):
        # Intact bytes under the wrong name: a miss, not corruption.
        cache = ResultCache(str(tmp_path))
        wrong = "e" * 64
        cache.put(wrong, _envelope_bytes("f" * 64))
        assert cache.get(wrong) is None
        assert cache.evictions == 0
        assert os.path.exists(cache.path(wrong))

    def test_verify_scans_and_evicts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        good, bad, legacy = "1" * 64, "2" * 64, "3" * 64
        for h in (good, bad, legacy):
            cache.put(h, _envelope_bytes(h))
        with open(cache.path(bad), "wb") as fh:
            fh.write(_envelope_bytes(bad, {"x": 99}))  # flip past the sidecar
        os.unlink(cache.sidecar_path(legacy))
        report = cache.verify()
        assert report["checked"] == 3
        assert [h for h, _ in report["evicted"]] == [bad]
        assert report["unverified"] == [legacy]
        assert cache.get(good) is not None

    def test_clear_removes_sidecars(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "4" * 64
        cache.put(h, _envelope_bytes(h))
        assert cache.clear() == 1
        assert os.listdir(str(tmp_path)) == []
