"""Content-addressed result cache: exact bytes, atomicity, invalidation."""

import json
import os

from repro.runner.cache import ResultCache
from repro.runner.spec import canonical_json, content_hash


def _envelope_bytes(spec_hash, payload=None):
    return canonical_json(
        {"spec_hash": spec_hash, "payload": payload or {"x": 1}}
    ).encode("utf-8")


class TestCacheBasics:
    def test_miss_on_empty(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        assert cache.get("a" * 64) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_get_exact_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        h = content_hash({"spec": 1})
        data = _envelope_bytes(h)
        cache.put(h, data)
        assert cache.get(h) == data
        assert cache.hits == 1

    def test_put_overwrites(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "b" * 64
        cache.put(h, _envelope_bytes(h, {"v": 1}))
        newer = _envelope_bytes(h, {"v": 2})
        cache.put(h, newer)
        assert cache.get(h) == newer

    def test_entries_len_size_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        hashes = sorted("%064x" % i for i in range(3))
        for h in hashes:
            cache.put(h, _envelope_bytes(h))
        assert cache.entries() == hashes
        assert len(cache) == 3
        assert cache.size_bytes() == sum(
            len(_envelope_bytes(h)) for h in hashes
        )
        assert cache.clear() == 3
        assert len(cache) == 0


class TestCacheIntegrity:
    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "c" * 64
        cache.put(h, _envelope_bytes(h))
        with open(cache.path(h), "w") as fh:
            fh.write("{truncated")
        assert cache.get(h) is None

    def test_misfiled_entry_is_a_miss(self, tmp_path):
        # An envelope stored under a hash it doesn't claim is not trusted.
        cache = ResultCache(str(tmp_path))
        wrong = "d" * 64
        cache.put(wrong, _envelope_bytes("e" * 64))
        assert cache.get(wrong) is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "f" * 64
        cache.put(h, b"[1,2,3]")
        assert cache.get(h) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "a" * 64
        cache.put(h, _envelope_bytes(h))
        assert [n for n in os.listdir(str(tmp_path)) if n.endswith(".tmp")] == []

    def test_stored_file_is_valid_json(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        h = "9" * 64
        cache.put(h, _envelope_bytes(h))
        with open(cache.path(h)) as fh:
            assert json.load(fh)["spec_hash"] == h
