"""Sweep journal: atomic appends, tolerant replay, last-record-wins."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import SMOKE_SCALE, ExperimentConfig
from repro.runner.journal import RunJournal
from repro.runner.spec import CalibrationSpec, RunSpec


def _specs(n=3):
    base = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE, seed=7))
    return [base.with_(seed=base.seed + i) for i in range(n)]


class TestRoundTrip:
    def test_schedule_done_failed_replay(self, tmp_path):
        journal = RunJournal(str(tmp_path / "sweep.journal"))
        specs = _specs(3)
        hashes = [s.content_hash() for s in specs]
        for h, s in zip(hashes, specs):
            journal.scheduled(h, s)
        journal.done(hashes[0], cached=True)
        journal.failed(hashes[1], {"kind": "crash", "error_type": "WorkerCrash"})
        state = journal.load()
        assert state.order == hashes
        assert state.status[hashes[0]] == "done"
        assert state.cached[hashes[0]] is True
        assert state.status[hashes[1]] == "failed"
        assert state.failures[hashes[1]]["kind"] == "crash"
        assert state.status[hashes[2]] == "pending"
        assert state.pending == hashes[1:]
        assert state.done == hashes[:1]
        assert state.skipped_lines == 0
        # Specs round-trip through their dict form.
        assert state.specs[hashes[2]].content_hash() == hashes[2]

    def test_calibration_specs_round_trip(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j"))
        spec = CalibrationSpec(utilization=0.5, duration=6.0)
        journal.scheduled(spec.content_hash(), spec)
        state = journal.load()
        assert state.specs[spec.content_hash()] == spec

    def test_summary_counts(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j"))
        specs = _specs(3)
        hashes = [s.content_hash() for s in specs]
        for h, s in zip(hashes, specs):
            journal.scheduled(h, s)
        journal.done(hashes[0])
        journal.failed(hashes[1], {})
        assert journal.load().summary() == "3 spec(s): 1 done, 1 failed, 1 never ran"


class TestLastRecordWins:
    def test_failed_then_done_counts_done(self, tmp_path):
        # A spec that failed, then succeeded on a resumed pass, is done —
        # and its stale failure envelope is dropped.
        journal = RunJournal(str(tmp_path / "j"))
        spec = _specs(1)[0]
        h = spec.content_hash()
        journal.scheduled(h, spec)
        journal.failed(h, {"kind": "timeout"})
        journal.done(h)
        state = journal.load()
        assert state.status[h] == "done"
        assert h not in state.failures
        assert state.pending == []

    def test_rescheduling_keeps_first_order(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j"))
        specs = _specs(2)
        hashes = [s.content_hash() for s in specs]
        for h, s in zip(hashes, specs):
            journal.scheduled(h, s)
        # A resumed sweep re-schedules the grid; order must not duplicate.
        for h, s in zip(hashes, specs):
            journal.scheduled(h, s)
        assert journal.load().order == hashes


class TestTolerantReplay:
    def test_torn_final_line_skipped_with_warning(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j"))
        spec = _specs(1)[0]
        h = spec.content_hash()
        journal.scheduled(h, spec)
        with open(journal.path, "a") as fh:
            fh.write('{"record": "done", "spec_ha')  # killed mid-append
        warnings = []
        state = journal.load(on_warning=warnings.append)
        assert state.status[h] == "pending"
        assert state.skipped_lines == 1
        assert len(warnings) == 1 and "torn" in warnings[0]

    def test_unknown_and_non_object_records_skipped(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j"))
        spec = _specs(1)[0]
        journal.scheduled(spec.content_hash(), spec)
        with open(journal.path, "a") as fh:
            fh.write(json.dumps({"record": "from-the-future"}) + "\n")
            fh.write("[1, 2]\n")
        warnings = []
        state = journal.load(on_warning=warnings.append)
        assert state.skipped_lines == 2
        assert state.order == [spec.content_hash()]
        assert any("unknown" in w for w in warnings)
        assert any("non-object" in w for w in warnings)

    def test_unloadable_spec_skipped(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j"))
        with open(journal.path, "w") as fh:
            fh.write(json.dumps({
                "record": "scheduled",
                "spec_hash": "a" * 64,
                "spec": {"kind": "no-such-kind"},
            }) + "\n")
        warnings = []
        state = journal.load(on_warning=warnings.append)
        assert state.order == []
        assert state.skipped_lines == 1
        assert "unloadable" in warnings[0]

    def test_interrupted_record_sets_flag(self, tmp_path):
        journal = RunJournal(str(tmp_path / "j"))
        spec = _specs(1)[0]
        journal.scheduled(spec.content_hash(), spec)
        journal.interrupted(completed=0, failed=0, total=1)
        assert journal.load().interrupted is True

    def test_missing_file_raises(self, tmp_path):
        journal = RunJournal(str(tmp_path / "nope.journal"))
        assert not journal.exists()
        with pytest.raises(ExperimentError, match="not found"):
            journal.load()

    def test_append_creates_parent_dirs(self, tmp_path):
        journal = RunJournal(str(tmp_path / "deep" / "nested" / "j"))
        spec = _specs(1)[0]
        journal.scheduled(spec.content_hash(), spec)
        assert journal.exists()
