"""Telquality determinism: collection is read-only and byte-stable.

Acceptance tests for the telemetry-quality observatory: a grid run with
``telquality=True`` must export byte-identical payloads serially, under
``jobs=4``, and through a cache round trip; enabling collection must not
change any task outcome or schedule any new simulator event (the engine
profile's per-handler counts stay exactly equal).
"""

import json

import pytest

from repro.experiments.harness import SMOKE_SCALE, ExperimentConfig
from repro.runner import ResultCache, Runner, RunSpec, expand_grid

pytestmark = pytest.mark.slow


def _grid():
    base = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE, seed=3))
    return expand_grid(
        base, {"policy": ["aware", "nearest"], "size_class": ["VS", "S"]}
    )


@pytest.fixture(scope="module")
def serial_results():
    return Runner(jobs=1, telquality=True).run(_grid())


class TestTelqualityDeterminism:
    def test_jobs4_payloads_byte_identical_to_serial(self, serial_results):
        parallel = Runner(jobs=4, telquality=True).run(_grid())
        assert len(parallel) == len(serial_results) == 4
        for s, p in zip(serial_results, parallel):
            assert s.payload_json() == p.payload_json(), s.spec.label()

    def test_cache_round_trip_preserves_telquality(self, tmp_path, serial_results):
        cache = ResultCache(str(tmp_path))
        spec = _grid()[0]
        first = Runner(jobs=1, cache=cache, telquality=True).run([spec])[0]
        hit = Runner(jobs=1, cache=cache, telquality=True).run([spec])[0]
        assert hit.from_cache
        assert hit.payload_json() == first.payload_json()
        assert hit.payload_json() == serial_results[0].payload_json()

    def test_telquality_spec_hash_differs_from_plain(self):
        spec = _grid()[0]
        observed = spec.instrumented(telquality=True)
        assert observed.content_hash() != spec.content_hash()
        # Stamping is idempotent.
        assert observed.instrumented(telquality=True) is observed

    def test_payload_carries_one_telquality_record_per_run(self, serial_results):
        for result in serial_results:
            records = result.obs_records()
            telquality = [r for r in records if r["kind"] == "telquality"]
            assert len(telquality) == 1
            # The record appends at the very end of the export.
            assert records[-1]["kind"] == "telquality"
            assert telquality[0]["layout"] == "mesh"

    def test_collection_does_not_perturb_outcomes(self, serial_results):
        """The payload minus obs_records equals the plain payload exactly —
        including events_executed: the observatory hooks piggyback existing
        calls and never schedule simulator events of their own."""
        plain = Runner(jobs=1).run(_grid())
        for s, p in zip(serial_results, plain):
            observed_payload = json.loads(s.payload_json())
            observed_payload.pop("obs_records", None)
            plain_payload = json.loads(p.payload_json())
            plain_payload.pop("obs_records", None)
            assert observed_payload == plain_payload, s.spec.label()

    def test_profile_handler_counts_unchanged(self):
        """Per-event-type handler counts are identical with and without
        collection — the BENCH_runner.json profile gate cannot move.

        Both sides carry obs labels: attaching an Observability hub at all
        disables transmit coalescing (see nic._try_coalesce), so the plain
        baseline must be obs-attached too for the delta to isolate the
        observatory's hooks."""
        spec = RunSpec.from_config(
            ExperimentConfig(scale=SMOKE_SCALE, seed=3),
            obs_run={"policy": "aware"},
        )
        plain = Runner(jobs=1, profile=True).run([spec])[0]
        observed = Runner(jobs=1, profile=True, telquality=True).run([spec])[0]
        plain_types = {
            name: stats["count"]
            for name, stats in plain.profile()["by_type"].items()
        }
        observed_types = {
            name: stats["count"]
            for name, stats in observed.profile()["by_type"].items()
        }
        assert plain_types == observed_types

    def test_mesh_full_coverage_and_bins_sum_to_audit(self, serial_results):
        """Acceptance: 100% directed-port coverage under mesh on the default
        12-switch topology, and the error-vs-age bin counts sum to the
        decision-audit's accepted delay samples."""
        from repro.obs.audit import delay_error_stats

        aware = serial_results[0]
        assert aware.spec.policy == "aware"
        records = aware.obs_records()
        (tq,) = [r for r in records if r["kind"] == "telquality"]
        coverage = tq["coverage"]
        assert coverage["observed_ports"] == coverage["total_ports"] == 32
        assert coverage["blind"] == []
        assert coverage["matches_prediction"] is True
        audit_total = sum(
            delay_error_stats(r.get("candidates", []))["samples"]
            for r in records
            if r["kind"] == "decision-audit" and r.get("metric") == "delay"
        )
        bin_total = sum(b["count"] for b in tq["attribution"]["bins"])
        assert bin_total == audit_total == tq["attribution"]["samples"]
