"""Fast path vs oracle path: byte-identical exports on the fig5 smoke grid.

``REPRO_SLOWPATH=1`` disables both fast-path engines — the compiled
per-(switch, packet-class) forwarding closures and NIC transmit coalescing —
leaving the staged ``PipelineContext`` pipeline and the per-frame TX path as
the oracle.  The tentpole acceptance bar: the full Fig. 5 smoke grid must
export byte-identical payloads either way.  The env var is read at network
build time, so flipping it between serial in-process runs is enough.
"""

import pytest

from repro.p4.per_packet_int import PerPacketIntProgram
from repro.runner import Runner
from repro.runner.bench import bench_grid_specs

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fast_results():
    return Runner(jobs=1).run(bench_grid_specs("smoke"))


class TestSlowpathEquivalence:
    def test_fig5_smoke_grid_byte_identical(self, fast_results, monkeypatch):
        monkeypatch.setenv("REPRO_SLOWPATH", "1")
        slow = Runner(jobs=1).run(bench_grid_specs("smoke"))
        assert len(slow) == len(fast_results) == 12
        for f, s in zip(fast_results, slow):
            assert f.payload_json() == s.payload_json(), f.spec.label()

    def test_fast_path_engages_by_default(self, monkeypatch):
        """Guard against silently testing slow-vs-slow: a default-built
        switch carries compiled closures and its ports may coalesce."""
        monkeypatch.delenv("REPRO_SLOWPATH", raising=False)
        from repro.simnet.engine import Simulator
        from repro.simnet.random import RandomStreams
        from repro.simnet.topology import Network
        from repro.units import mbps, ms

        net = Network(Simulator(), RandomStreams(0))
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.finalize()
        switch = net.switch("s01")
        assert switch._fast_ingress is not None
        assert switch._fast_egress is not None
        assert net.host("h1").ports[0]._coalesce is True


class TestCompileRefusals:
    def test_per_packet_int_stays_on_oracle_path(self):
        """PerPacketIntProgram overrides ingress/egress; compile() must
        refuse it so the staged path remains authoritative."""
        assert PerPacketIntProgram().compile() is None

    def test_unknown_subclass_override_refused(self):
        from repro.p4.int_program import IntTelemetryProgram

        class Exotic(IntTelemetryProgram):
            def egress(self, ctx):  # pragma: no cover - never invoked
                super().egress(ctx)

        assert Exotic().compile() is None
