"""Trace determinism and the critical-path acceptance invariant.

Satellite acceptance tests for the tracing subsystem: a traced grid run
with ``jobs=4`` must export byte-identical span records to the serial
execution, span trees must be well-formed (acyclic, parents present), and
every completed task's segment durations must sum to its measured
end-to-end delay.
"""

import json

import pytest

from repro.experiments.harness import SMOKE_SCALE, ExperimentConfig
from repro.obs.tracing import SEGMENT_NAMES
from repro.runner import ResultCache, Runner, RunSpec, canonical_json, expand_grid

pytestmark = pytest.mark.slow


def _grid():
    base = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE, seed=3))
    return expand_grid(
        base, {"policy": ["aware", "nearest"], "size_class": ["VS", "S"]}
    )


def _trace_bytes(results):
    return [
        b"\n".join(canonical_json(r).encode() for r in result.trace_records())
        for result in results
    ]


@pytest.fixture(scope="module")
def serial_results():
    return Runner(jobs=1, trace=True).run(_grid())


class TestTraceDeterminism:
    def test_jobs4_trace_exports_byte_identical_to_serial(self, serial_results):
        parallel = Runner(jobs=4, trace=True).run(_grid())
        assert len(parallel) == len(serial_results) == 4
        for s, p in zip(serial_results, parallel):
            assert s.payload_json() == p.payload_json(), s.spec.label()
        assert _trace_bytes(serial_results) == _trace_bytes(parallel)

    def test_cache_round_trip_preserves_trace_records(self, tmp_path, serial_results):
        cache = ResultCache(str(tmp_path))
        spec = _grid()[0]
        first = Runner(jobs=1, cache=cache, trace=True).run([spec])[0]
        hit = Runner(jobs=1, cache=cache, trace=True).run([spec])[0]
        assert hit.from_cache
        assert _trace_bytes([hit]) == _trace_bytes([first])
        assert _trace_bytes([hit]) == _trace_bytes([serial_results[0]])

    def test_traced_spec_hash_differs_from_plain(self):
        spec = _grid()[0]
        traced = spec.instrumented(trace=True)
        assert traced.content_hash() != spec.content_hash()
        # Stamping is idempotent: re-instrumenting an already-traced spec
        # returns it unchanged (same hash, same object).
        assert traced.instrumented(trace=True) is traced

    def test_plain_run_has_no_trace_records(self):
        result = Runner(jobs=1).run(_grid()[:1])[0]
        assert result.trace_records() == []
        assert "trace_records" not in json.loads(result.payload_json())

    def test_runner_collects_trace_records(self, serial_results):
        runner = Runner(jobs=1, trace=True)
        runner.run(_grid()[:2])
        assert len(runner.trace_records) > 0
        assert all(r["kind"] == "span" for r in runner.trace_records)
        assert all("run" in r for r in runner.trace_records)


class TestSpanTreeInvariants:
    @pytest.fixture(scope="class")
    def spans(self, serial_results):
        return [r for res in serial_results for r in res.trace_records()]

    def test_parent_links_complete_and_acyclic(self, spans):
        by_trace = {}
        for span in spans:
            by_trace.setdefault((tuple(sorted(span["run"].items())),
                                 span["trace_id"]), []).append(span)
        assert by_trace
        for trace_spans in by_trace.values():
            ids = {s["span_id"] for s in trace_spans}
            parents = {s["span_id"]: s["parent_id"] for s in trace_spans}
            roots = [s for s in trace_spans if s["parent_id"] is None]
            assert len(roots) == 1
            for span in trace_spans:
                # Every non-root parent exists within the same trace.
                if span["parent_id"] is not None:
                    assert span["parent_id"] in ids
                # Walking up terminates at the root (no cycles).
                seen, cur = set(), span["span_id"]
                while cur is not None:
                    assert cur not in seen
                    seen.add(cur)
                    cur = parents[cur]

    def test_child_spans_within_parent_interval(self, spans):
        # Span ids restart per run, so the lookup key must include the run
        # label alongside the trace id.
        def key(s, span_id):
            return (tuple(sorted(s["run"].items())), s["trace_id"], span_id)

        by_id = {key(s, s["span_id"]): s for s in spans}
        for span in spans:
            if span["parent_id"] is None:
                continue
            parent = by_id[key(span, span["parent_id"])]
            assert span["start"] >= parent["start"] - 1e-9
            assert span["end"] <= parent["end"] + 1e-9

    def test_every_completed_task_decomposes_exactly(self, spans):
        """The headline acceptance criterion: for every completed task the
        five segment durations sum to the measured end-to-end delay."""
        roots = [
            s for s in spans
            if s["name"] == "task" and not s["attributes"]["failed"]
        ]
        decomposed = [
            s for s in roots if s["attributes"]["segments"] is not None
        ]
        assert decomposed, "no completed task produced a decomposition"
        for root in decomposed:
            segments = root["attributes"]["segments"]
            assert set(segments) == set(SEGMENT_NAMES)
            assert all(v >= 0.0 for v in segments.values())
            assert sum(segments.values()) == pytest.approx(
                root["attributes"]["end_to_end"], abs=1e-9
            )

    def test_probe_traces_present_and_sampled(self, spans):
        probes = [s for s in spans if s["name"] == "probe"]
        assert probes
        # Sampled by seq: every traced probe's seq satisfies the stride.
        assert all(
            (s["attributes"]["seq"] - 1) % 25 == 0 for s in probes
        )
        hops = [s for s in spans if s["name"] == "hop"]
        assert hops
        assert all(s["parent_id"] is not None for s in hops)
