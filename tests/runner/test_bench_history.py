"""Bench-history ledger: records, rolling baseline, parallel validity."""

import json

import pytest

from repro.errors import ExperimentError
from repro.runner.bench import (
    append_history,
    compare_bench,
    history_record,
    parallel_valid,
    read_history,
    render_bench_compare,
    rolling_baseline,
)


def _report(serial_s, *, jobs=2, cpus=4, valid=None, **extra):
    report = {
        "grid": {"figure": "fig5", "scale": "smoke", "seed": 0, "runs": 12},
        "serial_s": serial_s,
        "parallel_s": serial_s / 2.0,
        "parallel_jobs": jobs,
        "parallel_speedup": 2.0,
        "cached_s": serial_s / 10.0,
        "cached_speedup": 10.0,
        "cache_hits": 12,
        "byte_identical": True,
        "diverging_cells": [],
        "profile": None,
        "host": {"cpus": cpus, "python": "3.11.7", "platform": "linux"},
    }
    if valid is not None:
        report["parallel_valid"] = valid
    report.update(extra)
    return report


class TestParallelValid:
    def test_explicit_key_wins(self):
        assert parallel_valid(_report(10.0, valid=True)) is True
        assert parallel_valid(_report(10.0, valid=False)) is False

    def test_inferred_from_jobs_vs_cpus(self):
        assert parallel_valid(_report(10.0, jobs=2, cpus=4)) is True
        assert parallel_valid(_report(10.0, jobs=2, cpus=1)) is False

    def test_unknown_host_defaults_valid(self):
        report = _report(10.0)
        report["host"] = {}
        assert parallel_valid(report) is True


class TestHistoryLedger:
    def test_record_stamps_provenance(self):
        record = history_record(_report(10.0))
        assert record["serial_s"] == 10.0
        stamp = record["provenance"]
        assert stamp["recorded_at"].endswith("Z")
        assert "git_commit" in stamp

    def test_append_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(_report(10.0), path)
        append_history(_report(8.0), path)
        records = read_history(path)
        assert [r["serial_s"] for r in records] == [10.0, 8.0]
        assert all("provenance" in r for r in records)

    def test_read_skips_malformed_lines_with_warning(self, tmp_path):
        # A torn append (writer killed mid-line) costs that record only:
        # skip-and-warn, never an unreadable ledger.
        path = tmp_path / "hist.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        warnings = []
        records = read_history(str(path), on_warning=warnings.append)
        assert records == [{"ok": 1}]
        assert len(warnings) == 1 and "malformed" in warnings[0]
        path.write_text('[1, 2]\n{"ok": 2}\n')
        warnings.clear()
        records = read_history(str(path), on_warning=warnings.append)
        assert records == [{"ok": 2}]
        assert len(warnings) == 1 and "not an object" in warnings[0]

    def test_torn_final_append_keeps_earlier_records(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(_report(10.0), str(path))
        with open(path, "a") as fh:
            fh.write('{"serial_s": 8.0, "trunca')  # killed mid-write
        records = read_history(str(path), on_warning=lambda _m: None)
        assert [r["serial_s"] for r in records] == [10.0]

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps(_report(10.0)) + "\n\n")
        assert len(read_history(str(path))) == 1


class TestRollingBaseline:
    def test_median_per_metric(self):
        records = [_report(s) for s in (10.0, 30.0, 20.0)]
        baseline = rolling_baseline(records)
        assert baseline["serial_s"] == 20.0
        assert baseline["cached_s"] == 2.0
        assert baseline["baseline_of"] == 3

    def test_even_count_averages_middle_pair(self):
        baseline = rolling_baseline([_report(10.0), _report(20.0)])
        assert baseline["serial_s"] == 15.0

    def test_window_limits_records(self):
        records = [_report(s) for s in (100.0, 10.0, 10.0)]
        baseline = rolling_baseline(records, window=2)
        assert baseline["serial_s"] == 10.0
        assert baseline["baseline_of"] == 2

    def test_parallel_metric_only_from_valid_records(self):
        records = [
            _report(10.0, valid=False),
            _report(40.0, valid=True),
        ]
        baseline = rolling_baseline(records)
        assert baseline["parallel_s"] == 20.0  # only the valid record's
        assert baseline["parallel_valid"] is True

    def test_all_invalid_parallel_gives_none(self):
        records = [_report(10.0, valid=False), _report(12.0, valid=False)]
        baseline = rolling_baseline(records)
        assert baseline["parallel_s"] is None
        assert baseline["parallel_valid"] is False

    def test_empty_history_raises(self):
        with pytest.raises(ExperimentError, match="empty"):
            rolling_baseline([])

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            rolling_baseline([_report(10.0)], window=0)


class TestCompareParallelSkip:
    def test_invalid_side_skips_without_failure(self):
        baseline = _report(10.0, valid=False)
        baseline["parallel_s"] = 900.0  # 1-CPU noise must never gate
        candidate = _report(10.0, valid=True)
        report = compare_bench(baseline, candidate)
        row = next(r for r in report["rows"] if r["metric"] == "parallel_s")
        assert row["status"] == "skipped"
        assert "invalid" in row["note"]
        assert report["ok"]
        assert "parallel timing invalid" in render_bench_compare(report)

    def test_both_valid_still_gates(self):
        baseline = _report(10.0, valid=True)
        candidate = _report(10.0, valid=True)
        candidate["parallel_s"] = 50.0
        report = compare_bench(baseline, candidate)
        row = next(r for r in report["rows"] if r["metric"] == "parallel_s")
        assert row["status"] == "regression"
        assert not report["ok"]

    def test_legacy_report_inference_applies(self):
        # The committed pre-ledger report shape: no parallel_valid key,
        # jobs=2 on a 1-CPU host — inferred invalid, so skipped.
        baseline = _report(10.0, jobs=2, cpus=1)
        candidate = _report(10.0, valid=True)
        report = compare_bench(baseline, candidate)
        row = next(r for r in report["rows"] if r["metric"] == "parallel_s")
        assert row["status"] == "skipped"
