"""Profiling determinism: observing the engine must never perturb it.

Tentpole acceptance tests for phase-level profiling: a profiled grid run
(``--profile``, and ``--mem-profile`` on top) must produce payloads
byte-identical to the unprofiled execution — the profile rides in result
provenance only — and profiled runs stay byte-identical across serial,
``jobs=4``, and cache-round-trip executions.
"""

import json

import pytest

from repro.experiments.harness import SMOKE_SCALE, ExperimentConfig
from repro.runner import ResultCache, Runner, RunSpec, expand_grid

pytestmark = pytest.mark.slow


def _grid():
    base = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE, seed=3))
    return expand_grid(
        base, {"policy": ["aware", "nearest"], "size_class": ["VS", "S"]}
    )


@pytest.fixture(scope="module")
def plain_results():
    return Runner(jobs=1).run(_grid())


@pytest.fixture(scope="module")
def profiled_results():
    return Runner(jobs=1, profile=True).run(_grid())


class TestProfilingDeterminism:
    def test_profiled_payloads_byte_identical_to_plain(
        self, plain_results, profiled_results
    ):
        assert len(profiled_results) == len(plain_results) == 4
        for plain, prof in zip(plain_results, profiled_results):
            assert plain.payload_json() == prof.payload_json(), plain.spec.label()

    def test_mem_profiled_payloads_byte_identical_to_plain(self, plain_results):
        mem = Runner(jobs=1, mem_profile=True).run(_grid())
        for plain, prof in zip(plain_results, mem):
            assert plain.payload_json() == prof.payload_json(), plain.spec.label()

    def test_profiled_jobs4_byte_identical_to_serial(self, profiled_results):
        parallel = Runner(jobs=4, profile=True).run(_grid())
        for s, p in zip(profiled_results, parallel):
            assert s.payload_json() == p.payload_json(), s.spec.label()

    def test_profiled_cache_round_trip(self, tmp_path, profiled_results):
        cache = ResultCache(str(tmp_path))
        spec = _grid()[0]
        first = Runner(jobs=1, cache=cache, profile=True).run([spec])[0]
        hit = Runner(jobs=1, cache=cache, profile=True).run([spec])[0]
        assert hit.from_cache
        assert hit.payload_json() == first.payload_json()
        assert hit.payload_json() == profiled_results[0].payload_json()

    def test_profile_lives_in_provenance_not_payload(self, profiled_results):
        for result in profiled_results:
            assert "_profile" not in json.loads(result.payload_json())
            profile = result.profile()
            assert profile is not None
            assert profile["events_total"] > 0
            assert profile["phases"]

    def test_profiled_spec_hash_differs_from_plain(self):
        spec = _grid()[0]
        profiled = spec.instrumented(profile=True)
        assert profiled.content_hash() != spec.content_hash()
        mem = spec.instrumented(mem_profile=True)
        assert mem.content_hash() != profiled.content_hash()
        # Stamping is idempotent.
        assert profiled.instrumented(profile=True) is profiled

    def test_mem_profile_implies_profile(self):
        spec = _grid()[0].instrumented(mem_profile=True)
        assert spec.profile and spec.mem_profile

    def test_merged_summary_meets_attribution_floors(self, profiled_results):
        """Attribution floors asserted on a real smoke grid: the three
        hottest handlers are ≥90% phase-covered and the profiler's
        self-measured overhead stays bounded relative to profiled wall.
        The overhead bound is a *fraction* — the fast-path refactor shrank
        handler bodies ~5-10x while the per-event accounting cost is fixed,
        so the fraction is structurally higher than it was against the old
        slow handlers."""
        runner = Runner(jobs=1, profile=True)
        runner.run(_grid())
        summary = runner.profile_summary()
        assert summary is not None
        coverage = summary["phase_coverage"]
        by_wall = sorted(
            summary["by_type"].items(),
            key=lambda kv: kv[1]["wall_s"],
            reverse=True,
        )
        for name, _stats in by_wall[:3]:
            assert coverage.get(name, 0.0) >= 0.90, (name, coverage)
            assert coverage[name] <= 1.05  # nesting invariant, clock noise
        assert summary["overhead"]["fraction_of_wall"] < 0.40

    def test_mem_profile_memory_in_summary(self):
        runner = Runner(jobs=1, mem_profile=True)
        runner.run(_grid()[:1])
        summary = runner.profile_summary()
        memory = summary["memory"]
        assert memory is not None
        assert "gc_collections" in memory
        tm = memory["tracemalloc"]
        assert tm is not None and tm["top"]
        assert all({"site", "size_kb", "count"} <= set(s) for s in tm["top"])
