"""Checkpointed resume: interrupted sweeps finish byte-identically.

The acceptance contract: a grid that crashes mid-sweep and is resumed must
export exactly the bytes an uninterrupted run would have — completed cells
come off the cache, missing/failed cells re-run, nothing drifts.
"""

import json

import pytest

from repro.cli import main
from repro.runner import (
    CalibrationSpec,
    ResultCache,
    RunJournal,
    Runner,
)

pytestmark = pytest.mark.slow


def _grid():
    return [
        CalibrationSpec(utilization=u, duration=6.0)
        for u in (0.2, 0.4, 0.6, 0.8)
    ]


class TestResumeByteIdentity:
    def test_crash_then_resume_matches_clean_run(self, monkeypatch, tmp_path):
        specs = _grid()
        reference = [
            r.payload_json() for r in Runner(jobs=1).run(specs)
        ]

        # First pass: one cell's worker is SIGKILLed (no retries), the rest
        # complete and persist.
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(
            [{"match": '"utilization":0.4', "action": "kill"}]
        ))
        cache = ResultCache(str(tmp_path / "cache"))
        journal = RunJournal(str(tmp_path / "sweep.journal"))
        first = Runner(
            jobs=2, retries=0, cache=cache, journal=journal, on_failure="keep"
        )
        results = first.run(specs)
        assert sum(1 for r in results if not r.ok) == 1
        assert len(cache.entries()) == 3

        # Resume: rebuild the grid from the journal alone, chaos gone.
        monkeypatch.delenv("REPRO_CHAOS")
        state = journal.load()
        assert [s.content_hash() for s in specs] == state.order
        assert len(state.pending) == 1
        resumed = Runner(
            jobs=1, cache=cache, journal=journal, on_failure="keep"
        )
        final = resumed.run([state.specs[h] for h in state.order])
        assert all(r.ok for r in final)
        assert resumed.stats.cache_hits == 3 and resumed.stats.executed == 1
        assert [r.payload_json() for r in final] == reference
        # The journal now records the whole grid as done.
        assert journal.load().pending == []


class TestResumeCli:
    def test_interrupted_cli_sweep_resumes_clean(
        self, monkeypatch, tmp_path, capsys
    ):
        journal = str(tmp_path / "calib.journal")
        cache_dir = str(tmp_path / "cache")
        argv = [
            "calibrate", "--levels", "0.2", "0.5", "--duration", "6",
            "--jobs", "2", "--retries", "0",
            "--journal", journal, "--cache-dir", cache_dir,
        ]
        monkeypatch.setenv("REPRO_CHAOS", json.dumps(
            [{"match": '"utilization":0.5', "action": "kill"}]
        ))
        assert main(argv) == 1  # RunsFailedError after the full grid
        assert "failed" in capsys.readouterr().err

        monkeypatch.delenv("REPRO_CHAOS")
        payloads = tmp_path / "payloads.jsonl"
        rc = main([
            "resume", journal, "--cache-dir", cache_dir,
            "--payloads-out", str(payloads),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 from cache, 1 executed, 0 failed" in out
        records = [
            json.loads(line) for line in payloads.read_text().splitlines()
        ]
        assert len(records) == 2
        assert records[0]["spec_hash"] != records[1]["spec_hash"]
        assert all("calibration" in r["payload"] for r in records)

    def test_existing_journal_requires_resume_flag(self, tmp_path, capsys):
        journal = str(tmp_path / "calib.journal")
        cache_dir = str(tmp_path / "cache")
        argv = [
            "calibrate", "--levels", "0.2", "--duration", "6",
            "--journal", journal, "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        # Same command again: refuse to silently clobber the sweep...
        assert main(argv) == 2
        assert "--resume" in capsys.readouterr().err
        # ...but --resume picks it straight up (everything cached).
        assert main(argv + ["--resume"]) == 0

    def test_resume_flag_requires_journal(self, capsys):
        assert main([
            "calibrate", "--levels", "0.2", "--duration", "6", "--resume",
        ]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_resume_command_rejects_empty_journal(self, tmp_path, capsys):
        path = tmp_path / "empty.journal"
        path.write_text("")
        assert main(["resume", str(path)]) == 2
        assert "nothing to resume" in capsys.readouterr().err
