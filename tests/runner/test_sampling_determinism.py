"""Sampling determinism: serial, parallel, and cached runs byte-identical.

Tentpole acceptance tests for the time-series sampling subsystem: a
sampled grid run with ``jobs=4`` must export byte-identical payloads
(including timeseries records) to the serial execution, a cache round
trip must reproduce them exactly, and enabling sampling must not change
any task outcome relative to an unsampled run of the same spec.
"""

import json

import pytest

from repro.experiments.harness import SMOKE_SCALE, ExperimentConfig
from repro.obs.dashboard import render_dashboard
from repro.runner import ResultCache, Runner, RunSpec, expand_grid

pytestmark = pytest.mark.slow

INTERVAL = 0.5


def _grid():
    base = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE, seed=3))
    return expand_grid(
        base, {"policy": ["aware", "nearest"], "size_class": ["VS", "S"]}
    )


@pytest.fixture(scope="module")
def serial_results():
    return Runner(jobs=1, sample_interval=INTERVAL).run(_grid())


class TestSamplingDeterminism:
    def test_jobs4_payloads_byte_identical_to_serial(self, serial_results):
        parallel = Runner(jobs=4, sample_interval=INTERVAL).run(_grid())
        assert len(parallel) == len(serial_results) == 4
        for s, p in zip(serial_results, parallel):
            assert s.payload_json() == p.payload_json(), s.spec.label()

    def test_cache_round_trip_preserves_timeseries(self, tmp_path, serial_results):
        cache = ResultCache(str(tmp_path))
        spec = _grid()[0]
        first = Runner(jobs=1, cache=cache, sample_interval=INTERVAL).run([spec])[0]
        hit = Runner(jobs=1, cache=cache, sample_interval=INTERVAL).run([spec])[0]
        assert hit.from_cache
        assert hit.payload_json() == first.payload_json()
        assert hit.payload_json() == serial_results[0].payload_json()

    def test_sampled_spec_hash_differs_from_plain(self):
        spec = _grid()[0]
        sampled = spec.instrumented(sample_interval=INTERVAL)
        assert sampled.content_hash() != spec.content_hash()
        # Stamping is idempotent: an already-sampled spec keeps its interval.
        assert sampled.instrumented(sample_interval=INTERVAL) is sampled

    def test_plain_run_has_no_obs_records(self):
        result = Runner(jobs=1).run(_grid()[:1])[0]
        assert "obs_records" not in json.loads(result.payload_json())

    def test_sampled_payload_contains_timeseries_records(self, serial_results):
        records = serial_results[0].obs_records()
        kinds = {r["kind"] for r in records}
        assert "timeseries" in kinds
        names = {r["name"] for r in records if r["kind"] == "timeseries"}
        assert {"link_utilization", "queue_depth", "server_running"} <= names

    def test_sampling_does_not_perturb_payload_metrics(self, serial_results):
        """Enabling sampling must not change any experiment outcome: the
        payload minus obs_records equals the unsampled payload's."""
        plain = Runner(jobs=1).run(_grid())
        for s, p in zip(serial_results, plain):
            sampled_payload = json.loads(s.payload_json())
            sampled_payload.pop("obs_records", None)
            plain_payload = json.loads(p.payload_json())
            plain_payload.pop("obs_records", None)
            # The sampler's periodic timer events are themselves counted by
            # the simulator; they read state but never mutate it.
            assert sampled_payload.pop("events_executed") >= plain_payload.pop(
                "events_executed"
            )
            assert sampled_payload == plain_payload

    def test_dashboard_renders_identically_across_executors(self, serial_results):
        parallel = Runner(jobs=4, sample_interval=INTERVAL).run(_grid())
        serial_records = [r for res in serial_results for r in res.obs_records()]
        parallel_records = [r for res in parallel for r in res.obs_records()]
        assert render_dashboard(serial_records) == render_dashboard(parallel_records)
