"""Runner determinism: serial == parallel == cached, byte for byte.

These are the acceptance tests for the runner subsystem: a grid executed
with ``jobs=4`` must produce payloads byte-identical to the serial
execution, and a cache hit must return exactly the bytes the original run
wrote to disk.
"""

import json

import pytest

from repro.experiments.harness import SMOKE_SCALE, ExperimentConfig
from repro.runner import (
    CalibrationSpec,
    ResultCache,
    Runner,
    RunResult,
    RunSpec,
    expand_grid,
)
from repro.simnet.random import derive_seed

pytestmark = pytest.mark.slow


def _grid():
    base = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE, seed=3))
    return expand_grid(
        base, {"policy": ["aware", "nearest"], "size_class": ["VS", "S"]}
    )


@pytest.fixture(scope="module")
def serial_results():
    return Runner(jobs=1).run(_grid())


class TestSerialVsParallel:
    def test_jobs4_payloads_byte_identical_to_serial(self, serial_results):
        parallel = Runner(jobs=4).run(_grid())
        assert len(parallel) == len(serial_results) == 4
        for s, p in zip(serial_results, parallel):
            assert not p.from_cache
            assert s.payload_json() == p.payload_json(), s.spec.label()

    def test_serial_rerun_is_byte_identical(self, serial_results):
        again = Runner(jobs=1).run(_grid()[:1])
        assert again[0].payload_json() == serial_results[0].payload_json()


class TestCacheSemantics:
    def test_hit_returns_exactly_the_cached_bytes(self, tmp_path, serial_results):
        cache = ResultCache(str(tmp_path))
        spec = _grid()[0]
        first = Runner(jobs=1, cache=cache).run([spec])[0]
        assert not first.from_cache
        with open(cache.path(spec.content_hash()), "rb") as fh:
            disk = fh.read()
        second = Runner(jobs=1, cache=cache).run([spec])[0]
        assert second.from_cache
        assert second.raw == disk
        assert second.payload_json() == first.payload_json()
        assert second.payload_json() == serial_results[0].payload_json()

    def test_cached_result_reconstructs_full_experiment(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = _grid()[0]
        Runner(jobs=1, cache=cache).run([spec])
        hit = Runner(jobs=1, cache=cache).run([spec])[0]
        result = hit.experiment_result()
        assert result.tasks_completed + result.tasks_failed == spec.total_tasks
        assert result.config.policy == spec.policy
        assert len(result.records_in_order) == spec.total_tasks

    def test_runner_stats_count_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = _grid()[:2]
        warm = Runner(jobs=1, cache=cache)
        warm.run(specs)
        assert warm.stats.executed == 2 and warm.stats.cache_hits == 0
        hot = Runner(jobs=1, cache=cache)
        hot.run(specs)
        assert hot.stats.executed == 0 and hot.stats.cache_hits == 2


class TestRunnerMechanics:
    def test_duplicate_specs_share_one_result(self):
        spec = _grid()[0]
        a, b = Runner(jobs=1).run([spec, spec])
        assert a is b

    def test_results_come_back_in_spec_order(self, serial_results):
        labels = [r.spec.label() for r in serial_results]
        assert labels == [s.label() for s in _grid()]

    def test_invalid_jobs_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            Runner(jobs=0)

    def test_envelope_round_trip(self, serial_results):
        result = serial_results[0]
        again = RunResult.from_envelope(json.loads(result.to_json()))
        assert again.spec == result.spec
        assert again.payload_json() == result.payload_json()

    def test_progress_reports_every_run(self):
        lines = []
        Runner(jobs=1, progress=lines.append).run(_grid()[:2])
        assert len(lines) == 2
        assert "[2/2]" in lines[1] and "eta" in lines[1]

    def test_obs_hub_records_runner_metrics(self):
        from repro.obs import Observability

        obs = Observability(run={"component": "runner"})
        Runner(jobs=1, obs=obs).run(_grid()[:1])
        snapshot = {
            (r.get("name"), r.get("value"))
            for r in obs.metrics.snapshot()
        }
        assert ("runner_runs_total", 1) in snapshot


class TestCalibrationSpecs:
    def test_calibration_point_reconstructs(self):
        spec = CalibrationSpec(utilization=0.5, duration=6.0)
        run = Runner(jobs=1).run([spec])[0]
        point = run.calibration_point()
        assert point.utilization == 0.5
        assert point.qdepth_samples > 0

    def test_wrong_view_raises(self):
        spec = CalibrationSpec(utilization=0.0, duration=6.0)
        run = Runner(jobs=1).run([spec])[0]
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run.experiment_result()


class TestGridExpansion:
    def test_axis_order_fixes_expansion_order(self):
        base = RunSpec()
        grid = expand_grid(base, {"policy": ["aware", "nearest"], "seed": [1, 2]})
        assert [(s.policy, s.seed) for s in grid] == [
            ("aware", 1), ("aware", 2), ("nearest", 1), ("nearest", 2)
        ]


def test_repeat_seeds_are_policy_independent():
    """Satellite: per-repeat seeds derive from (master seed, repeat index)
    only — never from the policy axis or its ordering."""
    base = RunSpec()
    forward = expand_grid(
        base, {"policy": ["aware", "nearest"]}, repeats=3, master_seed=7
    )
    backward = expand_grid(
        base, {"policy": ["nearest", "aware"]}, repeats=3, master_seed=7
    )
    by_policy_fwd = {
        p: [s.seed for s in forward if s.policy == p]
        for p in ("aware", "nearest")
    }
    by_policy_bwd = {
        p: [s.seed for s in backward if s.policy == p]
        for p in ("aware", "nearest")
    }
    # Every policy sees the same repeat-seed sequence, in either grid order.
    assert by_policy_fwd["aware"] == by_policy_fwd["nearest"]
    assert by_policy_fwd == by_policy_bwd
    assert by_policy_fwd["aware"] == [derive_seed(7, f"repeat:{i}") for i in range(3)]
    # And the derivation itself is stable and collision-averse.
    assert len({derive_seed(7, f"repeat:{i}") for i in range(50)}) == 50


def test_paired_cells_share_repeat_pairing():
    """Paired policies share pairing keys per repeat, so the paired-gain
    machinery stays valid across a repeated grid."""
    base = RunSpec()
    grid = expand_grid(
        base, {"policy": ["aware", "nearest"]}, repeats=2, master_seed=1
    )
    aware = [s for s in grid if s.policy == "aware"]
    nearest = [s for s in grid if s.policy == "nearest"]
    for a, n in zip(aware, nearest):
        assert a.pairing_key() == n.pairing_key()
        assert a.content_hash() != n.content_hash()
