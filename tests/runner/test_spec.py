"""Run specs: canonical form, content hashing, and round trips."""

import dataclasses
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.harness import QUICK_SCALE, SMOKE_SCALE, ExperimentConfig
from repro.faults import builtin_plan
from repro.runner.spec import (
    CalibrationSpec,
    RunSpec,
    SPEC_KINDS,
    canonical_json,
    content_hash,
    spec_from_dict,
)


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_does_not_matter(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestRunSpecRoundTrips:
    def test_dict_round_trip(self):
        spec = RunSpec(policy="nearest", seed=5)
        again = spec_from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_dict_round_trip_survives_json(self):
        spec = RunSpec(curve_knots=((0.0, 0.0), (1.0, 40.0)), probe_size=256)
        again = spec_from_dict(json.loads(spec.canonical_json()))
        assert again == spec

    def test_config_round_trip_is_exact(self):
        plan = builtin_plan("link-flap")
        config = ExperimentConfig(
            policy="nearest",
            workload="distributed",
            metric="bandwidth",
            scale=QUICK_SCALE,
            seed=9,
            probing_interval=5.0,
            fault_plan=plan,
            degradation=False,
        )
        spec = RunSpec.from_config(config)
        assert RunSpec.from_config(spec.to_config()) == spec

    def test_unknown_size_class_rejected(self):
        with pytest.raises(ExperimentError):
            RunSpec(size_class="XXL")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            spec_from_dict({"kind": "mystery"})

    def test_registry_covers_both_kinds(self):
        assert set(SPEC_KINDS) == {"experiment", "calibration"}


# One changed value per RunSpec field; the test below asserts the table is
# exhaustive, so adding a spec field without deciding its hash behavior
# fails loudly here.
_FIELD_CHANGES = {
    "policy": "nearest",
    "metric": "bandwidth",
    "workload": "distributed",
    "size_class": "M",
    "seed": 99,
    "size_scale": 0.9,
    "total_tasks": 5,
    "mean_interarrival": 2.5,
    "time_scale": 0.9,
    "scenario_json": None,  # handled specially below
    "probing_interval": 7.0,
    "probe_layout": "collector",
    "probe_size": 512,
    "k": 0.5,
    "selection": "all",
    "curve_knots": ((0.0, 0.0), (1.0, 99.0)),
    "deadline_slack": 3.0,
    "scheduler_processing_delay": 0.002,
    "snmp_poll_interval": 12.0,
    "fault_plan_json": None,  # handled specially below
    "degradation": False,
    "task_retry_timeout": 11.0,
    "task_max_attempts": 7,
    "quarantine_ttl": 13.0,
    "obs_run_json": canonical_json({"figure": "fig5"}),
    # Instrumentation flags are in the hash on purpose: a traced or
    # profiled run must never alias a plain run's cache entry.
    "trace": True,
    "profile": True,
    "mem_profile": True,
    # Sampling changes the payload (obs_records carries the timeseries),
    # so a sampled run must never alias a plain run's cache entry either.
    "sample_interval": 0.5,
    # Same reasoning: a telemetry-quality run's payload carries the
    # kind:"telquality" record.
    "telquality": True,
    # ... and a counterfactual run's carries the kind:"whatif" record.
    "whatif": True,
}


class TestHashInvalidation:
    """Satellite: changing *any* RunSpec field must change the hash."""

    def test_change_table_is_exhaustive(self):
        assert set(_FIELD_CHANGES) == {
            f.name for f in dataclasses.fields(RunSpec)
        }

    @pytest.mark.parametrize(
        "field", sorted(k for k, v in _FIELD_CHANGES.items() if v is not None)
    )
    def test_changing_field_changes_hash(self, field):
        base = RunSpec()
        changed = base.with_(**{field: _FIELD_CHANGES[field]})
        assert changed.content_hash() != base.content_hash()

    def test_changing_scenario_contents_changes_hash(self):
        base = RunSpec()
        scenario = json.loads(base.scenario_json)
        scenario["slots"] = scenario["slots"] + 1
        changed = base.with_(scenario_json=canonical_json(scenario))
        assert changed.content_hash() != base.content_hash()

    def test_changing_fault_plan_contents_changes_hash(self):
        plan = builtin_plan("link-flap")
        base = RunSpec(fault_plan_json=canonical_json(plan.to_dict()))
        edited = plan.to_dict()
        edited["events"][0]["at"] = edited["events"][0].get("at", 0.0) + 1.0
        changed = base.with_(fault_plan_json=canonical_json(edited))
        assert changed.content_hash() != base.content_hash()
        # ... and adding any plan at all changes it from the no-fault spec.
        assert base.content_hash() != RunSpec().content_hash()

    def test_obs_run_does_not_alias_plain_run(self):
        base = RunSpec()
        obs = base.with_(obs_run_json=canonical_json({"figure": "fig5"}))
        assert obs.content_hash() != base.content_hash()


class TestPairingKey:
    def test_policy_and_knobs_do_not_perturb_pairing(self):
        base = RunSpec(policy="aware", seed=4)
        for change in (
            {"policy": "nearest"},
            {"metric": "bandwidth"},
            {"k": 0.5},
            {"probing_interval": 30.0},
            {"obs_run_json": canonical_json({"x": 1})},
        ):
            assert base.with_(**change).pairing_key() == base.pairing_key()

    def test_workload_identity_does_perturb_pairing(self):
        base = RunSpec(policy="aware", seed=4)
        for change in (
            {"seed": 5},
            {"size_class": "M"},
            {"workload": "distributed"},
            {"total_tasks": 99},
        ):
            assert base.with_(**change).pairing_key() != base.pairing_key()


class TestCalibrationSpec:
    def test_round_trip_and_dispatch(self):
        spec = CalibrationSpec(utilization=0.5, duration=12.0, seed=2)
        again = spec_from_dict(json.loads(spec.canonical_json()))
        assert again == spec

    def test_every_field_changes_hash(self):
        base = CalibrationSpec()
        changes = {
            "utilization": 0.7,
            "duration": 17.0,
            "rate_bps": 10e6,
            "link_delay": 0.033,
            "probing_interval": 0.4,
            "seed": 6,
            "profile": True,
            "mem_profile": True,
        }
        assert set(changes) == {f.name for f in dataclasses.fields(CalibrationSpec)}
        for name, value in changes.items():
            assert (
                base.with_(**{name: value}).content_hash() != base.content_hash()
            ), name

    def test_kinds_do_not_collide(self):
        # Same field values, different kind tag -> different hash space.
        assert RunSpec().content_hash() != CalibrationSpec().content_hash()


class TestFromConfigDefaults:
    def test_smoke_config_spec_matches_defaults(self):
        spec = RunSpec.from_config(ExperimentConfig(scale=SMOKE_SCALE))
        assert spec.total_tasks == SMOKE_SCALE.total_tasks
        assert set(spec.to_dict()) == {"kind"} | {
            f.name for f in dataclasses.fields(RunSpec)
        }
