"""Packet tracing and ground-truth monitoring instrumentation."""

import pytest

from repro.simnet.addressing import PROTO_UDP
from repro.simnet.flows import UdpCbrFlow, UdpSink
from repro.simnet.monitor import QueueSampler, link_utilizations
from repro.simnet.trace import PacketTracer, flow_predicate, probe_predicate
from repro.units import mbps, ms, transmission_time


class TestPacketTracer:
    def _all_nodes(self, net):
        return list(net.hosts.values()) + list(net.switches.values())

    def test_records_full_path(self, sim, line3):
        net = line3
        tracer = PacketTracer(self._all_nodes(net))
        net.host("h2").bind(PROTO_UDP, 9, lambda p: None)
        h1 = net.host("h1")
        pkt = h1.new_packet(net.address_of("h2"), dst_port=9)
        h1.send(pkt)
        sim.run()
        assert tracer.path_of(pkt.packet_id) == ["s01", "s02", "h2"]

    def test_predicate_filters(self, sim, line3):
        net = line3
        sink = UdpSink(net.host("h2"))
        f1 = UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(2), burstiness="cbr")
        f2 = UdpCbrFlow(net.host("h3"), net.address_of("h2"), mbps(2), burstiness="cbr")
        tracer = PacketTracer(self._all_nodes(net), predicate=flow_predicate(f1.flow_id))
        f1.run_for(1.0)
        f2.run_for(1.0)
        sim.run(until=2.0)
        assert len(tracer) > 0
        assert all(e.flow_id == f1.flow_id for e in tracer.events)

    def test_drop_events_recorded(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(1), delay=0.0, queue_capacity=2)
        net.finalize()
        tracer = PacketTracer([net.host("a")])
        a = net.host("a")
        for i in range(10):
            a.send(a.new_packet(net.address_of("b"), dst_port=9, size_bytes=1500, seq=i))
        sim.run()
        assert len(tracer.drops()) == 7  # 1 in service + 2 queued survive

    def test_one_way_delay(self, sim, line3):
        net = line3
        tracer = PacketTracer(self._all_nodes(net))
        net.host("h2").bind(PROTO_UDP, 9, lambda p: None)
        h1 = net.host("h1")
        pkt = h1.new_packet(net.address_of("h2"), dst_port=9, size_bytes=1500)
        h1.send(pkt)
        sim.run()
        delay = tracer.one_way_delay(pkt.packet_id)
        # h1 egress -> h2 ingress: 3 links of 10 ms, fast host injection,
        # two fabric serializations (loose tolerance: switch service jitter).
        expected = (
            3 * ms(10)
            + transmission_time(1500, mbps(200))
            + 2 * transmission_time(1500, mbps(20))
        )
        assert delay == pytest.approx(expected, rel=0.1)

    def test_detach_restores_handlers(self, sim, line3):
        net = line3
        nodes = self._all_nodes(net)
        originals = [
            (n.on_ingress, n.on_egress, n.on_packet_dropped) for n in nodes
        ]
        tracer = PacketTracer(nodes)
        # While attached, every hook has been wrapped.  (Bound methods are
        # compared with ==, which checks __self__ and __func__.)
        for node, (ingress, egress, dropped) in zip(nodes, originals):
            assert node.on_ingress != ingress
            assert node.on_egress != egress
            assert node.on_packet_dropped != dropped
        tracer.detach()
        # Detach restores the pre-attach callables.
        for node, (ingress, egress, dropped) in zip(nodes, originals):
            assert node.on_ingress == ingress
            assert node.on_egress == egress
            assert node.on_packet_dropped == dropped
        net.host("h2").bind(PROTO_UDP, 9, lambda p: None)
        h1 = net.host("h1")
        h1.send(h1.new_packet(net.address_of("h2"), dst_port=9))
        sim.run()
        assert len(tracer) == 0  # nothing recorded after detach

    def test_truncation_cap(self, sim, line3):
        net = line3
        tracer = PacketTracer(self._all_nodes(net), max_events=5)
        sink = UdpSink(net.host("h2"))
        UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(5), burstiness="cbr").run_for(1.0)
        sim.run(until=2.0)
        # 5 real hop events plus exactly one "truncated" sentinel marking
        # where recording stopped — truncation is never silent.
        assert len(tracer) == 6
        assert tracer.truncated
        assert [e.kind for e in tracer.events].count("truncated") == 1
        assert tracer.events[-1].kind == "truncated"
        # The sentinel's neutral ids keep per-packet analyses clean.
        assert tracer.events[-1].packet_id == -1
        assert all(e.kind != "truncated" for e in tracer.drops())

    def test_truncation_warns_via_obs(self, sim, line3):
        from repro.obs import Observability

        net = line3
        obs = Observability()
        obs.bind_sim(sim)
        tracer = PacketTracer(self._all_nodes(net), max_events=3)
        UdpSink(net.host("h2"))
        UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(5), burstiness="cbr").run_for(1.0)
        sim.run(until=2.0)
        assert tracer.truncated
        warnings = [
            r for r in obs.events.snapshot()
            if r.get("event") == "warning"
            and r.get("reason") == "packet_tracer_truncated"
        ]
        assert len(warnings) == 1
        assert warnings[0]["max_events"] == 3

    def test_probe_predicate(self, sim, line3):
        from repro.telemetry.collector import IntCollector
        from repro.telemetry.probe import ProbeResponder, ProbeSender

        net = line3
        collector = IntCollector(net.host("h3"))
        ProbeResponder(net.host("h3"), collector=collector)
        ProbeSender(net.host("h1"), [net.address_of("h3")]).start()
        UdpSink(net.host("h2"))
        UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(2), burstiness="cbr").run_for(1.0)
        tracer = PacketTracer([net.switch("s01")], predicate=probe_predicate)
        sim.run(until=1.0)
        assert len(tracer) > 0
        assert all(e.kind in ("ingress", "egress") for e in tracer.events)


class TestQueueSampler:
    def test_samples_backlog(self, sim, line3):
        net = line3
        port = net.switch("s01").port(net.port_toward("s01", "s02"))
        sampler = QueueSampler(sim, [port], interval=0.01)
        sampler.start()
        UdpSink(net.host("h2"))
        flow = UdpCbrFlow(
            net.host("h1"), net.address_of("h2"), mbps(19),
            rng=__import__("repro.simnet.random", fromlist=["RandomStreams"]).RandomStreams(1).get("f"),
        )
        flow.run_for(2.0)
        sim.run(until=2.0)
        assert sampler.max_depth(port) > 0
        series = sampler.samples["s01[1]"]
        assert len(series) == pytest.approx(200, abs=5)

    def test_stop_halts_sampling(self, sim, line3):
        port = net_port = line3.switch("s01").port(0)
        sampler = QueueSampler(sim, [port], interval=0.01)
        sampler.start()
        sim.run(until=0.5)
        sampler.stop()
        n = len(sampler.samples["s01[0]"])
        sim.run(until=1.0)
        assert len(sampler.samples["s01[0]"]) == n


class TestLinkUtilizations:
    def test_idle_zero(self, sim, line3):
        out = link_utilizations(line3, window=1.0)
        assert all(v == 0.0 for v in out.values())

    def test_loaded_direction_measured(self, sim, line3):
        net = line3
        UdpSink(net.host("h2"))
        UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(10), burstiness="cbr").run_for(2.0)
        sim.run(until=2.0)
        out = link_utilizations(net, window=2.0)
        loaded = out["s01<->s02:a"]
        assert loaded == pytest.approx(0.5, abs=0.1)
