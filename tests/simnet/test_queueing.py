"""Drop-tail queue semantics — the source of the INT enq_qdepth signal."""

import pytest

from repro.simnet.packet import Packet
from repro.simnet.queueing import DEFAULT_QUEUE_CAPACITY, DropTailQueue


def _pkt():
    return Packet(1, 2)


def test_empty_queue():
    q = DropTailQueue()
    assert len(q) == 0
    assert q.pop() is None


def test_fifo_order():
    q = DropTailQueue()
    packets = [_pkt() for _ in range(5)]
    for p in packets:
        q.push(p)
    popped = [q.pop() for _ in range(5)]
    assert popped == packets


def test_depth_at_enqueue_counts_waiting_packets():
    q = DropTailQueue()
    assert q.push(_pkt()) == 0  # first packet observes an empty queue
    assert q.push(_pkt()) == 1
    assert q.push(_pkt()) == 2


def test_pop_returns_recorded_depth():
    q = DropTailQueue()
    q.push(_pkt())
    q.push(_pkt())
    d0 = q.pop().enq_depth
    d1 = q.pop().enq_depth
    assert (d0, d1) == (0, 1)


def test_drop_tail_at_capacity():
    q = DropTailQueue(capacity=2)
    assert q.push(_pkt()) == 0
    assert q.push(_pkt()) == 1
    assert q.push(_pkt()) is None  # dropped
    assert q.stats.dropped == 1
    assert len(q) == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        DropTailQueue(capacity=0)


def test_default_capacity_is_bmv2_like():
    assert DEFAULT_QUEUE_CAPACITY == 64


def test_stats_counters():
    q = DropTailQueue(capacity=3)
    for _ in range(5):
        q.push(_pkt())
    q.pop()
    assert q.stats.enqueued == 3
    assert q.stats.dropped == 2
    assert q.stats.dequeued == 1
    assert q.stats.max_depth_seen == 2


def test_bytes_enqueued_accumulates():
    q = DropTailQueue()
    q.push(Packet(1, 2, size_bytes=100))
    q.push(Packet(1, 2, size_bytes=200))
    assert q.stats.bytes_enqueued == 300


def test_clear():
    q = DropTailQueue()
    for _ in range(4):
        q.push(_pkt())
    assert q.clear() == 4
    assert len(q) == 0


def test_depth_recovers_after_drain():
    q = DropTailQueue(capacity=2)
    q.push(_pkt())
    q.push(_pkt())
    q.pop()
    assert q.push(_pkt()) == 1  # space freed, depth reflects current backlog
