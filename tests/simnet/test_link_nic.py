"""Links, ports, and store-and-forward timing."""

import pytest

from repro.errors import TopologyError
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.link import Link
from repro.units import mbps, ms, transmission_time


class TestLinkConstruction:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(TopologyError):
            Link("l", 0.0, 0.01)

    def test_rejects_negative_delay(self):
        with pytest.raises(TopologyError):
            Link("l", 1e6, -0.001)

    def test_symmetric_rate_default(self):
        link = Link("l", mbps(20), ms(10))
        assert link.rate_ab_bps == link.rate_ba_bps == mbps(20)

    def test_directional_rates(self):
        link = Link("l", mbps(20), ms(10), rate_ab_bps=mbps(200))
        assert link.rate_ab_bps == mbps(200)
        assert link.rate_ba_bps == mbps(20)

    def test_rejects_nonpositive_directional_rate(self):
        with pytest.raises(TopologyError):
            Link("l", mbps(20), ms(10), rate_ab_bps=-1.0)


class TestDelivery:
    def _two_hosts(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s01")
        net.connect("a", "s01", rate_bps=mbps(20), delay=ms(10))
        net.connect("s01", "b", rate_bps=mbps(20), delay=ms(10))
        net.finalize()
        return net

    def test_one_way_delivery_time(self, sim, quiet_network_factory):
        """1500 B across two 20 Mb/s 10 ms links via one switch:
        2 x (0.6 ms serialization + 10 ms propagation) = 21.2 ms."""
        net = self._two_hosts(sim, quiet_network_factory)
        arrivals = []
        net.host("b").bind(PROTO_UDP, 5, lambda p: arrivals.append(sim.now))
        pkt = net.host("a").new_packet(net.address_of("b"), dst_port=5, size_bytes=1500)
        net.host("a").send(pkt)
        sim.run()
        expected = 2 * (transmission_time(1500, mbps(20)) + ms(10))
        assert arrivals == [pytest.approx(expected)]

    def test_faster_direction_is_faster(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(10), delay=0.0, rate_ab_bps=mbps(100))
        net.finalize()
        t_ab = []
        t_ba = []
        net.host("b").bind(PROTO_UDP, 5, lambda p: t_ab.append(sim.now))
        net.host("a").bind(PROTO_UDP, 5, lambda p: t_ba.append(sim.now))
        net.host("a").send(net.host("a").new_packet(net.address_of("b"), dst_port=5, size_bytes=1500))
        sim.run()
        start = sim.now
        net.host("b").send(net.host("b").new_packet(net.address_of("a"), dst_port=5, size_bytes=1500))
        sim.run()
        assert t_ab[0] == pytest.approx(transmission_time(1500, mbps(100)))
        assert t_ba[0] - start == pytest.approx(transmission_time(1500, mbps(10)))

    def test_serialization_back_to_back(self, sim, quiet_network_factory):
        """Two packets sent together: the second arrives one serialization
        time after the first (pipelined through the single link)."""
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(20), delay=ms(1))
        net.finalize()
        arrivals = []
        net.host("b").bind(PROTO_UDP, 5, lambda p: arrivals.append(sim.now))
        for _ in range(2):
            net.host("a").send(
                net.host("a").new_packet(net.address_of("b"), dst_port=5, size_bytes=1500)
            )
        sim.run()
        tx = transmission_time(1500, mbps(20))
        assert arrivals[0] == pytest.approx(tx + ms(1))
        assert arrivals[1] - arrivals[0] == pytest.approx(tx)

    def test_drop_tail_on_burst(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(20), delay=ms(1), queue_capacity=4)
        net.finalize()
        received = []
        net.host("b").bind(PROTO_UDP, 5, lambda p: received.append(p.seq))
        # Burst of 10: 1 in service + 4 queued fit; the rest are dropped.
        for i in range(10):
            net.host("a").send(
                net.host("a").new_packet(net.address_of("b"), dst_port=5, size_bytes=1500, seq=i)
            )
        sim.run()
        assert received == [0, 1, 2, 3, 4]
        assert net.host("a").ports[0].packets_dropped == 5

    def test_byte_accounting(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        link = net.connect("a", "b", rate_bps=mbps(20), delay=0.0)
        net.finalize()
        net.host("b").bind(PROTO_UDP, 5, lambda p: None)
        net.host("a").send(net.host("a").new_packet(net.address_of("b"), dst_port=5, size_bytes=500))
        sim.run()
        assert sum(link.bytes_carried.values()) == 500

    def test_port_busy_flag(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(1), delay=0.0)
        net.finalize()
        port = net.host("a").ports[0]
        net.host("a").send(net.host("a").new_packet(net.address_of("b"), size_bytes=1500))
        assert port.busy
        sim.run()
        assert not port.busy
        assert port.backlog == 0


class TestUtilization:
    def _loaded_link(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        link = net.connect("a", "b", rate_bps=mbps(20), delay=0.0)
        net.finalize()
        net.host("b").bind(PROTO_UDP, 5, lambda p: None)
        net.host("a").send(
            net.host("a").new_packet(net.address_of("b"), dst_port=5, size_bytes=1500)
        )
        sim.run()
        return net, link

    def test_utilization_fraction(self, sim, quiet_network_factory):
        net, link = self._loaded_link(sim, quiet_network_factory)
        port = net.host("a").ports[0]
        assert link.utilization(port, 1.0) == pytest.approx(1500 * 8 / mbps(20))

    def test_nonpositive_window_rejected(self, sim, quiet_network_factory):
        net, link = self._loaded_link(sim, quiet_network_factory)
        port = net.host("a").ports[0]
        with pytest.raises(ValueError, match="window must be positive"):
            link.utilization(port, 0.0)
        with pytest.raises(ValueError, match="window must be positive"):
            link.utilization(port, -1.0)


class TestLinkFaultState:
    def _pair(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        link = net.connect("a", "b", rate_bps=mbps(20), delay=ms(1))
        net.finalize()
        received = []
        net.host("b").bind(PROTO_UDP, 5, lambda p: received.append(p.seq))
        return net, link, received

    def _send(self, net, seq=0):
        net.host("a").send(
            net.host("a").new_packet(net.address_of("b"), dst_port=5, size_bytes=500, seq=seq)
        )

    def test_link_down_loses_frames(self, sim, quiet_network_factory):
        net, link, received = self._pair(sim, quiet_network_factory)
        link.set_up(False)
        self._send(net, seq=0)
        sim.run()
        assert received == []
        assert link.packets_lost == 1
        link.set_up(True)
        self._send(net, seq=1)
        sim.run()
        assert received == [1]

    def test_degradation_slows_and_delays(self, sim, quiet_network_factory):
        net, link, received = self._pair(sim, quiet_network_factory)
        arrivals = []
        net.host("b").bind(PROTO_UDP, 6, lambda p: arrivals.append(sim.now))
        link.set_degradation(rate_factor=0.5, extra_delay=ms(20))
        net.host("a").send(
            net.host("a").new_packet(net.address_of("b"), dst_port=6, size_bytes=1500)
        )
        sim.run()
        expected = transmission_time(1500, mbps(10)) + ms(1) + ms(20)
        assert arrivals == [pytest.approx(expected)]

    def test_set_loss_requires_rng(self, sim, quiet_network_factory):
        _net, link, _received = self._pair(sim, quiet_network_factory)
        with pytest.raises(TopologyError):
            link.set_loss(rate=0.5)
        with pytest.raises(TopologyError):
            link.set_loss(rate=1.5, rng=object())

    def test_probe_loss_spares_data(self, sim, quiet_network_factory):
        import random

        net, link, received = self._pair(sim, quiet_network_factory)
        link.set_loss(probe_rate=1.0, rng=random.Random(1))
        self._send(net, seq=0)  # data packet: unaffected
        sim.run()
        assert received == [0]

    def test_restore_clears_impairment(self, sim, quiet_network_factory):
        import random

        _net, link, _received = self._pair(sim, quiet_network_factory)
        link.set_loss(rate=1.0, rng=random.Random(1))
        link.set_degradation(rate_factor=0.5, extra_delay=ms(5))
        assert link.impaired
        link.set_loss(rate=0.0, probe_rate=0.0)
        link.set_degradation(rate_factor=1.0, extra_delay=0.0)
        assert not link.impaired
        assert link.rate_factor == 1.0 and link.extra_delay == 0.0
