"""Traffic sources: CBR, the reliable transport, and ping."""

import pytest

from repro.errors import SimulationError
from repro.simnet.flows import (
    MSS,
    PingApp,
    PingResponder,
    ReliableTransfer,
    TransferSinkApp,
    UdpCbrFlow,
    UdpSink,
)
from repro.simnet.random import RandomStreams
from repro.units import mbps, ms


class TestUdpCbr:
    def test_cbr_rate_achieved(self, sim, dumbbell):
        net = dumbbell
        sink = UdpSink(net.host("h2"))
        flow = UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(4), burstiness="cbr")
        flow.run_for(10.0)
        sim.run(until=12.0)
        assert sink.throughput_bps(flow.flow_id) == pytest.approx(mbps(4), rel=0.05)

    def test_poisson_rate_achieved_on_average(self, sim, dumbbell):
        net = dumbbell
        sink = UdpSink(net.host("h2"))
        flow = UdpCbrFlow(
            net.host("h1"),
            net.address_of("h2"),
            mbps(4),
            rng=RandomStreams(5).get("f"),
        )
        flow.run_for(30.0)
        sim.run(until=32.0)
        assert sink.throughput_bps(flow.flow_id) == pytest.approx(mbps(4), rel=0.15)

    def test_stop_halts_emission(self, sim, dumbbell):
        net = dumbbell
        flow = UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(4), burstiness="cbr")
        flow.start()
        sim.run(until=1.0)
        flow.stop()
        emitted = flow.packets_emitted
        sim.run(until=3.0)
        assert flow.packets_emitted == emitted

    def test_poisson_requires_rng(self, sim, dumbbell):
        with pytest.raises(SimulationError):
            UdpCbrFlow(dumbbell.host("h1"), 2, mbps(1), burstiness="poisson")

    def test_invalid_rate_rejected(self, sim, dumbbell):
        with pytest.raises(SimulationError):
            UdpCbrFlow(dumbbell.host("h1"), 2, 0.0, burstiness="cbr")

    def test_unknown_burstiness_rejected(self, sim, dumbbell):
        with pytest.raises(SimulationError):
            UdpCbrFlow(dumbbell.host("h1"), 2, mbps(1), burstiness="weird")

    def test_double_start_rejected(self, sim, dumbbell):
        flow = UdpCbrFlow(dumbbell.host("h1"), 2, mbps(1), burstiness="cbr")
        flow.start()
        with pytest.raises(SimulationError):
            flow.start()

    def test_sink_counts_per_flow(self, sim, dumbbell):
        net = dumbbell
        sink = UdpSink(net.host("h2"))
        f1 = UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(2), burstiness="cbr")
        f2 = UdpCbrFlow(net.host("h1"), net.address_of("h2"), mbps(2), burstiness="cbr")
        f1.run_for(2.0)
        f2.run_for(2.0)
        sim.run(until=3.0)
        assert sink.packets_by_flow[f1.flow_id] > 0
        assert sink.packets_by_flow[f2.flow_id] > 0


class TestReliableTransfer:
    def _run_transfer(self, sim, net, nbytes, src="h1", dst="h2", until=200.0):
        done = []
        sink = TransferSinkApp(net.host(dst), 6000, on_flow_complete=lambda s: done.append(s))
        transfer = ReliableTransfer(
            net.host(src), net.address_of(dst), 6000, nbytes,
            on_complete=lambda t: done.append(t),
        )
        transfer.start()
        sim.run(until=until)
        return transfer, sink, done

    def test_small_transfer_completes(self, sim, dumbbell):
        transfer, sink, done = self._run_transfer(sim, dumbbell, 10 * MSS)
        assert transfer.done
        assert len(done) == 2  # receiver completion + sender completion

    def test_receiver_gets_all_bytes(self, sim, dumbbell):
        nbytes = 25 * MSS + 100
        transfer, sink, _ = self._run_transfer(sim, dumbbell, nbytes)
        state = sink.completed[0]
        assert state.bytes_received == nbytes
        assert state.complete

    def test_zero_byte_transfer_completes_immediately(self, sim, dumbbell):
        transfer = ReliableTransfer(dumbbell.host("h1"), dumbbell.address_of("h2"), 6000, 0)
        transfer.start()
        assert transfer.done
        assert transfer.elapsed == 0.0

    def test_throughput_near_capacity(self, sim, dumbbell):
        """A 2 MB transfer over an uncongested 20 Mb/s path should achieve a
        large fraction of capacity once past slow start."""
        nbytes = 2_000_000
        transfer, _, _ = self._run_transfer(sim, dumbbell, nbytes, until=300.0)
        assert transfer.done
        goodput = nbytes * 8.0 / transfer.elapsed
        assert goodput > 0.55 * mbps(20)

    def test_transfer_completes_despite_losses(self, sim, quiet_network_factory):
        """A tiny egress queue forces drops; recovery must still finish."""
        net = quiet_network_factory()
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(5), queue_capacity=4)
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(5), queue_capacity=4)
        net.finalize()
        done = []
        TransferSinkApp(net.host("h2"), 6000, on_flow_complete=lambda s: done.append(s))
        transfer = ReliableTransfer(net.host("h1"), net.address_of("h2"), 6000, 100 * MSS)
        transfer.start()
        sim.run(until=300.0)
        assert transfer.done
        assert transfer.retransmissions > 0  # losses actually happened

    def test_two_transfers_share_bottleneck(self, sim, line3):
        """Two concurrent transfers through the shared s01->s02 link each get
        a nontrivial share and both finish."""
        net = line3
        TransferSinkApp(net.host("h2"), 6000)
        TransferSinkApp(net.host("h3"), 6000)
        t1 = ReliableTransfer(net.host("h1"), net.address_of("h2"), 6000, 500_000)
        t2 = ReliableTransfer(net.host("h1"), net.address_of("h3"), 6000, 500_000)
        t1.start()
        t2.start()
        sim.run(until=300.0)
        assert t1.done and t2.done
        ratio = t1.elapsed / t2.elapsed
        assert 0.3 < ratio < 3.0

    def test_negative_size_rejected(self, sim, dumbbell):
        with pytest.raises(SimulationError):
            ReliableTransfer(dumbbell.host("h1"), 2, 6000, -1)

    def test_double_start_rejected(self, sim, dumbbell):
        TransferSinkApp(dumbbell.host("h2"), 6000)
        t = ReliableTransfer(dumbbell.host("h1"), dumbbell.address_of("h2"), 6000, MSS)
        t.start()
        with pytest.raises(SimulationError):
            t.start()

    def test_elapsed_before_completion_rejected(self, sim, dumbbell):
        t = ReliableTransfer(dumbbell.host("h1"), dumbbell.address_of("h2"), 6000, MSS)
        with pytest.raises(SimulationError):
            _ = t.elapsed

    def test_metadata_delivered_to_sink(self, sim, dumbbell):
        got = []
        TransferSinkApp(dumbbell.host("h2"), 6000, on_flow_complete=lambda s: got.append(s.metadata))
        t = ReliableTransfer(
            dumbbell.host("h1"), dumbbell.address_of("h2"), 6000, 3 * MSS,
            metadata={"task_id": 17},
        )
        t.start()
        sim.run(until=60.0)
        assert got == [{"task_id": 17}]

    def test_rtt_estimator_converges(self, sim, dumbbell):
        TransferSinkApp(dumbbell.host("h2"), 6000)
        t = ReliableTransfer(dumbbell.host("h1"), dumbbell.address_of("h2"), 6000, 50 * MSS)
        t.start()
        sim.run(until=120.0)
        # Base RTT is ~41 ms (2 x 2 links x 10 ms + serialization).
        assert t._srtt == pytest.approx(0.042, abs=0.02)


class TestPing:
    def test_rtt_matches_topology(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.finalize()
        PingResponder(net.host("h2"))
        ping = PingApp(net.host("h1"), net.address_of("h2"))
        ping.start()
        sim.run(until=5.5)
        # 4 x 10 ms propagation + small serialization of 64 B frames.
        assert ping.mean_rtt == pytest.approx(0.040, abs=0.002)
        assert len(ping.rtt_samples) == 6  # pings at t = 0, 1, ..., 5

    def test_no_samples_raises(self, sim, dumbbell):
        ping = PingApp(dumbbell.host("h1"), dumbbell.address_of("h2"))
        with pytest.raises(SimulationError):
            _ = ping.mean_rtt

    def test_responder_counts(self, sim, dumbbell):
        responder = PingResponder(dumbbell.host("h2"))
        ping = PingApp(dumbbell.host("h1"), dumbbell.address_of("h2"), interval=0.5)
        ping.start()
        sim.run(until=2.2)
        assert responder.requests_echoed == ping.sent == 5  # t = 0, 0.5, ... 2.0
        assert ping.lost_or_pending == 0
