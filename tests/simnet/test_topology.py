"""Network construction and finalization rules."""

import pytest

from repro.errors import TopologyError
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms


def _net(sim):
    return Network(sim, RandomStreams(0))


class TestConstruction:
    def test_duplicate_node_name_rejected(self, sim):
        net = _net(sim)
        net.add_host("x")
        with pytest.raises(TopologyError):
            net.add_switch("x")

    def test_self_link_rejected(self, sim):
        net = _net(sim)
        net.add_host("a")
        with pytest.raises(TopologyError):
            net.connect("a", "a", rate_bps=1e6, delay=0.0)

    def test_parallel_link_rejected(self, sim):
        net = _net(sim)
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=1e6, delay=0.0)
        with pytest.raises(TopologyError):
            net.connect("b", "a", rate_bps=1e6, delay=0.0)

    def test_connect_unknown_node_rejected(self, sim):
        net = _net(sim)
        net.add_host("a")
        with pytest.raises(TopologyError):
            net.connect("a", "ghost", rate_bps=1e6, delay=0.0)

    def test_switch_ids_sequential(self, sim):
        net = _net(sim)
        switches = [net.add_switch(f"s{i:02d}") for i in range(1, 4)]
        assert [s.switch_id for s in switches] == [1, 2, 3]

    def test_port_toward(self, sim):
        net = _net(sim)
        net.add_host("a")
        net.add_switch("s01")
        net.add_switch("s02")
        net.connect("s01", "a", rate_bps=1e6, delay=0.0)
        net.connect("s01", "s02", rate_bps=1e6, delay=0.0)
        assert net.port_toward("s01", "a") == 0
        assert net.port_toward("s01", "s02") == 1
        with pytest.raises(TopologyError):
            net.port_toward("s02", "a")

    def test_attach_host_directional_rates(self, sim):
        net = _net(sim)
        net.add_host("h")
        net.add_switch("s01")
        link = net.attach_host(
            "h", "s01", fabric_rate_bps=mbps(20), delay=ms(10), injection_multiplier=10
        )
        # host is endpoint a (first argument).
        assert link.rate_ab_bps == mbps(200)
        assert link.rate_ba_bps == mbps(20)

    def test_attach_host_requires_host_and_switch(self, sim):
        net = _net(sim)
        net.add_host("h")
        net.add_host("h2")
        net.add_switch("s01")
        with pytest.raises(TopologyError):
            net.attach_host("s01", "h", fabric_rate_bps=1e6, delay=0.0)
        with pytest.raises(TopologyError):
            net.attach_host("h", "h2", fabric_rate_bps=1e6, delay=0.0)

    def test_attach_host_multiplier_validated(self, sim):
        net = _net(sim)
        net.add_host("h")
        net.add_switch("s01")
        with pytest.raises(TopologyError):
            net.attach_host(
                "h", "s01", fabric_rate_bps=1e6, delay=0.0, injection_multiplier=0.5
            )


class TestFinalize:
    def test_multihomed_host_rejected(self, sim):
        net = _net(sim)
        net.add_host("h")
        net.add_switch("s01")
        net.add_switch("s02")
        net.connect("h", "s01", rate_bps=1e6, delay=0.0)
        net.connect("h", "s02", rate_bps=1e6, delay=0.0)
        with pytest.raises(TopologyError):
            net.finalize()

    def test_disconnected_graph_rejected(self, sim):
        net = _net(sim)
        net.add_host("a")
        net.add_host("b")
        net.add_switch("s01")
        net.connect("a", "s01", rate_bps=1e6, delay=0.0)
        # b left unconnected
        with pytest.raises(TopologyError):
            net.finalize()

    def test_mutation_after_finalize_rejected(self, sim, dumbbell):
        with pytest.raises(TopologyError):
            dumbbell.add_host("late")
        with pytest.raises(TopologyError):
            dumbbell.finalize()

    def test_finalize_binds_programs(self, sim, dumbbell):
        assert dumbbell.switch("s01").program is not None
        assert dumbbell.finalized

    def test_int_register_sized_to_ports(self, sim, line3):
        s02 = line3.switch("s02")  # 3 ports: s01, h2, h3
        reg = s02.program.register("max_qdepth")
        assert reg.size == 3


class TestLookups:
    def test_node_host_switch_accessors(self, sim, dumbbell):
        assert dumbbell.host("h1").name == "h1"
        assert dumbbell.switch("s01").name == "s01"
        assert dumbbell.node("h1") is dumbbell.host("h1")
        with pytest.raises(TopologyError):
            dumbbell.host("s01")
        with pytest.raises(TopologyError):
            dumbbell.switch("h1")
        with pytest.raises(TopologyError):
            dumbbell.node("ghost")

    def test_switch_by_id(self, sim, line3):
        assert line3.switch_by_id(1).name == "s01"
        assert line3.switch_by_id(2).name == "s02"
        with pytest.raises(TopologyError):
            line3.switch_by_id(42)

    def test_graph_view(self, sim, line3):
        g = line3.graph()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 4
        assert g.nodes["h1"]["kind"] == "host"
        assert g.nodes["s01"]["kind"] == "switch"
        assert g.edges["s01", "s02"]["delay"] == pytest.approx(ms(10))

    def test_shortest_path(self, sim, line3):
        assert line3.shortest_path("h1", "h2") == ["h1", "s01", "s02", "h2"]
