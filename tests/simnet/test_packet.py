"""Packet construction and classification."""

import pytest

from repro.errors import PacketError
from repro.simnet.addressing import PROTO_TCP, PROTO_UDP
from repro.simnet.packet import (
    DEFAULT_TTL,
    FLAG_ACK,
    FLAG_PROBE,
    HEADER_OVERHEAD,
    MTU,
    Packet,
)


def test_minimal_packet_defaults():
    p = Packet(1, 2)
    assert p.protocol == PROTO_UDP
    assert p.size_bytes == HEADER_OVERHEAD
    assert p.ttl == DEFAULT_TTL
    assert not p.is_probe and not p.is_ack
    assert p.hop_count == 0
    assert p.last_egress_ts is None
    assert p.int_link_latency is None


def test_packet_ids_unique():
    ids = {Packet(1, 2).packet_id for _ in range(100)}
    assert len(ids) == 100


def test_probe_flag():
    p = Packet(1, 2, flags=FLAG_PROBE)
    assert p.is_probe and not p.is_ack


def test_ack_flag():
    p = Packet(1, 2, flags=FLAG_ACK)
    assert p.is_ack and not p.is_probe


def test_combined_flags():
    p = Packet(1, 2, flags=FLAG_ACK | FLAG_PROBE)
    assert p.is_ack and p.is_probe


def test_size_below_header_overhead_rejected():
    with pytest.raises(PacketError):
        Packet(1, 2, size_bytes=HEADER_OVERHEAD - 1)


def test_payload_exceeding_declared_size_rejected():
    with pytest.raises(PacketError):
        Packet(1, 2, size_bytes=HEADER_OVERHEAD + 4, payload=b"12345")


def test_payload_with_room_for_padding_allowed():
    # Probe frames declare MTU but carry a small INT stack.
    p = Packet(1, 2, size_bytes=MTU, payload=b"abc")
    assert p.size_bytes == MTU
    assert p.payload == b"abc"


def test_set_payload_updates_size():
    p = Packet(1, 2, size_bytes=HEADER_OVERHEAD + 10, payload=b"0123456789")
    p.set_payload(b"abcd")
    assert p.size_bytes == HEADER_OVERHEAD + 4
    assert p.payload == b"abcd"


def test_fields_carried():
    p = Packet(
        3,
        9,
        protocol=PROTO_TCP,
        src_port=1000,
        dst_port=2000,
        flow_id=5,
        seq=42,
        created_at=1.25,
    )
    assert (p.src_addr, p.dst_addr) == (3, 9)
    assert (p.src_port, p.dst_port) == (1000, 2000)
    assert p.flow_id == 5 and p.seq == 42 and p.created_at == 1.25


def test_message_object_carried():
    msg = ("sched_query", 1, "delay")
    p = Packet(1, 2, message=msg)
    assert p.message is msg
