"""Transmit coalescing: batched back-to-back frames must be observationally
identical to the per-frame path.

A burst through a quiet (jitter-free, hook-free) network coalesces: each busy
port schedules all deliveries plus one batch-completion event instead of one
``_tx_complete`` per frame.  These tests drive the same burst twice — once
coalesced, once with the per-frame path forced — and assert every observable
matches: arrival times, INT ``enq_qdepth`` register folds, queue statistics,
mid-batch backlog reads, and the exported ``events_executed`` count.
"""

import pytest

from repro.p4.int_program import MAX_QDEPTH_REGISTER
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.engine import Simulator
from repro.simnet.nic import Port
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms

BURST = 12


def _run_burst(coalesce: bool, backlog_probe_times=()):
    """h1 -- s01 -- h2, a 12-packet back-to-back burst from h1; returns every
    externally observable outcome."""
    sim = Simulator()
    net = Network(
        sim,
        RandomStreams(7),
        clock_offset_std=0.0,
        clock_jitter_std=0.0,
        switch_service_jitter=0.0,
    )
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
    net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
    net.finalize()

    h1, h2, s01 = net.host("h1"), net.host("h2"), net.switch("s01")
    if not coalesce:
        for node in (h1, h2, s01):
            for port in node.ports:
                port._coalesce = False

    arrivals = []
    h2.bind(PROTO_UDP, 5, lambda p: arrivals.append((sim.now, p.seq)))
    for seq in range(BURST):
        pkt = h1.new_packet(
            net.address_of("h2"), dst_port=5, size_bytes=1200, seq=seq
        )
        h1.send(pkt)

    backlog_reads = []
    uplink = h1.ports[0]
    for t in backlog_probe_times:
        sim.schedule(t, lambda: backlog_reads.append((sim.now, uplink.backlog)))

    sim.run()
    qdepth = s01.program.register(MAX_QDEPTH_REGISTER).snapshot()
    uplink_stats = uplink.queue.stats
    return {
        "arrivals": arrivals,
        "qdepth": qdepth,
        "enqueued": uplink_stats.enqueued,
        "dequeued": uplink_stats.dequeued,
        "max_depth_seen": uplink_stats.max_depth_seen,
        "packets_sent": uplink.packets_sent,
        "events_executed": sim.events_executed,
        "backlog_reads": backlog_reads,
        "sim": sim,
    }


@pytest.fixture(scope="module")
def coalesced():
    return _run_burst(True)


@pytest.fixture(scope="module")
def per_frame():
    return _run_burst(False)


class TestCoalescedEquivalence:
    def test_burst_actually_coalesced(self, coalesced, per_frame):
        """Sanity: the fast run really took the batch path (fewer engine
        pops), otherwise the equivalence below proves nothing."""
        assert (
            coalesced["sim"]._seq < per_frame["sim"]._seq
        ), "burst never engaged the coalesced path"

    def test_arrival_times_identical(self, coalesced, per_frame):
        assert len(coalesced["arrivals"]) == BURST
        assert coalesced["arrivals"] == per_frame["arrivals"]

    def test_int_qdepth_register_identical(self, coalesced, per_frame):
        """INT's enq_qdepth fold — the paper's telemetry signal — must see
        the exact same depths whether or not frames were batched."""
        assert coalesced["qdepth"] == per_frame["qdepth"]
        assert max(coalesced["qdepth"]) > 0  # the burst did queue

    def test_queue_stats_identical(self, coalesced, per_frame):
        for key in ("enqueued", "dequeued", "max_depth_seen", "packets_sent"):
            assert coalesced[key] == per_frame[key], key

    def test_events_executed_identical(self, coalesced, per_frame):
        """events_executed is an exported workload statistic: the batch path
        credits elided per-frame completions so the count is path-invariant."""
        assert coalesced["events_executed"] == per_frame["events_executed"]


class TestMidBatchObservability:
    def test_backlog_drains_logically_during_batch(self):
        """Reads of ``port.backlog`` while a batch is in flight must see the
        same depths the per-frame path reports at the same instants."""
        # 1200 B at 20 Mb/s = 0.48 ms serialization; probe between frames.
        times = [0.0002 + 0.00048 * k for k in range(BURST)]
        fast = _run_burst(True, backlog_probe_times=times)
        slow = _run_burst(False, backlog_probe_times=times)
        assert fast["backlog_reads"] == slow["backlog_reads"]
        depths = [d for _t, d in fast["backlog_reads"]]
        assert depths[0] > depths[-1]  # the queue visibly drained

    def test_mid_batch_push_observes_logical_depth(self):
        """A packet arriving mid-batch must record the same enq_depth either
        way — the depth INT stamps into the max-qdepth register."""

        def run(coalesce):
            sim = Simulator()
            net = Network(
                sim,
                RandomStreams(3),
                clock_offset_std=0.0,
                clock_jitter_std=0.0,
                switch_service_jitter=0.0,
            )
            net.add_host("h1")
            net.add_host("h2")
            net.add_switch("s01")
            net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
            net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
            net.finalize()
            h1 = net.host("h1")
            if not coalesce:
                for port in h1.ports:
                    port._coalesce = False
            for seq in range(6):
                h1.send(
                    h1.new_packet(
                        net.address_of("h2"), dst_port=5, size_bytes=1200, seq=seq
                    )
                )
            depths = []

            def late_send():
                pkt = h1.new_packet(
                    net.address_of("h2"), dst_port=5, size_bytes=1200, seq=99
                )
                h1.send(pkt)
                depths.append(pkt.enq_depth)

            sim.schedule(0.0011, late_send)  # mid-burst, ~2.3 frames in
            sim.run()
            return depths

        assert run(True) == run(False)


class TestCoalescingGates:
    def test_slowpath_env_disables_coalescing_and_compile(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOWPATH", "1")
        sim = Simulator()
        net = Network(sim, RandomStreams(0), switch_service_jitter=0.0)
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.finalize()
        for node in (net.host("h1"), net.switch("s01")):
            for port in node.ports:
                assert port._coalesce is False
        assert net.switch("s01")._fast_ingress is None

    def test_jittered_node_never_batches(self, sim, streams):
        """Default networks give switches service jitter; their ports must
        take the per-frame path (per-node RNG draw order is semantics)."""
        net = Network(sim, streams)  # default switch_service_jitter=0.15
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.finalize()
        switch_port = net.switch("s01").ports[0]
        assert switch_port.node.service_jitter > 0
        assert switch_port._try_coalesce() is False

    def test_probe_frames_end_the_batch(self, sim, quiet_network_factory):
        """A probe's egress stage reads clocks at its dequeue instant, so a
        batch must stop at the first probe in the queue."""
        from repro.simnet.packet import FLAG_PROBE

        net = quiet_network_factory()
        net.add_host("h1")
        net.add_host("h2")
        net.add_switch("s01")
        net.attach_host("h1", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.attach_host("h2", "s01", fabric_rate_bps=mbps(20), delay=ms(10))
        net.finalize()
        h1 = net.host("h1")
        h1.send(h1.new_packet(net.address_of("h2"), dst_port=5))  # in service
        h1.send(h1.new_packet(net.address_of("h2"), dst_port=5))
        probe = h1.new_packet(net.address_of("h2"), dst_port=5, size_bytes=256)
        probe.flags |= FLAG_PROBE
        h1.send(probe)
        # Queue is [data, probe]: the probe-free prefix of 1 is below the
        # 2-frame batching minimum, so no batch forms.
        assert h1.ports[0]._try_coalesce() is False
