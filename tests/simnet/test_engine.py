"""Discrete-event engine: ordering, cancellation, timers."""

import pytest

from repro.errors import SimulationError
from repro.simnet.engine import PeriodicTimer


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        log = []
        for label in "abcde":
            sim.schedule(1.0, log.append, label)
        sim.run()
        assert log == list("abcde")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_nested_scheduling(self, sim):
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.schedule(0.5, inner)

        def inner():
            log.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 1.5)]

    def test_schedule_in_past_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_before_now_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_zero_delay_event_runs(self, sim):
        log = []
        sim.schedule(0.0, log.append, 1)
        sim.run()
        assert log == [1]

    def test_events_executed_counter(self, sim):
        for i in range(7):
            sim.schedule(i * 0.1, lambda: None)
        sim.run()
        assert sim.events_executed == 7


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == ["early"]
        assert sim.now == 5.0  # clock advanced to the window edge

    def test_run_until_then_continue(self, sim):
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(7.0, log.append, "b")
        sim.run(until=5.0)
        sim.run(until=10.0)
        assert log == ["a", "b"]

    def test_max_events(self, sim):
        log = []
        for i in range(10):
            sim.schedule(i * 0.1 + 0.1, log.append, i)
        sim.run(max_events=3)
        assert log == [0, 1, 2]

    def test_stop_from_inside_event(self, sim):
        log = []
        sim.schedule(1.0, lambda: (log.append("a"), sim.stop()))
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log[0] == "a"
        assert "b" not in log

    def test_step_returns_false_on_empty(self, sim):
        assert sim.step() is False

    def test_step_executes_one(self, sim):
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(2.0, log.append, 2)
        assert sim.step() is True
        assert log == [1]

    def test_reentrant_run_rejected(self, sim):
        def evil():
            sim.run()

        sim.schedule(1.0, evil)
        with pytest.raises(SimulationError):
            sim.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        sim.cancel(handle)
        sim.run()
        assert log == []

    def test_double_cancel_rejected(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.cancel(handle)
        with pytest.raises(SimulationError):
            sim.cancel(handle)

    def test_cancel_after_fire_rejected(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.cancel(handle)

    def test_pending_events_excludes_cancelled(self, sim):
        h1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(h1)
        assert sim.pending_events() == 1

    def test_cancelled_counter(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.cancel(h)
        assert sim.events_cancelled == 1


class TestPeriodicTimer:
    def test_fires_at_period(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert times == pytest.approx([1.0, 2.0, 3.0])

    def test_custom_start_delay(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now), start_delay=0.25)
        timer.start()
        sim.run(until=2.5)
        assert times == pytest.approx([0.25, 1.25, 2.25])

    def test_stop_halts_firing(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert times == pytest.approx([1.0, 2.0])

    def test_double_start_rejected(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(SimulationError):
            timer.start()

    def test_stop_before_start_is_noop(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.stop()  # must not raise

    def test_nonpositive_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_fire_count(self, sim):
        timer = PeriodicTimer(sim, 0.5, lambda: None)
        timer.start()
        sim.run(until=2.6)
        assert timer.fire_count == 5

    def test_jitter_fn_applied(self, sim):
        times = []
        timer = PeriodicTimer(
            sim, 1.0, lambda: times.append(sim.now), jitter_fn=lambda: 0.1
        )
        timer.start()
        sim.run(until=3.5)
        # First firing at the plain start delay, then period + jitter.
        assert times == pytest.approx([1.0, 2.1, 3.2])

    def test_args_passed(self, sim):
        log = []
        timer = PeriodicTimer(sim, 1.0, log.append, "tick")
        timer.start()
        sim.run(until=2.5)
        assert log == ["tick", "tick"]


class TestClockUnderEventBudget:
    """Regression: ``run(until=, max_events=)`` must not jump the clock to
    ``until`` when the event budget cut execution short with runnable work
    still pending inside the window."""

    def test_budget_exhausted_does_not_jump(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: None)
        sim.run(until=10.0, max_events=2)
        assert sim.now == 2.0  # event at 3.0 is still pending, not skipped

    def test_budget_exhausted_exactly_at_drain_still_jumps(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0, max_events=1)
        assert sim.now == 5.0  # queue is empty: the window completes

    def test_pending_cancelled_event_does_not_block_jump(self, sim):
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        sim.cancel(handle)
        sim.run(until=5.0, max_events=1)
        assert sim.now == 5.0

    def test_pending_event_beyond_until_does_not_block_jump(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        sim.run(until=5.0, max_events=1)
        assert sim.now == 5.0

    def test_resumed_run_executes_the_left_behind_work(self, sim):
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: log.append(t))
        sim.run(until=10.0, max_events=2)
        sim.run(until=10.0)
        assert log == [1.0, 2.0, 3.0]
        assert sim.now == 10.0

    def test_stop_requested_does_not_jump(self, sim):
        sim.schedule(1.0, sim.stop)
        sim.run(until=5.0)
        assert sim.now == 1.0


class TestEngineProfiler:
    def _profiled_sim(self):
        from repro.simnet.engine import EngineProfiler, Simulator

        sim = Simulator()
        sim.profiler = EngineProfiler()
        return sim

    def test_counts_events_by_handler(self):
        sim = self._profiled_sim()
        log = []

        def handler_a():
            log.append("a")

        def handler_b():
            log.append("b")

        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, handler_a)
        sim.schedule(4.0, handler_b)
        sim.run()
        summary = sim.profiler.summary()
        assert summary["events_total"] == 4
        by_type = summary["by_type"]
        a_key = next(k for k in by_type if "handler_a" in k)
        b_key = next(k for k in by_type if "handler_b" in k)
        assert by_type[a_key]["count"] == 3
        assert by_type[b_key]["count"] == 1
        assert by_type[a_key]["wall_s"] >= 0.0

    def test_queue_high_water(self):
        sim = self._profiled_sim()
        for t in range(1, 8):
            sim.schedule(float(t), lambda: None)
        sim.run()
        assert sim.profiler.queue_high_water == 7

    def test_profiled_run_same_semantics(self, sim):
        """The profiled loop must execute the same events in the same order
        as the plain loop — it observes, never perturbs."""
        from repro.simnet.engine import EngineProfiler, Simulator

        def build(s):
            log = []
            s.schedule(2.0, log.append, "b")
            s.schedule(1.0, log.append, "a")
            h = s.schedule(1.5, log.append, "x")
            s.cancel(h)
            s.schedule(3.0, log.append, "c")
            return log

        plain_log = build(sim)
        sim.run(until=10.0)
        prof_sim = Simulator()
        prof_sim.profiler = EngineProfiler()
        prof_log = build(prof_sim)
        prof_sim.run(until=10.0)
        assert prof_log == plain_log == ["a", "b", "c"]
        assert prof_sim.now == sim.now == 10.0
        assert prof_sim.events_executed == sim.events_executed
        assert prof_sim.profiler.events_total == 3

    def test_render_profile(self):
        from repro.simnet.engine import render_profile

        sim = self._profiled_sim()
        sim.schedule(1.0, lambda: None)
        sim.run()
        text = render_profile(sim.profiler.summary())
        assert "engine profile: 1 events" in text
        assert "queue high-water 1" in text


class TestPhaseScopes:
    def _profiled_sim(self):
        from repro.simnet.engine import EngineProfiler, Simulator

        sim = Simulator()
        sim.profiler = EngineProfiler()
        return sim

    def test_paths_root_at_handler_and_nest(self):
        sim = self._profiled_sim()
        prof = sim.profiler

        def handler():
            prof.phase_begin("outer")
            prof.phase_begin("inner")
            prof.phase_end()
            prof.phase_end()

        sim.schedule(1.0, handler)
        sim.run()
        phases = sim.profiler.summary()["phases"]
        outer = next(p for p in phases if p.endswith(";outer"))
        assert "handler" in outer
        assert f"{outer};inner" in phases
        assert phases[outer]["count"] == 1
        assert phases[f"{outer};inner"]["count"] == 1

    def test_child_wall_bounded_by_parent(self):
        sim = self._profiled_sim()
        prof = sim.profiler

        def handler():
            prof.phase_first("work")
            acc = 0
            for i in range(5000):
                acc += i
            prof.phase_end()

        for t in range(1, 51):
            sim.schedule(float(t), handler)
        sim.run()
        summary = sim.profiler.summary()
        handler_key = next(k for k in summary["by_type"] if "handler" in k)
        child_wall = summary["phases"][f"{handler_key};work"]["wall_s"]
        # Nesting invariant: the scope cannot outlast its handler (up to
        # clock quantization noise).
        assert child_wall <= summary["by_type"][handler_key]["wall_s"] * 1.01

    def test_phase_first_backdates_to_event_start(self):
        """phase_first charges the handler's entry bookkeeping to the first
        scope: coverage of a fully-scoped handler lands near 1.0, which a
        plain phase_begin cannot achieve."""
        sim = self._profiled_sim()
        prof = sim.profiler

        def handler():
            prof.phase_first("all")
            acc = 0
            for i in range(2000):
                acc += i
            prof.phase_end()

        for t in range(1, 201):
            sim.schedule(float(t), handler)
        sim.run()
        summary = sim.profiler.summary()
        assert sim.profiler.phase_firsts == 200
        handler_key = next(k for k in summary["by_type"] if "handler" in k)
        coverage = summary["phase_coverage"][handler_key]
        assert 0.95 <= coverage <= 1.01

    def test_phase_first_nested_falls_back_to_begin(self):
        sim = self._profiled_sim()
        prof = sim.profiler

        def handler():
            prof.phase_begin("outer")
            prof.phase_first("nested")  # stack non-empty: plain begin
            prof.phase_end()
            prof.phase_end()

        sim.schedule(1.0, handler)
        sim.run()
        assert sim.profiler.phase_firsts == 0
        phases = sim.profiler.summary()["phases"]
        assert any(p.endswith(";outer;nested") for p in phases)

    def test_phase_next_closes_and_opens_sibling(self):
        sim = self._profiled_sim()
        prof = sim.profiler

        def handler():
            prof.phase_first("a")
            prof.phase_next("b")
            prof.phase_next("c")
            prof.phase_end()

        sim.schedule(1.0, handler)
        sim.run()
        assert sim.profiler.phase_nexts == 2
        phases = sim.profiler.summary()["phases"]
        names = {p.rpartition(";")[2] for p in phases}
        assert {"a", "b", "c"} <= names

    def test_unbalanced_scope_dropped_between_events(self):
        sim = self._profiled_sim()
        prof = sim.profiler

        def leaky():
            prof.phase_begin("never_closed")

        def clean():
            prof.phase_begin("ok")
            prof.phase_end()

        sim.schedule(1.0, leaky)
        sim.schedule(2.0, clean)
        sim.run()
        phases = sim.profiler.summary()["phases"]
        # The leaked scope was never recorded, and the next event's scope
        # roots at its own handler, not under the leaked path.
        ok = next(p for p in phases if p.endswith(";ok"))
        assert "never_closed" not in ok
        assert not any("never_closed" in p for p in phases)

    def test_overhead_estimate_accounting(self):
        sim = self._profiled_sim()
        prof = sim.profiler

        def handler():
            prof.phase_first("a")
            prof.phase_next("b")
            prof.phase_end()

        for t in range(1, 11):
            sim.schedule(float(t), handler)
        sim.run()
        overhead = sim.profiler.overhead_estimate()
        assert overhead["phase_pairs"] == 20  # two scopes per event
        # 2*pairs - firsts - nexts = 40 - 10 - 10
        assert overhead["clock_reads"] == 20
        assert overhead["total_s"] >= 0.0
        assert 0.0 <= overhead["fraction_of_wall"]
        assert overhead["per_read_s"] >= 0.0

    def test_phase_coverage_helper(self):
        from repro.simnet.engine import phase_coverage

        summary = {
            "by_type": {"H.handle": {"count": 10, "wall_s": 1.0}},
            "phases": {
                "H.handle;a": {"count": 10, "wall_s": 0.5},
                "H.handle;b": {"count": 10, "wall_s": 0.4},
                "H.handle;a;deep": {"count": 10, "wall_s": 0.3},
            },
        }
        coverage = phase_coverage(summary)
        # Only direct children count; the nested phase does not double-count.
        assert coverage == {"H.handle": pytest.approx(0.9)}

    def test_periodic_timer_callback_attributed(self):
        from repro.simnet.engine import PeriodicTimer

        sim = self._profiled_sim()
        fired = []

        class Probe:
            def tick(self):
                fired.append(sim.now)

        timer = PeriodicTimer(sim, period=1.0, fn=Probe().tick)
        timer.start()
        sim.run(until=3.5)
        assert len(fired) == 3
        phases = sim.profiler.summary()["phases"]
        assert any("Probe.tick" in p for p in phases)

    def test_render_profile_includes_phase_sections(self):
        from repro.simnet.engine import render_profile

        sim = self._profiled_sim()
        prof = sim.profiler

        def handler():
            prof.phase_first("stage")
            prof.phase_end()

        sim.schedule(1.0, handler)
        sim.run()
        text = render_profile(sim.profiler.summary())
        assert "hot-path phases" in text
        assert ";stage" in text
        assert "phase coverage" in text
        assert "profiler overhead" in text
