"""Static routing: shortest paths, tie-breaking, table installation."""

import pytest

from repro.errors import RoutingError
from repro.simnet.addressing import PROTO_UDP
from repro.simnet.random import RandomStreams
from repro.simnet.routing import compute_routes, shortest_path
from repro.simnet.topology import Network
from repro.units import mbps, ms


def _diamond(sim):
    """h1 - s01 - {s02, s03} - s04 - h2: two equal-cost paths."""
    net = Network(sim, RandomStreams(0))
    net.add_host("h1")
    net.add_host("h2")
    for s in ("s01", "s02", "s03", "s04"):
        net.add_switch(s)
    for a, b in [
        ("h1", "s01"),
        ("s01", "s02"),
        ("s01", "s03"),
        ("s02", "s04"),
        ("s03", "s04"),
        ("s04", "h2"),
    ]:
        net.connect(a, b, rate_bps=mbps(20), delay=ms(10))
    net.finalize()
    return net


def test_equal_cost_tie_breaks_lexicographically(sim):
    net = _diamond(sim)
    path = shortest_path(net.graph(), "h1", "h2")
    assert path == ["h1", "s01", "s02", "s04", "h2"]  # s02 < s03


def test_unknown_endpoint_rejected(sim, dumbbell):
    with pytest.raises(RoutingError):
        shortest_path(dumbbell.graph(), "h1", "ghost")


def test_trivial_path(sim, dumbbell):
    assert shortest_path(dumbbell.graph(), "h1", "h1") == ["h1"]


def test_path_never_transits_host(sim):
    """Even if a host is topologically between two nodes, routes avoid it."""
    net = Network(sim, RandomStreams(0))
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    net.add_switch("s02")
    # Long switch detour vs short 'path' through h1: still must use switches.
    net.connect("h1", "s01", rate_bps=mbps(20), delay=ms(1))
    net.connect("s01", "s02", rate_bps=mbps(20), delay=ms(1))
    net.connect("s02", "h2", rate_bps=mbps(20), delay=ms(1))
    net.finalize()
    path = shortest_path(net.graph(), "h1", "h2")
    assert path == ["h1", "s01", "s02", "h2"]
    assert all(n not in ("h3",) for n in path)


def test_compute_routes_covers_all_switch_host_pairs(sim, line3):
    routes = compute_routes(line3)
    assert set(routes) == {"s01", "s02"}
    for sw, table in routes.items():
        assert set(table) == {"h1", "h2", "h3"}


def test_next_hops_consistent(sim, line3):
    routes = compute_routes(line3)
    assert routes["s01"]["h2"] == "s02"
    assert routes["s01"]["h1"] == "h1"
    assert routes["s02"]["h1"] == "s01"


def test_installed_routes_forward_correctly(sim):
    """End-to-end across the diamond: packets actually arrive."""
    net = _diamond(sim)
    got = []
    net.host("h2").bind(PROTO_UDP, 9, lambda p: got.append(p.hop_count))
    h1 = net.host("h1")
    h1.send(h1.new_packet(net.address_of("h2"), dst_port=9))
    sim.run()
    assert got == [3]  # s01, s02 (tie-break), s04


def test_weighted_paths_prefer_lower_delay(sim):
    net = Network(sim, RandomStreams(0))
    net.add_host("h1")
    net.add_host("h2")
    for s in ("s01", "s02", "s03"):
        net.add_switch(s)
    net.connect("h1", "s01", rate_bps=mbps(20), delay=ms(1))
    # Direct but slow vs two-hop but fast.
    net.connect("s01", "s03", rate_bps=mbps(20), delay=ms(50))
    net.connect("s01", "s02", rate_bps=mbps(20), delay=ms(1))
    net.connect("s02", "s03", rate_bps=mbps(20), delay=ms(1))
    net.connect("s03", "h2", rate_bps=mbps(20), delay=ms(1))
    net.finalize()
    path = shortest_path(net.graph(), "h1", "h2")
    assert path == ["h1", "s01", "s02", "s03", "h2"]
