"""Seeded random streams: determinism and independence."""

import numpy as np

from repro.simnet.random import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(42).get("workload").random(5)
    b = RandomStreams(42).get("workload").random(5)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(1).get("workload").random(5)
    b = RandomStreams(2).get("workload").random(5)
    assert not np.array_equal(a, b)


def test_named_streams_are_independent():
    streams = RandomStreams(7)
    a = streams.get("a").random(5)
    b = streams.get("b").random(5)
    assert not np.array_equal(a, b)


def test_stream_independent_of_creation_order():
    s1 = RandomStreams(9)
    s1.get("x")  # create an extra stream first
    v1 = s1.get("target").random(3)

    s2 = RandomStreams(9)
    v2 = s2.get("target").random(3)  # no extra stream
    assert np.array_equal(v1, v2)


def test_get_returns_same_generator_instance():
    streams = RandomStreams(3)
    assert streams.get("w") is streams.get("w")


def test_fork_changes_streams():
    base = RandomStreams(5)
    forked = base.fork(1)
    assert forked.root_seed != base.root_seed
    a = base.get("w").random(3)
    b = forked.get("w").random(3)
    assert not np.array_equal(a, b)


def test_fork_deterministic():
    a = RandomStreams(5).fork(3).get("w").random(4)
    b = RandomStreams(5).fork(3).get("w").random(4)
    assert np.array_equal(a, b)
