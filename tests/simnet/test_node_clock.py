"""Node clocks (NTP model) and service-time jitter."""

import numpy as np
import pytest

from repro.simnet.node import Clock, Node
from repro.simnet.random import RandomStreams


class TestClock:
    def test_perfect_clock_reads_sim_time(self, sim):
        clock = Clock(sim)
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert clock.read() == 1.5

    def test_offset_applied(self, sim):
        clock = Clock(sim, offset=0.002)
        assert clock.read() == pytest.approx(0.002)

    def test_jitter_varies_readings(self, sim):
        rng = RandomStreams(1).get("c")
        clock = Clock(sim, jitter_std=1e-4, rng=rng)
        readings = {clock.read() for _ in range(10)}
        assert len(readings) > 1

    def test_jitter_centered_on_true_time(self, sim):
        rng = RandomStreams(1).get("c")
        clock = Clock(sim, offset=0.0, jitter_std=1e-4, rng=rng)
        samples = [clock.read() for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(0.0, abs=2e-5)
        assert np.std(samples) == pytest.approx(1e-4, rel=0.2)

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            Clock(sim, jitter_std=1e-4)

    def test_negative_jitter_rejected(self, sim):
        with pytest.raises(ValueError):
            Clock(sim, jitter_std=-1.0)


class TestServiceJitter:
    def test_default_deterministic(self, sim):
        node = Node(sim, "n", 1)
        assert node.service_time_factor() == 1.0

    def test_jitter_bounded_and_mean_preserving(self, sim):
        node = Node(sim, "n", 1)
        node.set_service_jitter(0.15, RandomStreams(2).get("s"))
        factors = [node.service_time_factor() for _ in range(5000)]
        assert all(0.85 <= f <= 1.15 for f in factors)
        assert np.mean(factors) == pytest.approx(1.0, abs=0.01)

    def test_invalid_jitter_rejected(self, sim):
        node = Node(sim, "n", 1)
        rng = RandomStreams(0).get("s")
        with pytest.raises(ValueError):
            node.set_service_jitter(-0.1, rng)
        with pytest.raises(ValueError):
            node.set_service_jitter(1.0, rng)

    def test_network_applies_jitter_to_switches_only(self, sim, streams):
        from repro.simnet.topology import Network

        net = Network(sim, streams, switch_service_jitter=0.15)
        host = net.add_host("h")
        switch = net.add_switch("s01")
        assert host.service_jitter == 0.0
        assert switch.service_jitter == 0.15

    def test_network_jitter_disabled(self, sim, streams):
        from repro.simnet.topology import Network

        net = Network(sim, streams, switch_service_jitter=0.0)
        switch = net.add_switch("s01")
        assert switch.service_jitter == 0.0

    def test_clocks_deterministic_per_seed(self, sim):
        from repro.simnet.topology import Network

        def offsets(seed):
            net = Network(sim, RandomStreams(seed))
            return [net.add_switch(f"s{i:02d}").clock.offset for i in range(1, 4)]

        # Same seed, fresh networks: identical clock errors.
        assert offsets(5) == offsets(5)
