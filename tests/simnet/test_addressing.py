"""Address book behaviour."""

import pytest

from repro.errors import TopologyError
from repro.simnet.addressing import AddressBook


def test_register_assigns_increasing_addresses():
    book = AddressBook()
    a = book.register("h1")
    b = book.register("h2")
    assert b == a + 1
    assert a >= 1  # address 0 reserved


def test_roundtrip():
    book = AddressBook()
    addr = book.register("node7")
    assert book.address_of("node7") == addr
    assert book.name_of(addr) == "node7"


def test_duplicate_name_rejected():
    book = AddressBook()
    book.register("h1")
    with pytest.raises(TopologyError):
        book.register("h1")


def test_unknown_name_rejected():
    with pytest.raises(TopologyError):
        AddressBook().address_of("ghost")


def test_unknown_address_rejected():
    with pytest.raises(TopologyError):
        AddressBook().name_of(99)


def test_contains_and_len():
    book = AddressBook()
    book.register("a")
    book.register("b")
    assert "a" in book and "c" not in book
    assert len(book) == 2


def test_names_iteration():
    book = AddressBook()
    for n in ("x", "y", "z"):
        book.register(n)
    assert list(book.names()) == ["x", "y", "z"]
