"""Event-pool scheduling: post(), handle reuse via reschedule(), the O(1)
live-event counter, and tombstone compaction.

The fast-path engine has three scheduling tiers: ``schedule`` (allocates a
cancellable :class:`EventHandle`), ``post`` (fire-and-forget, no handle at
all), and ``reschedule`` (re-arms a *fired* handle in place — the event-pool
path self-rescheduling machinery like PeriodicTimer and CBR sources use).
The aliasing tests pin down the safety property: a handle can never be
reused while a stale heap entry could still fire it.
"""

import pytest

from repro.errors import SimulationError
from repro.simnet.engine import PeriodicTimer, Simulator


class TestPost:
    def test_post_fires_in_order(self, sim):
        log = []
        sim.post(2.0, log.append, "b")
        sim.post(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_post_ties_break_by_insertion_order(self, sim):
        log = []
        sim.post(1.0, log.append, "first")
        sim.schedule(1.0, log.append, "second")
        sim.post(1.0, log.append, "third")
        sim.run()
        assert log == ["first", "second", "third"]

    def test_post_in_past_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.post(-0.1, lambda: None)

    def test_post_at_before_now_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.post_at(4.0, lambda: None)

    def test_post_counts_as_pending(self, sim):
        sim.post(1.0, lambda: None)
        sim.post(2.0, lambda: None)
        assert sim.pending_events() == 2
        sim.run()
        assert sim.pending_events() == 0

    def test_post_does_not_block_clock_jump(self, sim):
        sim.post(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        sim.run(until=20.0)
        assert sim.now == 20.0


class TestReschedule:
    def test_reschedule_reuses_the_same_object(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        again = sim.reschedule(handle, 1.0)
        assert again is handle
        assert not handle.fired
        sim.run()
        assert fired == ["x", "x"]
        assert handle.fired

    def test_reschedule_pending_handle_rejected(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 2.0)

    def test_reschedule_cancelled_handle_rejected(self, sim):
        # A cancelled handle still has a tombstone in the heap; resurrecting
        # it would alias the new event with the stale entry.
        handle = sim.schedule(1.0, lambda: None)
        sim.cancel(handle)
        with pytest.raises(SimulationError):
            sim.reschedule(handle, 2.0)

    def test_reschedule_negative_delay_rejected(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.reschedule(handle, -1.0)

    def test_rescheduled_handle_can_be_cancelled(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        sim.run()
        sim.reschedule(handle, 1.0)
        sim.cancel(handle)
        sim.run()
        assert fired == [1]

    def test_no_aliasing_across_cancel_and_fresh_schedule(self, sim):
        """A cancelled handle's tombstone must never fire a later event that
        happens to reuse the same callback."""
        fired = []
        stale = sim.schedule(1.0, fired.append, "stale")
        sim.cancel(stale)
        sim.schedule(1.0, fired.append, "fresh")
        sim.run()
        assert fired == ["fresh"]

    def test_periodic_timer_reuses_its_handle(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        first = timer._handle
        sim.run(until=5.5)
        assert timer.fire_count == 5
        assert timer._handle is first  # event-pool reuse, not reallocation
        timer.stop()
        sim.run(until=10.0)
        assert timer.fire_count == 5


class TestLiveCounter:
    def test_pending_events_tracks_all_paths(self, sim):
        h1 = sim.schedule(1.0, lambda: None)
        sim.post(2.0, lambda: None)
        h3 = sim.schedule(3.0, lambda: None)
        assert sim.pending_events() == 3
        sim.cancel(h1)
        assert sim.pending_events() == 2
        sim.run(until=2.5)
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0
        del h3

    def test_counter_constant_time(self, sim):
        """pending_events() must not scan the heap: its result is exact even
        while tombstones outnumber live entries."""
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(50)]
        for handle in handles[10:]:
            sim.cancel(handle)
        assert sim.pending_events() == 10

    def test_step_decrements(self, sim):
        sim.post(1.0, lambda: None)
        sim.post(2.0, lambda: None)
        sim.step()
        assert sim.pending_events() == 1


class TestCompaction:
    def test_mass_cancel_compacts_heap(self, sim):
        keep = [sim.schedule(100.0 + i, lambda: None) for i in range(10)]
        churn = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for handle in churn:
            sim.cancel(handle)
        # Tombstones were dropped eagerly instead of lingering until popped:
        # the heap stays within live + the 64-tombstone compaction floor,
        # never anywhere near the 500 cancelled entries.
        assert len(sim._heap) <= 10 + 64
        assert sim.pending_events() == 10
        sim.run()
        assert sim.events_executed == 10
        del keep

    def test_events_survive_compaction_in_order(self, sim):
        log = []
        for i in range(200):
            sim.schedule(float(i), log.append, i)
        doomed = [sim.schedule(1000.0 + i, lambda: None) for i in range(300)]
        for handle in doomed:
            sim.cancel(handle)
        sim.run()
        assert log == list(range(200))

    def test_cancel_from_inside_handler_compacts_safely(self, sim):
        """Compaction triggered mid-run must mutate the same list the run
        loop is iterating (in-place), not rebind the attribute."""
        doomed = [sim.schedule(50.0 + i, lambda: None) for i in range(300)]
        log = []

        def mass_cancel():
            for handle in doomed:
                sim.cancel(handle)

        sim.schedule(1.0, mass_cancel)
        sim.schedule(2.0, log.append, "after")
        sim.run()
        assert log == ["after"]
        assert sim.pending_events() == 0

    def test_compaction_preserves_cancel_counters(self, sim):
        doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        for handle in doomed:
            sim.cancel(handle)
        assert sim.events_cancelled == 200
        sim.run()
        assert sim.events_executed == 0


class TestRepeatability:
    def test_mixed_paths_are_deterministic(self):
        """The same schedule/post/reschedule/cancel sequence produces the
        same firing order on a fresh simulator."""

        def drive():
            sim = Simulator()
            log = []

            def tick(tag):
                log.append((sim.now, tag))

            timer = PeriodicTimer(sim, 0.5, tick, "timer")
            timer.start()
            sim.post(1.25, tick, "post")
            handle = sim.schedule(0.75, tick, "sched")
            sim.run(until=1.0)
            sim.reschedule(handle, 0.5)
            doomed = sim.schedule(1.4, tick, "doomed")
            sim.cancel(doomed)
            sim.run(until=2.0)
            timer.stop()
            return log

        assert drive() == drive()
