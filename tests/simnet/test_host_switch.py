"""Host demultiplexing and switch forwarding behaviour."""

import pytest

from repro.errors import TopologyError
from repro.simnet.addressing import PROTO_TCP, PROTO_UDP
from repro.simnet.packet import Packet
from repro.units import mbps


class TestHostDemux:
    def test_delivery_by_protocol_and_port(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(20), delay=0.0)
        net.finalize()
        udp_hits, tcp_hits = [], []
        b = net.host("b")
        b.bind(PROTO_UDP, 100, lambda p: udp_hits.append(p))
        b.bind(PROTO_TCP, 100, lambda p: tcp_hits.append(p))
        a = net.host("a")
        a.send(a.new_packet(b.addr, protocol=PROTO_UDP, dst_port=100))
        a.send(a.new_packet(b.addr, protocol=PROTO_TCP, dst_port=100))
        sim.run()
        assert len(udp_hits) == 1 and len(tcp_hits) == 1

    def test_unbound_port_counts_unclaimed(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(20), delay=0.0)
        net.finalize()
        a, b = net.host("a"), net.host("b")
        a.send(a.new_packet(b.addr, dst_port=999))
        sim.run()
        assert b.packets_unclaimed == 1
        assert b.packets_delivered == 0

    def test_double_bind_rejected(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        host = net.add_host("a")
        host.bind(PROTO_UDP, 5, lambda p: None)
        with pytest.raises(TopologyError):
            host.bind(PROTO_UDP, 5, lambda p: None)

    def test_unbind_then_rebind(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        host = net.add_host("a")
        host.bind(PROTO_UDP, 5, lambda p: None)
        host.unbind(PROTO_UDP, 5)
        host.bind(PROTO_UDP, 5, lambda p: None)  # no error

    def test_unbind_unbound_rejected(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        host = net.add_host("a")
        with pytest.raises(TopologyError):
            host.unbind(PROTO_UDP, 5)

    def test_ephemeral_ports_unique(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        host = net.add_host("a")
        ports = {host.ephemeral_port() for _ in range(50)}
        assert len(ports) == 50

    def test_send_without_link_rejected(self, sim, quiet_network_factory):
        net = quiet_network_factory()
        host = net.add_host("a")
        with pytest.raises(TopologyError):
            host.send(Packet(host.addr, 99))

    def test_misaddressed_packet_dropped_at_host(self, sim, quiet_network_factory):
        """A packet whose dst is not this host dies here (hosts don't route)."""
        net = quiet_network_factory()
        net.add_host("a")
        net.add_host("b")
        net.connect("a", "b", rate_bps=mbps(20), delay=0.0)
        net.finalize()
        a, b = net.host("a"), net.host("b")
        a.send(a.new_packet(999, dst_port=5))  # bogus destination
        sim.run()
        assert b.packets_dropped == 1


class TestSwitchForwarding:
    def test_forwards_between_hosts(self, sim, dumbbell):
        net = dumbbell
        got = []
        net.host("h2").bind(PROTO_UDP, 7, lambda p: got.append(p))
        h1 = net.host("h1")
        h1.send(h1.new_packet(net.address_of("h2"), dst_port=7))
        sim.run()
        assert len(got) == 1
        assert net.switch("s01").packets_forwarded == 1

    def test_ttl_decremented_per_switch(self, sim, line3):
        net = line3
        got = []
        net.host("h2").bind(PROTO_UDP, 7, lambda p: got.append(p.ttl))
        h1 = net.host("h1")
        h1.send(h1.new_packet(net.address_of("h2"), dst_port=7))
        sim.run()
        assert got == [62]  # 64 - 2 switches

    def test_hop_count_incremented(self, sim, line3):
        net = line3
        got = []
        net.host("h2").bind(PROTO_UDP, 7, lambda p: got.append(p.hop_count))
        h1 = net.host("h1")
        h1.send(h1.new_packet(net.address_of("h2"), dst_port=7))
        sim.run()
        assert got == [2]

    def test_expired_ttl_dropped(self, sim, line3):
        net = line3
        got = []
        net.host("h2").bind(PROTO_UDP, 7, lambda p: got.append(p))
        h1 = net.host("h1")
        pkt = h1.new_packet(net.address_of("h2"), dst_port=7)
        pkt.ttl = 1
        h1.send(pkt)
        sim.run()
        assert got == []
        assert net.switch("s01").packets_dropped_pipeline == 1

    def test_unroutable_destination_dropped(self, sim, dumbbell):
        net = dumbbell
        h1 = net.host("h1")
        h1.send(h1.new_packet(12345, dst_port=7))
        sim.run()
        assert net.switch("s01").packets_dropped_pipeline == 1

    def test_switch_counts_received(self, sim, dumbbell):
        net = dumbbell
        h1 = net.host("h1")
        for _ in range(3):
            h1.send(h1.new_packet(net.address_of("h2"), dst_port=7))
        sim.run()
        assert net.switch("s01").packets_received == 3
