"""RED/ECN queues and the transport's ECN response."""

import pytest

from repro.simnet.flows import MSS, ReliableTransfer, TransferSinkApp
from repro.simnet.packet import FLAG_ECN, Packet
from repro.simnet.queueing import RedEcnQueue
from repro.simnet.random import RandomStreams
from repro.simnet.topology import Network
from repro.units import mbps, ms


class TestRedEcnQueue:
    def test_below_threshold_unmarked(self):
        q = RedEcnQueue(capacity=16, mark_threshold=4)
        packets = [Packet(1, 2) for _ in range(4)]
        for p in packets:
            q.push(p)
        # Depths observed: 0,1,2,3 — all below threshold 4.
        assert all(not (p.flags & FLAG_ECN) for p in packets)
        assert q.marked == 0

    def test_above_threshold_marked(self):
        q = RedEcnQueue(capacity=16, mark_threshold=4)
        packets = [Packet(1, 2) for _ in range(8)]
        for p in packets:
            q.push(p)
        assert all(p.flags & FLAG_ECN for p in packets[4:])
        assert q.marked == 4

    def test_still_drops_at_capacity(self):
        q = RedEcnQueue(capacity=4, mark_threshold=2)
        for _ in range(6):
            q.push(Packet(1, 2))
        assert q.stats.dropped == 2

    def test_default_threshold_quarter_capacity(self):
        assert RedEcnQueue(capacity=64).mark_threshold == 16

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RedEcnQueue(capacity=8, mark_threshold=0)
        with pytest.raises(ValueError):
            RedEcnQueue(capacity=8, mark_threshold=9)


def _ecn_dumbbell(sim, *, ecn: bool):
    """h1 - s01 - h2 with a small buffer, optionally ECN-marking."""
    net = Network(
        sim, RandomStreams(0),
        clock_offset_std=0.0, clock_jitter_std=0.0, switch_service_jitter=0.0,
    )
    net.add_host("h1")
    net.add_host("h2")
    net.add_switch("s01")
    kwargs = dict(rate_bps=mbps(20), delay=ms(5), queue_capacity=16)
    if ecn:
        kwargs["ecn_threshold"] = 4
    net.connect("h1", "s01", rate_ab_bps=mbps(200), **kwargs)
    net.connect("s01", "h2", **kwargs)
    net.finalize()
    return net


class TestTransportEcn:
    def _run_transfer(self, sim, net, nbytes=400 * MSS):
        TransferSinkApp(net.host("h2"), 6000)
        transfer = ReliableTransfer(net.host("h1"), net.address_of("h2"), 6000, nbytes)
        transfer.start()
        sim.run(until=300.0)
        assert transfer.done
        return transfer

    def test_ecn_reactions_happen(self, sim):
        net = _ecn_dumbbell(sim, ecn=True)
        transfer = self._run_transfer(sim, net)
        assert transfer.ecn_reactions > 0

    def test_ecn_avoids_most_losses(self, sim):
        """With marking at 1/4 buffer, the sender backs off before the
        16-packet buffer overflows: far fewer retransmissions than the
        loss-driven baseline on the identical path."""
        sim_drop = type(sim)()
        drop_net = _ecn_dumbbell(sim_drop, ecn=False)
        drop = ReliableTransfer(
            drop_net.host("h1"), drop_net.address_of("h2"), 6000, 400 * MSS
        )
        TransferSinkApp(drop_net.host("h2"), 6000)
        drop.start()
        sim_drop.run(until=300.0)
        assert drop.done

        ecn_net = _ecn_dumbbell(sim, ecn=True)
        ecn = self._run_transfer(sim, ecn_net)

        assert drop.retransmissions > 0
        assert ecn.retransmissions < drop.retransmissions

    def test_ecn_throughput_competitive(self, sim):
        # A long transfer so steady state dominates over slow start.
        net = _ecn_dumbbell(sim, ecn=True)
        transfer = self._run_transfer(sim, net, nbytes=2000 * MSS)
        goodput = transfer.total_bytes * 8.0 / transfer.elapsed
        assert goodput > 0.45 * mbps(20)

    def test_reaction_rate_limited_per_rtt(self, sim):
        """Marks arrive on many consecutive ACKs; reactions are gated to
        roughly once per RTT, not once per mark."""
        net = _ecn_dumbbell(sim, ecn=True)
        transfer = self._run_transfer(sim, net)
        rtts = transfer.elapsed / max(transfer._srtt, 1e-6)
        assert transfer.ecn_reactions <= rtts + 2
