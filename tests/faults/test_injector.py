"""FaultInjector: scheduling, target resolution, mutation, obs mirroring."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    LINK_DEGRADE,
    LINK_DOWN,
    LINK_RESTORE,
    LINK_UP,
    PROBE_LOSS,
    REGISTER_WIPE,
    SERVER_CRASH,
    SERVER_RECOVER,
)
from repro.obs import Observability


def _plan(*events):
    return FaultPlan(events=tuple(events), name="test")


class TestArming:
    def test_arm_registers_on_engine_and_schedules(self, sim, line3):
        plan = _plan(FaultEvent(time=1.0, kind=LINK_DOWN, target="s01<->s02"))
        injector = FaultInjector(sim, line3, plan)
        assert sim.faults is None
        count = injector.arm()
        assert count == 1
        assert sim.faults is injector
        assert sim.pending_events() >= 1

    def test_double_arm_rejected(self, sim, line3):
        injector = FaultInjector(sim, line3, _plan())
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()

    def test_rng_required_for_loss_plans(self, sim, line3):
        plan = _plan(FaultEvent(time=1.0, kind=PROBE_LOSS, target="*", rate=0.5))
        with pytest.raises(FaultError):
            FaultInjector(sim, line3, plan)

    def test_past_events_clamped_to_now(self, sim, line3):
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.now == 2.0
        plan = _plan(FaultEvent(time=0.5, kind=LINK_DOWN, target="s01<->s02"))
        injector = FaultInjector(sim, line3, plan)
        injector.arm()
        sim.run()
        assert not line3.links["s01<->s02"].up


class TestLinkFaults:
    def test_down_then_up(self, sim, line3):
        plan = _plan(
            FaultEvent(time=1.0, kind=LINK_DOWN, target="s01<->s02"),
            FaultEvent(time=2.0, kind=LINK_UP, target="s01<->s02"),
        )
        injector = FaultInjector(sim, line3, plan)
        injector.arm()
        sim.run()
        link = line3.links["s01<->s02"]
        assert link.up
        assert [(t, e.kind) for t, e in injector.fired] == [
            (1.0, LINK_DOWN), (2.0, LINK_UP),
        ]
        assert injector.faults_injected == 1
        assert injector.faults_recovered == 1

    def test_wildcard_hits_every_link(self, sim, line3):
        injector = FaultInjector(sim, line3, _plan(
            FaultEvent(time=1.0, kind=LINK_DOWN, target="*")
        ))
        injector.arm()
        sim.run()
        assert all(not link.up for link in line3.links.values())

    def test_unknown_link_raises_at_fire_time(self, sim, line3):
        injector = FaultInjector(sim, line3, _plan(
            FaultEvent(time=1.0, kind=LINK_DOWN, target="nope")
        ))
        injector.arm()
        with pytest.raises(FaultError):
            sim.run()

    def test_degrade_and_restore(self, sim, line3):
        plan = _plan(
            FaultEvent(time=1.0, kind=LINK_DEGRADE, target="s01<->s02",
                       rate_factor=0.25, extra_delay=0.02),
            FaultEvent(time=2.0, kind=LINK_RESTORE, target="s01<->s02"),
        )
        FaultInjector(sim, line3, plan).arm()
        link = line3.links["s01<->s02"]
        sim.run(until=1.5)
        assert link.rate_factor == 0.25
        assert link.extra_delay == 0.02
        sim.run()
        assert link.rate_factor == 1.0
        assert link.extra_delay == 0.0


class TestSwitchAndServerFaults:
    def test_register_wipe_resets_all_arrays(self, sim, line3):
        FaultInjector(sim, line3, _plan(
            FaultEvent(time=1.0, kind=REGISTER_WIPE, target="s01")
        )).arm()
        sim.run()
        program = line3.switches["s01"].program
        assert program.registers
        assert all(reg.resets == 1 for reg in program.registers.values())

    def test_server_crash_and_recover(self, sim, line3):
        from repro.edge.server import EdgeServer

        server = EdgeServer(line3.host("h2"))
        plan = _plan(
            FaultEvent(time=1.0, kind=SERVER_CRASH, target="h2"),
            FaultEvent(time=2.0, kind=SERVER_RECOVER, target="h2"),
        )
        FaultInjector(sim, line3, plan, servers={"h2": server}).arm()
        sim.run(until=1.5)
        assert not server.alive
        sim.run()
        assert server.alive

    def test_unknown_server_raises(self, sim, line3):
        injector = FaultInjector(sim, line3, _plan(
            FaultEvent(time=1.0, kind=SERVER_CRASH, target="h9")
        ), servers={})
        injector.arm()
        with pytest.raises(FaultError):
            sim.run()


class TestObsMirroring:
    def test_events_and_counters(self, sim, line3):
        obs = Observability()
        obs.bind_sim(sim)
        plan = _plan(
            FaultEvent(time=1.0, kind=LINK_DOWN, target="s01<->s02"),
            FaultEvent(time=2.0, kind=LINK_UP, target="s01<->s02"),
        )
        FaultInjector(sim, line3, plan).arm()
        sim.run()
        injected = obs.events.of_kind("fault_injected")
        recovered = obs.events.of_kind("fault_recovered")
        assert len(injected) == len(recovered) == 1
        assert injected[0].fields == {"fault": LINK_DOWN, "target": "s01<->s02"}
        assert injected[0].time == 1.0
        assert obs.metrics.counter(
            "faults_injected_total", fault=LINK_DOWN
        ).value == 1
        assert obs.metrics.counter(
            "faults_recovered_total", fault=LINK_UP
        ).value == 1
