"""Fault plans: validation, flap expansion, JSON round-trips."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    BUILTIN_SCENARIOS,
    FaultEvent,
    FaultPlan,
    LINK_DOWN,
    LINK_FLAP,
    LINK_UP,
    PACKET_LOSS,
    SERVER_CRASH,
    builtin_plan,
    scenario_names,
)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(time=1.0, kind="meteor_strike")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(time=-0.1, kind=LINK_DOWN)

    def test_rate_bounds(self):
        with pytest.raises(FaultError):
            FaultEvent(time=0.0, kind=PACKET_LOSS, rate=1.5)

    def test_rate_factor_bounds(self):
        with pytest.raises(FaultError):
            FaultEvent(time=0.0, kind="link_degrade", rate_factor=0.0)

    def test_flap_needs_positive_period_and_count(self):
        with pytest.raises(FaultError):
            FaultEvent(time=0.0, kind=LINK_FLAP, period=0.0)
        with pytest.raises(FaultError):
            FaultEvent(time=0.0, kind=LINK_FLAP, count=0)

    def test_recovery_classification(self):
        assert FaultEvent(time=0.0, kind=LINK_UP).is_recovery
        assert not FaultEvent(time=0.0, kind=SERVER_CRASH).is_recovery

    def test_target_aliases(self):
        for alias in ("target", "link", "switch", "node", "server"):
            ev = FaultEvent.from_dict({"time": 1.0, "kind": LINK_DOWN, alias: "x"})
            assert ev.target == "x"

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent.from_dict({"time": 1.0, "kind": LINK_DOWN, "wat": 1})


class TestFaultPlan:
    def test_flap_expansion(self):
        plan = FaultPlan(events=(
            FaultEvent(time=2.0, kind=LINK_FLAP, target="l", period=1.0, count=2),
        ))
        expanded = plan.expanded()
        assert [(e.time, e.kind) for e in expanded] == [
            (2.0, LINK_DOWN), (2.5, LINK_UP), (3.0, LINK_DOWN), (3.5, LINK_UP),
        ]
        assert plan.horizon == 3.5

    def test_expansion_sorted_and_stable(self):
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind=LINK_DOWN, target="late"),
            FaultEvent(time=1.0, kind=LINK_DOWN, target="early"),
            FaultEvent(time=1.0, kind=LINK_UP, target="early"),
        ))
        expanded = plan.expanded()
        assert [e.time for e in expanded] == [1.0, 1.0, 5.0]
        assert [e.kind for e in expanded[:2]] == [LINK_DOWN, LINK_UP]

    def test_needs_rng_only_for_loss(self):
        assert not builtin_plan("link-flap").needs_rng()
        assert builtin_plan("probe-blackout").needs_rng()

    def test_json_round_trip(self):
        plan = builtin_plan("server-crash")
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_bad_json_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultError):
            FaultPlan.from_json('{"no_events": true}')

    def test_non_event_member_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(events=("not-an-event",))


class TestBuiltins:
    def test_every_builtin_loads(self):
        for name in scenario_names():
            plan = builtin_plan(name)
            assert plan.name == name
            assert len(plan) >= 1
            assert plan.description

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultError):
            builtin_plan("does-not-exist")

    def test_names_sorted_and_match_registry(self):
        assert scenario_names() == sorted(BUILTIN_SCENARIOS)
