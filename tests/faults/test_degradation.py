"""Graceful-degradation building blocks, unit by unit: telemetry aging in
the store, scheduler quarantine of stale nodes, server crash semantics,
and the device retry knobs' validation."""

import pytest

from repro.core.scheduler import METRIC_DELAY, NetworkAwareScheduler
from repro.edge.metrics import MetricsCollector
from repro.edge.server import EdgeServer
from repro.errors import SchedulingError, WorkloadError
from repro.obs import Observability
from repro.telemetry.probe import ProbeResponder, ProbeSender
from repro.telemetry.records import host_node
from repro.units import mbps


def _probed_scheduler(net, *, ttl=None, staleness=30.0):
    """A network-aware scheduler on h3 watching h1 and h2, fed by real
    probes from both.  Returns (scheduler, sender_h1, sender_h2)."""
    scheduler = NetworkAwareScheduler(
        net.host("h3"),
        [net.address_of("h1"), net.address_of("h2")],
        link_capacity_bps=mbps(20),
        quarantine_ttl=ttl,
        staleness=staleness,
    )
    ProbeResponder(net.host("h3"), collector=scheduler.collector)
    senders = []
    for name in ("h1", "h2"):
        sender = ProbeSender(
            net.host(name), [net.address_of("h3")], interval=0.1
        )
        sender.start()
        senders.append(sender)
    return scheduler, senders[0], senders[1]


class TestTelemetryAging:
    def test_node_age_none_until_seen_then_tracks(self, sim, line3):
        scheduler, _s1, _s2 = _probed_scheduler(line3)
        store = scheduler.store
        h1 = host_node(line3.address_of("h1"))
        assert store.node_age(h1) is None
        sim.run(until=0.55)
        assert store.node_age(h1) == pytest.approx(0.0, abs=0.2)

    def test_link_delay_allow_stale_returns_last_known(self, sim, line3):
        scheduler, s1, s2 = _probed_scheduler(line3, staleness=2.0)
        store = scheduler.store
        sim.run(until=0.55)
        u, v = scheduler.collector.last_report.path_nodes()[:2]
        fresh = store.link_delay(u, v, default=-1.0)
        assert fresh > 0.0
        s1.stop()
        s2.stop()
        sim.run(until=5.0)
        assert store.link_delay(u, v, default=-1.0) == -1.0
        assert store.link_delay(u, v, default=-1.0, allow_stale=True) == fresh


class TestSchedulerQuarantine:
    def test_bad_knobs_rejected(self, sim, line3):
        with pytest.raises(SchedulingError):
            _probed_scheduler(line3, ttl=0.0)
        with pytest.raises(SchedulingError):
            NetworkAwareScheduler(
                line3.host("h3"), [line3.address_of("h1")],
                link_capacity_bps=mbps(20), stale_penalty=-1.0,
            )

    def test_stale_node_quarantined_and_ranked_last(self, sim, line3):
        obs = Observability()
        obs.bind_sim(sim)
        scheduler, s1, _s2 = _probed_scheduler(line3, ttl=1.0)
        requester = line3.address_of("h3")
        addr_h1 = line3.address_of("h1")
        sim.run(until=0.55)
        assert scheduler.quarantined_nodes == set()
        s1.stop()  # h2 keeps probing; h1's telemetry ages out
        sim.run(until=3.0)
        ranked = scheduler.rank(requester, METRIC_DELAY)
        assert scheduler.quarantined_nodes == {host_node(addr_h1)}
        assert [addr for addr, _v in ranked][-1] == addr_h1
        events = obs.events.of_kind("node_quarantined")
        assert len(events) == 1
        assert events[0].fields["age"] > 1.0

    def test_recovered_probing_unquarantines(self, sim, line3):
        obs = Observability()
        obs.bind_sim(sim)
        scheduler, s1, _s2 = _probed_scheduler(line3, ttl=1.0)
        requester = line3.address_of("h3")
        sim.run(until=0.55)
        s1.stop()
        sim.run(until=3.0)
        scheduler.rank(requester, METRIC_DELAY)
        assert len(scheduler.quarantined_nodes) == 1
        s1.start()
        sim.run(until=3.5)
        scheduler.rank(requester, METRIC_DELAY)
        assert scheduler.quarantined_nodes == set()
        assert len(obs.events.of_kind("node_unquarantined")) == 1

    def test_quarantine_off_by_default(self, sim, line3):
        scheduler, s1, _s2 = _probed_scheduler(line3)  # ttl=None
        requester = line3.address_of("h3")
        sim.run(until=0.55)
        s1.stop()
        sim.run(until=10.0)
        ranked = scheduler.rank(requester, METRIC_DELAY)
        assert len(ranked) == 2
        assert scheduler.quarantined_nodes == set()


def _meta(net, task_id, exec_time=1.0):
    return {
        "task_id": task_id,
        "exec_time": exec_time,
        "reply_addr": net.address_of("h1"),
        "reply_port": 9,
    }


class TestServerCrash:
    def test_crash_drops_in_flight_and_queued(self, sim, line3):
        server = EdgeServer(line3.host("h2"), max_concurrent=1)
        server._start_execution(_meta(line3, 1, exec_time=5.0))
        server.queued.append(_meta(line3, 2))
        assert server.crash() == 2
        assert not server.alive
        assert server.running == 0 and not server.queued
        assert server.tasks_dropped == 2
        sim.run()
        assert server.tasks_completed == 0  # the in-flight timer was cancelled

    def test_dead_server_silently_drops_arrivals(self, sim, line3):
        server = EdgeServer(line3.host("h2"))
        server.crash()
        state = type("S", (), {"metadata": _meta(line3, 3)})()
        server._on_task_data(state)
        assert server.tasks_received == 0
        assert server.tasks_dropped == 1
        assert server.running == 0

    def test_pause_defers_and_recover_drains(self, sim, line3):
        server = EdgeServer(line3.host("h2"))
        server._start_execution(_meta(line3, 1, exec_time=0.5))
        server.pause()
        state = type("S", (), {"metadata": _meta(line3, 2, exec_time=0.5)})()
        server._on_task_data(state)
        sim.run()
        assert server.tasks_completed == 1  # in-flight finished, queue held
        assert len(server.queued) == 1
        server.recover()
        sim.run()
        assert server.tasks_completed == 2
        assert not server.queued


class TestDeviceRetryKnobs:
    def test_validation(self, sim, line3):
        from repro.edge.device import EdgeDevice

        metrics = MetricsCollector()
        host = line3.host("h1")
        with pytest.raises(WorkloadError):
            EdgeDevice(host, 99, metrics, retry_timeout=0.0)
        with pytest.raises(WorkloadError):
            EdgeDevice(host, 99, metrics, retry_timeout=1.0, max_attempts=0)
        with pytest.raises(WorkloadError):
            EdgeDevice(host, 99, metrics, retry_timeout=1.0, retry_backoff=0.5)
