"""Satellite: fault injection is deterministic under the experiment seed.

The injector draws its randomness (packet/probe-loss coin flips) from the
experiment's named ``"faults"`` stream, so two runs of the same plan with
the same seed must produce byte-identical observability traces — and a
different seed must still complete without perturbing the plan itself.
"""

from repro.experiments.fault_scenarios import run_fault_scenario
from repro.experiments.harness import ExperimentConfig, SMOKE_SCALE
from repro.faults import builtin_plan
from repro.obs import Observability


# Fields drawn from process-global id counters (itertools.count): their
# absolute values depend on how many runs preceded this one in the process,
# so determinism is judged after renumbering by order of first appearance.
_COUNTER_FIELDS = ("flow_id", "task_id", "job_id")


def _normalize(events):
    seen = {field: {} for field in _COUNTER_FIELDS}
    out = []
    for event in events:
        event = dict(event)
        for field, ids in seen.items():
            if field in event:
                event[field] = ids.setdefault(event[field], len(ids))
        out.append(event)
    return out


def _trace(seed: int):
    """Run probe-blackout (exercises the loss RNG) and return the full
    event-log snapshot plus headline counters."""
    obs = Observability()
    result = run_fault_scenario(
        builtin_plan("probe-blackout"),
        base_config=ExperimentConfig(scale=SMOKE_SCALE, seed=seed),
        obs=obs,
    )
    return _normalize(obs.events.snapshot()), (
        result.tasks_completed,
        result.tasks_failed,
        result.tasks_retried,
        result.faults_fired,
        result.sim_time,
    )


class TestFaultDeterminism:
    def test_same_seed_identical_event_log(self):
        events_a, summary_a = _trace(seed=7)
        events_b, summary_b = _trace(seed=7)
        assert summary_a == summary_b
        assert events_a == events_b

    def test_different_seed_still_completes(self):
        _events, (completed, _failed, _retried, fired, _t) = _trace(seed=8)
        assert completed > 0
        assert fired > 0

    def test_faults_stream_isolated_from_workload(self, streams):
        """Creating the "faults" stream must not perturb the draws any
        other named stream produces — the guarantee behind the
        byte-identical fault-free path."""
        from repro.simnet.random import RandomStreams

        plain = RandomStreams(12345).get("workload").random()
        streams.get("faults")  # create the extra stream first
        assert streams.get("workload").random() == plain
