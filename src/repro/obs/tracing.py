"""Causal span tracing: where a task's end-to-end delay actually went.

The paper's core claim (Section III-C, Algorithm 1) is that task delay
decomposes into per-link latencies plus ``k * Q(h)`` queue terms.  The
decision audit can say how good the *final* estimate was; this module says
*where along the causal path* the measured time went.  Three lifecycles are
instrumented as traces (Dapper-style: a trace is a tree of spans, each span
a named ``[start, end]`` interval in sim time with attributes):

* **tasks** — device submit -> scheduler decision -> network transfer ->
  server queue wait -> execution -> result return;
* **probes** — emit -> per-hop INT stamping (reusing
  :class:`~repro.simnet.trace.PacketTracer` hop events) -> collector ingest;
* **scheduler decisions** — child spans of the task trace carrying the
  telemetry snapshot age per hop of the chosen path.

Spans are assembled *after* the run from timestamps staged by tiny live
hooks (the same pattern as the harness's task-lifecycle mirroring), so the
hot path pays one dict write per hook and the simulation's event order is
never perturbed.  The wire format is the ``repro.obs.export`` JSONL format
with ``kind: "span"``; :func:`write_chrome_trace` converts an export to
Chrome trace-event JSON loadable in Perfetto, and
:func:`render_trace_report` is the ``repro trace-report`` backend with the
critical-path decomposition against the Algorithm-1 estimate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanTracer",
    "SEGMENT_NAMES",
    "task_segments",
    "render_trace_report",
    "write_chrome_trace",
]

# The critical-path segments of one completed task, in causal order.  They
# are contiguous by construction — each segment starts where the previous
# one ends — so their sum telescopes to the measured end-to-end delay.
SEGMENT_NAMES = (
    "scheduling",      # submit -> ranked response at the device
    "transfer",        # ranked response -> task data fully at the server
    "server_queue",    # arrival -> execution start (run-queue wait)
    "execute",         # execution start -> end
    "result_return",   # execution end -> result back at the device
)

DEFAULT_MAX_SPANS = 100_000
# Probe traces are sampled by sequence number: per-hop tracing of every
# probe at mesh rates would dominate the span buffer without adding
# information (probes on one path are interchangeable).
DEFAULT_PROBE_SAMPLE = 25


def _finite(value: Any) -> Any:
    """JSON-safe numbers: canonical_json rejects NaN/inf, so unreachable-path
    estimates (math.inf) become None on the wire."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class Span:
    """One named interval in a trace: ``[start, end]`` in sim seconds."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
        }


class SpanTracer:
    """Stages live timestamps during a run, assembles spans afterwards.

    Live hooks (``task_request``, ``decision_query``, ``decision``,
    ``task_server_event``, ``probe_sent``, ``probe_ingested``) are one dict
    write each; :meth:`assemble` turns the staged state plus the task
    records and the attached :class:`~repro.simnet.trace.PacketTracer` into
    the span tree.  Span ids are sequential per tracer, so a run's trace
    export is a pure function of the simulation (deterministic across
    serial / parallel / cached executions).
    """

    def __init__(
        self,
        *,
        probe_sample: int = DEFAULT_PROBE_SAMPLE,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if probe_sample < 1:
            raise ValueError("probe_sample must be >= 1")
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.probe_sample = probe_sample
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_spans = 0
        self._next_span_id = 1
        self._clock: Callable[[], float] = lambda: 0.0
        # Staged live state, keyed for deterministic post-run assembly.
        self._task_requests: Dict[int, int] = {}           # task_id -> request_id
        self._decisions: Dict[int, Dict[str, Any]] = {}    # request_id -> staged
        self._server_events: Dict[int, List[Tuple[str, float, int]]] = {}
        self._probes: Dict[Tuple[int, int, int], Dict[str, Any]] = {}
        # PacketTracer over the probe-sampled packets, attached by the
        # harness; supplies the per-hop INT stamping events.
        self.packet_tracer: Optional[Any] = None
        self._assembled = False

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def __len__(self) -> int:
        return len(self.spans)

    # -- live hooks (hot path: one guard + one dict write) -------------------

    def wants_probe(self, seq: int) -> bool:
        """Deterministic probe sampling by sequence number (seq starts at 1,
        so the very first probe of a run is always traced)."""
        return (seq - 1) % self.probe_sample == 0

    def probe_predicate(self) -> Callable[[Any], bool]:
        """PacketTracer predicate matching exactly the sampled probes."""
        sample = self.probe_sample
        return lambda packet: packet.is_probe and (packet.seq - 1) % sample == 0

    def probe_sent(self, *, src: int, dst: int, seq: int, packet_id: int) -> None:
        self._probes[(src, dst, seq)] = {
            "packet_id": packet_id,
            "sent_at": self._clock(),
            "ingested_at": None,
            "hops": None,
        }

    def probe_ingested(self, *, src: int, dst: int, seq: int, hops: int) -> None:
        staged = self._probes.get((src, dst, seq))
        if staged is not None and staged["ingested_at"] is None:
            staged["ingested_at"] = self._clock()
            staged["hops"] = hops

    def task_request(self, task_id: int, request_id: int) -> None:
        self._task_requests[task_id] = request_id

    def decision_query(self, request_id: int) -> None:
        self._decisions[request_id] = {"queried_at": self._clock()}

    def decision(self, request_id: int, **attributes: Any) -> None:
        staged = self._decisions.setdefault(
            request_id, {"queried_at": self._clock()}
        )
        staged["responded_at"] = self._clock()
        staged["attributes"] = {k: _finite(v) for k, v in attributes.items()}

    def task_server_event(
        self, task_id: int, event: str, *, server_addr: int
    ) -> None:
        self._server_events.setdefault(task_id, []).append(
            (event, self._clock(), server_addr)
        )

    # -- span recording ------------------------------------------------------

    def record_span(
        self,
        trace_id: str,
        name: str,
        start: float,
        end: float,
        *,
        parent_id: Optional[int] = None,
        **attributes: Any,
    ) -> Optional[int]:
        """Append one span; returns its id, or None when the buffer is full
        (overflow is counted, never silent)."""
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return None
        span_id = self._next_span_id
        self._next_span_id += 1
        self.spans.append(
            Span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start=start,
                end=end,
                attributes={k: _finite(v) for k, v in attributes.items()},
            )
        )
        return span_id

    # -- post-run assembly -----------------------------------------------------

    def assemble(self, task_records: List[Any]) -> None:
        """Build the span trees from the staged state.  ``task_records`` is
        the run's :class:`~repro.edge.metrics.TaskRecord` list in submission
        order; probe traces come after task traces, in sorted key order, so
        the export is deterministic."""
        if self._assembled:
            return
        self._assembled = True
        hop_index: Dict[int, List[Any]] = {}
        if self.packet_tracer is not None:
            for event in self.packet_tracer.events:
                if event.kind != "truncated":
                    hop_index.setdefault(event.packet_id, []).append(event)
        for record in task_records:
            self._assemble_task(record)
        for key in sorted(self._probes):
            self._assemble_probe(key, hop_index)

    def _assemble_task(self, record: Any) -> None:
        trace_id = f"task-{record.task_id}"
        events = self._server_events.get(record.task_id, [])
        # Retried tasks may leave events from several servers; score the
        # attempt the record settled on when it is represented at all.
        matching = [e for e in events if e[2] == record.server_addr]
        if matching:
            events = matching

        def last(name: str) -> Optional[float]:
            times = [t for e, t, _addr in events if e == name]
            return times[-1] if times else None

        arrived = last("arrived")
        exec_start = last("exec_start")
        exec_end = last("exec_end")
        result_sent = last("result_sent")

        submitted = record.submitted_at
        ranked = record.ranking_received_at
        end = record.result_received_at
        if end is None:
            # Failed / unfinished: close the root at the last known instant.
            candidates = [submitted, ranked, record.transfer_completed,
                          arrived, exec_start, exec_end, result_sent]
            end = max(t for t in candidates if t is not None)

        segments = task_segments(
            record, arrived=arrived, exec_start=exec_start, exec_end=exec_end
        )
        root = self.record_span(
            trace_id, "task", submitted, end,
            task_id=record.task_id,
            job_id=record.job_id,
            device=record.device,
            server_addr=record.server_addr,
            size_class=record.size_class.label,
            data_bytes=record.data_bytes,
            failed=record.failed,
            end_to_end=(end - submitted) if record.result_received_at is not None else None,
            segments=segments,
        )
        if root is None:
            return
        if ranked is not None:
            scheduling = self.record_span(
                trace_id, "scheduling", submitted, ranked, parent_id=root
            )
            self._assemble_decision(trace_id, record.task_id, scheduling)
            transfer_end = arrived if arrived is not None else record.transfer_completed
            if transfer_end is not None and scheduling is not None:
                self.record_span(
                    trace_id, "transfer", ranked, transfer_end, parent_id=root,
                    retransmissions=record.retransmissions,
                    device_ack_at=record.transfer_completed,
                )
        if arrived is not None and exec_start is not None:
            self.record_span(
                trace_id, "server_queue", arrived, exec_start, parent_id=root
            )
        if exec_start is not None and exec_end is not None:
            self.record_span(
                trace_id, "execute", exec_start, exec_end, parent_id=root,
                nominal_exec_time=record.exec_time,
            )
        if exec_end is not None and record.result_received_at is not None:
            self.record_span(
                trace_id, "result_return", exec_end, record.result_received_at,
                parent_id=root, result_sent_at=result_sent,
            )

    def _assemble_decision(
        self, trace_id: str, task_id: int, parent_id: Optional[int]
    ) -> None:
        request_id = self._task_requests.get(task_id)
        if request_id is None:
            return
        staged = self._decisions.get(request_id)
        if staged is None or "responded_at" not in staged:
            return
        self.record_span(
            trace_id, "scheduler_decision",
            staged["queried_at"], staged["responded_at"],
            parent_id=parent_id,
            request_id=request_id,
            **staged.get("attributes", {}),
        )

    def _assemble_probe(
        self, key: Tuple[int, int, int], hop_index: Dict[int, List[Any]]
    ) -> None:
        src, dst, seq = key
        staged = self._probes[key]
        trace_id = f"probe-{src}-{dst}-{seq}"
        hops = hop_index.get(staged["packet_id"], [])
        ingested = staged["ingested_at"]
        sent = staged["sent_at"]
        end = ingested
        if end is None:
            end = hops[-1].time if hops else sent
        root = self.record_span(
            trace_id, "probe", sent, end,
            src=src, dst=dst, seq=seq,
            packet_id=staged["packet_id"],
            lost=ingested is None,
        )
        if root is None:
            return
        # One child span per node visited, in visit order: the INT stamping
        # path.  A node's span covers its first to last sighting (ingress,
        # egress, or drop) of the probe packet.
        per_node: Dict[str, List[Any]] = {}
        order: List[str] = []
        for event in hops:
            if event.node not in per_node:
                order.append(event.node)
            per_node.setdefault(event.node, []).append(event)
        for node in order:
            events = per_node[node]
            depths = [e.enq_depth for e in events if e.enq_depth is not None]
            self.record_span(
                trace_id, "hop", events[0].time, events[-1].time,
                parent_id=root,
                node=node,
                dropped=any(e.kind == "drop" for e in events),
                enq_depth=max(depths) if depths else None,
            )
        if ingested is not None:
            self.record_span(
                trace_id, "collect", ingested, ingested, parent_id=root,
                hops_applied=staged["hops"],
            )

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        return [span.snapshot() for span in self.spans]


def task_segments(
    record: Any,
    *,
    arrived: Optional[float],
    exec_start: Optional[float],
    exec_end: Optional[float],
) -> Optional[Dict[str, float]]:
    """The critical-path decomposition of one completed task, or None when
    any boundary is missing.  Segments are defined boundary-to-boundary, so
    ``sum(segments.values()) == record.completion_time`` exactly (up to
    float addition order) — the acceptance invariant the tests assert."""
    end = record.result_received_at
    ranked = record.ranking_received_at
    if record.failed or end is None or ranked is None:
        return None
    if arrived is None or exec_start is None or exec_end is None:
        return None
    boundaries = [record.submitted_at, ranked, arrived, exec_start, exec_end, end]
    if any(b > a for b, a in zip(boundaries, boundaries[1:])):
        return None  # out-of-order attempt timelines (overlapping retries)
    return {
        "scheduling": ranked - record.submitted_at,
        "transfer": arrived - ranked,
        "server_queue": exec_start - arrived,
        "execute": exec_end - exec_start,
        "result_return": end - exec_end,
    }


# -- trace-report rendering ---------------------------------------------------


def _run_key(record: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(record.get("run", {}).items()))


def _run_label(key: Tuple[Tuple[str, Any], ...]) -> str:
    return ", ".join(f"{k}={v}" for k, v in key) if key else "(unlabeled run)"


def _fmt_ms(value: Any) -> str:
    return f"{value * 1e3:.2f} ms" if isinstance(value, (int, float)) else "n/a"


def _mean(values: List[float]) -> float:
    return sum(values) / len(values)


def render_trace_report(records: List[Dict[str, Any]]) -> str:
    """Human-readable summary of a ``--trace-out`` export: per run, the
    critical-path decomposition of completed tasks next to the Algorithm-1
    estimate the scheduler acted on."""
    spans = [r for r in records if r.get("kind") == "span"]
    if not spans:
        return "no span records found (was the file written via --trace-out?)"
    traces = {s["trace_id"] for s in spans}
    task_traces = {t for t in traces if t.startswith("task-")}
    lines = [
        f"spans: {len(spans)} across {len(traces)} traces "
        f"({len(task_traces)} task, {len(traces) - len(task_traces)} probe)"
    ]
    runs: Dict[Tuple[Tuple[str, Any], ...], List[Dict[str, Any]]] = {}
    for span in spans:
        runs.setdefault(_run_key(span), []).append(span)
    for key in sorted(runs):
        group = runs[key]
        tasks = [s for s in group if s["name"] == "task"]
        probes = [s for s in group if s["name"] == "probe"]
        decomposed = [
            s for s in tasks if s.get("attributes", {}).get("segments")
        ]
        lines.append(
            f"  {_run_label(key)}: {len(tasks)} task traces "
            f"({len(decomposed)} decomposed), {len(probes)} probe traces"
        )
        if decomposed:
            e2e = [s["attributes"]["end_to_end"] for s in decomposed]
            mean_e2e = _mean(e2e)
            lines.append(
                f"    critical path (mean over {len(decomposed)} tasks, "
                f"end-to-end {_fmt_ms(mean_e2e)}):"
            )
            seg_means = {}
            for name in SEGMENT_NAMES:
                seg_means[name] = _mean(
                    [s["attributes"]["segments"][name] for s in decomposed]
                )
                share = 100.0 * seg_means[name] / mean_e2e if mean_e2e else 0.0
                lines.append(
                    f"      {name:<14} {_fmt_ms(seg_means[name]):>12}  ({share:5.1f}%)"
                )
            residual = max(
                abs(sum(s["attributes"]["segments"].values())
                    - s["attributes"]["end_to_end"])
                for s in decomposed
            )
            lines.append(
                f"      segment sum vs measured end-to-end: "
                f"max residual {residual * 1e3:.6f} ms"
            )
        decisions = [s for s in group if s["name"] == "scheduler_decision"]
        estimates = [
            s["attributes"]["estimated_delay"]
            for s in decisions
            if s.get("attributes", {}).get("estimated_delay") is not None
        ]
        if estimates:
            # Algorithm 1 estimates the one-way network path delay; the
            # measured counterparts are the transfer / result-return legs.
            line = (
                f"    Algorithm-1 estimate (sum link delay + k*Q(h)): "
                f"mean {_fmt_ms(_mean(estimates))} over {len(estimates)} decisions"
            )
            if decomposed:
                line += (
                    f" vs measured transfer {_fmt_ms(seg_means['transfer'])}, "
                    f"result return {_fmt_ms(seg_means['result_return'])}"
                )
            lines.append(line)
        ages = [
            s["attributes"]["telemetry_age_max"]
            for s in decisions
            if s.get("attributes", {}).get("telemetry_age_max") is not None
        ]
        if ages:
            lines.append(
                f"    telemetry snapshot age at decision: mean "
                f"{_fmt_ms(_mean(ages))}, max {_fmt_ms(max(ages))}"
            )
        lost = [p for p in probes if p.get("attributes", {}).get("lost")]
        if probes:
            flight = [
                p["end"] - p["start"]
                for p in probes
                if not p.get("attributes", {}).get("lost")
            ]
            detail = f"mean flight {_fmt_ms(_mean(flight))}" if flight else "none delivered"
            lines.append(
                f"    probes (sampled): {len(probes)} traced, "
                f"{len(lost)} lost, {detail}"
            )
    return "\n".join(lines)


# -- Chrome trace-event export ------------------------------------------------


def write_chrome_trace(records: List[Dict[str, Any]], path: str) -> int:
    """Convert a span export to Chrome trace-event JSON (the ``{"traceEvents":
    [...]}`` object form) loadable in Perfetto or chrome://tracing.  Runs map
    to processes, traces to threads, spans to complete ("X") events with
    sim-time microseconds.  Returns the number of span events written."""
    spans = [r for r in records if r.get("kind") == "span"]
    spans.sort(key=lambda s: (_run_key(s), s["trace_id"], s["span_id"]))
    events: List[Dict[str, Any]] = []
    pids: Dict[Tuple[Tuple[str, Any], ...], int] = {}
    tids: Dict[Tuple[int, str], int] = {}
    n = 0
    for span in spans:
        key = _run_key(span)
        pid = pids.get(key)
        if pid is None:
            pid = len(pids) + 1
            pids[key] = pid
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": _run_label(key)},
            })
        tkey = (pid, span["trace_id"])
        tid = tids.get(tkey)
        if tid is None:
            tid = sum(1 for p, _t in tids if p == pid) + 1
            tids[tkey] = tid
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": span["trace_id"]},
            })
        args = dict(span.get("attributes", {}))
        args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span["trace_id"].split("-", 1)[0],
            "ts": round(span["start"] * 1e6, 3),
            "dur": round(max(0.0, span["end"] - span["start"]) * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        n += 1
    with open(path, "w") as fh:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            fh, sort_keys=True, separators=(",", ":"),
        )
        fh.write("\n")
    return n
