"""Structured event log: typed, sim-time-stamped JSONL-ready records.

Every record is an :class:`Event` — ``(time, kind, fields)`` — appended to a
bounded in-memory log.  The typed helpers (``probe_sent``, ``packet_dropped``,
``task_transition``, ...) exist so call sites stay greppable and the schema
stays discoverable in one place (:data:`EVENT_KINDS`); ``emit`` accepts any
kind for forward compatibility.

High-frequency sources (per-probe events at mesh-probing rates) are expected
to *sample* — see ``Observability.probe_sample`` — while their exact totals
live in the metrics registry.  The log itself also enforces ``max_events``
so a pathological emitter cannot exhaust memory; overflow is counted, never
silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "EventLog", "EVENT_KINDS"]

# The documented schema.  Fields listed per kind are the ones instrumentation
# emits today; extra fields are allowed (records are open dicts on the wire).
EVENT_KINDS = {
    "probe_sent":       ("src", "dst", "seq"),
    "probe_received":   ("src", "dst", "seq", "hops"),
    "probe_lost":       ("src", "dst", "seq", "lost"),
    "packet_dropped":   ("queue", "flow_id", "seq", "size_bytes", "is_probe"),
    "queue_threshold":  ("queue", "depth", "threshold", "direction"),
    "task_transition":  ("task_id", "state", "device", "server_addr"),
    "warning":          ("reason",),
    "fault_injected":   ("fault", "target"),
    "fault_recovered":  ("fault", "target"),
    "node_quarantined": ("node", "age"),
    "node_unquarantined": ("node",),
    "alert":            ("rule", "series", "target", "value", "threshold", "state"),
    # Runner resilience (emitted on the runner's own hub, wall-clock time):
    "runner_run_failed": ("label", "spec_hash", "failure_kind", "error_type",
                          "message", "attempts", "exit_signal"),
    "runner_run_retry":  ("spec_hash", "attempt", "failure_kind", "error_type",
                          "backoff_s"),
    "cache_corrupt":     ("spec_hash", "reason"),
}

DEFAULT_MAX_EVENTS = 200_000


@dataclass(frozen=True)
class Event:
    """One observation: what happened, when (sim time), and its payload."""

    time: float
    kind: str
    fields: Dict[str, Any]

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "event", "event": self.kind, "time": self.time, **self.fields}


class EventLog:
    """Append-only, bounded, sim-time-stamped event buffer."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        max_events: int = DEFAULT_MAX_EVENTS,
    ):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped_events = 0      # emits refused because the log was full
        self._counts: Dict[str, int] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # -- emission ----------------------------------------------------------

    def emit(self, kind: str, *, time: Optional[float] = None, **fields: Any) -> None:
        """Record one event.  ``time`` overrides the clock — used when
        mirroring timestamps measured elsewhere (task lifecycle records)."""
        self._counts[kind] = self._counts.get(kind, 0) + 1
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(
            Event(time if time is not None else self._clock(), kind, fields)
        )

    # Typed helpers — the documented schema, one per EVENT_KINDS entry.

    def probe_sent(self, *, src: int, dst: int, seq: int, **extra: Any) -> None:
        self.emit("probe_sent", src=src, dst=dst, seq=seq, **extra)

    def probe_received(self, *, src: int, dst: int, seq: int, **extra: Any) -> None:
        self.emit("probe_received", src=src, dst=dst, seq=seq, **extra)

    def probe_lost(self, *, src: int, dst: int, seq: int, lost: int, **extra: Any) -> None:
        self.emit("probe_lost", src=src, dst=dst, seq=seq, lost=lost, **extra)

    def packet_dropped(self, *, queue: str, **extra: Any) -> None:
        self.emit("packet_dropped", queue=queue, **extra)

    def queue_threshold(
        self, *, queue: str, depth: int, threshold: int, direction: str, **extra: Any
    ) -> None:
        self.emit(
            "queue_threshold",
            queue=queue, depth=depth, threshold=threshold, direction=direction,
            **extra,
        )

    def task_transition(
        self, *, task_id: int, state: str, time: Optional[float] = None, **extra: Any
    ) -> None:
        self.emit("task_transition", time=time, task_id=task_id, state=state, **extra)

    def warning(self, reason: str, **extra: Any) -> None:
        self.emit("warning", reason=reason, **extra)

    def fault_injected(self, *, fault: str, target: str, **extra: Any) -> None:
        self.emit("fault_injected", fault=fault, target=target, **extra)

    def fault_recovered(self, *, fault: str, target: str, **extra: Any) -> None:
        self.emit("fault_recovered", fault=fault, target=target, **extra)

    def node_quarantined(self, *, node: str, age: float, **extra: Any) -> None:
        self.emit("node_quarantined", node=node, age=age, **extra)

    def node_unquarantined(self, *, node: str, **extra: Any) -> None:
        self.emit("node_unquarantined", node=node, **extra)

    def alert(
        self,
        *,
        rule: str,
        series: str,
        target: str,
        value: float,
        threshold: float,
        state: str,
        time: Optional[float] = None,
        **extra: Any,
    ) -> None:
        """One health-alert edge: ``state`` is ``"fire"`` or ``"clear"``."""
        self.emit(
            "alert",
            time=time,
            rule=rule, series=series, target=target,
            value=value, threshold=threshold, state=state,
            **extra,
        )

    def runner_run_failed(
        self,
        *,
        label: str,
        spec_hash: str,
        failure_kind: Optional[str],
        error_type: Optional[str],
        message: Optional[str],
        attempts: int,
        exit_signal: Optional[str],
        **extra: Any,
    ) -> None:
        """One run exhausted its retries; fields mirror the failure envelope."""
        self.emit(
            "runner_run_failed",
            label=label, spec_hash=spec_hash, failure_kind=failure_kind,
            error_type=error_type, message=message, attempts=attempts,
            exit_signal=exit_signal, **extra,
        )

    def runner_run_retry(
        self,
        *,
        spec_hash: str,
        attempt: int,
        failure_kind: Optional[str],
        error_type: Optional[str],
        backoff_s: float,
        **extra: Any,
    ) -> None:
        self.emit(
            "runner_run_retry",
            spec_hash=spec_hash, attempt=attempt, failure_kind=failure_kind,
            error_type=error_type, backoff_s=backoff_s, **extra,
        )

    def cache_corrupt(self, *, spec_hash: str, reason: str, **extra: Any) -> None:
        self.emit("cache_corrupt", spec_hash=spec_hash, reason=reason, **extra)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        """Total emits per kind — includes events refused at the cap."""
        return dict(self._counts)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def snapshot(self) -> List[Dict[str, Any]]:
        return [e.snapshot() for e in self.events]
