"""Network health monitoring: declarative rules over sampled time series.

ENTS-style runtime health for the reproduction: instead of discovering a
saturated queue or a dark telemetry corner *after* the run by reading event
logs, a :class:`HealthMonitor` evaluates a set of :class:`HealthRule`\\ s at
every sampler tick and emits typed ``alert`` events — with explicit fire and
clear *edges*, not per-tick spam — into the run's observability event log.

A rule watches one time-series name (every labeled instance of it
independently) and fires when the sampled value breaches its threshold for
``consecutive`` ticks in a row.  A single below-threshold sample resets the
streak; a breach after a fire keeps the alert pending-clear until the value
drops back, which emits exactly one ``clear`` edge.  Instances absent from
a tick (a sampler that had nothing to report) leave their streaks and fired
states untouched.

:func:`default_rules` encodes the conditions the paper's pipeline depends
on: egress queues saturating, per-node telemetry going stale past a
probing-interval multiple, the Algorithm-1 delay estimate drifting from
ground truth, and probe loss (collector seq gaps) exceeding a rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.obs.timeseries import TimeSeriesStore

__all__ = ["HealthRule", "HealthMonitor", "default_rules"]

CMP_GTE = "gte"
CMP_LTE = "lte"


@dataclass(frozen=True)
class HealthRule:
    """One declarative condition over a sampled series."""

    name: str                 # alert name, e.g. "queue_saturation"
    series: str               # time-series name this rule watches
    threshold: float
    consecutive: int = 1      # breaches in a row required to fire
    comparison: str = CMP_GTE  # "gte": value >= threshold breaches

    def __post_init__(self) -> None:
        if self.consecutive < 1:
            raise ValueError(f"rule {self.name}: consecutive must be >= 1")
        if self.comparison not in (CMP_GTE, CMP_LTE):
            raise ValueError(
                f"rule {self.name}: unknown comparison {self.comparison!r}"
            )

    def breached(self, value: float) -> bool:
        if self.comparison == CMP_LTE:
            return value <= self.threshold
        return value >= self.threshold


def default_rules(
    probing_interval: float,
    *,
    queue_frac: float = 0.9,
    queue_consecutive: int = 3,
    staleness_multiple: float = 5.0,
    error_threshold: float = 0.25,
    error_consecutive: int = 3,
    loss_rate: float = 0.05,
    loss_consecutive: int = 2,
    coverage_frac: float = 0.9,
    coverage_consecutive: int = 2,
    ceiling_multiple: float = 10.0,
    regret_threshold: float = 0.25,
    regret_consecutive: int = 3,
) -> Tuple[HealthRule, ...]:
    """The built-in rule set, parameterized by the run's probing interval.

    * ``queue_saturation`` — an egress queue at >= ``queue_frac`` of its
      capacity for ``queue_consecutive`` samples;
    * ``telemetry_stale`` — a node unseen on any probe path for longer than
      ``staleness_multiple`` probing intervals;
    * ``estimate_drift`` — the windowed mean absolute estimate-vs-truth
      delay error above ``error_threshold`` seconds;
    * ``probe_loss`` — the collector's seq-gap loss rate above ``loss_rate``;
    * ``coverage_gap`` — the telemetry-quality observatory sees less than
      ``coverage_frac`` of the directed fabric ports;
    * ``staleness_ceiling`` — a scheduler decision consulted telemetry older
      than ``ceiling_multiple`` probing intervals;
    * ``regret_ceiling`` — a decision's hindsight regret (true delay of the
      chosen candidate minus the best candidate's) above
      ``regret_threshold`` seconds, same scale as ``estimate_drift``.

    ``coverage_gap``/``staleness_ceiling`` watch series only the
    telemetry-quality observatory records (``--telquality`` with sampling)
    and ``regret_ceiling`` only the counterfactual observatory's
    (``--whatif`` with sampling); without those flags they never see a
    sample and never fire, keeping pre-observatory runs unchanged.
    """
    return (
        HealthRule(
            "queue_saturation", series="queue_depth_frac",
            threshold=queue_frac, consecutive=queue_consecutive,
        ),
        HealthRule(
            "telemetry_stale", series="telemetry_node_age",
            threshold=staleness_multiple * probing_interval, consecutive=2,
        ),
        HealthRule(
            "estimate_drift", series="decision_abs_error",
            threshold=error_threshold, consecutive=error_consecutive,
        ),
        HealthRule(
            "probe_loss", series="probe_loss_rate",
            threshold=loss_rate, consecutive=loss_consecutive,
        ),
        HealthRule(
            "coverage_gap", series="telemetry_coverage_frac",
            threshold=coverage_frac, consecutive=coverage_consecutive,
            comparison=CMP_LTE,
        ),
        HealthRule(
            "staleness_ceiling", series="telemetry_decision_age_max",
            threshold=ceiling_multiple * probing_interval, consecutive=2,
        ),
        HealthRule(
            "regret_ceiling", series="decision_regret_max",
            threshold=regret_threshold, consecutive=regret_consecutive,
        ),
    )


class HealthMonitor:
    """Evaluates rules at each sampler tick and emits alert edges.

    ``events`` is the run's :class:`~repro.obs.events.EventLog` (or anything
    with a compatible ``alert`` method).  State is per (rule, labeled series
    instance): a breach streak and a fired flag.
    """

    def __init__(self, rules, events: Any) -> None:
        self.rules: Tuple[HealthRule, ...] = tuple(rules)
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self.events = events
        self._streak: Dict[Tuple[str, Any], int] = {}
        self._fired: Dict[Tuple[str, Any], bool] = {}
        self.alerts_fired = 0
        self.alerts_cleared = 0

    def evaluate(self, store: TimeSeriesStore, now: float) -> None:
        """Evaluate every rule against the values sampled this tick."""
        for rule in self.rules:
            for series_key in sorted(store.last_values):
                name, labels_key = series_key
                if name != rule.series:
                    continue
                value = store.last_values[series_key]
                key = (rule.name, labels_key)
                if rule.breached(value):
                    streak = self._streak.get(key, 0) + 1
                    self._streak[key] = streak
                    if streak >= rule.consecutive and not self._fired.get(key):
                        self._fired[key] = True
                        self.alerts_fired += 1
                        self._emit(rule, labels_key, value, "fire", now)
                else:
                    self._streak[key] = 0
                    if self._fired.get(key):
                        self._fired[key] = False
                        self.alerts_cleared += 1
                        self._emit(rule, labels_key, value, "clear", now)

    def _emit(
        self, rule: HealthRule, labels_key, value: float, state: str, now: float
    ) -> None:
        self.events.alert(
            rule=rule.name,
            series=rule.series,
            target=",".join(f"{k}={v}" for k, v in labels_key),
            value=value,
            threshold=rule.threshold,
            state=state,
            time=now,
        )

    # -- introspection -----------------------------------------------------

    def active_alerts(self) -> List[Tuple[str, Any]]:
        """Currently-firing (rule, labels-key) pairs, sorted."""
        return sorted(key for key, fired in self._fired.items() if fired)

    def summary(self) -> Dict[str, int]:
        return {
            "rules": len(self.rules),
            "alerts_fired": self.alerts_fired,
            "alerts_cleared": self.alerts_cleared,
            "active": len(self.active_alerts()),
        }
