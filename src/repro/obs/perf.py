"""Performance observatory: flamegraphs, memory attribution, trend reports.

The rendering layer over the engine's phase-level profile (see
:class:`repro.simnet.engine.EngineProfiler`) and the bench-history ledger
(see :mod:`repro.runner.bench`):

* :func:`collapsed_stacks` — the profile's phase tree as Brendan Gregg
  collapsed-stack lines (``path self_time_us``), the interchange format
  every flamegraph tool consumes;
* :func:`flamegraph_svg` — a zero-JS, self-contained inline-SVG icicle
  flamegraph (no scripts, no external references), embeddable in the
  HTML dashboard and uploadable as a CI artifact;
* :class:`MemoryCapture` — per-run allocation/GC counters (``gc`` stats
  always; ``tracemalloc`` top-N sites behind ``--mem-profile``) merged
  into the profile summary;
* :func:`render_perf_report` — per-metric trend tables with sparklines
  over ``BENCH_history.jsonl`` records plus the top-mover phases between
  any two records (the ``repro perf-report`` backend).

Everything here renders deterministically from its inputs: colors hash
frame names with ``sum(ord(..))`` (not the randomized builtin ``hash``),
iteration is sorted, and nothing reads the wall clock.
"""

from __future__ import annotations

import gc
import html
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "collapsed_stacks",
    "flamegraph_svg",
    "MemoryCapture",
    "sparkline",
    "render_perf_report",
]


# ---------------------------------------------------------------------------
# Profile tree (shared by collapsed stacks and the flamegraph)
# ---------------------------------------------------------------------------


def _profile_tree(
    summary: Dict[str, Any]
) -> Tuple[Dict[str, Dict[str, Any]], List[str]]:
    """Build ``path -> {incl, count, children}`` from a profile summary.

    Roots are the handler qualnames from ``by_type``; phase paths hang off
    them by their semicolon-separated prefixes.  A phase whose parent was
    never recorded (possible only for scopes opened outside any handler)
    becomes a synthetic root so no sample is dropped."""
    nodes: Dict[str, Dict[str, Any]] = {}
    roots: List[str] = []
    for name in sorted(summary.get("by_type") or {}):
        stats = summary["by_type"][name]
        nodes[name] = {
            "incl": float(stats.get("wall_s", 0.0)),
            "count": int(stats.get("count", 0)),
            "children": [],
        }
        roots.append(name)
    for path in sorted(summary.get("phases") or {}):
        stats = summary["phases"][path]
        node = nodes.setdefault(
            path, {"incl": 0.0, "count": 0, "children": []}
        )
        node["incl"] = float(stats.get("wall_s", 0.0))
        node["count"] = int(stats.get("count", 0))
        # Materialize missing ancestors up to a root.
        child = path
        while ";" in child:
            parent = child.rpartition(";")[0]
            parent_node = nodes.get(parent)
            if parent_node is None:
                parent_node = {"incl": 0.0, "count": 0, "children": []}
                nodes[parent] = parent_node
                if ";" not in parent and parent not in roots:
                    roots.append(parent)
            if child not in parent_node["children"]:
                parent_node["children"].append(child)
            child = parent
        if ";" not in path and path not in roots:
            roots.append(path)
    for node in nodes.values():
        node["children"].sort()
    return nodes, sorted(roots)


def _self_time(nodes: Dict[str, Dict[str, Any]], path: str) -> float:
    node = nodes[path]
    covered = sum(nodes[c]["incl"] for c in node["children"])
    return max(node["incl"] - covered, 0.0)


def collapsed_stacks(summary: Dict[str, Any]) -> str:
    """Render a profile summary as collapsed-stack lines: one
    ``frame;frame;... value`` line per node with nonzero *self* time, the
    value in integer microseconds.  Feedable to any flamegraph tool."""
    nodes, _roots = _profile_tree(summary)
    lines = []
    for path in sorted(nodes):
        self_us = int(round(_self_time(nodes, path) * 1e6))
        if self_us > 0:
            lines.append(f"{path} {self_us}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Flamegraph SVG
# ---------------------------------------------------------------------------

_FG_WIDTH = 1000
_FG_ROW_H = 17
_FG_MIN_W = 1.0  # px below which a frame is dropped (unreadable anyway)


def _frame_color(name: str) -> str:
    """Deterministic warm color per frame name.  ``sum(ord(..))`` instead
    of the builtin ``hash`` so the SVG is stable across interpreter runs
    (PYTHONHASHSEED randomizes ``hash`` for strings)."""
    h = sum(ord(ch) for ch in name)
    r = 205 + (h % 50)
    g = 60 + (h * 7) % 110
    b = 30 + (h * 11) % 55
    return f"rgb({r},{g},{b})"


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def flamegraph_svg(
    summary: Dict[str, Any], *, title: str = "engine phases"
) -> str:
    """Self-contained inline-SVG icicle flamegraph of a profile summary.

    Root row is the whole profiled wall; row 2 the event handlers; deeper
    rows the nested phase scopes.  Frame width is proportional to inclusive
    wall time (children clamped into their parent, so clock noise can never
    overflow a row).  Zero JavaScript and zero external references — hover
    detail rides on SVG ``<title>`` elements."""
    nodes, roots = _profile_tree(summary)
    total = sum(nodes[r]["incl"] for r in roots)
    if total <= 0.0:
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_FG_WIDTH}" '
            f'height="{_FG_ROW_H}"><text x="4" y="13" font-size="11" '
            f'fill="#777">no profile samples</text></svg>'
        )

    parts: List[str] = []
    max_depth = [1]

    def emit(path: str, label: str, x: float, width: float, depth: int,
             incl: float, count: Optional[int]) -> None:
        max_depth[0] = max(max_depth[0], depth + 1)
        y = depth * _FG_ROW_H
        pct = 100.0 * incl / total
        detail = f"{label} — {incl * 1e3:.2f} ms ({pct:.1f}%)"
        if count is not None:
            detail += f", {count}x"
        parts.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{width:.2f}" '
            f'height="{_FG_ROW_H - 1}" fill="{_frame_color(label)}" '
            f'rx="1"><title>{_esc(detail)}</title></rect>'
        )
        if width >= 40.0:
            # ~6.2 px per character at font-size 10.
            max_chars = max(int(width / 6.2), 1)
            text = label if len(label) <= max_chars else label[: max_chars - 1] + "…"
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + 12}" font-size="10" '
                f'fill="#1a1a1a">{_esc(text)}</text>'
            )
        parts.append("</g>")
        # Children, clamped into the parent's box.
        node = nodes.get(path)
        if node is None or not node["children"] or incl <= 0.0:
            return
        child_sum = sum(nodes[c]["incl"] for c in node["children"])
        scale = width / incl
        if child_sum > incl:
            scale *= incl / child_sum
        cx = x
        for child in node["children"]:
            c_incl = nodes[child]["incl"]
            c_w = c_incl * scale
            if c_w < _FG_MIN_W:
                continue
            emit(child, child.rpartition(";")[2], cx, c_w, depth + 1,
                 c_incl, nodes[child]["count"])
            cx += c_w

    # Root frame spanning everything, then the handlers.
    root_label = f"{title}: {total * 1e3:.1f} ms"
    parts.append(
        f'<g><rect x="0" y="0" width="{_FG_WIDTH}" height="{_FG_ROW_H - 1}" '
        f'fill="#d8d8d8" rx="1"><title>{_esc(root_label)}</title></rect>'
        f'<text x="3" y="12" font-size="10" fill="#1a1a1a">'
        f"{_esc(root_label)}</text></g>"
    )
    x = 0.0
    for root in roots:
        incl = nodes[root]["incl"]
        width = _FG_WIDTH * incl / total
        if width < _FG_MIN_W:
            continue
        emit(root, root, x, width, 1, incl, nodes[root]["count"])
        x += width

    height = max_depth[0] * _FG_ROW_H + 2
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_FG_WIDTH}" '
        f'height="{height}" viewBox="0 0 {_FG_WIDTH} {height}" '
        f'font-family="ui-monospace, Menlo, Consolas, monospace">'
        + "".join(parts)
        + "</svg>"
    )


# ---------------------------------------------------------------------------
# Memory attribution
# ---------------------------------------------------------------------------


class MemoryCapture:
    """Bracket a run with allocation/GC accounting.

    ``gc`` generation counters and the interpreter's live-block count are
    always captured (cheap reads); ``tracemalloc_top > 0`` additionally
    turns on ``tracemalloc`` for the run and reports the top-N allocation
    sites by size — opt-in because tracing every allocation costs real
    time.  The result dict attaches to ``EngineProfiler.memory`` and rides
    into the profile summary (provenance only — wall-clock adjacent data
    never touches the deterministic payload)."""

    def __init__(self, tracemalloc_top: int = 0) -> None:
        self.tracemalloc_top = int(tracemalloc_top)
        self._gc_before: Optional[List[Dict[str, int]]] = None
        self._blocks_before = 0
        self._tracing = False

    def start(self) -> None:
        if self.tracemalloc_top > 0:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracing = True
        self._gc_before = [dict(s) for s in gc.get_stats()]
        self._blocks_before = sys.getallocatedblocks()

    def stop(self) -> Dict[str, Any]:
        if self._gc_before is None:
            raise RuntimeError("MemoryCapture.stop() before start()")
        blocks_delta = sys.getallocatedblocks() - self._blocks_before
        gc_after = gc.get_stats()
        deltas = {"collections": 0, "collected": 0, "uncollectable": 0}
        for before, after in zip(self._gc_before, gc_after):
            for key in deltas:
                deltas[key] += int(after.get(key, 0)) - int(before.get(key, 0))
        out: Dict[str, Any] = {
            "gc_collections": deltas["collections"],
            "gc_collected": deltas["collected"],
            "gc_uncollectable": deltas["uncollectable"],
            "allocated_blocks_delta": blocks_delta,
            "tracemalloc": None,
        }
        if self.tracemalloc_top > 0:
            import tracemalloc

            snapshot = tracemalloc.take_snapshot()
            if self._tracing:
                tracemalloc.stop()
                self._tracing = False
            stats = snapshot.statistics("lineno")
            top = []
            for stat in stats[: self.tracemalloc_top]:
                frame = stat.traceback[0]
                site = f"{_short_file(frame.filename)}:{frame.lineno}"
                top.append(
                    {
                        "site": site,
                        "size_kb": round(stat.size / 1024.0, 1),
                        "count": stat.count,
                    }
                )
            out["tracemalloc"] = {
                "top": top,
                "total_kb": round(sum(s.size for s in stats) / 1024.0, 1),
                "sites": len(stats),
            }
        self._gc_before = None
        return out


def _short_file(path: str) -> str:
    """Keep the tail of a source path (``repro/simnet/engine.py``)."""
    parts = path.replace("\\", "/").split("/")
    return "/".join(parts[-3:]) if len(parts) > 3 else "/".join(parts)


# ---------------------------------------------------------------------------
# Bench-history trend rendering (the perf-report backend)
# ---------------------------------------------------------------------------

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

# Metrics a history record carries, in report order, with direction:
# -1 means lower is better, +1 means higher is better.
_TREND_METRICS: Sequence[Tuple[str, int]] = (
    ("serial_s", -1),
    ("parallel_s", -1),
    ("cached_s", -1),
    ("parallel_speedup", +1),
    ("cached_speedup", +1),
)


def sparkline(values: Sequence[Optional[float]]) -> str:
    """Unicode sparkline; ``None`` gaps render as spaces."""
    numeric = [v for v in values if isinstance(v, (int, float))]
    if not numeric:
        return ""
    lo, hi = min(numeric), max(numeric)
    span = (hi - lo) or 1.0
    out = []
    for v in values:
        if not isinstance(v, (int, float)):
            out.append(" ")
            continue
        idx = int((v - lo) / span * (len(_SPARK_GLYPHS) - 1))
        out.append(_SPARK_GLYPHS[idx])
    return "".join(out)


def _resolve_index(idx: int, n: int, flag: str) -> int:
    resolved = idx if idx >= 0 else n + idx
    if not 0 <= resolved < n:
        raise ValueError(
            f"{flag} index {idx} out of range for {n} history record(s)"
        )
    return resolved


def _record_label(record: Dict[str, Any], idx: int) -> str:
    stamp = record.get("provenance") or {}
    ts = stamp.get("recorded_at") or "?"
    commit = stamp.get("git_commit") or "?"
    return f"#{idx} {ts} @{commit}"


def _alloc_blocks(record: Dict[str, Any]) -> Optional[int]:
    """A record's net allocated-blocks delta (gc accounting captured by
    MemoryCapture and merged into the profile), or None when the record
    predates memory capture."""
    memory = (record.get("profile") or {}).get("memory") or {}
    value = memory.get("allocated_blocks_delta")
    return int(value) if isinstance(value, (int, float)) else None


def _events_total(record: Dict[str, Any]) -> Optional[int]:
    value = (record.get("profile") or {}).get("events_total")
    return int(value) if isinstance(value, (int, float)) else None


def _phase_walls(record: Dict[str, Any]) -> Dict[str, float]:
    profile = record.get("profile") or {}
    out = {
        path: float(stats.get("wall_s", 0.0))
        for path, stats in (profile.get("phases") or {}).items()
    }
    for name, stats in (profile.get("by_type") or {}).items():
        out.setdefault(name, float(stats.get("wall_s", 0.0)))
    return out


def render_perf_report(
    records: List[Dict[str, Any]], *, frm: int = 0, to: int = -1,
    movers: int = 10,
) -> str:
    """Render the bench-history ledger: one trend row per timing metric
    (sparkline over every record, oldest to newest) and the top-mover
    phases between records ``frm`` and ``to`` (default: first vs last)."""
    if not records:
        return "perf-report: history is empty (run repro bench-runner first)"
    n = len(records)
    lines = [f"perf-report — {n} history record(s)"]
    first, last = records[0], records[-1]
    lines.append(f"  oldest: {_record_label(first, 0)}")
    if n > 1:
        lines.append(f"  newest: {_record_label(last, n - 1)}")
    grid = last.get("grid") or {}
    if grid:
        lines.append(
            f"  grid: {grid.get('figure')}/{grid.get('scale')} "
            f"({grid.get('runs')} runs)"
        )

    invalid = sum(1 for r in records if r.get("parallel_valid") is False)
    lines.append("")
    lines.append(
        f"  {'metric':<18} {'first':>9} {'last':>9} {'Δ%':>8}  trend"
    )
    for metric, direction in _TREND_METRICS:
        values = [
            r.get(metric) if isinstance(r.get(metric), (int, float)) else None
            for r in records
        ]
        # Parallel numbers from jobs>cpus records are noise, not signal:
        # keep them out of the trend entirely.
        if metric.startswith("parallel"):
            values = [
                None if r.get("parallel_valid") is False else v
                for r, v in zip(records, values)
            ]
        numeric = [v for v in values if v is not None]
        if not numeric:
            lines.append(f"  {metric:<18} {'-':>9} {'-':>9} {'-':>8}")
            continue
        v_first, v_last = numeric[0], numeric[-1]
        delta_pct = ((v_last - v_first) / v_first * 100.0) if v_first else 0.0
        marker = ""
        if abs(delta_pct) >= 1.0:
            better = (delta_pct < 0) if direction < 0 else (delta_pct > 0)
            marker = " (better)" if better else " (worse)"
        lines.append(
            f"  {metric:<18} {v_first:>9.3f} {v_last:>9.3f} "
            f"{delta_pct:>+7.1f}%  {sparkline(values)}{marker}"
        )
    # Allocation trend: the zero-allocation claim, measurable in the ledger.
    # Net allocated-blocks delta per run plus the per-event rate (events are
    # deterministic, so the rate is comparable across hosts and commits).
    alloc_values: List[Optional[float]] = [
        float(v) if (v := _alloc_blocks(r)) is not None else None
        for r in records
    ]
    alloc_numeric = [v for v in alloc_values if v is not None]
    if alloc_numeric:
        v_first, v_last = alloc_numeric[0], alloc_numeric[-1]
        delta_pct = ((v_last - v_first) / v_first * 100.0) if v_first else 0.0
        marker = ""
        if abs(delta_pct) >= 1.0:
            marker = " (better)" if delta_pct < 0 else " (worse)"
        lines.append(
            f"  {'alloc_blocks_delta':<18} {v_first:>9.0f} {v_last:>9.0f} "
            f"{delta_pct:>+7.1f}%  {sparkline(alloc_values)}{marker}"
        )
        per_event: List[Optional[float]] = []
        for record, blocks in zip(records, alloc_values):
            events = _events_total(record)
            per_event.append(
                blocks / events if blocks is not None and events else None
            )
        pe_numeric = [v for v in per_event if v is not None]
        if pe_numeric:
            lines.append(
                f"  {'alloc_blocks/event':<18} {pe_numeric[0]:>9.4f} "
                f"{pe_numeric[-1]:>9.4f} {'':>8}  {sparkline(per_event)}"
            )
    if invalid:
        lines.append(
            f"  note: parallel timings from {invalid} record(s) with "
            "jobs > cpus were excluded (not meaningful on undersized hosts)"
        )

    if n >= 2:
        i = _resolve_index(frm, n, "--from")
        j = _resolve_index(to, n, "--to")
        a, b = _phase_walls(records[i]), _phase_walls(records[j])
        deltas = sorted(
            (
                (b.get(path, 0.0) - a.get(path, 0.0), path)
                for path in set(a) | set(b)
            ),
            key=lambda item: (-abs(item[0]), item[1]),
        )
        deltas = [d for d in deltas if abs(d[0]) > 0.0][:movers]
        lines.append("")
        lines.append(
            f"  top phase movers (record {i} -> {j}, by |Δ wall|):"
        )
        if not deltas:
            lines.append(
                "    (no phase movement between the selected records)"
                if (a or b)
                else "    (no profile data in the selected records)"
            )
        for delta, path in deltas:
            base = a.get(path, 0.0)
            pct = f" ({delta / base * 100.0:+.1f}%)" if base else " (new)"
            lines.append(f"    {delta * 1e3:>+10.1f} ms  {path}{pct}")
        # Allocation before/after for the same pair of records.
        blocks_a, blocks_b = _alloc_blocks(records[i]), _alloc_blocks(records[j])
        if blocks_a is not None and blocks_b is not None:
            ev_a, ev_b = _events_total(records[i]), _events_total(records[j])
            rate_a = f"{blocks_a / ev_a:.4f}/event" if ev_a else "-"
            rate_b = f"{blocks_b / ev_b:.4f}/event" if ev_b else "-"
            lines.append("")
            lines.append(
                f"  allocated blocks (record {i} -> {j}): "
                f"{blocks_a} ({rate_a}) -> {blocks_b} ({rate_b})"
            )
    return "\n".join(lines)
