"""Self-contained HTML dashboard for a run's observability exports.

``render_dashboard`` turns a list of obs records (the JSONL produced by
``Observability.snapshot_records`` / ``repro ... --obs-out``) into one HTML
string with **zero external resources** — styling is an inline ``<style>``
block and every chart is inline SVG, so the file opens identically from a
laptop, a CI artifact store, or an air-gapped archive.

Sections, all driven by record kinds that already exist:

* **link utilization** — sparklines per ``link_utilization`` time series;
* **queue depth** — a time-bucketed heatmap over ``queue_depth`` series;
* **server load** — sparklines per ``server_running``/``server_queued``;
* **alerts** — a fire/clear timeline from ``alert`` events;
* **decision error** — the ``decision_abs_error`` sparkline;
* **latency quantiles** — p50/p95/p99 per ``task_completion_seconds``
  histogram (digest-backed);
* **engine profile** — per-handler wall table plus the phase flamegraph
  (inline SVG, zero scripts), from ``profile`` records appended by
  ``--profile --obs-out`` runs;
* **telemetry coverage / freshness / error vs telemetry age** — the
  INT-plane quality panels from ``telquality`` records (``--telquality``
  runs): observed-vs-blind directed ports against the layout's
  prediction, per-register refresh quantiles, and the decision-error
  table binned by consulted-telemetry age;
* **regret CDF / policy comparison** — the counterfactual panels from
  ``whatif`` records (``--whatif`` runs): the per-decision hindsight
  regret distribution (digest-backed CDF) and each replayed policy's
  cumulative regret and win/tie/loss record against the actual scheduler.

Every section renders a placeholder when its records are absent — a
metrics-only export (or one written before the telemetry-quality
observatory existed) still produces a valid page and exit 0.

Rendering is deterministic: iteration is sorted everywhere, floats are
formatted through one helper, and nothing reads the wall clock — the same
records always produce byte-identical HTML (asserted by tests and the
serial/parallel/cached determinism suite).
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["render_dashboard", "write_dashboard"]

SPARK_W = 260
SPARK_H = 48
PAD = 4

_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5em;
       background: #fcfcfc; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.6em;
     border-bottom: 1px solid #ddd; padding-bottom: 0.2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
td, th { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; }
th { background: #f0f0f0; }
td.l, th.l { text-align: left; }
.chart { display: inline-block; margin: 0.4em 1em 0.4em 0;
         vertical-align: top; }
.chart .t { font-size: 0.78em; color: #555; }
svg { background: #fff; border: 1px solid #ddd; }
.empty { color: #999; font-style: italic; }
.fire { fill: #c0392b; } .bar { fill: #e67e22; }
"""


def _fmt(value: Any) -> str:
    """One float format for every number in the page (determinism)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _run_key(record: Dict[str, Any]) -> str:
    run = record.get("run")
    if not run:
        return ""
    return json.dumps(run, sort_keys=True, separators=(",", ":"))


def _series_label(record: Dict[str, Any]) -> str:
    labels = record.get("labels") or {}
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def _sparkline(points: Sequence[Sequence[float]]) -> str:
    """One polyline sparkline over ``[[t, v], ...]`` with min/max rails."""
    if not points:
        return '<span class="empty">no points</span>'
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    t0, t1 = min(ts), max(ts)
    v0, v1 = min(vs), max(vs)
    t_span = (t1 - t0) or 1.0
    v_span = (v1 - v0) or 1.0
    coords = []
    for t, v in points:
        x = PAD + (t - t0) / t_span * (SPARK_W - 2 * PAD)
        y = SPARK_H - PAD - (v - v0) / v_span * (SPARK_H - 2 * PAD)
        coords.append(f"{x:.2f},{y:.2f}")
    return (
        f'<svg width="{SPARK_W}" height="{SPARK_H}" '
        f'viewBox="0 0 {SPARK_W} {SPARK_H}">'
        f'<polyline fill="none" stroke="#2c6fb2" stroke-width="1.2" '
        f'points="{" ".join(coords)}"/>'
        f"</svg>"
        f'<div class="t">[{_fmt(float(v0))} .. {_fmt(float(v1))}] '
        f"n={len(points)}</div>"
    )


def _chart(title: str, body: str) -> str:
    return (
        f'<div class="chart"><div class="t">{_esc(title)}</div>{body}</div>'
    )


def _heat_color(frac: float) -> str:
    """White (0) to deep red (1), deterministic integer channels."""
    frac = min(max(frac, 0.0), 1.0)
    r = 255
    gb = int(round(255 * (1.0 - frac)))
    return f"rgb({r},{gb},{gb})"


def _heatmap(series: List[Dict[str, Any]], *, columns: int = 60) -> str:
    """Time-bucketed heatmap: one row per series, color by max-in-bucket."""
    rows = []
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    v_max = 0.0
    for record in series:
        points = record.get("points") or []
        if not points:
            continue
        rows.append((_series_label(record), points))
        t_lo, t_hi = points[0][0], points[-1][0]
        t_min = t_lo if t_min is None else min(t_min, t_lo)
        t_max = t_hi if t_max is None else max(t_max, t_hi)
        v_max = max(v_max, max(p[1] for p in points))
    if not rows or t_min is None or t_max is None:
        return '<p class="empty">no queue-depth samples</p>'
    t_span = (t_max - t_min) or 1.0
    cell_w, cell_h, label_w = 9, 12, 170
    width = label_w + columns * cell_w + PAD
    height = len(rows) * cell_h + PAD
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
    ]
    for row_idx, (label, points) in enumerate(rows):
        buckets: Dict[int, float] = {}
        for t, v in points:
            b = min(columns - 1, int((t - t_min) / t_span * columns))
            if v > buckets.get(b, 0.0):
                buckets[b] = v
        y = row_idx * cell_h
        parts.append(
            f'<text x="2" y="{y + cell_h - 3}" font-size="9" '
            f'fill="#555">{_esc(label)}</text>'
        )
        for b in sorted(buckets):
            value = buckets[b]
            frac = value / v_max if v_max else 0.0
            parts.append(
                f'<rect x="{label_w + b * cell_w}" y="{y}" '
                f'width="{cell_w}" height="{cell_h - 1}" '
                f'fill="{_heat_color(frac)}">'
                f"<title>{_esc(label)} t~{_fmt(float(t_min + (b + 0.5) / columns * t_span))} "
                f"max={_fmt(float(value))}</title></rect>"
            )
    parts.append("</svg>")
    parts.append(
        f'<div class="t">t=[{_fmt(float(t_min))} .. {_fmt(float(t_max))}]s, '
        f"color: max depth in bucket (peak {_fmt(float(v_max))})</div>"
    )
    return "".join(parts)


def _alert_timeline(
    alerts: List[Dict[str, Any]], t_end: float
) -> str:
    """Horizontal bars per (rule, target): fire edge to clear edge (or the
    end of the sampled window when never cleared)."""
    if not alerts:
        return '<p class="empty">no alerts</p>'
    # Assemble intervals per (rule, target) from the edge stream.
    open_at: Dict[Tuple[str, str], float] = {}
    intervals: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    t_max = t_end
    for event in alerts:
        key = (str(event.get("rule")), str(event.get("target")))
        t = float(event.get("time", 0.0))
        t_max = max(t_max, t)
        if event.get("state") == "fire":
            open_at.setdefault(key, t)
        elif event.get("state") == "clear" and key in open_at:
            intervals.setdefault(key, []).append((open_at.pop(key), t))
    for key, t in sorted(open_at.items()):
        intervals.setdefault(key, []).append((t, t_max))
    keys = sorted(intervals)
    t_min = min(t for spans in intervals.values() for t, _ in spans)
    t_span = (t_max - t_min) or 1.0
    cell_h, label_w, plot_w = 14, 230, 420
    width = label_w + plot_w + PAD
    height = len(keys) * cell_h + PAD
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
    ]
    for row_idx, key in enumerate(keys):
        rule, target = key
        y = row_idx * cell_h
        parts.append(
            f'<text x="2" y="{y + cell_h - 4}" font-size="9" '
            f'fill="#555">{_esc(rule)} {_esc(target)}</text>'
        )
        for start, stop in intervals[key]:
            x = label_w + (start - t_min) / t_span * plot_w
            w = max(1.0, (stop - start) / t_span * plot_w)
            parts.append(
                f'<rect class="fire" x="{x:.2f}" y="{y + 2}" '
                f'width="{w:.2f}" height="{cell_h - 5}">'
                f"<title>{_esc(rule)} {_esc(target)} "
                f"[{_fmt(float(start))} .. {_fmt(float(stop))}]s</title></rect>"
            )
    parts.append("</svg>")
    parts.append(
        f'<div class="t">t=[{_fmt(float(t_min))} .. {_fmt(float(t_max))}]s; '
        "a bar spans fire to clear</div>"
    )
    return "".join(parts)


def _quantile_table(histograms: List[Dict[str, Any]]) -> str:
    if not histograms:
        return '<p class="empty">no completion-time histograms</p>'
    rows = [
        "<table><tr><th class=\"l\">run</th><th class=\"l\">labels</th>"
        "<th>count</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th>"
        "<th>max</th></tr>"
    ]
    for record in histograms:
        rows.append(
            "<tr>"
            f'<td class="l">{_esc(_run_key(record) or "-")}</td>'
            f'<td class="l">{_esc(_series_label(record) or "-")}</td>'
            f"<td>{_fmt(record.get('count'))}</td>"
            f"<td>{_fmt(record.get('mean'))}</td>"
            f"<td>{_fmt(record.get('p50'))}</td>"
            f"<td>{_fmt(record.get('p95'))}</td>"
            f"<td>{_fmt(record.get('p99'))}</td>"
            f"<td>{_fmt(record.get('max'))}</td>"
            "</tr>"
        )
    rows.append("</table>")
    return "".join(rows)


def _profile_section(profile: Dict[str, Any]) -> str:
    """Handler wall-time table plus the inline phase flamegraph for one
    ``kind: "profile"`` record's summary."""
    from repro.obs.perf import flamegraph_svg

    parts = [
        f"<p>{_fmt(profile.get('events_total'))} events, "
        f"queue high-water {_fmt(profile.get('queue_high_water'))}, "
        f"wall {_fmt(profile.get('wall_s'))} s</p>"
    ]
    by_type = profile.get("by_type") or {}
    if by_type:
        wall = float(profile.get("wall_s") or 0.0)
        rows = [
            '<table><tr><th class="l">handler</th><th>events</th>'
            "<th>wall ms</th><th>share</th></tr>"
        ]
        top = sorted(
            by_type.items(), key=lambda kv: kv[1]["wall_s"], reverse=True
        )
        for name, stats in top[:12]:
            share = 100.0 * stats["wall_s"] / wall if wall else 0.0
            rows.append(
                "<tr>"
                f'<td class="l">{_esc(name)}</td>'
                f"<td>{_fmt(stats.get('count'))}</td>"
                f"<td>{_fmt(round(stats['wall_s'] * 1e3, 1))}</td>"
                f"<td>{_fmt(round(share, 1))}%</td>"
                "</tr>"
            )
        rows.append("</table>")
        parts.append("".join(rows))
    overhead = profile.get("overhead") or {}
    if overhead:
        parts.append(
            f'<div class="t">profiler overhead ~'
            f"{_fmt(round(100.0 * overhead.get('fraction_of_wall', 0.0), 1))}% "
            f"of wall ({_fmt(overhead.get('phase_pairs'))} phase scopes)</div>"
        )
    if profile.get("phases"):
        # The xmlns declaration matters for a standalone .svg file but is
        # redundant inline in HTML — and the page-level invariant is "no
        # http(s) substrings at all" (checked by tests).
        parts.append(
            flamegraph_svg(profile).replace(
                ' xmlns="http://www.w3.org/2000/svg"', "", 1
            )
        )
    else:
        parts.append('<p class="empty">no phase attribution in profile</p>')
    return "".join(parts)


def _digest_cells(data: Optional[Dict[str, Any]]) -> str:
    """n/p50/p95/max table cells for one serialized QuantileDigest."""
    if not data:
        return "<td>0</td><td>-</td><td>-</td><td>-</td>"
    from repro.obs.quantiles import QuantileDigest

    digest = QuantileDigest.from_dict(data)
    p50, p95 = digest.quantiles((0.5, 0.95))
    return (
        f"<td>{_fmt(digest.count)}</td><td>{_fmt(p50)}</td>"
        f"<td>{_fmt(p95)}</td><td>{_fmt(digest.max)}</td>"
    )


def _telquality_coverage(record: Dict[str, Any]) -> str:
    coverage = record.get("coverage") or {}
    total = coverage.get("total_ports") or 0
    observed = coverage.get("observed_ports") or 0
    pct = 100.0 * observed / total if total else 0.0
    blind = coverage.get("blind") or []
    parts = [
        f"<p><code>{_esc(_run_key(record) or '-')}</code> "
        f"layout <b>{_esc(record.get('layout'))}</b>: "
        f"{observed}/{total} directed ports observed ({pct:.0f}%), "
        f"{len(blind)} blind</p>"
    ]
    if coverage.get("matches_prediction") is not None:
        verdict = (
            "matches the layout's predicted blind set"
            if coverage["matches_prediction"]
            else "DIVERGES from the layout's predicted blind set"
        )
        parts.append(f'<div class="t">{_esc(verdict)}</div>')
    if blind:
        labels = ", ".join(f"{u}&rarr;{v}" for u, v in blind)
        parts.append(f'<div class="t">blind: {labels}</div>')
    ports = coverage.get("ports") or []
    if ports:
        rows = [
            '<table><tr><th class="l">port</th><th>obs</th>'
            "<th>eff. interval</th><th>probe pairs</th></tr>"
        ]
        for port in ports:
            rows.append(
                "<tr>"
                f'<td class="l">{_esc(port["u"])}&rarr;{_esc(port["v"])}</td>'
                f"<td>{_fmt(port.get('observations'))}</td>"
                f"<td>{_fmt(port.get('effective_interval'))}</td>"
                f"<td>{_fmt(len(port.get('pairs') or []))}</td>"
                "</tr>"
            )
        rows.append("</table>")
        parts.append("".join(rows))
    return "".join(parts)


def _telquality_freshness(record: Dict[str, Any]) -> str:
    freshness = record.get("freshness") or {}
    parts = [
        f"<p><code>{_esc(_run_key(record) or '-')}</code> "
        "decision-time consulted-hop age:</p>"
        '<table><tr><th class="l">series</th><th>n</th><th>p50</th>'
        "<th>p95</th><th>max</th></tr>"
        '<tr><td class="l">decision age</td>'
        + _digest_cells(freshness.get("decision_age"))
        + "</tr></table>"
    ]
    registers = freshness.get("registers") or []
    if registers:
        rows = [
            '<table><tr><th class="l">node</th><th class="l">register</th>'
            "<th>refreshes</th><th>n</th><th>p50</th><th>p95</th>"
            "<th>max</th></tr>"
        ]
        for reg in registers:
            rows.append(
                "<tr>"
                f'<td class="l">{_esc(reg["node"])}</td>'
                f'<td class="l">{_esc(reg["register"])}</td>'
                f"<td>{_fmt(reg.get('refreshes'))}</td>"
                + _digest_cells(reg.get("age"))
                + "</tr>"
            )
        rows.append("</table>")
        parts.append("".join(rows))
    return "".join(parts)


def _telquality_attribution(record: Dict[str, Any]) -> str:
    attribution = record.get("attribution") or {}
    parts = [
        f"<p><code>{_esc(_run_key(record) or '-')}</code> "
        f"{_fmt(attribution.get('samples'))} samples over "
        f"{_fmt(attribution.get('decisions'))} decisions "
        f"({_fmt(attribution.get('skipped'))} skipped); age bins in "
        f"probing-interval multiples (interval "
        f"{_fmt(attribution.get('interval'))}s):</p>"
    ]
    bins = attribution.get("bins") or []
    if bins:
        counts = [item.get("count", 0) for item in bins]
        peak = max(counts) if counts else 0
        rows = [
            '<table><tr><th class="l">age bin</th><th>count</th>'
            "<th>mean error</th><th>mean |error|</th>"
            '<th class="l">share</th></tr>'
        ]
        for item in bins:
            count = item.get("count", 0)
            bar_w = int(round(120.0 * count / peak)) if peak else 0
            bar = (
                f'<svg width="124" height="10" viewBox="0 0 124 10">'
                f'<rect class="bar" x="0" y="1" width="{bar_w}" height="8"/>'
                "</svg>"
            )
            rows.append(
                "<tr>"
                f'<td class="l">{_esc(item.get("label"))}</td>'
                f"<td>{_fmt(count)}</td>"
                f"<td>{_fmt(item.get('mean_error'))}</td>"
                f"<td>{_fmt(item.get('mean_abs_error'))}</td>"
                f'<td class="l">{bar}</td>'
                "</tr>"
            )
        rows.append("</table>")
        parts.append("".join(rows))
    for name, title in (
        ("loss_windows", "probe-loss windows"),
        ("fault_windows", "fault windows"),
    ):
        split = attribution.get(name) or {}
        inside = split.get("in") or {}
        outside = split.get("out") or {}
        parts.append(
            f'<div class="t">{_esc(title)}: {_fmt(split.get("windows", 0))}; '
            f"in: {_fmt(inside.get('count', 0))} samples "
            f"mae={_fmt(inside.get('mean_abs_error'))}; "
            f"out: {_fmt(outside.get('count', 0))} samples "
            f"mae={_fmt(outside.get('mean_abs_error'))}</div>"
        )
    return "".join(parts)


def _whatif_cdf(record: Dict[str, Any]) -> str:
    """The per-decision regret CDF, reconstructed from the exported
    QuantileDigest: cumulative mass at each populated log-bin's midpoint,
    anchored at the exact min and max."""
    actual = record.get("actual") or {}
    data = actual.get("regret_digest")
    header = (
        f"<p><code>{_esc(_run_key(record) or '-')}</code> "
        f"{_fmt(record.get('replayed'))} decisions replayed, actual regret "
        f"total {_fmt(actual.get('regret_total'))}s "
        f"(mean {_fmt(actual.get('regret_mean'))}s):</p>"
    )
    if not data or not data.get("count"):
        return header + '<p class="empty">no replayed decisions</p>'
    from repro.obs.quantiles import QuantileDigest

    digest = QuantileDigest.from_dict(data)
    points: List[List[float]] = []
    seen = digest.underflow
    if digest.min is not None:
        points.append([digest.min, seen / digest.count])
    for index in sorted(digest.counts):
        seen += digest.counts[index]
        points.append([digest._bin_value(index), seen / digest.count])
    if digest.max is not None:
        points.append([digest.max, 1.0])
    table = (
        '<table><tr><th class="l">series</th><th>n</th><th>p50</th>'
        "<th>p95</th><th>max</th></tr>"
        '<tr><td class="l">per-decision regret</td>'
        + _digest_cells(data)
        + "</tr></table>"
    )
    return header + (
        f'<div class="chart"><div class="t">regret CDF (s &rarr; cum. frac.)'
        f"</div>{_sparkline(points)}</div>" + table
    )


def _whatif_policies(record: Dict[str, Any]) -> str:
    """Per-policy comparison table with the actual scheduler as baseline."""
    actual = record.get("actual") or {}
    parts = [
        f"<p><code>{_esc(_run_key(record) or '-')}</code> "
        f"{_fmt(record.get('decisions'))} delay decisions "
        f"({_fmt(record.get('replayed'))} replayed, "
        f"{_fmt(record.get('skipped'))} skipped):</p>",
        '<table><tr><th class="l">policy</th><th>regret total</th>'
        "<th>regret mean</th><th>wins</th><th>ties</th><th>losses</th>"
        "<th>differs</th></tr>",
        '<tr><td class="l">(actual)</td>'
        f"<td>{_fmt(actual.get('regret_total'))}</td>"
        f"<td>{_fmt(actual.get('regret_mean'))}</td>"
        "<td>-</td><td>-</td><td>-</td><td>-</td></tr>",
    ]
    for row in record.get("policies") or []:
        parts.append(
            "<tr>"
            f'<td class="l">{_esc(row.get("policy"))}</td>'
            f"<td>{_fmt(row.get('regret_total'))}</td>"
            f"<td>{_fmt(row.get('regret_mean'))}</td>"
            f"<td>{_fmt(row.get('wins'))}</td>"
            f"<td>{_fmt(row.get('ties'))}</td>"
            f"<td>{_fmt(row.get('losses'))}</td>"
            f"<td>{_fmt(row.get('differs'))}</td>"
            "</tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def _timeseries_of(
    records: List[Dict[str, Any]], name: str
) -> List[Dict[str, Any]]:
    out = [
        r for r in records
        if r.get("kind") == "timeseries" and r.get("name") == name
    ]
    out.sort(key=lambda r: (_run_key(r), _series_label(r)))
    return out


def render_dashboard(
    records: List[Dict[str, Any]], *, title: str = "repro run dashboard"
) -> str:
    """Render obs records into one self-contained HTML page."""
    timeseries = [r for r in records if r.get("kind") == "timeseries"]
    alerts = sorted(
        (
            r for r in records
            if r.get("kind") == "event" and r.get("event") == "alert"
        ),
        key=lambda r: (float(r.get("time", 0.0)), str(r.get("rule")),
                       str(r.get("target")), str(r.get("state"))),
    )
    histograms = sorted(
        (
            r for r in records
            if r.get("kind") == "metric"
            and r.get("type") == "histogram"
            and r.get("name") == "task_completion_seconds"
        ),
        key=lambda r: (_run_key(r), _series_label(r)),
    )
    t_end = 0.0
    for record in timeseries:
        points = record.get("points") or []
        if points:
            t_end = max(t_end, points[-1][0])

    runs = sorted({_run_key(r) for r in records if r.get("run")})
    parts = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8"/>',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if runs:
        parts.append(
            "<p>runs: " + "; ".join(f"<code>{_esc(r)}</code>" for r in runs)
            + "</p>"
        )
    parts.append(
        f"<p>{len(records)} records, {len(timeseries)} time series, "
        f"{len(alerts)} alert edges</p>"
    )

    parts.append("<h2>Link utilization</h2>")
    util = _timeseries_of(records, "link_utilization")
    if util:
        for record in util:
            name = _series_label(record)
            run = _run_key(record)
            chart_title = f"{name} {run}".strip()
            parts.append(_chart(chart_title, _sparkline(record.get("points") or [])))
    else:
        parts.append('<p class="empty">no link-utilization samples</p>')

    parts.append("<h2>Queue depth</h2>")
    parts.append(_heatmap(_timeseries_of(records, "queue_depth")))

    parts.append("<h2>Server load</h2>")
    load = _timeseries_of(records, "server_running") + _timeseries_of(
        records, "server_queued"
    )
    if load:
        for record in load:
            chart_title = f"{record['name']} {_series_label(record)}".strip()
            parts.append(_chart(chart_title, _sparkline(record.get("points") or [])))
    else:
        parts.append('<p class="empty">no server-load samples</p>')

    parts.append("<h2>Alerts</h2>")
    parts.append(_alert_timeline(alerts, t_end))

    parts.append("<h2>Decision error</h2>")
    error = _timeseries_of(records, "decision_abs_error")
    if error:
        for record in error:
            chart_title = f"decision_abs_error {_run_key(record)}".strip()
            parts.append(_chart(chart_title, _sparkline(record.get("points") or [])))
    else:
        parts.append('<p class="empty">no decision-error samples</p>')

    parts.append("<h2>Completion-time quantiles</h2>")
    parts.append(_quantile_table(histograms))

    parts.append("<h2>Engine profile</h2>")
    profiles = [
        r for r in records if r.get("kind") == "profile" and r.get("profile")
    ]
    if profiles:
        for record in profiles:
            parts.append(_profile_section(record["profile"]))
    else:
        parts.append(
            '<p class="empty">no engine profile (run with --profile and '
            "--obs-out)</p>"
        )

    # Telemetry-quality panels: absent on pre-observatory exports, which
    # still render (placeholders, exit 0) — backward compatibility is the
    # same placeholder path as every other optional section.
    telquality = sorted(
        (r for r in records if r.get("kind") == "telquality"),
        key=_run_key,
    )
    no_telquality = (
        '<p class="empty">no telemetry-quality records '
        "(run with --telquality and --obs-out)</p>"
    )
    parts.append("<h2>Telemetry coverage</h2>")
    if telquality:
        parts.extend(_telquality_coverage(r) for r in telquality)
    else:
        parts.append(no_telquality)
    parts.append("<h2>Telemetry freshness</h2>")
    if telquality:
        parts.extend(_telquality_freshness(r) for r in telquality)
    else:
        parts.append(no_telquality)
    parts.append("<h2>Error vs telemetry age</h2>")
    if telquality:
        parts.extend(_telquality_attribution(r) for r in telquality)
    else:
        parts.append(no_telquality)

    whatif = sorted(
        (r for r in records if r.get("kind") == "whatif"),
        key=_run_key,
    )
    no_whatif = (
        '<p class="empty">no what-if records '
        "(run with --whatif and --obs-out)</p>"
    )
    parts.append("<h2>Regret CDF</h2>")
    if whatif:
        parts.extend(_whatif_cdf(r) for r in whatif)
    else:
        parts.append(no_whatif)
    parts.append("<h2>Policy comparison</h2>")
    if whatif:
        parts.extend(_whatif_policies(r) for r in whatif)
    else:
        parts.append(no_whatif)

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_dashboard(
    records: List[Dict[str, Any]], path: str, *, title: str = "repro run dashboard"
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_dashboard(records, title=title))
