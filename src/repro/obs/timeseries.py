"""Sim-time periodic sampling: ring-buffered time series per run.

The paper's telemetry loop samples network state every probing interval;
this module gives the *experimenter* the same continuous view of a run.  A
:class:`TimeSeriesStore` holds named series keyed by ``(name, labels)`` —
per-link queue depth and utilization, per-server load, telemetry staleness,
decision error — and a list of sampler callbacks.  The harness schedules
one engine event per ``interval`` seconds of sim time; each tick runs every
sampler, which reads live simulation state (never mutates it) and records
points via :meth:`TimeSeriesStore.record`.

Memory is bounded without losing the shape of long runs: each
:class:`Series` is a fixed-capacity buffer that, on overflow, drops every
second retained point and doubles its tick stride (classic 2:1 decimation).
The retained points are always exactly the offered samples whose tick index
is a multiple of the current stride — a deterministic function of the offer
sequence, so serial / parallel / cached runs export identical series.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Series", "TimeSeriesStore", "DEFAULT_CAPACITY"]

LabelsKey = Tuple[Tuple[str, str], ...]

# Points kept per series.  At the default experiment scales a run lasts
# O(100 s) of sim time, so even a 0.1 s sample interval fits undecimated.
DEFAULT_CAPACITY = 512


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Series:
    """One ring-buffered time series with deterministic 2:1 decimation.

    ``offer(t, value)`` counts every offered sample; only offers whose tick
    index is a multiple of :attr:`stride` are retained.  When the buffer
    reaches ``capacity`` points it drops the odd-indexed ones and doubles
    the stride, so the effective sampling interval of the retained points is
    ``base_interval * stride`` and never more than half the buffer is lost
    to decimation.
    """

    __slots__ = ("name", "labels", "capacity", "stride", "offered", "points")

    def __init__(self, name: str, labels: LabelsKey, capacity: int = DEFAULT_CAPACITY):
        if capacity < 2 or capacity % 2 != 0:
            raise ValueError(f"capacity must be an even number >= 2, got {capacity}")
        self.name = name
        self.labels = labels
        self.capacity = capacity
        self.stride = 1          # retain every stride-th offered sample
        self.offered = 0         # total samples offered (tick counter)
        self.points: List[Tuple[float, float]] = []

    def offer(self, t: float, value: float) -> None:
        tick = self.offered
        self.offered += 1
        if tick % self.stride != 0:
            return
        self.points.append((t, float(value)))
        if len(self.points) >= self.capacity:
            # Keep the even-indexed points: exactly the offers with
            # tick % (2 * stride) == 0, preserving the strided invariant.
            del self.points[1::2]
            self.stride *= 2

    def __len__(self) -> int:
        return len(self.points)

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "timeseries",
            "name": self.name,
            "labels": dict(self.labels),
            "stride": self.stride,
            "offered": self.offered,
            "points": [[t, v] for t, v in self.points],
        }


class TimeSeriesStore:
    """Named time series plus the samplers that feed them each tick.

    Samplers are callables ``fn(store, now)`` registered once at wiring
    time; :meth:`tick` runs them in registration order.  ``last_values``
    holds every ``(name, labels) -> value`` recorded during the *current*
    tick — the health monitor's evaluation input.
    """

    def __init__(self, interval: float, *, capacity: int = DEFAULT_CAPACITY):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.interval = interval
        self.capacity = capacity
        self._series: Dict[Tuple[str, LabelsKey], Series] = {}
        self._samplers: List[Callable[["TimeSeriesStore", float], None]] = []
        self.ticks = 0
        self.last_values: Dict[Tuple[str, LabelsKey], float] = {}

    # -- wiring ------------------------------------------------------------

    def register(self, sampler: Callable[["TimeSeriesStore", float], None]) -> None:
        self._samplers.append(sampler)

    # -- sampling ----------------------------------------------------------

    def tick(self, now: float) -> None:
        """Run every sampler once at sim time ``now``."""
        self.ticks += 1
        self.last_values = {}
        for sampler in self._samplers:
            sampler(self, now)

    def record(self, name: str, now: float, value: float, **labels: Any) -> None:
        """Record one point on the ``(name, labels)`` series (creating it on
        first use) and expose the value to this tick's health evaluation."""
        key = (name, _labels_key(labels))
        series = self._series.get(key)
        if series is None:
            series = Series(name, key[1], self.capacity)
            self._series[key] = series
        series.offer(now, value)
        self.last_values[key] = float(value)

    # -- queries -----------------------------------------------------------

    def series(self, name: str, **labels: Any) -> Optional[Series]:
        return self._series.get((name, _labels_key(labels)))

    def all_series(self) -> List[Series]:
        return [self._series[key] for key in sorted(self._series)]

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> List[Dict[str, Any]]:
        """One JSON-ready record per series, sorted by (name, labels) for
        deterministic export."""
        out = []
        for key in sorted(self._series):
            record = self._series[key].snapshot()
            record["interval"] = self.interval
            out.append(record)
        return out
