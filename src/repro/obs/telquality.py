"""Telemetry-quality observatory: is the INT plane good enough to trust?

The paper's premise is that Algorithm 1 ranks servers from INT registers
that are *fresh enough and complete enough*; ``repro.obs.audit`` measures
only the downstream symptom (estimate-vs-truth error).  This module turns
the raw signals the repo already produces into a first-class quality model
of the telemetry plane itself:

* **coverage ledger** — joins the control-plane ground truth
  (:func:`repro.telemetry.coverage.all_fabric_ports`) with live probe
  stampings: which directed ports are observed, by which probe pairs, at
  what effective interval — and which are blind spots, compared against the
  coverage the configured probe layout *predicts*;
* **freshness model** — per-(switch, register) refresh age at every
  collector ingest and, at every scheduler decision, the telemetry age of
  each consulted hop, both recorded into
  :class:`~repro.obs.quantiles.QuantileDigest`\\ s;
* **decision-error attribution** — the audit's estimate-vs-truth delay
  error binned by telemetry age (in probing-interval multiples) and split
  by probe-loss and fault windows, yielding the error-vs-staleness table
  that future predictors (ROADMAP item 5a) are accepted against.

Everything here is read-only over state other subsystems already maintain:
no new simulator events are scheduled, existing records are never touched,
and the single ``kind: "telquality"`` record appends at the very end of the
export, so a run with collection enabled produces a byte-identical prefix.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.quantiles import QuantileDigest
from repro.telemetry.coverage import DirectedPort, all_fabric_ports, coverage_of

__all__ = ["TelemetryQuality", "render_telemetry_report", "AGE_BIN_EDGES"]

# Error-vs-staleness bin edges, in probing-interval multiples.  Telemetry
# younger than half an interval is as fresh as the plane can deliver; past
# ~20 intervals the staleness horizon has long zeroed the registers out.
AGE_BIN_EDGES = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0)

# A seq-gap loss event fires when the *next* probe of the stream arrives,
# so the losses happened within the preceding strides; the loss window
# extends this many probing intervals back from the detection time.
LOSS_WINDOW_INTERVALS = 2.0


def _error_stats(errors: Sequence[float]) -> Dict[str, Any]:
    """Count / mean error / mean absolute error of one sample bucket."""
    n = len(errors)
    if n == 0:
        return {"count": 0, "mean_error": None, "mean_abs_error": None}
    return {
        "count": n,
        "mean_error": sum(errors) / n,
        "mean_abs_error": sum(abs(e) for e in errors) / n,
    }


def _parse_label(label: Any) -> Optional[Tuple[str, int]]:
    """Invert ``ranking._node_label``: ``"sw:3"`` back to ``("sw", 3)``."""
    if isinstance(label, tuple) and len(label) == 2:
        return label
    if isinstance(label, str):
        kind, sep, index = label.partition(":")
        if kind and sep and index.isdigit():
            return (kind, int(index))
    return None


def _merge_windows(
    windows: List[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Merge overlapping/adjacent [start, end] intervals (sorted output)."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class TelemetryQuality:
    """One run's telemetry-quality state: coverage, freshness, attribution.

    Wiring mirrors the other obs components: the hub owns an instance when
    collection was requested, ``attach_network`` supplies the ground truth,
    the harness calls :meth:`configure` once the probe layout is known, the
    collector calls :meth:`report_ingested` per decoded probe, and the
    network-aware scheduler calls :meth:`decision` for every audited delay
    ranking.  All hooks only read state the caller already computed.
    """

    def __init__(self) -> None:
        self._network: Optional[Any] = None
        self.layout: Optional[str] = None
        self.probing_interval: Optional[float] = None
        self.pairs: List[Tuple[str, str]] = []
        self._all_ports: Set[DirectedPort] = set()
        self._expected_covered: Set[DirectedPort] = set()
        # Live stampings: directed port -> observation ledger entry.
        self._observed: Dict[DirectedPort, Dict[str, Any]] = {}
        self._names: Dict[Tuple[str, int], Optional[str]] = {}
        # Per-(switch, register) refresh tracking: the age recorded at each
        # ingest is the gap since that register's previous refresh.
        self._last_refresh: Dict[Tuple[str, str], float] = {}
        self._refresh_counts: Dict[Tuple[str, str], int] = {}
        self._refresh_ages: Dict[Tuple[str, str], QuantileDigest] = {}
        # Telemetry age of every consulted hop, at decision time.
        self.decision_age = QuantileDigest()
        # Attribution samples: (decision time, est - truth, max hop age).
        self._samples: List[Tuple[float, float, Optional[float]]] = []
        self.decisions_seen = 0
        self.samples_skipped = 0
        self._age_cursor = 0       # sampler cursor into _samples

    # -- wiring --------------------------------------------------------------

    def attach_network(self, network: Any) -> None:
        """Record the control-plane ground truth: every directed fabric port."""
        self._network = network
        self._all_ports = all_fabric_ports(network)

    def configure(
        self,
        *,
        layout: str,
        pairs: Sequence[Tuple[str, str]],
        probing_interval: float,
    ) -> None:
        """Record the probe layout and its *predicted* coverage, so observed
        blind spots can be checked against what the layout promises."""
        self.layout = layout
        self.pairs = sorted(tuple(p) for p in pairs)
        self.probing_interval = probing_interval
        if self._network is not None:
            self._expected_covered = (
                coverage_of(self._network, self.pairs) & self._all_ports
            )

    def _node_name(self, node: Tuple[str, int]) -> Optional[str]:
        """Resolve a telemetry node id to its topology name (memoized)."""
        if node in self._names:
            return self._names[node]
        name: Optional[str] = None
        if self._network is not None:
            kind, ident = node
            try:
                if kind == "sw":
                    name = self._network.switch_by_id(ident).name
                else:
                    name = self._network.name_of(ident)
            except Exception:
                name = None
        self._names[node] = name
        return name

    # -- ingest-side hooks ---------------------------------------------------

    def report_ingested(self, report: Any) -> None:
        """Stamp one decoded probe into the coverage ledger and refresh the
        per-(switch, register) freshness digests."""
        if self._network is None:
            return
        now = report.collected_at
        src = self._node_name(("host", report.probe_src))
        dst = self._node_name(("host", report.probe_dst))
        for sw, downstream, _port, _qdepth in report.port_observations():
            u = self._node_name(sw)
            v = self._node_name(downstream)
            if u is None or v is None:
                continue
            entry = self._observed.get((u, v))
            if entry is None:
                entry = {"count": 0, "first": now, "last": now, "pairs": set()}
                self._observed[(u, v)] = entry
            entry["count"] += 1
            entry["last"] = now
            if src is not None and dst is not None:
                entry["pairs"].add((src, dst))
            # The qdepth register lives at the switch the record was
            # appended by (collect-and-reset at its egress).
            self._touch(u, "qdepth", now)
        for _u, v_node, latency in report.link_latencies():
            # Link latency is measured at the downstream switch's ingress;
            # the final (switch -> host) reading has no switch register.
            if latency is None or v_node[0] != "sw":
                continue
            v = self._node_name(v_node)
            if v is not None:
                self._touch(v, "latency", now)

    def _touch(self, node: str, register: str, now: float) -> None:
        key = (node, register)
        last = self._last_refresh.get(key)
        self._last_refresh[key] = now
        self._refresh_counts[key] = self._refresh_counts.get(key, 0) + 1
        if last is not None:
            digest = self._refresh_ages.get(key)
            if digest is None:
                digest = QuantileDigest()
                self._refresh_ages[key] = digest
            digest.add(now - last)

    # -- decision-side hook --------------------------------------------------

    def decision(self, now: float, store: Any, candidates: Sequence[Dict[str, Any]]) -> None:
        """Record the telemetry age behind one audited delay decision.

        Called only for decisions the audit actually stored (the caller
        checks ``audit.record``'s return), and mirrors
        :func:`repro.obs.audit.delay_error_stats`' skip rules exactly, so
        the age-bin counts sum to the audit's sample total.
        """
        self.decisions_seen += 1
        for cand in candidates:
            est = cand.get("estimated_delay")
            truth = cand.get("truth_delay")
            if (
                not isinstance(est, (int, float))
                or truth is None
                or not math.isfinite(est)
            ):
                self.samples_skipped += 1
                continue
            ages: List[float] = []
            # The explanation flattens node ids to "kind:index" labels
            # (see ranking._node_label); parse them back for the store.
            path = [_parse_label(label) for label in cand.get("path") or []]
            for u, v in zip(path, path[1:]):
                if u is None or v is None:
                    continue
                state = store.link_state(u, v)
                if state is None:
                    continue
                # updated_at defaults to -1.0 until the first report.
                updated = max(state.latency_updated_at, state.qdepth_updated_at)
                if updated >= 0.0:
                    age = now - updated
                    ages.append(age)
                    self.decision_age.add(age)
            self._samples.append((now, est - truth, max(ages) if ages else None))

    # -- sampler inputs (health rules) ---------------------------------------

    def coverage_fraction(self) -> Optional[float]:
        """Observed fraction of all fabric ports, or None before the layout
        is configured (nothing meaningful to alert on yet)."""
        if self.layout is None or not self._all_ports:
            return None
        observed = sum(1 for port in self._observed if port in self._all_ports)
        return observed / len(self._all_ports)

    def take_max_decision_age(self) -> Optional[float]:
        """Max consulted-hop age over decisions since the previous tick, or
        None when no decision with known ages landed in the window."""
        samples = self._samples[self._age_cursor:]
        self._age_cursor = len(self._samples)
        ages = [age for _t, _err, age in samples if age is not None]
        return max(ages) if ages else None

    # -- export --------------------------------------------------------------

    def snapshot_records(self, events: Optional[Any] = None) -> List[Dict[str, Any]]:
        """The run's single ``kind: "telquality"`` record.  ``events`` is
        the run's :class:`~repro.obs.events.EventLog`, joined here for the
        probe-loss and fault windows."""
        return [
            {
                "kind": "telquality",
                "layout": self.layout,
                "probing_interval": self.probing_interval,
                "pairs": [list(p) for p in self.pairs],
                "coverage": self._coverage_section(),
                "freshness": self._freshness_section(),
                "attribution": self._attribution_section(events),
            }
        ]

    def _coverage_section(self) -> Dict[str, Any]:
        observed_known = {p for p in self._observed if p in self._all_ports}
        blind = sorted(self._all_ports - observed_known)
        configured = self.layout is not None
        expected_blind = (
            sorted(self._all_ports - self._expected_covered) if configured else None
        )
        ports = []
        for u, v in sorted(self._observed):
            entry = self._observed[(u, v)]
            count = entry["count"]
            effective = (
                (entry["last"] - entry["first"]) / (count - 1) if count > 1 else None
            )
            ports.append(
                {
                    "u": u,
                    "v": v,
                    "observations": count,
                    "first": entry["first"],
                    "last": entry["last"],
                    "effective_interval": effective,
                    "pairs": [list(p) for p in sorted(entry["pairs"])],
                }
            )
        return {
            "total_ports": len(self._all_ports),
            "observed_ports": len(observed_known),
            "expected_ports": len(self._expected_covered) if configured else None,
            "blind": [list(p) for p in blind],
            "expected_blind": (
                [list(p) for p in expected_blind] if configured else None
            ),
            "matches_prediction": (blind == expected_blind) if configured else None,
            "ports": ports,
        }

    def _freshness_section(self) -> Dict[str, Any]:
        registers = []
        for key in sorted(self._refresh_counts):
            node, register = key
            digest = self._refresh_ages.get(key)
            registers.append(
                {
                    "node": node,
                    "register": register,
                    "refreshes": self._refresh_counts[key],
                    "age": digest.to_dict() if digest is not None else None,
                }
            )
        return {
            "registers": registers,
            "decision_age": (
                self.decision_age.to_dict() if self.decision_age.count else None
            ),
        }

    def _attribution_section(self, events: Optional[Any]) -> Dict[str, Any]:
        interval = self.probing_interval if self.probing_interval else 1.0
        bins = []
        edges = list(AGE_BIN_EDGES) + [math.inf]
        for i in range(len(edges) - 1):
            lo, hi = edges[i] * interval, edges[i + 1] * interval
            errors = [
                err for _t, err, age in self._samples
                if age is not None and lo <= age < hi
            ]
            hi_multiple = edges[i + 1] if math.isfinite(edges[i + 1]) else None
            label = (
                f">= {edges[i]:g}x"
                if hi_multiple is None
                else f"[{edges[i]:g}x, {hi_multiple:g}x)"
            )
            bins.append(
                {
                    "label": label,
                    "lo_multiple": edges[i],
                    "hi_multiple": hi_multiple,
                    **_error_stats(errors),
                }
            )
        unknown = [err for _t, err, age in self._samples if age is None]
        bins.append(
            {
                "label": "unknown",
                "lo_multiple": None,
                "hi_multiple": None,
                **_error_stats(unknown),
            }
        )
        return {
            "interval": self.probing_interval,
            "decisions": self.decisions_seen,
            "samples": len(self._samples),
            "skipped": self.samples_skipped,
            "bins": bins,
            "loss_windows": self._window_split(self._loss_windows(events, interval)),
            "fault_windows": self._window_split(self._fault_windows(events)),
        }

    def _loss_windows(
        self, events: Optional[Any], interval: float
    ) -> List[Tuple[float, float]]:
        if events is None:
            return []
        windows = [
            (max(0.0, e.time - LOSS_WINDOW_INTERVALS * interval), e.time)
            for e in events.of_kind("probe_lost")
        ]
        return _merge_windows(windows)

    def _fault_windows(self, events: Optional[Any]) -> List[Tuple[float, float]]:
        """[injected, recovered] per (fault, target); unrecovered faults stay
        open to the end of the run."""
        if events is None:
            return []
        injected: Dict[Tuple[Any, Any], List[float]] = {}
        recovered: Dict[Tuple[Any, Any], List[float]] = {}
        for e in events.of_kind("fault_injected"):
            key = (e.fields.get("fault"), e.fields.get("target"))
            injected.setdefault(key, []).append(e.time)
        for e in events.of_kind("fault_recovered"):
            key = (e.fields.get("fault"), e.fields.get("target"))
            recovered.setdefault(key, []).append(e.time)
        windows: List[Tuple[float, float]] = []
        for key, starts in injected.items():
            ends = sorted(recovered.get(key, []))
            for start in sorted(starts):
                end = next((t for t in ends if t >= start), math.inf)
                windows.append((start, end))
        return _merge_windows(windows)

    def _window_split(self, windows: List[Tuple[float, float]]) -> Dict[str, Any]:
        inside: List[float] = []
        outside: List[float] = []
        for t, err, _age in self._samples:
            if any(lo <= t <= hi for lo, hi in windows):
                inside.append(err)
            else:
                outside.append(err)
        return {
            "windows": len(windows),
            "in": _error_stats(inside),
            "out": _error_stats(outside),
        }

    def summary(self) -> Dict[str, Any]:
        """Compact digest for ``Observability.summary()``."""
        return {
            "layout": self.layout,
            "ports_observed": sum(
                1 for port in self._observed if port in self._all_ports
            ),
            "ports_total": len(self._all_ports),
            "registers": len(self._refresh_counts),
            "decisions": self.decisions_seen,
            "samples": len(self._samples),
        }


# -- offline report ----------------------------------------------------------


def _run_key(record: Dict[str, Any]) -> Tuple:
    return tuple(sorted(record.get("run", {}).items()))


def _run_title(key: Tuple) -> str:
    return ", ".join(f"{k}={v}" for k, v in key) if key else "(unlabeled run)"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _digest_line(data: Optional[Dict[str, Any]]) -> str:
    if not data:
        return "no samples"
    digest = QuantileDigest.from_dict(data)
    p50, p95 = digest.quantiles((0.5, 0.95))
    return (
        f"n={digest.count} p50={_fmt(p50)} p95={_fmt(p95)} "
        f"max={_fmt(digest.max)}"
    )


def render_telemetry_report(records: List[Dict[str, Any]]) -> str:
    """Plain-text telemetry-quality report over an ``--obs-out`` export.

    Groups ``kind: "telquality"`` records by run label, cross-checks the
    error-vs-age bins against the decision-audit records riding in the same
    file, and degrades to a placeholder on pre-telquality exports.
    """
    from repro.obs.audit import delay_error_stats

    telquality = [r for r in records if r.get("kind") == "telquality"]
    if not telquality:
        return (
            "no telemetry-quality records in this export\n"
            "(generate one with --telquality on compare/reproduce, e.g.\n"
            "  repro compare --figure fig5 --scale smoke --telquality "
            "--obs-out obs.jsonl)"
        )

    # Audit totals per run, for the bins-sum cross-check.
    audit_samples: Dict[Tuple, int] = {}
    for record in records:
        if record.get("kind") != "decision-audit" or record.get("metric") != "delay":
            continue
        key = _run_key(record)
        stats = delay_error_stats(record.get("candidates", []))
        audit_samples[key] = audit_samples.get(key, 0) + stats["samples"]

    lines: List[str] = []
    for record in telquality:
        key = _run_key(record)
        lines.append(f"run: {_run_title(key)}")
        lines.append(
            f"  layout: {record.get('layout')}  "
            f"probing interval: {_fmt(record.get('probing_interval'))}s  "
            f"probe pairs: {len(record.get('pairs') or [])}"
        )

        coverage = record.get("coverage") or {}
        total = coverage.get("total_ports") or 0
        observed = coverage.get("observed_ports") or 0
        pct = 100.0 * observed / total if total else 0.0
        lines.append(
            f"  coverage: {observed}/{total} directed ports observed "
            f"({pct:.0f}%)"
        )
        blind = coverage.get("blind") or []
        if blind:
            labels = ", ".join(f"{u}->{v}" for u, v in blind)
            lines.append(f"    blind spots ({len(blind)}): {labels}")
        else:
            lines.append("    blind spots: none")
        if coverage.get("matches_prediction") is not None:
            verdict = (
                "matches" if coverage["matches_prediction"] else "DIVERGES FROM"
            )
            expected = coverage.get("expected_blind") or []
            lines.append(
                f"    {verdict} the layout's predicted blind set "
                f"({len(expected)} ports)"
            )
        ports = coverage.get("ports") or []
        if ports:
            lines.append("    port               obs    eff-interval  probe-pairs")
            for port in ports:
                label = f"{port['u']}->{port['v']}"
                lines.append(
                    f"    {label:<18} {port['observations']:>4}    "
                    f"{_fmt(port.get('effective_interval')):>12}  "
                    f"{len(port.get('pairs') or [])}"
                )

        freshness = record.get("freshness") or {}
        lines.append(
            "  freshness: decision-time consulted-hop age "
            + _digest_line(freshness.get("decision_age"))
        )
        registers = freshness.get("registers") or []
        if registers:
            lines.append("    node     register  refreshes  refresh-age")
            for reg in registers:
                lines.append(
                    f"    {reg['node']:<8} {reg['register']:<8} "
                    f"{reg['refreshes']:>9}  {_digest_line(reg.get('age'))}"
                )

        attribution = record.get("attribution") or {}
        lines.append(
            f"  error vs telemetry age ({attribution.get('samples', 0)} samples "
            f"over {attribution.get('decisions', 0)} decisions, "
            f"{attribution.get('skipped', 0)} skipped):"
        )
        lines.append("    age bin          count  mean-error  mean-|error|")
        bin_total = 0
        for item in attribution.get("bins") or []:
            bin_total += item.get("count", 0)
            lines.append(
                f"    {item['label']:<15} {item['count']:>6}  "
                f"{_fmt(item.get('mean_error')):>10}  "
                f"{_fmt(item.get('mean_abs_error')):>12}"
            )
        expected_total = audit_samples.get(key)
        if expected_total is not None:
            check = "OK" if bin_total == expected_total else "MISMATCH"
            lines.append(
                f"    bin counts sum to {bin_total} vs {expected_total} "
                f"decision-audit samples: {check}"
            )
        for name, title in (
            ("loss_windows", "probe-loss windows"),
            ("fault_windows", "fault windows"),
        ):
            split = attribution.get(name) or {}
            inside = split.get("in") or {}
            outside = split.get("out") or {}
            lines.append(
                f"  {title}: {split.get('windows', 0)}  "
                f"in: {inside.get('count', 0)} samples "
                f"mae={_fmt(inside.get('mean_abs_error'))}  "
                f"out: {outside.get('count', 0)} samples "
                f"mae={_fmt(outside.get('mean_abs_error'))}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
