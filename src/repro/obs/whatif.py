"""Counterfactual decision observatory: what did each decision *cost*?

The decision audit records, for every Algorithm-1 ranking query, each
candidate's estimated delay and — with the ground-truth reader attached —
its true path delay at decision time.  :mod:`repro.obs.audit` only ever
aggregates estimate-vs-truth *error*; this module re-walks the recorded
decisions and prices them:

* **per-decision regret** — ``truth_delay(chosen) - truth_delay(best)``,
  the latency the scheduler left on the table against the hindsight-optimal
  candidate of the same query;
* **counterfactual policies** — a pluggable :class:`CounterfactualPolicy`
  re-ranks every recorded candidate set; built-ins cover estimate-greedy
  (Algorithm 1 itself), seeded random, round-robin, bandwidth-first (the
  Section III-D bottleneck proxy), and the hindsight oracle (exactly zero
  regret by construction).  Each policy is scored by cumulative regret,
  win/tie/loss counts against the actual scheduler, and the number of
  decisions where it would have picked differently;
* **regret attribution** — actual regret binned by the stalest consulted
  telemetry hop age (reusing the telquality edge convention) and split by
  probe-loss and fault windows, so "how much delay did stale telemetry
  cost us" is a printed number.

The replay engine (:func:`replay_decisions`) is pure over exported
``kind: "decision-audit"`` dicts, so the same code produces the live run's
``kind: "whatif"`` record *and* the offline ``repro whatif-report``
cross-check — bit-exact across repeated invocations.  Collection is
read-only and opt-in (``--whatif``): no simulator events are scheduled,
existing records are untouched, and the single record appends at the very
end of the export, so a run with collection enabled produces a
byte-identical prefix.
"""

from __future__ import annotations

import math
import random as _random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.quantiles import QuantileDigest
from repro.obs.telquality import (
    AGE_BIN_EDGES,
    LOSS_WINDOW_INTERVALS,
    _merge_windows,
    _parse_label,
)
from repro.simnet.random import derive_seed

__all__ = [
    "CounterfactualPolicy",
    "EstimateGreedyPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "BandwidthFirstPolicy",
    "OraclePolicy",
    "default_policies",
    "replay_decisions",
    "WhatIf",
    "render_whatif_report",
]

# Root for the random policy's per-decision seed derivation.  A constant,
# not the run seed: offline replay sees only the export, so the seeds must
# be reconstructible from the decision stream alone.
RANDOM_POLICY_ROOT = 0


def _truth_of(candidate: Dict[str, Any]) -> Optional[float]:
    """A candidate's usable ground-truth delay, or None."""
    truth = candidate.get("truth_delay")
    if isinstance(truth, (int, float)) and math.isfinite(truth):
        return float(truth)
    return None


class CounterfactualPolicy:
    """One alternative ranking policy replayed over recorded candidates.

    ``choose`` receives the decision's *eligible* candidate dicts (every
    entry has a finite ``truth_delay``; estimates/hops ride along when the
    run recorded them) and a context dict with ``index`` (0-based replayed
    decision index), ``requester_addr``, and ``time``.  It returns the
    ``server_addr`` of its pick.  Policies other than the oracle must rank
    from the same information the scheduler had — never from truth.
    """

    name = "?"

    def choose(
        self, candidates: Sequence[Dict[str, Any]], ctx: Dict[str, Any]
    ) -> Optional[int]:
        raise NotImplementedError


class EstimateGreedyPolicy(CounterfactualPolicy):
    """Algorithm 1 replayed: smallest recorded estimated delay wins.

    Baseline exports carry no ``estimated_delay``; the recorded rank value
    (hop count, random draw) stands in, so the replay reproduces whatever
    greedy-on-its-own-metric meant for that run.  Ties break by address.
    """

    name = "estimate-greedy"

    def choose(self, candidates, ctx):
        def score(cand: Dict[str, Any]) -> float:
            est = cand.get("estimated_delay")
            if not isinstance(est, (int, float)):
                est = cand.get("value")
            if isinstance(est, (int, float)) and math.isfinite(est):
                return float(est)
            return math.inf

        best = min(candidates, key=lambda c: (score(c), c.get("server_addr")))
        return best.get("server_addr")


class RandomPolicy(CounterfactualPolicy):
    """Uniform pick with a per-decision derived seed.

    The seed is ``derive_seed(RANDOM_POLICY_ROOT, "whatif:<index>")`` — a
    function of the replayed decision index only, so the same export
    replays to the same picks on any host, in any order of invocation.
    """

    name = "random"

    def choose(self, candidates, ctx):
        seed = derive_seed(RANDOM_POLICY_ROOT, f"whatif:{ctx['index']}")
        ordered = sorted(candidates, key=lambda c: c.get("server_addr"))
        pick = _random.Random(seed).randrange(len(ordered))
        return ordered[pick].get("server_addr")


class RoundRobinPolicy(CounterfactualPolicy):
    """Cycle through each requester's candidates in address order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor: Dict[Any, int] = {}

    def choose(self, candidates, ctx):
        requester = ctx.get("requester_addr")
        ordered = sorted(candidates, key=lambda c: c.get("server_addr"))
        index = self._cursor.get(requester, 0)
        self._cursor[requester] = index + 1
        return ordered[index % len(ordered)].get("server_addr")


class BandwidthFirstPolicy(CounterfactualPolicy):
    """Least-congested path first: smallest bottleneck qdepth wins.

    The Section III-D bandwidth estimate is monotone in the path's maximum
    queue depth, so the recorded per-hop ``qdepth`` terms reproduce its
    ordering without re-running the estimator.  Candidates without hop
    detail (baseline exports) fall back to the recorded rank value.
    """

    name = "bandwidth-first"

    def choose(self, candidates, ctx):
        def bottleneck(cand: Dict[str, Any]) -> Tuple[float, float]:
            hops = cand.get("hops")
            if hops:
                depths = [
                    float(h.get("qdepth"))
                    for h in hops
                    if isinstance(h.get("qdepth"), (int, float))
                ]
                if depths:
                    return (0.0, max(depths))
            value = cand.get("value")
            if isinstance(value, (int, float)) and math.isfinite(value):
                return (1.0, float(value))
            return (2.0, 0.0)

        best = min(
            candidates, key=lambda c: (bottleneck(c), c.get("server_addr"))
        )
        return best.get("server_addr")


class OraclePolicy(CounterfactualPolicy):
    """Hindsight-optimal: smallest true delay — zero regret by construction."""

    name = "oracle"

    def choose(self, candidates, ctx):
        best = min(candidates, key=lambda c: (_truth_of(c), c.get("server_addr")))
        return best.get("server_addr")


def default_policies() -> List[CounterfactualPolicy]:
    """Fresh built-in policy instances (round-robin is stateful)."""
    return [
        EstimateGreedyPolicy(),
        RandomPolicy(),
        RoundRobinPolicy(),
        BandwidthFirstPolicy(),
        OraclePolicy(),
    ]


# -- event-window extraction (live EventLog or exported record dicts) --------


def _events_of(events: Any, kind: str) -> List[Tuple[float, Dict[str, Any]]]:
    """``(time, fields)`` pairs for one event kind, from either a live
    :class:`~repro.obs.events.EventLog` or a list of exported record dicts
    (where event fields are flattened into the record)."""
    if events is None:
        return []
    if hasattr(events, "of_kind"):
        return [(e.time, e.fields) for e in events.of_kind(kind)]
    return [
        (float(r.get("time", 0.0)), r)
        for r in events
        if r.get("kind") == "event" and r.get("event") == kind
    ]


def _loss_windows(events: Any, interval: float) -> List[Tuple[float, float]]:
    windows = [
        (max(0.0, t - LOSS_WINDOW_INTERVALS * interval), t)
        for t, _fields in _events_of(events, "probe_lost")
    ]
    return _merge_windows(windows)


def _fault_windows(events: Any) -> List[Tuple[float, float]]:
    """[injected, recovered] per (fault, target); unrecovered faults stay
    open to the end of the run."""
    injected: Dict[Tuple[Any, Any], List[float]] = {}
    recovered: Dict[Tuple[Any, Any], List[float]] = {}
    for t, fields in _events_of(events, "fault_injected"):
        injected.setdefault((fields.get("fault"), fields.get("target")), []).append(t)
    for t, fields in _events_of(events, "fault_recovered"):
        recovered.setdefault((fields.get("fault"), fields.get("target")), []).append(t)
    windows: List[Tuple[float, float]] = []
    for key, starts in injected.items():
        ends = sorted(recovered.get(key, []))
        for start in sorted(starts):
            end = next((t for t in ends if t >= start), math.inf)
            windows.append((start, end))
    return _merge_windows(windows)


# -- the replay engine -------------------------------------------------------


def _regret_stats(regrets: Sequence[float]) -> Dict[str, Any]:
    n = len(regrets)
    total = sum(regrets)
    return {
        "count": n,
        "regret_total": total,
        "regret_mean": total / n if n else None,
    }


def replay_decisions(
    decisions: Sequence[Dict[str, Any]],
    *,
    policies: Optional[Sequence[CounterfactualPolicy]] = None,
    probing_interval: Optional[float] = None,
    ages: Optional[Sequence[Optional[float]]] = None,
    events: Any = None,
) -> Dict[str, Any]:
    """Re-walk exported decision-audit dicts and price every decision.

    Only ``metric == "delay"`` decisions replay (bandwidth/raw queries have
    no single chosen candidate to price).  A decision is *replayed* when its
    chosen candidate and at least one alternative carry finite ground
    truth; anything else counts as skipped.  ``ages`` optionally supplies
    the stalest-consulted-hop age per delay decision (live collection,
    aligned with the decision order); decisions without one land in the
    ``unknown`` staleness bin.  ``events`` (a live EventLog or exported
    event dicts) supplies the probe-loss and fault windows.

    Pure and deterministic: the same inputs produce the same dict, bit for
    bit, so the live ``kind: "whatif"`` record and the offline
    ``whatif-report`` cross-check are the same computation.
    """
    if policies is None:
        policies = default_policies()
    interval = probing_interval if probing_interval else 1.0

    totals = {
        p.name: {"regret_total": 0.0, "wins": 0, "ties": 0, "losses": 0, "differs": 0}
        for p in policies
    }
    if len(totals) != len(policies):
        raise ValueError(f"duplicate policy names: {sorted(p.name for p in policies)}")

    samples: List[Tuple[float, float, Optional[float]]] = []  # (time, regret, age)
    regret_digest = QuantileDigest()
    seen = 0
    skipped = 0
    replayed = 0
    for decision in (d for d in decisions if d.get("metric") == "delay"):
        age = ages[seen] if ages is not None and seen < len(ages) else None
        seen += 1
        chosen = decision.get("chosen_addr")
        eligible = [
            c for c in (decision.get("candidates") or ()) if _truth_of(c) is not None
        ]
        truth = {c.get("server_addr"): _truth_of(c) for c in eligible}
        if chosen is None or chosen not in truth:
            skipped += 1
            continue
        best = min(truth.values())
        actual_regret = truth[chosen] - best
        ctx = {
            "index": replayed,
            "requester_addr": decision.get("requester_addr"),
            "time": decision.get("time"),
        }
        for policy in policies:
            pick = policy.choose(eligible, ctx)
            if pick not in truth:  # a policy bug, not a data gap: pin to actual
                pick = chosen
            score = totals[policy.name]
            score["regret_total"] += truth[pick] - best
            if truth[pick] < truth[chosen]:
                score["wins"] += 1
            elif truth[pick] == truth[chosen]:
                score["ties"] += 1
            else:
                score["losses"] += 1
            if pick != chosen:
                score["differs"] += 1
        replayed += 1
        regret_digest.add(actual_regret)
        samples.append((float(decision.get("time") or 0.0), actual_regret, age))

    bins = []
    edges = list(AGE_BIN_EDGES) + [math.inf]
    for i in range(len(edges) - 1):
        lo, hi = edges[i] * interval, edges[i + 1] * interval
        regrets = [
            regret for _t, regret, age in samples
            if age is not None and lo <= age < hi
        ]
        hi_multiple = edges[i + 1] if math.isfinite(edges[i + 1]) else None
        label = (
            f">= {edges[i]:g}x"
            if hi_multiple is None
            else f"[{edges[i]:g}x, {hi_multiple:g}x)"
        )
        bins.append(
            {
                "label": label,
                "lo_multiple": edges[i],
                "hi_multiple": hi_multiple,
                **_regret_stats(regrets),
            }
        )
    unknown = [regret for _t, regret, age in samples if age is None]
    bins.append(
        {
            "label": "unknown",
            "lo_multiple": None,
            "hi_multiple": None,
            **_regret_stats(unknown),
        }
    )

    def window_split(windows: List[Tuple[float, float]]) -> Dict[str, Any]:
        inside = [r for t, r, _age in samples if any(lo <= t <= hi for lo, hi in windows)]
        outside = [r for t, r, _age in samples if not any(lo <= t <= hi for lo, hi in windows)]
        return {
            "windows": len(windows),
            "in": _regret_stats(inside),
            "out": _regret_stats(outside),
        }

    actual_total = sum(r for _t, r, _age in samples)
    return {
        "interval": probing_interval,
        "decisions": seen,
        "replayed": replayed,
        "skipped": skipped,
        "actual": {
            "regret_total": actual_total,
            "regret_mean": actual_total / replayed if replayed else None,
            "regret_digest": regret_digest.to_dict() if regret_digest.count else None,
        },
        "policies": [
            {
                "policy": p.name,
                "regret_total": totals[p.name]["regret_total"],
                "regret_mean": (
                    totals[p.name]["regret_total"] / replayed if replayed else None
                ),
                "wins": totals[p.name]["wins"],
                "ties": totals[p.name]["ties"],
                "losses": totals[p.name]["losses"],
                "differs": totals[p.name]["differs"],
            }
            for p in policies
        ],
        "staleness": {"bins": bins},
        "loss_windows": window_split(_loss_windows(events, interval)),
        "fault_windows": window_split(_fault_windows(events)),
    }


# -- live collection ---------------------------------------------------------


class WhatIf:
    """One run's counterfactual-replay state.

    Wiring mirrors the other obs components: the hub owns an instance when
    ``--whatif`` was requested, the harness calls :meth:`configure` once the
    probing interval is known, and every scheduler (network-aware *and*
    baselines) calls :meth:`decision` for each audited delay ranking.  The
    hook only reads state the caller already computed: per-candidate truth
    from the audit dicts, hop ages from the telemetry store.  The exported
    record itself is produced by :func:`replay_decisions` over the audit's
    own snapshots, so the export and any offline replay of it agree by
    construction.
    """

    def __init__(self) -> None:
        self.probing_interval: Optional[float] = None
        self.decisions_seen = 0
        # One entry per audited delay decision: the stalest consulted-hop
        # telemetry age over *all* candidates (None when unknown), aligned
        # with the audit's delay-decision order for the snapshot replay.
        self._ages: List[Optional[float]] = []
        # Per-decision actual regret, for the regret_ceiling health series.
        self._regrets: List[float] = []
        self._regret_cursor = 0

    def configure(self, *, probing_interval: float) -> None:
        self.probing_interval = probing_interval

    # -- decision-side hook --------------------------------------------------

    def decision(
        self,
        now: float,
        store: Any,
        candidates: Sequence[Dict[str, Any]],
        chosen_addr: Optional[int],
    ) -> None:
        """Record one audited delay decision's staleness and regret.

        Called only for decisions the (bounded) audit actually stored, so
        the collected ages align one-to-one with the audit's delay
        decisions.  ``store`` is the scheduler's telemetry store, or None
        for baselines (which consult no telemetry — their age is unknown).
        """
        self.decisions_seen += 1
        ages: List[float] = []
        if store is not None:
            for cand in candidates:
                path = [_parse_label(label) for label in cand.get("path") or []]
                for u, v in zip(path, path[1:]):
                    if u is None or v is None:
                        continue
                    state = store.link_state(u, v)
                    if state is None:
                        continue
                    # updated_at defaults to -1.0 until the first report.
                    updated = max(state.latency_updated_at, state.qdepth_updated_at)
                    if updated >= 0.0:
                        ages.append(now - updated)
        self._ages.append(max(ages) if ages else None)
        truths = [t for t in (_truth_of(c) for c in candidates) if t is not None]
        chosen_truth = next(
            (
                _truth_of(c) for c in candidates
                if c.get("server_addr") == chosen_addr
            ),
            None,
        )
        if chosen_truth is not None and truths:
            self._regrets.append(chosen_truth - min(truths))

    # -- sampler input (regret_ceiling health rule) --------------------------

    def take_max_regret(self) -> Optional[float]:
        """Max per-decision regret since the previous tick, or None when no
        priced decision landed in the window."""
        window = self._regrets[self._regret_cursor:]
        self._regret_cursor = len(self._regrets)
        return max(window) if window else None

    # -- export --------------------------------------------------------------

    def snapshot_records(self, audit: Any, events: Any = None) -> List[Dict[str, Any]]:
        """The run's single ``kind: "whatif"`` record: the offline replay
        engine applied to the audit's own decision snapshots, joined with
        the live-collected hop ages and the run's event log."""
        decisions = [d.snapshot() for d in audit.decisions if d.metric == "delay"]
        body = replay_decisions(
            decisions,
            policies=default_policies(),
            probing_interval=self.probing_interval,
            ages=self._ages,
            events=events,
        )
        return [{"kind": "whatif", **body}]

    def summary(self) -> Dict[str, Any]:
        """Compact digest for ``Observability.summary()``."""
        return {
            "interval": self.probing_interval,
            "decisions": self.decisions_seen,
            "priced": len(self._regrets),
        }


# -- offline report ----------------------------------------------------------


def _run_key(record: Dict[str, Any]) -> Tuple:
    return tuple(sorted(record.get("run", {}).items()))


def _run_title(key: Tuple) -> str:
    return ", ".join(f"{k}={v}" for k, v in key) if key else "(unlabeled run)"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _policy_table(body: Dict[str, Any]) -> List[str]:
    lines = [
        "    policy            regret-total  regret-mean   wins   ties  losses  differs"
    ]
    actual = body.get("actual") or {}
    lines.append(
        f"    {'(actual)':<16} {_fmt(actual.get('regret_total')):>13} "
        f"{_fmt(actual.get('regret_mean')):>12}      -      -       -        -"
    )
    for row in body.get("policies") or []:
        lines.append(
            f"    {row.get('policy', '?'):<16} {_fmt(row.get('regret_total')):>13} "
            f"{_fmt(row.get('regret_mean')):>12} {_fmt(row.get('wins')):>6} "
            f"{_fmt(row.get('ties')):>6} {_fmt(row.get('losses')):>7} "
            f"{_fmt(row.get('differs')):>8}"
        )
    return lines


def _attribution_lines(body: Dict[str, Any]) -> List[str]:
    lines = ["  regret vs stalest consulted telemetry age:"]
    lines.append("    age bin          decisions  regret-total  regret-mean")
    bin_count = 0
    bin_regret = 0.0
    for item in (body.get("staleness") or {}).get("bins") or []:
        bin_count += item.get("count", 0)
        bin_regret += item.get("regret_total", 0.0)
        lines.append(
            f"    {item['label']:<15} {item.get('count', 0):>10}  "
            f"{_fmt(item.get('regret_total')):>12}  "
            f"{_fmt(item.get('regret_mean')):>11}"
        )
    actual_total = (body.get("actual") or {}).get("regret_total", 0.0)
    check = (
        "OK"
        if bin_count == body.get("replayed", 0) and bin_regret == actual_total
        else "MISMATCH"
    )
    lines.append(
        f"    bins: {bin_count} decisions, regret {_fmt(bin_regret)} "
        f"vs actual total {_fmt(actual_total)}: {check}"
    )
    for name, title in (
        ("loss_windows", "probe-loss windows"),
        ("fault_windows", "fault windows"),
    ):
        split = body.get(name) or {}
        inside = split.get("in") or {}
        outside = split.get("out") or {}
        lines.append(
            f"  {title}: {split.get('windows', 0)}  "
            f"in: {inside.get('count', 0)} decisions "
            f"regret={_fmt(inside.get('regret_total'))}  "
            f"out: {outside.get('count', 0)} decisions "
            f"regret={_fmt(outside.get('regret_total'))}"
        )
    return lines


def render_whatif_report(records: List[Dict[str, Any]]) -> str:
    """Plain-text counterfactual report over an ``--obs-out`` export.

    Groups ``kind: "whatif"`` records by run label and cross-checks each
    against an independent offline replay of the decision-audit records
    riding in the same file (regret totals, replayed/skipped counts, and
    the decision-audit delay-decision count), plus the telquality
    attribution totals when that observatory also ran.  Exports without a
    whatif record but with ground-truth-attached audits still replay
    offline (staleness is collected live, so it reads as unknown).
    """
    whatif = [r for r in records if r.get("kind") == "whatif"]
    audits: Dict[Tuple, List[Dict[str, Any]]] = {}
    events: Dict[Tuple, List[Dict[str, Any]]] = {}
    telquality: Dict[Tuple, Dict[str, Any]] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "decision-audit":
            audits.setdefault(_run_key(record), []).append(record)
        elif kind == "event":
            events.setdefault(_run_key(record), []).append(record)
        elif kind == "telquality":
            telquality[_run_key(record)] = record

    lines: List[str] = []
    if not whatif:
        replayable = {
            key for key, decisions in audits.items()
            if any(
                _truth_of(c) is not None
                for d in decisions
                if d.get("metric") == "delay"
                for c in d.get("candidates", ())
            )
        }
        if not replayable:
            return (
                "no what-if records (and no ground-truth decision audits) in "
                "this export\n"
                "(generate one with --whatif on compare/reproduce, e.g.\n"
                "  repro compare --figure fig5 --scale smoke --whatif "
                "--obs-out obs.jsonl)"
            )
        lines.append(
            "no whatif record in this export; replaying decision audits "
            "offline (staleness unknown — ages are collected live)"
        )
        lines.append("")
        for key in sorted(replayable):
            body = replay_decisions(audits[key], events=events.get(key))
            lines.append(f"run: {_run_title(key)}")
            lines.append(
                f"  decisions: {body['decisions']} "
                f"({body['replayed']} replayed, {body['skipped']} skipped)"
            )
            lines.extend(_policy_table(body))
            lines.append("")
        return "\n".join(lines).rstrip()

    for record in whatif:
        key = _run_key(record)
        lines.append(f"run: {_run_title(key)}")
        lines.append(
            f"  probing interval: {_fmt(record.get('interval'))}s  "
            f"decisions: {record.get('decisions', 0)} "
            f"({record.get('replayed', 0)} replayed, "
            f"{record.get('skipped', 0)} skipped)"
        )
        lines.extend(_policy_table(record))

        oracle = next(
            (
                row for row in record.get("policies") or []
                if row.get("policy") == "oracle"
            ),
            None,
        )
        if oracle is not None:
            verdict = "OK" if oracle.get("regret_total") == 0.0 else "VIOLATION"
            lines.append(
                f"  oracle hindsight check: regret "
                f"{_fmt(oracle.get('regret_total'))} (must be 0): {verdict}"
            )

        # Independent offline replay of the same export's audit records —
        # same engine, no live state — must agree with the record exactly.
        run_audits = audits.get(key, [])
        n_audit = sum(1 for d in run_audits if d.get("metric") == "delay")
        offline = replay_decisions(
            run_audits,
            probing_interval=record.get("interval"),
            events=events.get(key),
        )
        totals_match = {
            row["policy"]: row["regret_total"] for row in offline["policies"]
        } == {
            row.get("policy"): row.get("regret_total")
            for row in record.get("policies") or []
        }
        counts_match = (
            offline["replayed"] == record.get("replayed")
            and offline["skipped"] == record.get("skipped")
            and record.get("decisions") == n_audit
        )
        check = "OK" if totals_match and counts_match else "MISMATCH"
        lines.append(
            f"  replay cross-check: {offline['replayed']} replayed + "
            f"{offline['skipped']} skipped = {offline['decisions']} vs "
            f"{n_audit} decision-audit delay decisions: {check}"
        )

        lines.extend(_attribution_lines(record))

        tq = telquality.get(key)
        if tq is None:
            lines.append("  telquality reconciliation: no telquality record in export")
        else:
            tq_decisions = (tq.get("attribution") or {}).get("decisions", 0)
            wi_decisions = record.get("decisions", 0)
            # Telquality's decision hook lives in the network-aware
            # scheduler only; baseline runs consult no telemetry store, so
            # every replayed age is unknown and telquality attributes zero
            # decisions.  That gap is structural, not a record error.
            bins = (record.get("staleness") or {}).get("bins") or []
            consulted = sum(
                b.get("count", 0) for b in bins if b.get("label") != "unknown"
            )
            if tq_decisions == 0 and wi_decisions and consulted == 0:
                lines.append(
                    "  telquality reconciliation: skipped (scheduler "
                    "consulted no telemetry; telquality attributed 0 "
                    "decisions)"
                )
            else:
                check = "OK" if wi_decisions == tq_decisions else "MISMATCH"
                lines.append(
                    f"  telquality reconciliation: {wi_decisions} "
                    f"whatif decisions vs {tq_decisions} telquality "
                    f"attribution decisions: {check}"
                )
        lines.append("")
    return "\n".join(lines).rstrip()
