"""Scheduler decision audit trail — "why did the scheduler pick node X?".

Every ranking query the scheduler serves can be recorded as a
:class:`Decision`: the requester, the metric, every candidate's estimated
value, and — for the network-aware policy — the per-hop Q(h) and link-delay
terms Algorithm 1 summed to produce that value.  When a ground-truth reader
is attached (experiments only; a real deployment has no oracle), each
candidate also carries the *true* path delay at decision time, so the
estimate-vs-truth error of the paper's estimator becomes a measurable,
exportable quantity instead of folklore.

Candidate/hop payloads are plain dicts (JSONL-ready); telemetry node ids
``("sw", 3)`` are flattened to ``"sw:3"`` via :func:`node_label`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.records import TelemetryNodeId

__all__ = [
    "Decision",
    "DecisionAudit",
    "NetworkGroundTruth",
    "node_label",
    "delay_error_stats",
]

DEFAULT_MAX_DECISIONS = 50_000


def node_label(node: TelemetryNodeId) -> str:
    """``("sw", 3)`` -> ``"sw:3"`` (stable, greppable, JSON-friendly)."""
    return f"{node[0]}:{node[1]}"


@dataclass(frozen=True)
class Decision:
    """One ranking query, fully explained.

    ``candidates`` entries always carry ``server_addr`` and ``value``; the
    network-aware scheduler adds ``hops`` (per-hop estimate terms) and, with
    ground truth attached, ``truth_delay``.
    """

    time: float
    requester_addr: int
    metric: str
    chosen_addr: Optional[int]
    candidates: Tuple[Dict[str, Any], ...] = field(default_factory=tuple)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "decision-audit",
            "time": self.time,
            "requester_addr": self.requester_addr,
            "metric": self.metric,
            "chosen_addr": self.chosen_addr,
            "candidates": [dict(c) for c in self.candidates],
        }


class DecisionAudit:
    """Bounded, append-only store of :class:`Decision` records."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        max_decisions: int = DEFAULT_MAX_DECISIONS,
    ) -> None:
        if max_decisions < 1:
            raise ValueError("max_decisions must be >= 1")
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.max_decisions = max_decisions
        self.decisions: List[Decision] = []
        self.dropped_decisions = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def record(
        self,
        *,
        requester_addr: int,
        metric: str,
        candidates: Sequence[Dict[str, Any]],
        chosen_addr: Optional[int],
        time: Optional[float] = None,
    ) -> Optional[Decision]:
        if len(self.decisions) >= self.max_decisions:
            self.dropped_decisions += 1
            return None
        decision = Decision(
            time=time if time is not None else self._clock(),
            requester_addr=requester_addr,
            metric=metric,
            chosen_addr=chosen_addr,
            candidates=tuple(candidates),
        )
        self.decisions.append(decision)
        return decision

    def __len__(self) -> int:
        return len(self.decisions)

    def snapshot(self) -> List[Dict[str, Any]]:
        return [d.snapshot() for d in self.decisions]

    def error_report(self) -> Dict[str, Any]:
        """Estimate-vs-ground-truth summary over recorded delay decisions."""
        return delay_error_stats(
            c for d in self.decisions if d.metric == "delay" for c in d.candidates
        )


def delay_error_stats(candidates: Any) -> Dict[str, Any]:
    """Aggregate ``estimated_delay`` against ``truth_delay`` over an iterable
    of candidate dicts.  Only the network-aware scheduler writes
    ``estimated_delay`` (baseline rank values are hop counts or random draws,
    not delays); candidates missing either side, or with a non-finite
    estimate (unreachable), are skipped but counted."""
    n = 0
    skipped = 0
    sum_err = 0.0
    sum_abs = 0.0
    sum_est = 0.0
    sum_truth = 0.0
    for cand in candidates:
        est = cand.get("estimated_delay")
        truth = cand.get("truth_delay")
        if (
            not isinstance(est, (int, float))
            or truth is None
            or not math.isfinite(est)
        ):
            skipped += 1
            continue
        err = est - truth
        n += 1
        sum_err += err
        sum_abs += abs(err)
        sum_est += est
        sum_truth += truth
    return {
        "samples": n,
        "skipped": skipped,
        "mean_error": sum_err / n if n else None,
        "mean_abs_error": sum_abs / n if n else None,
        "mean_estimate": sum_est / n if n else None,
        "mean_truth": sum_truth / n if n else None,
    }


class NetworkGroundTruth:
    """Oracle reading the *true* network state from live simulator objects.

    The scheduler must never see this (it would defeat the paper's premise);
    experiments attach it to the audit trail so every recorded estimate is
    stored next to the truth it was approximating.

    The true path delay mirrors what the delay estimator models: per hop,
    propagation delay plus the serialization backlog currently sitting in
    the egress queue (queued bytes, plus one in-service MTU when the
    serializer is busy) at that port's rate.
    """

    def __init__(self, network: Any) -> None:
        self.network = network

    # -- node resolution ---------------------------------------------------

    def _name(self, node: TelemetryNodeId) -> str:
        kind, ident = node
        if kind == "sw":
            return self.network.switch_by_id(ident).name
        return self.network.name_of(ident)

    # -- truth readings ----------------------------------------------------

    def hop_truth(self, u: TelemetryNodeId, v: TelemetryNodeId) -> Dict[str, Any]:
        """True state of the directed hop u->v right now."""
        from repro.simnet.packet import MTU

        u_name = self._name(u)
        v_name = self._name(v)
        port = self.network.node(u_name).port(
            self.network.port_toward(u_name, v_name)
        )
        pending_bytes = port.queue.queued_bytes + (MTU if port.busy else 0)
        return {
            "u": node_label(u),
            "v": node_label(v),
            "true_qdepth": port.backlog,
            "true_delay": port.link.propagation_delay
            + (pending_bytes * 8.0) / port.rate_bps,
        }

    def path_truth(
        self, path: Sequence[TelemetryNodeId]
    ) -> Optional[List[Dict[str, Any]]]:
        """Per-hop truth along ``path``, or ``None`` when any hop cannot be
        resolved against the physical network (stale inferred topology)."""
        try:
            return [self.hop_truth(u, v) for u, v in zip(path, path[1:])]
        except Exception:
            return None

    def true_delay_between(self, src_addr: int, dst_addr: int) -> Optional[float]:
        """True delay over the physical shortest path between two hosts."""
        try:
            names = self.network.shortest_path(
                self.network.name_of(src_addr), self.network.name_of(dst_addr)
            )
        except Exception:
            return None
        from repro.simnet.packet import MTU

        total = 0.0
        for u_name, v_name in zip(names, names[1:]):
            port = self.network.node(u_name).port(
                self.network.port_toward(u_name, v_name)
            )
            pending_bytes = port.queue.queued_bytes + (MTU if port.busy else 0)
            total += port.link.propagation_delay + (pending_bytes * 8.0) / port.rate_bps
        return total
