"""Mergeable streaming quantile digest (fixed log-spaced bins).

The observability layer needs p50/p95/p99 of latency-scale values without
storing raw samples, and it needs to *merge* sketches — per-size-class
histograms into one per-policy view, per-run digests into one sweep view.
A fixed-bin sketch over log-spaced bounds gives both with hard guarantees:

* **deterministic** — the state is integer bin counts plus exact min/max,
  so identical inputs produce identical sketches on any host;
* **exactly mergeable** — merging adds integer counts and takes min/max,
  which is associative and commutative *bit-for-bit* (no float summation
  order to worry about), so serial / parallel / cached executions export
  identical quantiles;
* **bounded error** — a quantile lands in the right bin, and the reported
  value (the bin's geometric midpoint, clamped to the observed min/max) is
  within one bin's relative width of the true order statistic (~7% at the
  default 256 bins over 8 decades).

The P² algorithm was considered and rejected: its marker state is float-
valued and order-dependent, so merging two P² sketches is approximate and
parallel runs would not be byte-identical to serial ones.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["QuantileDigest", "DEFAULT_LO", "DEFAULT_HI", "DEFAULT_BINS"]

# Default dynamic range: 0.1 ms .. 10^4 s covers every latency-scale series
# this repo produces (per-hop delays through multi-minute completion times).
DEFAULT_LO = 1e-4
DEFAULT_HI = 1e4
DEFAULT_BINS = 256


class QuantileDigest:
    """Streaming quantile sketch over fixed log-spaced bins.

    Values at or below zero (and anything below ``lo``) land in the
    underflow bin; values above ``hi`` land in the overflow bin.  ``min``
    and ``max`` are tracked exactly, so extreme quantiles never invent
    values outside the observed range.
    """

    __slots__ = ("lo", "hi", "bins", "counts", "underflow", "overflow",
                 "count", "min", "max", "_log_lo", "_scale")

    def __init__(
        self,
        *,
        lo: float = DEFAULT_LO,
        hi: float = DEFAULT_HI,
        bins: int = DEFAULT_BINS,
    ) -> None:
        if not (0.0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.counts: Dict[int, int] = {}     # sparse: bin index -> count
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._log_lo = math.log(lo)
        self._scale = bins / (math.log(hi) - self._log_lo)

    # -- ingestion ---------------------------------------------------------

    def add(self, value: float, count: int = 1) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.count += count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0 or value < self.lo:
            self.underflow += count
        elif value > self.hi:
            self.overflow += count
        else:
            index = int((math.log(value) - self._log_lo) * self._scale)
            if index >= self.bins:   # value == hi (or float rounding at the edge)
                index = self.bins - 1
            self.counts[index] = self.counts.get(index, 0) + count

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # -- merging -----------------------------------------------------------

    def _compatible(self, other: "QuantileDigest") -> bool:
        return (
            self.lo == other.lo and self.hi == other.hi and self.bins == other.bins
        )

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other`` into this digest (in place; returns self).
        Integer counts add and min/max combine, so merging is exactly
        associative and commutative."""
        if not self._compatible(other):
            raise ValueError(
                f"cannot merge digests with different bin layouts: "
                f"({self.lo}, {self.hi}, {self.bins}) vs "
                f"({other.lo}, {other.hi}, {other.bins})"
            )
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def merged(self, other: "QuantileDigest") -> "QuantileDigest":
        """Non-mutating merge: a new digest holding both."""
        out = QuantileDigest(lo=self.lo, hi=self.hi, bins=self.bins)
        out.merge(self)
        out.merge(other)
        return out

    # -- queries -----------------------------------------------------------

    def _bin_value(self, index: int) -> float:
        """Representative value for one bin: its geometric midpoint."""
        width = 1.0 / self._scale
        return math.exp(self._log_lo + (index + 0.5) * width)

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 <= q <= 1), or None for an empty digest.  The
        answer is the representative of the bin holding the ceil(q*count)-th
        smallest sample, clamped to the exact observed [min, max]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = self.underflow
        if rank <= seen:
            return self.min
        value: Optional[float] = None
        for index in sorted(self.counts):
            seen += self.counts[index]
            if rank <= seen:
                value = self._bin_value(index)
                break
        if value is None:   # rank falls in the overflow bin
            return self.max
        # min/max are exact; never report outside the observed range.
        assert self.min is not None and self.max is not None
        return min(max(value, self.min), self.max)

    def quantiles(self, qs: Sequence[float]) -> List[Optional[float]]:
        return [self.quantile(q) for q in qs]

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, QuantileDigest):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready sparse form (bin indices stringified for JSON keys)."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "count": self.count,
            "underflow": self.underflow,
            "overflow": self.overflow,
            "min": self.min,
            "max": self.max,
            "counts": {str(i): self.counts[i] for i in sorted(self.counts)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuantileDigest":
        out = cls(lo=data["lo"], hi=data["hi"], bins=data["bins"])
        out.count = int(data["count"])
        out.underflow = int(data["underflow"])
        out.overflow = int(data["overflow"])
        out.min = data["min"]
        out.max = data["max"]
        out.counts = {int(i): int(c) for i, c in data["counts"].items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileDigest n={self.count} "
            f"range=[{self.min}, {self.max}] bins={len(self.counts)}>"
        )
