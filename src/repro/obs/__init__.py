"""repro.obs — unified observability: metrics, events, and decision audits.

The paper's contribution is making network state *observable* to the
scheduler; this package makes the reproduction observable to the
experimenter.  One :class:`Observability` hub per run bundles:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  histograms, timestamped in sim time;
* :class:`~repro.obs.events.EventLog` — typed JSONL-ready event records;
* :class:`~repro.obs.audit.DecisionAudit` — per-query scheduler decision
  explanations, optionally paired with ground truth.

Instrumented call sites read ``sim.obs`` (``None`` when disabled) and guard
with one truthy check, so a run without observability pays nothing beyond
that check.  Attach with::

    obs = Observability(run={"policy": "aware"})
    obs.bind_sim(sim)          # wires sim.obs and the sim-time clock
    obs.attach_network(net)    # queue-threshold + per-link byte accounting

and export with ``repro.obs.export.write_jsonl(obs.snapshot_records(), path)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.audit import (
    DecisionAudit,
    NetworkGroundTruth,
    delay_error_stats,
    node_label,
)
from repro.obs.events import EVENT_KINDS, Event, EventLog
from repro.obs.health import HealthMonitor, HealthRule, default_rules
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullSink,
    NULL_SINK,
)
from repro.obs.quantiles import QuantileDigest
from repro.obs.telquality import TelemetryQuality
from repro.obs.timeseries import Series, TimeSeriesStore
from repro.obs.tracing import Span, SpanTracer
from repro.obs.whatif import WhatIf

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "Event",
    "EVENT_KINDS",
    "DecisionAudit",
    "NetworkGroundTruth",
    "node_label",
    "NullSink",
    "NULL_SINK",
    "NULL_OBS",
    "Span",
    "SpanTracer",
    "QuantileDigest",
    "Series",
    "TelemetryQuality",
    "TimeSeriesStore",
    "WhatIf",
    "HealthMonitor",
    "HealthRule",
    "default_rules",
]

# The disabled-observability singleton: falsy, absorbs any call chain.
NULL_OBS = NULL_SINK

# A queue is "congested" when its depth reaches this fraction of capacity;
# crossings are emitted as queue_threshold events.
DEFAULT_QUEUE_THRESHOLD_FRACTION = 0.75


class Observability:
    """One run's observability hub: metrics + events + decision audit."""

    def __init__(
        self,
        *,
        run: Optional[Dict[str, Any]] = None,
        max_events: Optional[int] = None,
        max_decisions: Optional[int] = None,
        probe_sample: int = 10,
        queue_threshold_fraction: float = DEFAULT_QUEUE_THRESHOLD_FRACTION,
        trace: bool = False,
        trace_probe_sample: int = 25,
        max_spans: Optional[int] = None,
        sample_interval: Optional[float] = None,
        ts_capacity: Optional[int] = None,
        health_rules: Optional[Any] = None,
        telquality: bool = False,
        whatif: bool = False,
    ) -> None:
        if probe_sample < 1:
            raise ValueError("probe_sample must be >= 1")
        if not 0.0 < queue_threshold_fraction <= 1.0:
            raise ValueError("queue_threshold_fraction must be in (0, 1]")
        self.run: Dict[str, Any] = dict(run or {})
        self.metrics = MetricsRegistry()
        self.events = EventLog(**({} if max_events is None else {"max_events": max_events}))
        self.audit = DecisionAudit(
            **({} if max_decisions is None else {"max_decisions": max_decisions})
        )
        # Causal span tracing is opt-in: instrumented call sites guard with
        # ``getattr(obs, "trace", None)`` so a traceless run pays nothing.
        self.trace: Optional[SpanTracer] = (
            SpanTracer(
                probe_sample=trace_probe_sample,
                **({} if max_spans is None else {"max_spans": max_spans}),
            )
            if trace
            else None
        )
        # Per-probe events at mesh-probing rates dwarf everything else; only
        # every Nth probe_sent/probe_received lands in the event log, while
        # exact totals always live in the metrics registry.
        self.probe_sample = probe_sample
        self._probe_tick = 0
        self.queue_threshold_fraction = queue_threshold_fraction
        self.ground_truth: Optional[NetworkGroundTruth] = None
        # Periodic sampling is opt-in like tracing: None unless a
        # sample_interval was given, so disabled runs schedule no sampler
        # events and export a byte-identical record stream.
        self.timeseries: Optional[TimeSeriesStore] = (
            TimeSeriesStore(
                sample_interval,
                **({} if ts_capacity is None else {"capacity": ts_capacity}),
            )
            if sample_interval is not None
            else None
        )
        # Built by attach_experiment_samplers once the probing interval is
        # known (the default rules are parameterized by it); an explicit
        # rule set here overrides the defaults.
        self.health: Optional[HealthMonitor] = None
        self._health_rules = health_rules
        # Telemetry-quality observatory — opt-in like tracing and sampling:
        # None unless requested, so instrumented call sites guard with one
        # getattr and a disabled run exports a byte-identical record stream.
        self.telquality: Optional[TelemetryQuality] = (
            TelemetryQuality() if telquality else None
        )
        # Counterfactual decision observatory — same opt-in contract.
        self.whatif: Optional[WhatIf] = WhatIf() if whatif else None
        # Satellite: the bounded audit drops silently past its cap; the
        # export emits one warning event carrying the final drop count.
        self._audit_overflow_warned = False

    def __bool__(self) -> bool:
        return True

    # -- wiring ------------------------------------------------------------

    def bind_sim(self, sim: Any) -> None:
        """Point every component at ``sim``'s clock and install this hub as
        ``sim.obs`` (the handle instrumented call sites read)."""
        clock = lambda: sim.now  # noqa: E731 - tiny closure over the sim
        self.metrics.bind_clock(clock)
        self.events.bind_clock(clock)
        self.audit.bind_clock(clock)
        if self.trace is not None:
            self.trace.bind_clock(clock)
        sim.obs = self

    def attach_network(self, network: Any) -> None:
        """Instrument a finalized network: queue-threshold crossing events on
        every egress queue and per-link carried-byte counters."""
        self.ground_truth = NetworkGroundTruth(network)
        nodes = list(network.hosts.values()) + list(network.switches.values())
        for node in nodes:
            for port in node.ports:
                queue = port.queue
                label = f"{node.name}[{port.port_index}]"
                threshold = max(
                    1, int(queue.capacity * self.queue_threshold_fraction)
                )
                queue.threshold = threshold
                queue.on_threshold = (
                    lambda depth, direction, _label=label, _thr=threshold: (
                        self._on_queue_threshold(_label, depth, _thr, direction)
                    )
                )
        for name, link in network.links.items():
            link.obs_counters = {
                "a": self.metrics.counter("link_bytes_total", link=name, direction="a"),
                "b": self.metrics.counter("link_bytes_total", link=name, direction="b"),
            }
        if self.telquality is not None:
            self.telquality.attach_network(network)
        if self.timeseries is not None:
            self._register_network_samplers(network)

    def _register_network_samplers(self, network: Any) -> None:
        """Per-tick samplers over live network state: egress queue depth
        (absolute and as a fraction of capacity, the saturation-rule input)
        and per-direction link utilization from carried-byte deltas."""
        ts = self.timeseries
        assert ts is not None
        nodes = sorted(
            list(network.hosts.values()) + list(network.switches.values()),
            key=lambda n: n.name,
        )
        queues = [
            (f"{node.name}[{port.port_index}]", port.queue)
            for node in nodes
            for port in node.ports
        ]
        links = [network.links[name] for name in sorted(network.links)]
        prev_bytes: Dict[Any, int] = {}

        def sample_network(store: TimeSeriesStore, now: float) -> None:
            for label, queue in queues:
                store.record("queue_depth", now, queue.depth, queue=label)
                store.record(
                    "queue_depth_frac", now,
                    queue.depth / queue.capacity if queue.capacity else 0.0,
                    queue=label,
                )
            for link in links:
                for direction, rate in (
                    ("a", link.rate_ab_bps), ("b", link.rate_ba_bps)
                ):
                    carried = link.bytes_carried[direction]
                    key = (link.name, direction)
                    delta = carried - prev_bytes.get(key, 0)
                    prev_bytes[key] = carried
                    store.record(
                        "link_utilization", now,
                        (delta * 8.0) / (rate * store.interval),
                        link=link.name, direction=direction,
                    )

        ts.register(sample_network)

    def attach_experiment_samplers(
        self,
        *,
        servers: Optional[Dict[str, Any]] = None,
        collector: Optional[Any] = None,
        store: Optional[Any] = None,
        probing_interval: Optional[float] = None,
    ) -> None:
        """Wire harness-level samplers (server load, telemetry staleness,
        probe loss rate, decision error) and build the health monitor.
        No-op unless sampling is enabled."""
        ts = self.timeseries
        if ts is None:
            return

        if servers:
            ordered = [(name, servers[name]) for name in sorted(servers)]

            def sample_servers(s: TimeSeriesStore, now: float) -> None:
                for name, server in ordered:
                    s.record("server_running", now, server.running, server=name)
                    s.record("server_queued", now, len(server.queued), server=name)

            ts.register(sample_servers)

        if store is not None:

            def sample_staleness(s: TimeSeriesStore, now: float) -> None:
                for node in store.seen_nodes():
                    age = store.node_age(node)
                    if age is not None:
                        s.record(
                            "telemetry_node_age", now, age, node=node_label(node)
                        )

            ts.register(sample_staleness)

        if collector is not None:
            prev = {"ingested": 0, "lost": 0}

            def sample_collector(s: TimeSeriesStore, now: float) -> None:
                ingested = collector.reports_ingested
                lost = collector.probes_lost
                d_in = ingested - prev["ingested"]
                d_lost = lost - prev["lost"]
                prev["ingested"] = ingested
                prev["lost"] = lost
                total = d_in + d_lost
                s.record("probe_loss_rate", now, d_lost / total if total else 0.0)
                s.record("probe_report_rate", now, d_in / s.interval)

            ts.register(sample_collector)

        # Estimate-vs-truth drift over the decisions recorded since the
        # previous tick; a tick with no new delay decisions records nothing,
        # leaving health streaks untouched.
        cursor = {"i": 0}

        def sample_decision_error(s: TimeSeriesStore, now: float) -> None:
            decisions = self.audit.decisions
            start = cursor["i"]
            if start >= len(decisions):
                return
            cursor["i"] = len(decisions)
            stats = delay_error_stats(
                c
                for d in decisions[start:]
                if d.metric == "delay"
                for c in d.candidates
            )
            mae = stats["mean_abs_error"]
            if mae is not None:
                s.record("decision_abs_error", now, mae)

        ts.register(sample_decision_error)

        # Telemetry-quality series feed the coverage_gap / staleness_ceiling
        # health rules.  Registered only when the observatory is attached,
        # so sampled-but-unobserved runs keep their series set unchanged.
        tq = self.telquality
        if tq is not None:

            def sample_telquality(s: TimeSeriesStore, now: float) -> None:
                frac = tq.coverage_fraction()
                if frac is not None:
                    s.record("telemetry_coverage_frac", now, frac)
                age = tq.take_max_decision_age()
                if age is not None:
                    s.record("telemetry_decision_age_max", now, age)

            ts.register(sample_telquality)

        # Per-tick max decision regret feeds the regret_ceiling health
        # rule; like the other opt-in series, registered only when the
        # counterfactual observatory is attached.
        wi = self.whatif
        if wi is not None:

            def sample_whatif(s: TimeSeriesStore, now: float) -> None:
                regret = wi.take_max_regret()
                if regret is not None:
                    s.record("decision_regret_max", now, regret)

            ts.register(sample_whatif)

        rules = self._health_rules
        if rules is None and probing_interval is not None:
            rules = default_rules(probing_interval)
        if rules:
            self.health = HealthMonitor(rules, self.events)

    def sample_tick(self, sim: Any) -> None:
        """One sampler tick: run every registered sampler at ``sim.now`` and
        evaluate health rules against the values just recorded.  Scheduled
        by the harness as a PeriodicTimer; reads state, never mutates it."""
        if self.timeseries is None:
            return
        now = sim.now
        self.timeseries.tick(now)
        if self.health is not None:
            self.health.evaluate(self.timeseries, now)

    # -- instrumentation entry points (terse, hot-path-friendly) -----------

    def _on_queue_threshold(
        self, queue: str, depth: int, threshold: int, direction: str
    ) -> None:
        self.metrics.counter("queue_threshold_crossings_total", queue=queue).inc()
        self.events.queue_threshold(
            queue=queue, depth=depth, threshold=threshold, direction=direction
        )

    def packet_dropped(
        self, *, queue: str, flow_id: int, seq: int, size_bytes: int, is_probe: bool
    ) -> None:
        self.metrics.counter("packets_dropped_total", queue=queue).inc()
        self.events.packet_dropped(
            queue=queue,
            flow_id=flow_id,
            seq=seq,
            size_bytes=size_bytes,
            is_probe=is_probe,
        )

    def _probe_sampled(self) -> bool:
        self._probe_tick += 1
        return self._probe_tick % self.probe_sample == 0

    def probe_sent(self, *, src: int, dst: int, seq: int) -> None:
        self.metrics.counter("probes_sent_total", src=src).inc()
        if self._probe_sampled():
            self.events.probe_sent(src=src, dst=dst, seq=seq, sampled=self.probe_sample)

    def probe_received(self, *, src: int, dst: int, seq: int, hops: int) -> None:
        self.metrics.counter("probe_reports_ingested_total").inc()
        if self._probe_sampled():
            self.events.probe_received(
                src=src, dst=dst, seq=seq, hops=hops, sampled=self.probe_sample
            )

    def probe_lost(self, *, src: int, dst: int, seq: int, lost: int) -> None:
        self.metrics.counter("probes_lost_total").inc(lost)
        self.events.probe_lost(src=src, dst=dst, seq=seq, lost=lost)

    def probe_malformed(self, *, reason: str, **fields: Any) -> None:
        self.metrics.counter("probe_reports_malformed_total").inc()
        self.events.warning(reason, **fields)

    def fault_injected(self, *, fault: str, target: str, **fields: Any) -> None:
        self.metrics.counter("faults_injected_total", fault=fault).inc()
        self.events.fault_injected(fault=fault, target=target, **fields)

    def fault_recovered(self, *, fault: str, target: str, **fields: Any) -> None:
        self.metrics.counter("faults_recovered_total", fault=fault).inc()
        self.events.fault_recovered(fault=fault, target=target, **fields)

    def node_quarantined(self, *, node: str, age: float, **fields: Any) -> None:
        self.metrics.counter("nodes_quarantined_total").inc()
        self.events.node_quarantined(node=node, age=age, **fields)

    def node_unquarantined(self, *, node: str, **fields: Any) -> None:
        self.events.node_unquarantined(node=node, **fields)

    # -- export ------------------------------------------------------------

    def snapshot_records(self) -> List[Dict[str, Any]]:
        """Every record this hub holds, JSON-ready, run labels attached."""
        # The audit drops decisions silently once full; surface the final
        # count as a single warning event at export time (one-shot so
        # repeated snapshots stay stable, and runs that never drop export
        # a byte-identical event stream).
        if self.audit.dropped_decisions and not self._audit_overflow_warned:
            self._audit_overflow_warned = True
            self.events.warning(
                "decision_audit_overflow",
                dropped=self.audit.dropped_decisions,
                max_decisions=self.audit.max_decisions,
            )
        records = (
            self.metrics.snapshot() + self.events.snapshot() + self.audit.snapshot()
        )
        # Time-series records go last so the metrics/events/audit prefix is
        # byte-identical whether or not sampling was enabled.
        if self.timeseries is not None:
            records += self.timeseries.snapshot()
        # Telemetry-quality records append after everything else for the
        # same reason: enabling collection leaves the prefix byte-identical.
        if self.telquality is not None:
            records += self.telquality.snapshot_records(self.events)
        # The whatif record is last of all: it replays the audit snapshots
        # above, and appending keeps every earlier kind byte-identical.
        if self.whatif is not None:
            records += self.whatif.snapshot_records(self.audit, self.events)
        if self.run:
            run = dict(self.run)
            for record in records:
                record["run"] = run
        return records

    def trace_records(self) -> List[Dict[str, Any]]:
        """Every assembled span, JSON-ready, run labels attached.  Kept
        separate from :meth:`snapshot_records` so trace exports never change
        the pre-existing obs export byte stream."""
        if self.trace is None:
            return []
        records = self.trace.snapshot()
        if self.run:
            run = dict(self.run)
            for record in records:
                record["run"] = run
        return records

    def summary(self) -> Dict[str, Any]:
        """Compact run-level digest (the ``run-summary`` exporter)."""
        out = {
            "run": dict(self.run),
            "instruments": len(self.metrics),
            "events": len(self.events),
            "events_by_kind": self.events.counts_by_kind(),
            "events_dropped": self.events.dropped_events,
            "decisions": len(self.audit),
            "decisions_dropped": self.audit.dropped_decisions,
            "delay_error": self.audit.error_report(),
        }
        if self.trace is not None:
            out["spans"] = len(self.trace)
            out["spans_dropped"] = self.trace.dropped_spans
        if self.timeseries is not None:
            out["timeseries"] = {
                "interval": self.timeseries.interval,
                "series": len(self.timeseries),
                "ticks": self.timeseries.ticks,
            }
        if self.health is not None:
            out["health"] = self.health.summary()
        if self.telquality is not None:
            out["telquality"] = self.telquality.summary()
        if self.whatif is not None:
            out["whatif"] = self.whatif.summary()
        return out
