"""Exporters for the observability layer: JSONL, CSV, and run summaries.

The wire format is one JSON object per line, discriminated by ``kind``:

* ``{"kind": "metric", ...}`` — one instrument snapshot (counter / gauge /
  histogram) from the metrics registry;
* ``{"kind": "event", "event": <kind>, "time": t, ...}`` — one structured
  event-log record;
* ``{"kind": "decision-audit", ...}`` — one scheduler ranking query with its
  per-candidate explanation;
* ``{"kind": "timeseries", ...}`` — one sampled series (ring-buffered
  points plus stride/offered bookkeeping, see :mod:`repro.obs.timeseries`),
  present when the run sampled with ``--sample-interval``;
* ``{"kind": "span", ...}`` — one causal-trace span (see
  :mod:`repro.obs.tracing`), written to a separate ``--trace-out`` file and
  summarized by ``repro trace-report``;
* ``{"kind": "profile", "profile": <summary>}`` — the merged engine
  profile (per-handler wall, phase attribution, overhead estimate),
  appended when a command runs with both ``--profile`` and ``--obs-out``;
* ``{"kind": "telquality", ...}`` — the telemetry-quality observatory
  record (INT coverage ledger, freshness digests, decision-error
  attribution; see :mod:`repro.obs.telquality`), present for
  ``--telquality`` runs and summarized by ``repro telemetry-report``;
* ``{"kind": "whatif", ...}`` — the counterfactual decision observatory
  record (per-decision hindsight regret, alternative-policy replay,
  staleness attribution; see :mod:`repro.obs.whatif`), present for
  ``--whatif`` runs and summarized by ``repro whatif-report``.

Records exported from a hub with run labels carry them under ``"run"`` so
multiple runs (e.g. every cell of a policy comparison) can share one file
and still be separated at analysis time.  :func:`render_obs_report` is the
``repro obs-report`` backend: it reads such a file back and prints counts
plus the per-policy estimate-vs-ground-truth delay error.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.obs.audit import delay_error_stats
from repro.obs.quantiles import QuantileDigest

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "write_metrics_csv",
    "flatten_labels",
    "render_obs_report",
]


def write_jsonl(records: Iterable[Dict[str, Any]], path: str, *, append: bool = False) -> int:
    """Write one JSON object per line; returns the number of lines written."""
    n = 0
    with open(path, "a" if append else "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
    return n


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


_CSV_FIELDS = (
    "name", "type", "labels", "value", "count", "sum", "mean",
    "p50", "p95", "p99", "updated_at",
)


def _escape_label(text: str) -> str:
    """Escape the label-flattening delimiters (`,` between pairs, `=` within
    a pair) plus the escape character itself, so a label value containing
    either survives a round trip through the flattened column."""
    return text.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")


def flatten_labels(labels: Dict[str, Any]) -> str:
    """Deterministic one-column rendering of a label dict: ``k=v`` pairs
    sorted by key, joined with ``,``, delimiters escaped."""
    return ",".join(
        f"{_escape_label(str(k))}={_escape_label(str(v))}"
        for k, v in sorted(labels.items())
    )


def write_metrics_csv(records: Iterable[Dict[str, Any]], path: str) -> int:
    """Flatten the ``metric`` records of an export into a CSV table."""
    n = 0
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            if record.get("kind") != "metric":
                continue
            row = dict(record)
            row["labels"] = flatten_labels(record.get("labels", {}))
            writer.writerow(row)
            n += 1
    return n


# -- obs-report rendering ---------------------------------------------------


def _run_key(record: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(record.get("run", {}).items()))


def _fmt_ms(value: Any) -> str:
    return f"{value * 1e3:.2f} ms" if isinstance(value, (int, float)) else "n/a"


def _fmt_s(value: Any) -> str:
    return f"{value:.3f} s" if isinstance(value, (int, float)) else "n/a"


def render_obs_report(records: List[Dict[str, Any]]) -> str:
    """Human-readable summary of one observability export."""
    by_kind: Dict[str, int] = {}
    for record in records:
        by_kind[record.get("kind", "?")] = by_kind.get(record.get("kind", "?"), 0) + 1
    lines = [
        f"records: {len(records)} "
        f"(metric {by_kind.get('metric', 0)}, event {by_kind.get('event', 0)}, "
        f"decision-audit {by_kind.get('decision-audit', 0)}, "
        f"timeseries {by_kind.get('timeseries', 0)}, "
        f"profile {by_kind.get('profile', 0)}, "
        f"telquality {by_kind.get('telquality', 0)}, "
        f"whatif {by_kind.get('whatif', 0)})",
    ]

    event_counts: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event":
            name = record.get("event", "?")
            event_counts[name] = event_counts.get(name, 0) + 1
    if event_counts:
        lines.append("events by kind:")
        for name, count in sorted(event_counts.items()):
            lines.append(f"  {name:<18} {count}")

    # Runner resilience: failure envelopes, retries, and cache corruption
    # recorded by the supervision layer (see repro.runner.supervisor).
    failed = [
        r for r in records
        if r.get("kind") == "event" and r.get("event") == "runner_run_failed"
    ]
    retried = [
        r for r in records
        if r.get("kind") == "event" and r.get("event") == "runner_run_retry"
    ]
    corrupt = [
        r for r in records
        if r.get("kind") == "event" and r.get("event") == "cache_corrupt"
    ]
    if failed or retried or corrupt:
        lines.append("runner resilience:")
        if failed:
            lines.append(f"  failed runs: {len(failed)}")
            for r in failed:
                signal_note = (
                    f", signal {r['exit_signal']}" if r.get("exit_signal") else ""
                )
                lines.append(
                    f"    {r.get('label', r.get('spec_hash', '?'))}: "
                    f"{r.get('failure_kind', '?')}/{r.get('error_type', '?')} "
                    f"after {r.get('attempts', '?')} attempt(s){signal_note}"
                )
        if retried:
            by_kind: Dict[str, int] = {}
            for r in retried:
                key = str(r.get("failure_kind", "?"))
                by_kind[key] = by_kind.get(key, 0) + 1
            detail = ", ".join(f"{k} {n}" for k, n in sorted(by_kind.items()))
            lines.append(f"  retries: {len(retried)} ({detail})")
        if corrupt:
            lines.append(
                f"  corrupt cache entries evicted: {len(corrupt)} "
                f"({', '.join(str(r.get('spec_hash', '?')) for r in corrupt)})"
            )

    # Per-run completion-time quantiles: merge the task_completion_seconds
    # histogram digests (per size class) into one per-run digest — merging
    # is exact, so this equals a digest built from every raw observation.
    digest_runs: Dict[Tuple[Tuple[str, Any], ...], QuantileDigest] = {}
    for record in records:
        if (
            record.get("kind") == "metric"
            and record.get("type") == "histogram"
            and record.get("name") == "task_completion_seconds"
            and record.get("digest")
        ):
            digest = QuantileDigest.from_dict(record["digest"])
            key = _run_key(record)
            if key in digest_runs:
                digest_runs[key].merge(digest)
            else:
                digest_runs[key] = digest
    if digest_runs:
        lines.append("completion-time quantiles (per run, merged digests):")
        for key in sorted(digest_runs):
            digest = digest_runs[key]
            label = (
                ", ".join(f"{k}={v}" for k, v in key) if key else "(unlabeled run)"
            )
            p50, p95, p99 = digest.quantiles((0.50, 0.95, 0.99))
            lines.append(
                f"  {label}: n={digest.count} "
                f"p50 {_fmt_s(p50)}, p95 {_fmt_s(p95)}, p99 {_fmt_s(p99)}, "
                f"max {_fmt_s(digest.max)}"
            )

    # Health-alert summary: fire/clear edge counts per rule, plus any
    # alerts still firing at export time.
    alert_rules: Dict[str, Dict[str, int]] = {}
    open_alerts: Dict[Tuple[str, str], int] = {}
    for record in records:
        if record.get("kind") == "event" and record.get("event") == "alert":
            rule = str(record.get("rule", "?"))
            state = str(record.get("state", "?"))
            counts = alert_rules.setdefault(rule, {"fire": 0, "clear": 0})
            counts[state] = counts.get(state, 0) + 1
            key = (rule, str(record.get("target", "")))
            if state == "fire":
                open_alerts[key] = open_alerts.get(key, 0) + 1
            elif state == "clear":
                open_alerts[key] = open_alerts.get(key, 0) - 1
    if alert_rules:
        lines.append("health alerts:")
        for rule in sorted(alert_rules):
            counts = alert_rules[rule]
            still = sorted(
                target for (r, target), n in open_alerts.items()
                if r == rule and n > 0
            )
            suffix = f"; still firing: {', '.join(still)}" if still else ""
            lines.append(
                f"  {rule:<18} fired {counts.get('fire', 0)}, "
                f"cleared {counts.get('clear', 0)}{suffix}"
            )

    # Per-run probe-loss summary from the collector's seq-gap detection:
    # each probe_lost event carries the size of one sequence gap.
    loss_runs: Dict[Tuple[Tuple[str, Any], ...], List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("kind") == "event" and record.get("event") == "probe_lost":
            loss_runs.setdefault(_run_key(record), []).append(record)
    if loss_runs:
        lines.append("probe loss (collector seq gaps):")
        for key in sorted(loss_runs):
            events = loss_runs[key]
            label = (
                ", ".join(f"{k}={v}" for k, v in key) if key else "(unlabeled run)"
            )
            total = sum(int(e.get("lost", 0)) for e in events)
            by_pair: Dict[Tuple[str, str], Dict[str, int]] = {}
            for e in events:
                pair = (str(e.get("src")), str(e.get("dst")))
                counts = by_pair.setdefault(pair, {"gaps": 0, "lost": 0})
                counts["gaps"] += 1
                counts["lost"] += int(e.get("lost", 0))
            lines.append(
                f"  {label}: {total} probes lost across {len(events)} gap events "
                f"({len(by_pair)} src/dst pairs)"
            )
            for (src, dst), counts in sorted(by_pair.items()):
                lines.append(
                    f"    {src} -> {dst}: {counts['lost']} lost "
                    f"in {counts['gaps']} gap(s)"
                )

    # Audit-capacity overflow: the bounded DecisionAudit emits one warning
    # event per run carrying how many decisions it dropped past its cap, so
    # truncated audits are never mistaken for complete ones.
    overflow = [
        r for r in records
        if r.get("kind") == "event"
        and r.get("event") == "warning"
        and r.get("reason") == "decision_audit_overflow"
    ]
    if overflow:
        lines.append("decision audit overflow (records dropped past capacity):")
        for r in overflow:
            key = _run_key(r)
            label = (
                ", ".join(f"{k}={v}" for k, v in key) if key else "(unlabeled run)"
            )
            lines.append(
                f"  {label}: {r.get('dropped', '?')} decisions dropped "
                f"(cap {r.get('max_decisions', '?')}) — audit sections below "
                f"cover a truncated sample"
            )

    # Per-run (≈ per-policy cell) decision audit summary.
    runs: Dict[Tuple[Tuple[str, Any], ...], List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("kind") == "decision-audit":
            runs.setdefault(_run_key(record), []).append(record)
    if runs:
        lines.append("decision audit (estimate vs ground truth, delay metric):")
        for key in sorted(runs):
            decisions = runs[key]
            label = (
                ", ".join(f"{k}={v}" for k, v in key) if key else "(unlabeled run)"
            )
            stats = delay_error_stats(
                c
                for d in decisions
                if d.get("metric") == "delay"
                for c in d.get("candidates", ())
            )
            lines.append(f"  {label}: {len(decisions)} decisions")
            if stats["samples"]:
                lines.append(
                    f"    delay error: mean {_fmt_ms(stats['mean_error'])}, "
                    f"abs {_fmt_ms(stats['mean_abs_error'])} over "
                    f"{stats['samples']} candidate estimates, "
                    f"{stats['skipped']} skipped "
                    f"(mean estimate {_fmt_ms(stats['mean_estimate'])}, "
                    f"mean truth {_fmt_ms(stats['mean_truth'])})"
                )
            else:
                lines.append(
                    "    delay error: n/a (no paired estimate/truth samples, "
                    f"{stats['skipped']} skipped)"
                )

    # Engine-profile records: top handlers and phase attribution, rendered
    # with the same table the --profile flag prints at run time.
    for record in records:
        if record.get("kind") == "profile" and record.get("profile"):
            from repro.simnet.engine import render_profile

            lines.append("engine profile:")
            lines.extend(
                "  " + line
                for line in render_profile(record["profile"]).splitlines()
            )
    return "\n".join(lines)
