"""Sim-time metrics registry: counters, gauges, and histograms.

Instruments are keyed by ``(name, labels)`` and timestamped in *simulated*
time (the registry reads a clock callable, normally ``lambda: sim.now``).
The registry is deliberately tiny — no background threads, no wall-clock,
no wire protocol — because its consumers are the exporters in
:mod:`repro.obs.export` and the run-summary report.

Disabled runs use :data:`NULL_SINK` (via ``repro.obs.NULL_OBS``): a falsy
object whose every method is a no-op, so instrumented hot paths pay exactly
one truthy check (``if obs: ...``) and nothing else.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.quantiles import QuantileDigest

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "NULL_SINK",
]

LabelsKey = Tuple[Tuple[str, str], ...]

# Default histogram bucket upper bounds (seconds-ish scale; callers with
# other units pass their own).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
)


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class NullSink:
    """Falsy universal no-op: stands in for any instrument or sub-sink of a
    disabled observability hub.  ``bool(NULL_SINK)`` is False so guarded call
    sites (``if obs: obs.metrics.counter(...)``) skip all work; unguarded
    calls still degrade to harmless no-ops returning the sink itself."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __call__(self, *args: Any, **kwargs: Any) -> "NullSink":
        return self

    def __getattr__(self, name: str) -> "NullSink":
        return self


NULL_SINK = NullSink()


class Counter:
    """Monotonically increasing count, timestamped at last increment."""

    __slots__ = ("name", "labels", "value", "updated_at", "_clock")

    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey, clock: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self.updated_at: float = 0.0
        self._clock = clock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self.value += amount
        self.updated_at = self._clock()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "metric",
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "updated_at": self.updated_at,
        }


class Gauge:
    """Last-written value, timestamped at last write."""

    __slots__ = ("name", "labels", "value", "updated_at", "_clock")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey, clock: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.value: Optional[float] = None
        self.updated_at: float = 0.0
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = value
        self.updated_at = self._clock()

    def add(self, delta: float) -> None:
        self.set((self.value or 0.0) + delta)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "metric",
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "updated_at": self.updated_at,
        }


class Histogram:
    """Fixed-bucket distribution with running sum/min/max.

    Buckets are upper bounds; observations above the last bound land in the
    implicit ``+Inf`` bucket.  Per-observation cost is one bisect over a
    short tuple.
    """

    __slots__ = (
        "name", "labels", "buckets", "counts", "count", "sum",
        "min", "max", "updated_at", "_clock", "digest",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelsKey,
        clock: Callable[[], float],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name}: need at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)   # last slot: +Inf
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.updated_at = 0.0
        self._clock = clock
        # Mergeable quantile sketch alongside the fixed buckets, so exports
        # carry p50/p95/p99 without storing raw observations.
        self.digest = QuantileDigest()

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.digest.add(value)
        self.updated_at = self._clock()

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile of every observed value (digest-backed; ~one bin
        width of relative error), or None when empty."""
        return self.digest.quantile(q)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "metric",
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.digest.quantile(0.50),
            "p95": self.digest.quantile(0.95),
            "p99": self.digest.quantile(0.99),
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.counts)},
                "+Inf": self.counts[-1],
            },
            "digest": self.digest.to_dict(),
            "updated_at": self.updated_at,
        }


class MetricsRegistry:
    """Instrument factory and cache, shared by one run's instrumentation.

    ``counter("x", node="n1")`` returns the same :class:`Counter` on every
    call with the same name+labels.  A name may not be reused with a
    different instrument type — that is almost always a typo'd label set.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._instruments: Dict[Tuple[str, LabelsKey], Any] = {}
        self._types: Dict[str, str] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point every existing and future instrument at a new time source
        (called when the hub is attached to a Simulator)."""
        self._clock = clock
        for inst in self._instruments.values():
            inst._clock = clock

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key = (name, _labels_key(labels))
        inst = self._instruments.get(key)
        if inst is not None:
            return inst
        seen = self._types.get(name)
        if seen is not None and seen != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {seen}, not {cls.kind}"
            )
        inst = cls(name, key[1], self._clock, **kwargs)
        self._instruments[key] = inst
        self._types[name] = cls.kind
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> List[Any]:
        return list(self._instruments.values())

    def snapshot(self) -> List[Dict[str, Any]]:
        """One JSON-ready record per instrument, sorted by (name, labels)
        for deterministic export."""
        return [
            inst.snapshot()
            for _key, inst in sorted(self._instruments.items(), key=lambda kv: kv[0])
        ]
