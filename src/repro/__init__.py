"""repro — reproduction of "INT Based Network-Aware Task Scheduling for Edge
Computing" (IPDPS-W 2021).

The package layers four subsystems (bottom-up):

* :mod:`repro.simnet` — packet-level discrete-event network simulator
  (replaces the paper's Mininet/BMv2 testbed);
* :mod:`repro.p4` — miniature programmable data plane, including the
  paper's register-based INT program;
* :mod:`repro.telemetry` — probe generation and INT report collection;
* :mod:`repro.core` — the paper's contribution: telemetry store, topology
  inference, delay/bandwidth estimators, Algorithm 1 ranking, the
  network-aware scheduler, and the Nearest/Random baselines;
* :mod:`repro.edge` — edge-computing workload layer (tasks, devices,
  servers, background congestion);
* :mod:`repro.experiments` — harnesses that regenerate every table and
  figure in the paper's evaluation.

Quickstart: see ``examples/quickstart.py`` for an end-to-end walk-through.
"""

from repro.simnet import Network, Simulator
from repro.simnet.random import RandomStreams
from repro.core import (
    NearestScheduler,
    NetworkAwareScheduler,
    RandomScheduler,
    TelemetryStore,
)
from repro.edge import (
    Job,
    SizeClass,
    Task,
    WORKLOAD_DISTRIBUTED,
    WORKLOAD_SERVERLESS,
)

__version__ = "1.0.0"

__all__ = [
    "Network",
    "Simulator",
    "RandomStreams",
    "NearestScheduler",
    "NetworkAwareScheduler",
    "RandomScheduler",
    "TelemetryStore",
    "Job",
    "SizeClass",
    "Task",
    "WORKLOAD_DISTRIBUTED",
    "WORKLOAD_SERVERLESS",
    "__version__",
]
