"""Packet-path tracing — the simulator's tcpdump.

A :class:`PacketTracer` hooks a set of nodes and records hop events
(ingress/egress/drop) for packets matching a predicate.  Used for debugging
experiments ("why did this transfer stall?"), for validating routing in
tests, and by the trace-driven analysis helpers.

The hooks wrap ``on_ingress``/``on_egress``/``on_packet_dropped`` of the
node instances, so tracing can be attached to a live network without
touching the classes; :meth:`PacketTracer.detach` restores the originals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.simnet.node import Node
from repro.simnet.packet import Packet

__all__ = ["HopEvent", "PacketTracer", "flow_predicate", "probe_predicate"]


@dataclass(frozen=True)
class HopEvent:
    """One observation of a packet at a node."""

    time: float
    node: str
    kind: str          # "ingress" | "egress" | "drop" | "truncated"
    packet_id: int
    flow_id: int
    seq: int
    size_bytes: int
    enq_depth: Optional[int] = None   # egress events only


def flow_predicate(flow_id: int) -> Callable[[Packet], bool]:
    """Match one flow's packets."""
    return lambda packet: packet.flow_id == flow_id


def probe_predicate(packet: Packet) -> bool:
    """Match INT probes."""
    return packet.is_probe


class PacketTracer:
    """Records matching packets' hop events across the attached nodes."""

    def __init__(
        self,
        nodes: Iterable[Node],
        *,
        predicate: Optional[Callable[[Packet], bool]] = None,
        max_events: int = 100_000,
    ) -> None:
        self.predicate = predicate if predicate is not None else (lambda p: True)
        self.max_events = max_events
        self.events: List[HopEvent] = []
        self.truncated = False
        self._originals: Dict[Node, tuple] = {}
        for node in nodes:
            self._attach(node)

    # -- wiring -----------------------------------------------------------

    def _attach(self, node: Node) -> None:
        orig_ingress = node.on_ingress
        orig_egress = node.on_egress
        orig_drop = node.on_packet_dropped
        self._originals[node] = (orig_ingress, orig_egress, orig_drop)
        tracer = self

        def traced_ingress(packet, port, _orig=orig_ingress, _node=node):
            tracer._record(_node, "ingress", packet)
            _orig(packet, port)

        def traced_egress(packet, port, enq_depth, _orig=orig_egress, _node=node):
            tracer._record(_node, "egress", packet, enq_depth)
            _orig(packet, port, enq_depth)

        def traced_drop(packet, port, _orig=orig_drop, _node=node):
            tracer._record(_node, "drop", packet)
            _orig(packet, port)

        node.on_ingress = traced_ingress
        node.on_egress = traced_egress
        node.on_packet_dropped = traced_drop

    def detach(self) -> None:
        """Restore the original handlers on every attached node."""
        for node, (ingress, egress, drop) in self._originals.items():
            node.on_ingress = ingress
            node.on_egress = egress
            node.on_packet_dropped = drop
        self._originals.clear()

    # -- recording ----------------------------------------------------------

    def _record(self, node: Node, kind: str, packet: Packet, enq_depth=None) -> None:
        if not self.predicate(packet):
            return
        if self.truncated:
            return
        if len(self.events) >= self.max_events:
            # Truncation is loud, not silent: one sentinel event marks where
            # the trace stops (neutral ids so per-packet analyses — which
            # filter on ingress/egress/drop kinds — are unaffected), and the
            # run's event log gets a warning when observability is attached.
            self.truncated = True
            self.events.append(
                HopEvent(
                    time=node.sim.now,
                    node=node.name,
                    kind="truncated",
                    packet_id=-1,
                    flow_id=-1,
                    seq=-1,
                    size_bytes=0,
                )
            )
            obs = getattr(node.sim, "obs", None)
            if obs:
                obs.events.warning(
                    "packet_tracer_truncated",
                    node=node.name,
                    max_events=self.max_events,
                )
            return
        self.events.append(
            HopEvent(
                time=node.sim.now,
                node=node.name,
                kind=kind,
                packet_id=packet.packet_id,
                flow_id=packet.flow_id,
                seq=packet.seq,
                size_bytes=packet.size_bytes,
                enq_depth=enq_depth,
            )
        )

    # -- analysis -----------------------------------------------------------

    def path_of(self, packet_id: int) -> List[str]:
        """Node names a packet visited, in order (ingress events)."""
        return [
            e.node for e in self.events
            if e.packet_id == packet_id and e.kind == "ingress"
        ]

    def drops(self) -> List[HopEvent]:
        return [e for e in self.events if e.kind == "drop"]

    def events_for_flow(self, flow_id: int) -> List[HopEvent]:
        return [e for e in self.events if e.flow_id == flow_id]

    def one_way_delay(self, packet_id: int) -> Optional[float]:
        """First-egress to last-ingress time for one packet, or None."""
        times = [e.time for e in self.events if e.packet_id == packet_id]
        if len(times) < 2:
            return None
        return max(times) - min(times)

    def __len__(self) -> int:
        return len(self.events)
