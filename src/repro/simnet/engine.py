"""Discrete-event simulation core.

A deliberately small engine in the style of ns-3's scheduler: a binary heap
of ``(time, sequence, callback)`` entries.  Callbacks run at their scheduled
simulated time; ties are broken by insertion order so the simulation is fully
deterministic for a given seed.

The engine is callback-based rather than coroutine-based: profiling of early
prototypes showed the callback form is ~3x faster in CPython for the millions
of per-packet events the Fig. 5–9 experiments generate, and the network
stack's state machines (queues, transports) are naturally event-driven.
"""

from __future__ import annotations

import heapq
import time as _walltime
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = [
    "EventHandle",
    "Simulator",
    "PeriodicTimer",
    "EngineProfiler",
    "render_profile",
    "phase_coverage",
]

_perf_counter = _walltime.perf_counter

# Heap entries are plain (time, seq, handle, fn, args) tuples: tuple
# comparison runs in C and the seq tiebreaker guarantees the later fields are
# never compared.  The callback and its arguments live in the tuple itself so
# the hot loop never touches handle attributes — and fire-and-forget events
# posted via :meth:`Simulator.post` carry ``None`` in the handle slot,
# skipping the ``EventHandle`` allocation entirely.
_HeapEntry = Tuple[float, int, Optional["EventHandle"], Callable[..., Any], tuple]


class EventHandle:
    """Handle to a scheduled event, usable for cancellation.

    Cancellation is lazy: the heap entry stays in the queue and is discarded
    when popped, which keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time:.6f} {name} [{state}]>"


class EngineProfiler:
    """Hot-path profile of one simulation: per-event-type counts and handler
    wall-time, plus the event-queue high-water mark.

    Event types are handler qualnames (``PortQueue._dequeue`` etc.), so the
    profile maps directly onto the code to optimize.  Wall-times are real
    (``perf_counter``) and therefore nondeterministic — the runner keeps the
    summary in the result *provenance*, never in the cached payload, so
    profiled runs stay byte-identical across serial / parallel / cached.

    **Phase scopes.**  Handlers are coarse: ``Switch.on_ingress`` is one
    number covering routing lookup, the P4 pipeline, and the egress enqueue.
    Instrumented components open nested *phase scopes* inside the running
    handler via :meth:`phase_begin` / :meth:`phase_next` / :meth:`phase_end`;
    each scope accumulates under a semicolon-joined path rooted at the
    handler qualname (``Switch.on_ingress;p4_pipeline;routing``) — the
    collapsed-stack form flamegraph tooling consumes directly.  Paths are
    interned per ``(parent, name)`` pair so steady state is one tuple hash,
    one clock read per edge, and one small-dict update per scope.  Scopes
    must balance within a handler; the engine resets the path between events
    so an unbalanced scope cannot leak across events.

    The profiler also self-reports an *overhead estimate*: per-scope and
    per-event accounting costs are measured by a short calibration loop at
    summary time and multiplied out, so every profile carries an honest
    bound on how much of its wall time is the profiler itself.
    """

    __slots__ = (
        "by_type",
        "events_total",
        "queue_high_water",
        "wall_s",
        "phases",
        "phase_firsts",
        "phase_nexts",
        "memory",
        "_stack",
        "_path",
        "_paths",
        "_t0",
    )

    def __init__(self) -> None:
        # name -> [count, wall_seconds]; a mutable list keeps the per-event
        # update to one dict lookup + two inplace adds.
        self.by_type: Dict[str, List[float]] = {}
        self.events_total = 0
        self.queue_high_water = 0
        self.wall_s = 0.0
        # path -> [count, wall_seconds] for phase scopes, path rooted at the
        # handler qualname the scope ran under.
        self.phases: Dict[str, List[float]] = {}
        # Scope-opening style counters, for the overhead model: phase_first
        # opens cost no clock read, phase_next opens share the close's read.
        # (Total scope count is derived from `phases` at summary time.)
        self.phase_firsts = 0
        self.phase_nexts = 0
        # Memory attribution (gc / tracemalloc), attached by the runner's
        # MemoryCapture when enabled; rides into the summary untouched.
        self.memory: Optional[Dict[str, Any]] = None
        # Scope state: parent paths + start times, current path, and the
        # (parent, name) -> path intern table.
        self._stack: List[Tuple[str, float]] = []
        self._path = ""
        self._paths: Dict[Tuple[str, str], str] = {}
        # Wall-clock timestamp of the running event's start, stamped by the
        # engine loop; lets phase_first open the first scope of a handler
        # with zero extra clock reads.
        self._t0 = 0.0

    # -- phase scopes ------------------------------------------------------

    def phase_begin(self, name: str) -> None:
        """Open a phase scope named ``name`` under the current path."""
        parent = self._path
        key = (parent, name)
        path = self._paths.get(key)
        if path is None:
            path = f"{parent};{name}" if parent else name
            self._paths[key] = path
        self._stack.append((parent, _perf_counter()))
        self._path = path

    def phase_first(self, name: str) -> None:
        """Open the *first* scope of a handler, backdated to the handler's
        own start time (stamped by the engine loop).  Costs no clock read,
        and the handler's entry bookkeeping lands inside the scope instead
        of leaking into unattributed self-time — this is what keeps phase
        coverage of the hot handlers near 1.0.  Falls back to
        :meth:`phase_begin` semantics when scopes are already open (the
        handler was called from inside another instrumented path)."""
        parent = self._path
        key = (parent, name)
        path = self._paths.get(key)
        if path is None:
            path = f"{parent};{name}" if parent else name
            self._paths[key] = path
        if self._stack:
            start = _perf_counter()
        else:
            start = self._t0
            self.phase_firsts += 1
        self._stack.append((parent, start))
        self._path = path

    def phase_end(self) -> None:
        """Close the innermost open phase scope."""
        t = _perf_counter()
        parent, start = self._stack.pop()
        entry = self.phases.get(self._path)
        if entry is None:
            self.phases[self._path] = [1, t - start]
        else:
            entry[0] += 1
            entry[1] += t - start
        self._path = parent

    def phase_next(self, name: str) -> None:
        """Close the current scope and open a sibling named ``name`` with a
        single clock read — the cheap transition for sequential phases."""
        t = _perf_counter()
        parent, start = self._stack[-1]
        entry = self.phases.get(self._path)
        if entry is None:
            self.phases[self._path] = [1, t - start]
        else:
            entry[0] += 1
            entry[1] += t - start
        self.phase_nexts += 1
        key = (parent, name)
        path = self._paths.get(key)
        if path is None:
            path = f"{parent};{name}" if parent else name
            self._paths[key] = path
        self._stack[-1] = (parent, t)
        self._path = path

    def _enter_event(self, handler_name: str) -> None:
        """Root the phase path at the running handler (engine loop only)."""
        self._path = handler_name

    def _exit_event(self) -> None:
        if self._stack:
            # A handler raised (or forgot phase_end) with scopes open:
            # drop them so the imbalance cannot leak into the next event.
            self._stack.clear()
        self._path = ""

    # -- overhead self-measurement ----------------------------------------

    @staticmethod
    def _calibrate(iterations: int = 2000) -> Tuple[float, float, float]:
        """Measure the profiler's per-operation costs on this machine with a
        throwaway profiler: (seconds per clock read, seconds per scope
        record, seconds per event accounting), each with the bare loop
        iteration cost subtracted.  Called at summary time; the result is
        real wall-time and nondeterministic by design."""
        # Bare loop baseline, subtracted from every per-op measurement so
        # the model charges the profiler for its own work — calls included —
        # but not the calibration loop's own iteration cost.
        t0 = _perf_counter()
        for _ in range(iterations):
            pass
        baseline = (_perf_counter() - t0) / iterations

        t0 = _perf_counter()
        for _ in range(iterations):
            _perf_counter()
        per_read = max((_perf_counter() - t0) / iterations - baseline, 0.0)

        # A begin/end pair costs two clock reads plus the stack push/pop and
        # the phases-dict record; isolate the non-clock part.
        scratch = EngineProfiler()
        scratch._enter_event("calibration")
        t0 = _perf_counter()
        for _ in range(iterations):
            scratch.phase_begin("a")
            scratch.phase_end()
        per_pair_full = (_perf_counter() - t0) / iterations - baseline
        per_record = max(per_pair_full - 2.0 * per_read, 0.0)

        # Per-event accounting: two clock reads, a qualname lookup, and one
        # small-dict update — mirror the _run_profiled bookkeeping.
        by_type: Dict[str, List[float]] = {}
        fn = scratch.summary
        t0 = _perf_counter()
        for _ in range(iterations):
            ts = _perf_counter()
            name = getattr(fn, "__qualname__", None) or repr(fn)
            elapsed = _perf_counter() - ts
            stats = by_type.get(name)
            if stats is None:
                by_type[name] = [1, elapsed]
            else:
                stats[0] += 1
                stats[1] += elapsed
        per_event = max((_perf_counter() - t0) / iterations - baseline, 0.0)
        return per_read, per_record, per_event

    def overhead_estimate(self) -> Dict[str, Any]:
        """Self-measured accounting cost: per-op prices from a calibration
        loop, multiplied by exact op counts.  Every recorded scope is one
        record; clock reads depend on how scopes were opened — begin/end
        pairs read twice, a phase_next shares one read between close and
        open, and a phase_first open reads nothing."""
        per_read, per_record, per_event = self._calibrate()
        pairs = sum(int(entry[0]) for entry in self.phases.values())
        reads = max(2 * pairs - self.phase_firsts - self.phase_nexts, 0)
        total = (
            reads * per_read
            + pairs * per_record
            + self.events_total * per_event
        )
        return {
            "phase_pairs": pairs,
            "clock_reads": reads,
            "per_read_s": per_read,
            "per_record_s": per_record,
            "per_event_s": per_event,
            "total_s": total,
            "fraction_of_wall": (total / self.wall_s) if self.wall_s else 0.0,
        }

    def summary(self) -> Dict[str, Any]:
        out = {
            "events_total": self.events_total,
            "queue_high_water": self.queue_high_water,
            "wall_s": self.wall_s,
            "by_type": {
                name: {"count": int(count), "wall_s": wall}
                for name, (count, wall) in sorted(self.by_type.items())
            },
            "phases": {
                path: {"count": int(count), "wall_s": wall}
                for path, (count, wall) in sorted(self.phases.items())
            },
            "overhead": self.overhead_estimate(),
            "memory": self.memory,
        }
        out["phase_coverage"] = phase_coverage(out)
        return out


def phase_coverage(summary: Dict[str, Any]) -> Dict[str, float]:
    """Fraction of each handler's wall time attributed to its direct child
    phases (``sum(child inclusive) / handler inclusive``), for handlers that
    have at least one phase.  The nesting invariant makes each fraction
    ≤ 1.0 up to clock noise; values near 1.0 mean the phase taxonomy
    explains nearly all of the handler's cost."""
    phases = summary.get("phases") or {}
    children: Dict[str, float] = {}
    for path, stats in phases.items():
        head, sep, tail = path.partition(";")
        if sep and ";" not in tail:
            children[head] = children.get(head, 0.0) + float(stats["wall_s"])
    out: Dict[str, float] = {}
    for handler, covered in children.items():
        handler_stats = (summary.get("by_type") or {}).get(handler)
        if handler_stats and handler_stats.get("wall_s"):
            out[handler] = covered / float(handler_stats["wall_s"])
    return dict(sorted(out.items()))


def render_profile(summary: Dict[str, Any]) -> str:
    """Human-readable engine profile: top event types by handler wall-time,
    top phases, per-handler phase coverage, the self-measured profiler
    overhead, and (when captured) the memory attribution."""
    lines = [
        f"engine profile: {summary['events_total']} events, "
        f"queue high-water {summary['queue_high_water']}, "
        f"wall {summary['wall_s']:.3f} s"
    ]
    by_type = summary.get("by_type", {})
    top = sorted(by_type.items(), key=lambda kv: kv[1]["wall_s"], reverse=True)
    for name, stats in top[:12]:
        share = (
            100.0 * stats["wall_s"] / summary["wall_s"] if summary["wall_s"] else 0.0
        )
        lines.append(
            f"  {name:<44} {stats['count']:>9} events  "
            f"{stats['wall_s'] * 1e3:>9.1f} ms  ({share:4.1f}%)"
        )
    if len(top) > 12:
        lines.append(f"  ... and {len(top) - 12} more event types")

    phases = summary.get("phases") or {}
    if phases:
        lines.append("hot-path phases (inclusive wall time):")
        top_phases = sorted(
            phases.items(), key=lambda kv: kv[1]["wall_s"], reverse=True
        )
        for path, stats in top_phases[:16]:
            lines.append(
                f"  {path:<52} {stats['count']:>9}x  "
                f"{stats['wall_s'] * 1e3:>9.1f} ms"
            )
        if len(top_phases) > 16:
            lines.append(f"  ... and {len(top_phases) - 16} more phases")
    coverage = summary.get("phase_coverage") or {}
    if coverage:
        covered = ", ".join(
            f"{name} {100.0 * frac:.1f}%" for name, frac in coverage.items()
        )
        lines.append(f"phase coverage (child/handler wall): {covered}")
    overhead = summary.get("overhead")
    if overhead:
        lines.append(
            f"profiler overhead (self-measured): ~{overhead['total_s'] * 1e3:.1f} ms "
            f"({100.0 * overhead['fraction_of_wall']:.1f}% of profiled wall) "
            f"over {overhead['phase_pairs']} phase scopes"
        )
    memory = summary.get("memory")
    if memory:
        lines.append(
            f"memory: gc collections {memory.get('gc_collections', 0)}, "
            f"collected {memory.get('gc_collected', 0)} objects, "
            f"allocated-blocks delta {memory.get('allocated_blocks_delta', 0)}"
        )
        for site in (memory.get("tracemalloc") or {}).get("top", [])[:5]:
            lines.append(
                f"  alloc {site['size_kb']:>9.1f} KiB  {site['count']:>8} blocks  "
                f"{site['site']}"
            )
    return "\n".join(lines)


class Simulator:
    """Event queue with a simulated clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=10.0)

    Invariants:

    * :attr:`now` never decreases.
    * Events scheduled for the same time fire in scheduling order.
    * Events may only be scheduled at or after :attr:`now`.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self._running = False
        self._stop_requested = False
        # Live (scheduled, not yet fired or cancelled) event count — kept
        # exact on every push / fire / cancel so pending_events() is O(1).
        self._live: int = 0
        # Cancelled entries still sitting in the heap.  Lazy cancellation
        # leaves tombstones until popped; when they outnumber the live
        # entries the heap is compacted in one O(n) rebuild.
        self._tombstones: int = 0
        self.events_executed: int = 0
        self.events_cancelled: int = 0
        # Observability hub (repro.obs.Observability) or None when disabled.
        # Instrumented components read this at call time and guard with one
        # truthy check, so a run without observability pays nothing else.
        self.obs: Optional[Any] = None
        # Fault injector (repro.faults.FaultInjector) or None.  Set by
        # FaultInjector.arm() — the same registered-on-the-engine convention
        # as `obs`, so any component can discover the active fault plan.
        self.faults: Optional[Any] = None
        # EngineProfiler or None.  run() dispatches to a separate profiled
        # loop when set, so the unprofiled hot loop stays untouched.
        self.profiler: Optional[EngineProfiler] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.9f}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f} before now={self._now:.9f}"
            )
        handle = EventHandle(time, fn, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, handle, fn, args))
        return handle

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` ``delay`` seconds from now, fire-and-forget.

        The hot-path twin of :meth:`schedule`: no :class:`EventHandle` is
        allocated, so the event cannot be cancelled.  Per-packet machinery
        (NIC transmit completions, link propagation) never cancels its
        events, which makes this the zero-allocation scheduling path —
        one heap tuple per event and nothing else.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.9f}s in the past")
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, None, fn, args))

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`post`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f} before now={self._now:.9f}"
            )
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, None, fn, args))

    def reschedule(self, handle: EventHandle, delay: float) -> EventHandle:
        """Re-arm a handle that has already fired, reusing the object.

        This is the event-pool path for self-rescheduling machinery
        (periodic timers, CBR sources): the owner's own handle is its
        free-list of one.  Only a *fired* handle may be reused — a cancelled
        handle still has a tombstone entry in the heap, and resurrecting it
        would alias the new event with the stale entry (the tombstone would
        fire it early).  The guards below make that aliasing impossible.
        """
        if handle.cancelled:
            raise SimulationError("cannot reschedule a cancelled handle")
        if not handle.fired:
            raise SimulationError(
                "cannot reschedule a pending handle (cancel it and schedule anew)"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.9f}s in the past")
        time = self._now + delay
        handle.time = time
        handle.fired = False
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, (time, self._seq, handle, handle.fn, handle.args))
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Cancelling twice or cancelling an event
        that already fired is an error — it almost always indicates a state
        machine bug in the caller."""
        if handle.fired:
            raise SimulationError("cannot cancel an event that already fired")
        if handle.cancelled:
            raise SimulationError("event already cancelled")
        handle.cancelled = True
        self.events_cancelled += 1
        self._live -= 1
        self._tombstones += 1
        # Compact once tombstones dominate: routing/fault churn can cancel
        # far more events than the run ever pops, and each tombstone costs a
        # log(n) discard later.  One O(n) rebuild amortises to O(1) per
        # cancel and keeps the heap near its live size.
        if self._tombstones > 64 and self._tombstones * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap in one rebuild.

        Compacts *in place* (slice assignment, not rebinding): the run loops
        hold a local alias to the heap list, and a cancel fired from inside a
        handler must compact the list that alias points at.
        """
        live = [
            entry for entry in self._heap
            if entry[2] is None or not entry[2].cancelled
        ]
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._tombstones = 0

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._heap:
            time, _seq, handle, fn, args = heapq.heappop(self._heap)
            if handle is not None:
                if handle.cancelled:
                    self._tombstones -= 1
                    continue
                handle.fired = True
            self._now = time
            self._live -= 1
            self.events_executed += 1
            fn(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have executed in this call.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run`` calls
        behave like contiguous wall-clock windows.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            heap = self._heap
            pop = heapq.heappop
            if self.profiler is not None:
                executed = self._run_profiled(until, max_events)
            else:
                # Hot loop: everything it touches per event is a local or a
                # tuple field.  Counters are reconciled in the finally block
                # so the loop body does no instance-attribute stores beyond
                # the clock.
                while heap and not self._stop_requested:
                    if until is not None and heap[0][0] > until:
                        break
                    time, _seq, handle, fn, args = pop(heap)
                    if handle is not None:
                        if handle.cancelled:
                            self._tombstones -= 1
                            continue
                        handle.fired = True
                    self._now = time
                    self._live -= 1
                    self.events_executed += 1
                    fn(*args)
                    executed += 1
                    if max_events is not None and executed >= max_events:
                        break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stop_requested:
            # Jump to the window edge only when no runnable event at or
            # before ``until`` was left behind.  Checking the heap directly
            # (rather than whether the event budget tripped the break) keeps
            # the clock honest in the corner cases: a budget that runs out
            # exactly as the queue drains may still jump, while a budget
            # exhausted with work pending must not skip over it.
            if not any(
                t <= until and (h is None or not h.cancelled)
                for t, _s, h, _f, _a in self._heap
            ):
                self._now = until

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """The :meth:`run` loop with per-event profiling.  A separate copy so
        the unprofiled loop pays nothing; semantics are identical — the
        profiler observes, never perturbs, the event order."""
        profiler = self.profiler
        by_type = profiler.by_type
        heap = self._heap
        pop = heapq.heappop
        clock = _walltime.perf_counter
        executed = 0
        loop_start = clock()
        try:
            while heap and not self._stop_requested:
                if until is not None and heap[0][0] > until:
                    break
                depth = len(heap)
                if depth > profiler.queue_high_water:
                    profiler.queue_high_water = depth
                time, _seq, handle, fn, args = pop(heap)
                if handle is not None:
                    if handle.cancelled:
                        self._tombstones -= 1
                        continue
                    handle.fired = True
                self._now = time
                self._live -= 1
                self.events_executed += 1
                name = getattr(fn, "__qualname__", None) or repr(fn)
                profiler._path = name
                t0 = clock()
                profiler._t0 = t0
                fn(*args)
                elapsed = clock() - t0
                if profiler._stack:
                    profiler._exit_event()
                stats = by_type.get(name)
                if stats is None:
                    by_type[name] = [1, elapsed]
                else:
                    stats[0] += 1
                    stats[1] += elapsed
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            profiler._exit_event()
            profiler.events_total += executed
            profiler.wall_s += clock() - loop_start
        return executed

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1): the
        count is maintained on every schedule / post / fire / cancel."""
        return self._live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f} pending={len(self._heap)} "
            f"executed={self.events_executed}>"
        )


class PeriodicTimer:
    """Fires a callback at a fixed period until stopped.

    Used by probe senders (100 ms INT collection), CBR traffic sources, and
    the ping application.  The first firing happens at ``start_delay`` after
    :meth:`start` (default: one full period).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._fn = fn
        self._args = args
        # Cached label for the profiler's phase scope: attributes the 48K+
        # timer fires of a big run to the callbacks behind them.
        self._fn_label = getattr(fn, "__qualname__", None) or "callback"
        self._start_delay = period if start_delay is None else start_delay
        self._jitter_fn = jitter_fn
        self._handle: Optional[EventHandle] = None
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return self._handle is not None

    def start(self) -> None:
        if self._handle is not None:
            raise SimulationError("timer already started")
        self._handle = self._sim.schedule(self._start_delay, self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            if not self._handle.fired:
                self._sim.cancel(self._handle)
            self._handle = None

    def _fire(self) -> None:
        self.fire_count += 1
        delay = self.period
        if self._jitter_fn is not None:
            delay = max(0.0, delay + self._jitter_fn())
        handle = self._handle
        if handle is not None and handle.fired and not handle.cancelled:
            # Self-rescheduling fast path: re-arm the handle that just fired
            # us instead of allocating a fresh handle + bound method per
            # period (48K+ fires in a big run).  The guard falls back to a
            # fresh schedule when _fire was invoked out-of-band (tests
            # driving the callback directly).
            self._sim.reschedule(handle, delay)
        else:
            self._handle = self._sim.schedule(delay, self._fire)
        prof = self._sim.profiler
        if prof is None:
            self._fn(*self._args)
            return
        prof.phase_begin(self._fn_label)
        self._fn(*self._args)
        prof.phase_end()
