"""Discrete-event simulation core.

A deliberately small engine in the style of ns-3's scheduler: a binary heap
of ``(time, sequence, callback)`` entries.  Callbacks run at their scheduled
simulated time; ties are broken by insertion order so the simulation is fully
deterministic for a given seed.

The engine is callback-based rather than coroutine-based: profiling of early
prototypes showed the callback form is ~3x faster in CPython for the millions
of per-packet events the Fig. 5–9 experiments generate, and the network
stack's state machines (queues, transports) are naturally event-driven.
"""

from __future__ import annotations

import heapq
import time as _walltime
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["EventHandle", "Simulator", "PeriodicTimer", "EngineProfiler", "render_profile"]

# Heap entries are plain (time, seq, handle) tuples: tuple comparison runs in
# C and the seq tiebreaker guarantees the handle is never compared.
_HeapEntry = Tuple[float, int, "EventHandle"]


class EventHandle:
    """Handle to a scheduled event, usable for cancellation.

    Cancellation is lazy: the heap entry stays in the queue and is discarded
    when popped, which keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time:.6f} {name} [{state}]>"


class EngineProfiler:
    """Hot-path profile of one simulation: per-event-type counts and handler
    wall-time, plus the event-queue high-water mark.

    Event types are handler qualnames (``PortQueue._dequeue`` etc.), so the
    profile maps directly onto the code to optimize.  Wall-times are real
    (``perf_counter``) and therefore nondeterministic — the runner keeps the
    summary in the result *provenance*, never in the cached payload, so
    profiled runs stay byte-identical across serial / parallel / cached.
    """

    __slots__ = ("by_type", "events_total", "queue_high_water", "wall_s")

    def __init__(self) -> None:
        # name -> [count, wall_seconds]; a mutable list keeps the per-event
        # update to one dict lookup + two inplace adds.
        self.by_type: Dict[str, List[float]] = {}
        self.events_total = 0
        self.queue_high_water = 0
        self.wall_s = 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "events_total": self.events_total,
            "queue_high_water": self.queue_high_water,
            "wall_s": self.wall_s,
            "by_type": {
                name: {"count": int(count), "wall_s": wall}
                for name, (count, wall) in sorted(self.by_type.items())
            },
        }


def render_profile(summary: Dict[str, Any]) -> str:
    """Human-readable engine profile: top event types by handler wall-time."""
    lines = [
        f"engine profile: {summary['events_total']} events, "
        f"queue high-water {summary['queue_high_water']}, "
        f"wall {summary['wall_s']:.3f} s"
    ]
    by_type = summary.get("by_type", {})
    top = sorted(by_type.items(), key=lambda kv: kv[1]["wall_s"], reverse=True)
    for name, stats in top[:12]:
        share = (
            100.0 * stats["wall_s"] / summary["wall_s"] if summary["wall_s"] else 0.0
        )
        lines.append(
            f"  {name:<44} {stats['count']:>9} events  "
            f"{stats['wall_s'] * 1e3:>9.1f} ms  ({share:4.1f}%)"
        )
    if len(top) > 12:
        lines.append(f"  ... and {len(top) - 12} more event types")
    return "\n".join(lines)


class Simulator:
    """Event queue with a simulated clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.run(until=10.0)

    Invariants:

    * :attr:`now` never decreases.
    * Events scheduled for the same time fire in scheduling order.
    * Events may only be scheduled at or after :attr:`now`.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self._running = False
        self._stop_requested = False
        self.events_executed: int = 0
        self.events_cancelled: int = 0
        # Observability hub (repro.obs.Observability) or None when disabled.
        # Instrumented components read this at call time and guard with one
        # truthy check, so a run without observability pays nothing else.
        self.obs: Optional[Any] = None
        # Fault injector (repro.faults.FaultInjector) or None.  Set by
        # FaultInjector.arm() — the same registered-on-the-engine convention
        # as `obs`, so any component can discover the active fault plan.
        self.faults: Optional[Any] = None
        # EngineProfiler or None.  run() dispatches to a separate profiled
        # loop when set, so the unprofiled hot loop stays untouched.
        self.profiler: Optional[EngineProfiler] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.9f}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.9f} before now={self._now:.9f}"
            )
        handle = EventHandle(time, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event.  Cancelling twice or cancelling an event
        that already fired is an error — it almost always indicates a state
        machine bug in the caller."""
        if handle.fired:
            raise SimulationError("cannot cancel an event that already fired")
        if handle.cancelled:
            raise SimulationError("event already cancelled")
        handle.cancelled = True
        self.events_cancelled += 1

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            handle.fired = True
            self.events_executed += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have executed in this call.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run`` calls
        behave like contiguous wall-clock windows.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        executed = 0
        try:
            heap = self._heap
            pop = heapq.heappop
            if self.profiler is not None:
                executed = self._run_profiled(until, max_events)
            else:
                while heap and not self._stop_requested:
                    if until is not None and heap[0][0] > until:
                        break
                    time, _seq, handle = pop(heap)
                    if handle.cancelled:
                        continue
                    self._now = time
                    handle.fired = True
                    self.events_executed += 1
                    handle.fn(*handle.args)
                    executed += 1
                    if max_events is not None and executed >= max_events:
                        break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stop_requested:
            # Jump to the window edge only when no runnable event at or
            # before ``until`` was left behind.  Checking the heap directly
            # (rather than whether the event budget tripped the break) keeps
            # the clock honest in the corner cases: a budget that runs out
            # exactly as the queue drains may still jump, while a budget
            # exhausted with work pending must not skip over it.
            if not any(
                t <= until and not h.cancelled for t, _s, h in self._heap
            ):
                self._now = until

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """The :meth:`run` loop with per-event profiling.  A separate copy so
        the unprofiled loop pays nothing; semantics are identical — the
        profiler observes, never perturbs, the event order."""
        profiler = self.profiler
        by_type = profiler.by_type
        heap = self._heap
        pop = heapq.heappop
        clock = _walltime.perf_counter
        executed = 0
        loop_start = clock()
        try:
            while heap and not self._stop_requested:
                if until is not None and heap[0][0] > until:
                    break
                depth = len(heap)
                if depth > profiler.queue_high_water:
                    profiler.queue_high_water = depth
                time, _seq, handle = pop(heap)
                if handle.cancelled:
                    continue
                self._now = time
                handle.fired = True
                self.events_executed += 1
                fn = handle.fn
                name = getattr(fn, "__qualname__", None) or repr(fn)
                t0 = clock()
                fn(*handle.args)
                elapsed = clock() - t0
                stats = by_type.get(name)
                if stats is None:
                    by_type[name] = [1, elapsed]
                else:
                    stats[0] += 1
                    stats[1] += elapsed
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            profiler.events_total += executed
            profiler.wall_s += clock() - loop_start
        return executed

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _t, _s, h in self._heap if not h.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator now={self._now:.6f} pending={len(self._heap)} "
            f"executed={self.events_executed}>"
        )


class PeriodicTimer:
    """Fires a callback at a fixed period until stopped.

    Used by probe senders (100 ms INT collection), CBR traffic sources, and
    the ping application.  The first firing happens at ``start_delay`` after
    :meth:`start` (default: one full period).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._fn = fn
        self._args = args
        self._start_delay = period if start_delay is None else start_delay
        self._jitter_fn = jitter_fn
        self._handle: Optional[EventHandle] = None
        self.fire_count = 0

    @property
    def running(self) -> bool:
        return self._handle is not None

    def start(self) -> None:
        if self._handle is not None:
            raise SimulationError("timer already started")
        self._handle = self._sim.schedule(self._start_delay, self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            if not self._handle.fired:
                self._sim.cancel(self._handle)
            self._handle = None

    def _fire(self) -> None:
        self.fire_count += 1
        delay = self.period
        if self._jitter_fn is not None:
            delay = max(0.0, delay + self._jitter_fn())
        self._handle = self._sim.schedule(delay, self._fire)
        self._fn(*self._args)
