"""Node addressing and well-known transport ports.

Nodes are identified by human-readable names (``"h1"``, ``"s3"``) but packets
carry compact integer addresses assigned at topology construction time —
the simulated analogue of an IPv4 address.  The mapping lives in
:class:`AddressBook`.

Well-known destination ports mirror the services in the paper's testbed:
probe traffic, scheduler queries, task submission, ping, and iperf.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import TopologyError

__all__ = [
    "AddressBook",
    "PROTO_UDP",
    "PROTO_TCP",
    "PORT_SCHEDULER",
    "PORT_PROBE",
    "PORT_TASK",
    "PORT_PING",
    "PORT_IPERF",
    "PORT_EPHEMERAL_BASE",
]

# IANA-style protocol numbers, used by the P4 parser stage.
PROTO_TCP = 6
PROTO_UDP = 17

# Well-known destination ports.
PORT_SCHEDULER = 5000      # edge-device -> scheduler queries (Fig. 1, steps 5/6)
PORT_PROBE = 5001          # INT probe packets (Geneve-like option, Section III-A)
PORT_TASK = 6000           # task submission / data transfer to edge servers
PORT_PING = 7              # echo application (Fig. 3 RTT measurement)
PORT_IPERF = 5201          # background CBR traffic (Section IV)
PORT_EPHEMERAL_BASE = 49152


class AddressBook:
    """Bidirectional name <-> integer-address mapping for all nodes."""

    def __init__(self) -> None:
        self._name_to_addr: Dict[str, int] = {}
        self._addr_to_name: Dict[int, str] = {}
        self._next_addr = 1  # address 0 is reserved as "unset"

    def register(self, name: str) -> int:
        """Assign the next free address to ``name`` and return it."""
        if name in self._name_to_addr:
            raise TopologyError(f"node name {name!r} already registered")
        addr = self._next_addr
        self._next_addr += 1
        self._name_to_addr[name] = addr
        self._addr_to_name[addr] = name
        return addr

    def address_of(self, name: str) -> int:
        try:
            return self._name_to_addr[name]
        except KeyError:
            raise TopologyError(f"unknown node name {name!r}") from None

    def name_of(self, addr: int) -> str:
        try:
            return self._addr_to_name[addr]
        except KeyError:
            raise TopologyError(f"unknown node address {addr}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._name_to_addr

    def __len__(self) -> int:
        return len(self._name_to_addr)

    def names(self) -> Iterator[str]:
        return iter(self._name_to_addr)
