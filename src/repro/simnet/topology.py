"""Network construction: hosts, switches, links, and finalization.

Usage::

    sim = Simulator()
    net = Network(sim, streams=RandomStreams(seed))
    h1, h2 = net.add_host("h1"), net.add_host("h2")
    s1 = net.add_switch("s1")
    net.connect("h1", "s1", rate_bps=mbps(20), delay=ms(10))
    net.connect("s1", "h2", rate_bps=mbps(20), delay=ms(10))
    net.finalize()          # binds data-plane programs + installs routes

``finalize`` must be called exactly once after all wiring; it

1. binds each switch's P4 program (programs size per-port INT registers
   from the final port count),
2. computes shortest-path routes and installs forwarding table entries,
3. validates the topology (hosts single-homed, graph connected).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.errors import TopologyError
from repro.simnet.addressing import AddressBook
from repro.simnet.engine import Simulator
from repro.simnet.host import Host
from repro.simnet.link import Link
from repro.simnet.node import Clock, Node
from repro.simnet.queueing import DEFAULT_QUEUE_CAPACITY
from repro.simnet.random import RandomStreams
from repro.simnet.switch import Switch

__all__ = ["Network"]


class Network:
    """Container/owner of every node and link in one simulated network."""

    def __init__(
        self,
        sim: Simulator,
        streams: Optional[RandomStreams] = None,
        *,
        clock_offset_std: float = 100e-6,
        clock_jitter_std: float = 20e-6,
        switch_service_jitter: float = 0.15,
        default_queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        program_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.sim = sim
        self.streams = streams if streams is not None else RandomStreams(0)
        self.addresses = AddressBook()
        self.clock_offset_std = clock_offset_std
        self.clock_jitter_std = clock_jitter_std
        # Per-packet forwarding-time variance at switches, reproducing BMv2's
        # software data plane (the paper's footnote 3 bottleneck is not a
        # clean deterministic 20 Mb/s).  This is what lets queues re-form at
        # every congested hop instead of only at a flow's first bottleneck.
        self.switch_service_jitter = switch_service_jitter
        self.default_queue_capacity = default_queue_capacity
        if program_factory is None:
            from repro.p4.int_program import IntTelemetryProgram

            program_factory = IntTelemetryProgram
        self.program_factory = program_factory

        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: Dict[str, Link] = {}
        # (node_name, neighbor_name) -> egress port index on node_name.
        self._port_toward: Dict[Tuple[str, str], int] = {}
        self._next_switch_id = 1
        self._finalized = False

    # -- construction ----------------------------------------------------

    def _make_clock(self, name: str) -> Clock:
        rng = self.streams.get(f"clock/{name}")
        offset = float(rng.normal(0.0, self.clock_offset_std)) if self.clock_offset_std > 0 else 0.0
        return Clock(
            self.sim,
            offset=offset,
            jitter_std=self.clock_jitter_std,
            rng=rng if self.clock_jitter_std > 0 else None,
        )

    def _check_mutable(self) -> None:
        if self._finalized:
            raise TopologyError("network already finalized; topology is immutable")

    def add_host(self, name: str) -> Host:
        self._check_mutable()
        addr = self.addresses.register(name)
        host = Host(self.sim, name, addr, clock=self._make_clock(name))
        self.hosts[name] = host
        return host

    def add_switch(self, name: str) -> Switch:
        self._check_mutable()
        addr = self.addresses.register(name)
        switch = Switch(
            self.sim, name, addr, switch_id=self._next_switch_id, clock=self._make_clock(name)
        )
        self._next_switch_id += 1
        if self.switch_service_jitter > 0:
            switch.set_service_jitter(
                self.switch_service_jitter, self.streams.get(f"service/{name}")
            )
        self.switches[name] = switch
        return switch

    def connect(
        self,
        name_a: str,
        name_b: str,
        *,
        rate_bps: float,
        delay: float,
        rate_ab_bps: Optional[float] = None,
        rate_ba_bps: Optional[float] = None,
        queue_capacity: Optional[int] = None,
        ecn_threshold: Optional[int] = None,
    ) -> Link:
        """Create a full-duplex link between two existing nodes.

        ``rate_bps`` is the nominal (symmetric) capacity; the optional
        directional overrides model asymmetric bottlenecks such as fast host
        injection into a rate-limited software switch.  ``ecn_threshold``
        switches both egress queues to RED/ECN marking at that depth."""
        self._check_mutable()
        if name_a == name_b:
            raise TopologyError(f"self-link on {name_a!r}")
        node_a = self.node(name_a)
        node_b = self.node(name_b)
        if (name_a, name_b) in self._port_toward or (name_b, name_a) in self._port_toward:
            raise TopologyError(f"nodes {name_a!r} and {name_b!r} already connected")
        link_name = f"{name_a}<->{name_b}"
        link = Link(link_name, rate_bps, delay, rate_ab_bps=rate_ab_bps, rate_ba_bps=rate_ba_bps)
        cap = queue_capacity if queue_capacity is not None else self.default_queue_capacity
        if ecn_threshold is not None:
            from repro.simnet.queueing import RedEcnQueue

            port_a = node_a.add_port(link, queue=RedEcnQueue(cap, mark_threshold=ecn_threshold))
            port_b = node_b.add_port(link, queue=RedEcnQueue(cap, mark_threshold=ecn_threshold))
        else:
            port_a = node_a.add_port(link, cap)
            port_b = node_b.add_port(link, cap)
        link.attach(port_a, port_b)
        self.links[link_name] = link
        self._port_toward[(name_a, name_b)] = port_a.port_index
        self._port_toward[(name_b, name_a)] = port_b.port_index
        return link

    def attach_host(
        self,
        host_name: str,
        switch_name: str,
        *,
        fabric_rate_bps: float,
        delay: float,
        injection_multiplier: float = 10.0,
        queue_capacity: Optional[int] = None,
    ) -> Link:
        """Connect a host to a switch with the testbed's asymmetric rates:
        the host injects at ``injection_multiplier`` x the fabric rate (end
        hosts outrun the software switch) while the switch egress toward the
        host runs at the fabric rate (the BMv2 forwarding bottleneck).  The
        resulting congestion points are all at switch egress queues — where
        INT registers can see them."""
        if injection_multiplier < 1.0:
            raise TopologyError("injection_multiplier must be >= 1")
        if host_name not in self.hosts:
            raise TopologyError(f"{host_name!r} is not a host")
        if switch_name not in self.switches:
            raise TopologyError(f"{switch_name!r} is not a switch")
        return self.connect(
            host_name,
            switch_name,
            rate_bps=fabric_rate_bps,
            delay=delay,
            rate_ab_bps=fabric_rate_bps * injection_multiplier,  # host -> switch
            rate_ba_bps=fabric_rate_bps,                         # switch -> host
            queue_capacity=queue_capacity,
        )

    # -- lookup ------------------------------------------------------------

    def node(self, name: str) -> Node:
        node = self.hosts.get(name) or self.switches.get(name)
        if node is None:
            raise TopologyError(f"unknown node {name!r}")
        return node

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise TopologyError(f"unknown host {name!r}") from None

    def switch(self, name: str) -> Switch:
        try:
            return self.switches[name]
        except KeyError:
            raise TopologyError(f"unknown switch {name!r}") from None

    def address_of(self, name: str) -> int:
        return self.addresses.address_of(name)

    def name_of(self, addr: int) -> str:
        return self.addresses.name_of(addr)

    def port_toward(self, node_name: str, neighbor_name: str) -> int:
        """Egress port index on ``node_name`` facing ``neighbor_name``."""
        try:
            return self._port_toward[(node_name, neighbor_name)]
        except KeyError:
            raise TopologyError(
                f"no direct link from {node_name!r} to {neighbor_name!r}"
            ) from None

    def switch_by_id(self, switch_id: int) -> Switch:
        for sw in self.switches.values():
            if sw.switch_id == switch_id:
                return sw
        raise TopologyError(f"no switch with id {switch_id}")

    # -- graph views ---------------------------------------------------------

    def graph(self) -> nx.Graph:
        """Undirected graph of the physical topology; edges carry the link
        object, rate, and propagation delay."""
        g = nx.Graph()
        for name in list(self.hosts) + list(self.switches):
            g.add_node(name, kind="host" if name in self.hosts else "switch")
        for link in self.links.values():
            assert link.port_a is not None and link.port_b is not None
            g.add_edge(
                link.port_a.node.name,
                link.port_b.node.name,
                link=link,
                rate_bps=link.rate_bps,
                delay=link.propagation_delay,
            )
        return g

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """Ground-truth shortest path by propagation delay (the route the
        static control plane installs)."""
        from repro.simnet.routing import shortest_path

        return shortest_path(self.graph(), src, dst)

    # -- finalization ----------------------------------------------------------

    def finalize(self) -> None:
        """Bind programs, validate, and install routes.  Idempotence is
        intentionally rejected: re-finalizing indicates a construction bug."""
        self._check_mutable()
        for name, host in self.hosts.items():
            if len(host.ports) != 1:
                raise TopologyError(
                    f"host {name!r} must be single-homed, has {len(host.ports)} links"
                )
        g = self.graph()
        if len(g) > 1 and not nx.is_connected(g):
            raise TopologyError("topology is not connected")
        for switch in self.switches.values():
            switch.bind_program(self.program_factory())
        from repro.simnet.routing import install_all_routes

        install_all_routes(self)
        self._finalized = True

    @property
    def finalized(self) -> bool:
        return self._finalized
