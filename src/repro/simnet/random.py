"""Deterministic, per-component random streams.

Experiments must be reproducible and — critically for the paper's
methodology — *paired*: Section IV requires that when comparing scheduling
algorithms, the same sequence of workload arrivals and background-traffic
placements is used for every policy.  We achieve this by deriving independent
named sub-streams from one root seed, so e.g. ``streams.get("workload")``
yields identical draws across policy runs while the policies themselves may
consume randomness (the Random baseline) from their own stream without
perturbing the workload.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "derive_seed", "run_streams"]

# The named per-run sub-streams every experiment derives from its root seed.
# Pairing depends on the *names* staying stable: "workload" and "background"
# must draw identically across policy runs of the same seed, while policy-
# private streams ("random_policy") may burn randomness freely.
STREAM_WORKLOAD = "workload"
STREAM_BACKGROUND = "background"
STREAM_FAULTS = "faults"
STREAM_RANDOM_POLICY = "random_policy"
STREAM_IPERF = "iperf"


def derive_seed(master_seed: int, key: str) -> int:
    """Deterministic 31-bit seed from a master seed and a stable string key.

    This is the one place run seeds are derived from grid-level master
    seeds: ``derive_seed(master, f"repeat:{i}")`` gives every repeat of a
    sweep its own root, independent of the order cells are expanded or
    executed in (policy order cannot perturb it, because the key never
    includes the policy)."""
    digest = hashlib.sha256(f"{master_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def run_streams(seed: int) -> "RandomStreams":
    """The canonical per-run stream family.

    Every experiment driver — harness runs, calibration, fault scenarios —
    builds its streams through this helper so workload/background/faults/
    jitter draws are derived identically everywhere: one root seed, named
    sub-streams, no driver-local reimplementation."""
    return RandomStreams(int(seed))


class RandomStreams:
    """A family of independent :class:`numpy.random.Generator` streams.

    Each named stream is seeded by ``SeedSequence([root_seed, crc32(name)])``,
    making the draw sequence of one stream independent of how many *other*
    streams exist or in what order they were created.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence([self.root_seed, key])
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RandomStreams":
        """Derive a new independent family, e.g. one per experiment repeat."""
        return RandomStreams(root_seed=(self.root_seed * 1_000_003 + salt) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams root_seed={self.root_seed} streams={sorted(self._streams)}>"
