"""Static shortest-path routing and forwarding-table installation.

The paper's testbed uses static routes installed into the BMv2 forwarding
tables by a control script; likewise here.  Routes are shortest paths by
propagation delay with deterministic lexicographic tie-breaking, so two runs
of the same topology always install identical tables.

Only switches get forwarding tables (hosts are single-homed and always emit
through port 0), and routes never transit a host: hosts are removed from the
routing graph except as path endpoints.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

import networkx as nx

from repro.errors import RoutingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.topology import Network

__all__ = ["shortest_path", "compute_routes", "install_all_routes"]


def _routing_weight(g: nx.Graph, u: str, v: str) -> float:
    return float(g.edges[u, v]["delay"])


def shortest_path(g: nx.Graph, src: str, dst: str) -> List[str]:
    """Delay-weighted shortest path with lexicographic tie-breaking, never
    transiting a host node."""
    if src not in g or dst not in g:
        raise RoutingError(f"unknown endpoint in ({src!r}, {dst!r})")
    if src == dst:
        return [src]
    # Prune other hosts so they cannot be used as transit.
    keep = {n for n, d in g.nodes(data=True) if d.get("kind") != "host"} | {src, dst}
    sub = g.subgraph(keep)
    try:
        # Tie-break deterministically: Dijkstra over neighbors in sorted order.
        dist, paths = nx.single_source_dijkstra(sub, src, weight="delay")
    except nx.NetworkXNoPath:  # pragma: no cover - defensive
        raise RoutingError(f"no path from {src!r} to {dst!r}") from None
    if dst not in paths:
        raise RoutingError(f"no path from {src!r} to {dst!r}")
    # networkx Dijkstra's tie-breaking depends on heap order; normalize by
    # recomputing with an explicit lexicographic secondary criterion.
    return _lexicographic_shortest_path(sub, src, dst)


def _lexicographic_shortest_path(g: nx.Graph, src: str, dst: str) -> List[str]:
    """Dijkstra where among equal-cost paths the lexicographically smallest
    node sequence wins.  O(E log V) with tuple-compared labels."""
    import heapq

    best: Dict[str, tuple] = {}
    heap: list = [((0.0, (src,)), src)]
    while heap:
        (cost, path), u = heapq.heappop(heap)
        if u in best:
            continue
        best[u] = (cost, path)
        if u == dst:
            return list(path)
        for v in sorted(g.neighbors(u)):
            if v in best:
                continue
            w = _routing_weight(g, u, v)
            heapq.heappush(heap, ((cost + w, path + (v,)), v))
    raise RoutingError(f"no path from {src!r} to {dst!r}")


def compute_routes(network: "Network") -> Dict[str, Dict[str, str]]:
    """For every switch, the next-hop node toward every host destination.

    Returns ``{switch_name: {dst_host_name: next_hop_name}}``.
    """
    g = network.graph()
    routes: Dict[str, Dict[str, str]] = {sw: {} for sw in network.switches}
    for dst in network.hosts:
        for sw in network.switches:
            path = shortest_path(g, sw, dst)
            if len(path) < 2:
                raise RoutingError(f"degenerate path from {sw!r} to {dst!r}")
            routes[sw][dst] = path[1]
    return routes


def install_all_routes(network: "Network") -> None:
    """Populate every switch's forwarding table from :func:`compute_routes`."""
    routes = compute_routes(network)
    for sw_name, table in routes.items():
        switch = network.switch(sw_name)
        program = switch.program
        if program is None:
            raise RoutingError(f"switch {sw_name!r} has no program to install routes into")
        install = getattr(program, "install_route", None)
        if install is None:
            raise RoutingError(
                f"switch {sw_name!r} program {type(program).__name__} lacks install_route"
            )
        for dst_host, next_hop in table.items():
            dst_addr = network.address_of(dst_host)
            port_index = network.port_toward(sw_name, next_hop)
            install(dst_addr, port_index)
