"""Discrete-event, packet-level network simulator.

This subpackage is the substrate that replaces the paper's Mininet/BMv2
testbed.  It provides:

* :mod:`repro.simnet.engine` — the discrete-event core (simulated clock,
  event queue, timers).
* :mod:`repro.simnet.packet` — packets and header stacks.
* :mod:`repro.simnet.link`, :mod:`repro.simnet.queueing`,
  :mod:`repro.simnet.nic` — links with bandwidth/propagation delay and
  drop-tail egress queues.
* :mod:`repro.simnet.host`, :mod:`repro.simnet.switch` — end hosts running
  applications and switches running programmable (P4-style) pipelines.
* :mod:`repro.simnet.topology`, :mod:`repro.simnet.routing` — topology
  construction and static shortest-path routing.
* :mod:`repro.simnet.flows` — traffic sources: UDP constant-bit-rate (the
  paper's iperf), a reliable windowed transport (task data transfers), and a
  ping application (the paper's RTT measurements).
"""

from repro.simnet.engine import EventHandle, PeriodicTimer, Simulator
from repro.simnet.packet import Packet
from repro.simnet.topology import Network
from repro.simnet.routing import compute_routes

__all__ = [
    "EventHandle",
    "PeriodicTimer",
    "Simulator",
    "Packet",
    "Network",
    "compute_routes",
]
