"""Ground-truth instrumentation (the experimenter's view, not the scheduler's).

The scheduler must *infer* network state from INT; experiments and tests,
however, need the true state to validate those inferences.  This module
samples queue depths and link utilization directly from simulator objects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.simnet.engine import PeriodicTimer, Simulator
from repro.simnet.nic import Port
from repro.simnet.topology import Network

__all__ = ["QueueSampler", "link_utilizations"]


class QueueSampler:
    """Periodically samples the backlog of selected egress ports.

    Results are ``{port_label: [(t, depth), ...]}`` where the label is
    ``"node[i]"``.
    """

    def __init__(self, sim: Simulator, ports: List[Port], interval: float = 0.01) -> None:
        self.sim = sim
        self.ports = ports
        self.samples: Dict[str, List[Tuple[float, int]]] = {
            self._label(p): [] for p in ports
        }
        self._timer = PeriodicTimer(sim, interval, self._sample, start_delay=0.0)

    @staticmethod
    def _label(port: Port) -> str:
        return f"{port.node.name}[{port.port_index}]"

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        now = self.sim.now
        for port in self.ports:
            self.samples[self._label(port)].append((now, port.backlog))

    def max_depth(self, port: Port) -> int:
        """Maximum sampled backlog for one port."""
        series = self.samples[self._label(port)]
        return max((d for _, d in series), default=0)


def link_utilizations(network: Network, window: float) -> Dict[str, float]:
    """True utilization of every link direction over the last ``window``
    seconds (requires the caller to have reset ``bytes_carried`` at the
    window start).  Keys are ``"a->b"`` / ``"b->a"`` per link name."""
    out: Dict[str, float] = {}
    for name, link in network.links.items():
        assert link.port_a is not None and link.port_b is not None
        out[f"{name}:a"] = (link.bytes_carried["a"] * 8.0) / (link.rate_bps * window)
        out[f"{name}:b"] = (link.bytes_carried["b"] * 8.0) / (link.rate_bps * window)
    return out
