"""End hosts: packet sources/sinks running applications.

A :class:`Host` demultiplexes received packets to registered handlers keyed
by ``(protocol, destination port)`` — the simulated socket API.  Hosts in
this reproduction are single-homed (every node in the paper's Fig. 4 hangs
off exactly one leaf switch), which keeps host-side forwarding trivial: all
egress traffic leaves through port 0.

Applications (probe senders, the scheduler service, edge device/server apps,
traffic generators) are plain objects that call :meth:`Host.bind` for their
listening ports and :meth:`Host.send` to transmit.
"""

from __future__ import annotations

import itertools
from time import perf_counter as _perf
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import TopologyError
from repro.simnet.addressing import PORT_EPHEMERAL_BASE, PROTO_TCP, PROTO_UDP
from repro.simnet.engine import Simulator
from repro.simnet.node import Clock, Node
from repro.simnet.packet import FLAG_PROBE, HEADER_OVERHEAD, Packet
from repro.simnet.nic import Port

__all__ = ["Host"]

PacketHandler = Callable[[Packet], None]

# Pre-interned phase paths for the inline accounting in on_ingress; same
# taxonomy as the generic scope protocol.
_ROOT_INGRESS = "Host.on_ingress"
_PH_DEMUX = "Host.on_ingress;demux"
_PH_FLOW = "Host.on_ingress;flow"
_PH_TRANSPORT = "Host.on_ingress;transport"


class Host(Node):
    """A single-homed end host with a (protocol, port) -> handler demux."""

    def __init__(self, sim: Simulator, name: str, addr: int, clock: Optional[Clock] = None) -> None:
        super().__init__(sim, name, addr, clock)
        self._handlers: Dict[Tuple[int, int], PacketHandler] = {}
        self._ephemeral = itertools.count(PORT_EPHEMERAL_BASE)
        self.packets_delivered = 0
        self.packets_unclaimed = 0

    # -- socket-ish API ---------------------------------------------------

    def bind(self, protocol: int, port: int, handler: PacketHandler) -> None:
        key = (protocol, port)
        if key in self._handlers:
            raise TopologyError(f"{self.name}: port {key} already bound")
        self._handlers[key] = handler

    def unbind(self, protocol: int, port: int) -> None:
        try:
            del self._handlers[(protocol, port)]
        except KeyError:
            raise TopologyError(f"{self.name}: port ({protocol}, {port}) not bound") from None

    def ephemeral_port(self) -> int:
        """Allocate a fresh source port for a client-side conversation."""
        return next(self._ephemeral)

    def new_packet(
        self,
        dst_addr: int,
        *,
        protocol: int = PROTO_UDP,
        src_port: int = 0,
        dst_port: int = 0,
        size_bytes: int = HEADER_OVERHEAD,
        payload: Optional[bytes] = None,
        message: Any = None,
        flags: int = 0,
        flow_id: int = 0,
        seq: int = 0,
    ) -> Packet:
        """Build a packet originating here, stamped with the current time."""
        return Packet(
            self.addr,
            dst_addr,
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            size_bytes=size_bytes,
            payload=payload,
            message=message,
            flags=flags,
            flow_id=flow_id,
            seq=seq,
            created_at=self.sim.now,
        )

    def send(self, packet: Packet) -> bool:
        """Transmit via the single uplink.  Returns False if dropped at the
        local egress queue."""
        if not self.ports:
            raise TopologyError(f"host {self.name} has no attached link")
        return self.ports[0].send(packet)

    # -- data path ----------------------------------------------------------

    def on_egress(self, packet: Packet, out_port: Port, enq_depth: int) -> None:
        """Stamp outgoing probes with this host's clock as they leave the
        egress queue, so the first switch can measure the first-link latency
        (the switch-side INT program does the same at every later hop).
        Stamping at dequeue — not at send() — keeps the host's own queueing
        delay out of the link measurement, mirroring 'just before it is
        pushed out of a network device' (Section III-A)."""
        # Direct flag test (not the is_probe property): this runs for every
        # frame leaving a host, probe or not.
        if packet.flags & FLAG_PROBE and packet.last_egress_ts is None:
            packet.last_egress_ts = self.clock.read()

    def on_ingress(self, packet: Packet, in_port: Port) -> None:
        self.packets_received += 1
        prof = self.sim.profiler
        if prof is None:
            if packet.dst_addr != self.addr:
                # Hosts do not forward; a misrouted packet dies here.
                self.packets_dropped += 1
                return
            handler = self._handlers.get((packet.protocol, packet.dst_port))
            if handler is None:
                self.packets_unclaimed += 1
                return
            self.packets_delivered += 1
            handler(packet)
            return
        # Phase scopes (profiled runs only): demux covers the address check +
        # handler lookup (backdated to handler entry via phase_first); the
        # handler call is attributed to transport (TCP) or flow (everything
        # else: UDP apps, probes, control messages).
        if prof._stack or prof._path != _ROOT_INGRESS:
            # Nested or out-of-band invocation: generic scope protocol.
            prof.phase_first("demux")
            if packet.dst_addr != self.addr:
                self.packets_dropped += 1
                prof.phase_end()
                return
            handler = self._handlers.get((packet.protocol, packet.dst_port))
            if handler is None:
                self.packets_unclaimed += 1
                prof.phase_end()
                return
            self.packets_delivered += 1
            prof.phase_next("transport" if packet.protocol == PROTO_TCP else "flow")
            handler(packet)
            prof.phase_end()
            return
        # Inline accounting for the hot top-level case — same taxonomy and
        # clock-read count as the generic protocol, none of its scope-stack
        # cost (see Switch.on_ingress for the pattern).
        phases = prof.phases
        if packet.dst_addr != self.addr:
            self.packets_dropped += 1
            handler = None
        else:
            handler = self._handlers.get((packet.protocol, packet.dst_port))
            if handler is None:
                self.packets_unclaimed += 1
        if handler is None:
            entry = phases.get(_PH_DEMUX)
            t1 = _perf()
            if entry is None:
                phases[_PH_DEMUX] = [1, t1 - prof._t0]
            else:
                entry[0] += 1
                entry[1] += t1 - prof._t0
            prof.phase_firsts += 1
            return
        self.packets_delivered += 1
        # Entry lookups happen *inside* the spans they record (before the
        # closing clock read), so the only work outside phase coverage is
        # the in-place adds after the final read.
        entry = phases.get(_PH_DEMUX)
        t1 = _perf()
        if entry is None:
            phases[_PH_DEMUX] = [1, t1 - prof._t0]
        else:
            entry[0] += 1
            entry[1] += t1 - prof._t0
        path = _PH_TRANSPORT if packet.protocol == PROTO_TCP else _PH_FLOW
        # Root any scope the handler opens under the phase it runs in.
        prof._path = path
        handler(packet)
        prof.phase_firsts += 1
        prof.phase_nexts += 1
        entry = phases.get(path)
        t2 = _perf()
        if entry is None:
            phases[path] = [1, t2 - t1]
        else:
            entry[0] += 1
            entry[1] += t2 - t1
