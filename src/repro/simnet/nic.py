"""Network ports: the egress queue + serializer at each end of a link.

A :class:`Port` implements the store-and-forward path of one interface:

1. :meth:`send` enqueues a packet on the drop-tail egress queue (recording
   the depth it observed, the INT ``enq_qdepth`` signal);
2. when the serializer is idle, the head packet starts transmission, which
   takes ``size * 8 / rate`` seconds;
3. at transmission **start** the owning node's egress hook runs — this is
   where a P4 egress stage executes (probe timestamping / INT collection,
   Section III-A of the paper);
4. after transmission + propagation delay, the packet is delivered to the
   peer port's node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simnet.link import Link
from repro.simnet.packet import Packet
from repro.simnet.queueing import DEFAULT_QUEUE_CAPACITY, DropTailQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.node import Node

__all__ = ["Port"]


class Port:
    """One interface of a node, permanently attached to one link."""

    def __init__(
        self,
        node: "Node",
        port_index: int,
        link: Link,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        queue: "DropTailQueue" = None,
    ) -> None:
        self.node = node
        self.port_index = port_index
        self.link = link
        # A custom queue discipline (e.g. RedEcnQueue) may be supplied;
        # default is the BMv2-like drop-tail FIFO.
        self.queue = queue if queue is not None else DropTailQueue(queue_capacity)
        self._transmitting = False
        self.packets_sent = 0
        self.packets_dropped = 0

    # -- identity -----------------------------------------------------------

    @property
    def rate_bps(self) -> float:
        """Serialization rate of this port's outbound direction."""
        return self.link.rate_from(self)

    @property
    def peer(self) -> "Port":
        return self.link.peer_of(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}[{self.port_index}] on {self.link.name}>"

    # -- egress path ----------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission.  Returns False on drop-tail."""
        depth = self.queue.push(packet)
        if depth is None:
            self.packets_dropped += 1
            self.node.on_packet_dropped(packet, self)
            return False
        if not self._transmitting:
            self._start_next()
        return True

    def _start_next(self) -> None:
        item = self.queue.pop()
        if item is None:
            self._transmitting = False
            return
        packet, enq_depth = item
        self._transmitting = True
        # P4 egress stage: runs as the packet leaves the queue and begins
        # serialization.  May mutate the packet (probe payload growth).
        # Phase scope for probes only: the probe path does the expensive
        # work (INT record collection + payload growth), while the data-
        # packet egress is a single register update not worth two clock
        # reads per packet — it stays in the enclosing phase's self-time.
        prof = self.node.sim.profiler
        if prof is None or not packet.is_probe:
            self.node.on_egress(packet, self, enq_depth)
        else:
            prof.phase_begin("egress_stage")
            self.node.on_egress(packet, self, enq_depth)
            prof.phase_end()
        # rate_factor is 1.0 unless a fault degraded the link; x * 1.0 is
        # exact, so the fault-free path is byte-identical.
        tx_time = (packet.size_bytes * 8.0) / (
            self.link.rate_from(self) * self.link.rate_factor
        )
        # Software switches (BMv2) forward with noticeable per-packet service
        # variance; the node's jitter factor reproduces it.  Mean unchanged.
        tx_time *= self.node.service_time_factor()
        sim = self.node.sim
        sim.schedule(tx_time, self._tx_complete, packet)

    def _tx_complete(self, packet: Packet) -> None:
        # Phase scopes (profiled runs only): propagate covers the wire
        # loss-check + delivery scheduling, dequeue covers pulling the next
        # packet (with the probe-only egress_stage sub-phase inside).
        prof = self.node.sim.profiler
        if prof is None:
            self.packets_sent += 1
            self._propagate(packet)
            self._start_next()
            return
        prof.phase_first("propagate")
        self.packets_sent += 1
        self._propagate(packet)
        prof.phase_next("dequeue")
        self._start_next()
        prof.phase_end()

    def _propagate(self, packet: Packet) -> None:
        link = self.link
        if link.impaired and link.should_drop(packet):
            # Lost on the wire (link down or probabilistic fault loss): the
            # frame consumed serializer time but is never delivered.
            link.packets_lost += 1
            obs = self.node.sim.obs
            if obs:
                obs.packet_dropped(
                    queue=f"wire:{link.name}",
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    size_bytes=packet.size_bytes,
                    is_probe=packet.is_probe,
                )
        else:
            link.record_carried(self, packet.size_bytes)
            sim = self.node.sim
            peer = self.peer
            # extra_delay is 0.0 unless a fault degraded the link (x + 0.0
            # is exact).
            sim.schedule(
                link.propagation_delay + link.extra_delay,
                peer.node.on_ingress, packet, peer,
            )

    # -- introspection ----------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._transmitting

    @property
    def backlog(self) -> int:
        """Packets waiting behind the one in service."""
        return self.queue.depth
