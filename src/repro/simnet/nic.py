"""Network ports: the egress queue + serializer at each end of a link.

A :class:`Port` implements the store-and-forward path of one interface:

1. :meth:`send` enqueues a packet on the drop-tail egress queue (recording
   the depth it observed, the INT ``enq_qdepth`` signal);
2. when the serializer is idle, the head packet starts transmission, which
   takes ``size * 8 / rate`` seconds;
3. at transmission **start** the owning node's egress hook runs — this is
   where a P4 egress stage executes (probe timestamping / INT collection,
   Section III-A of the paper);
4. after transmission + propagation delay, the packet is delivered to the
   peer port's node.

**Transmit coalescing.**  A queue of N back-to-back frames normally costs N
``_tx_complete`` events.  When semantics provably cannot differ — no service
jitter on the node, no observability/fault/trace hooks, no queue-threshold
callback, an unimpaired link, and no probe frames (whose egress stage is
time-sensitive) — the port instead computes every frame's start time up
front, schedules all deliveries plus **one** batch-completion event, and
dequeues frames lazily at their logical start times so queue depth stays
exactly what the one-event-per-frame path would have observed.  Every gate
failure falls back to the per-frame path; ``REPRO_SLOWPATH=1`` disables
coalescing outright (the oracle path for the equivalence suite).
"""

from __future__ import annotations

import os
from collections import deque
from time import perf_counter as _perf
from typing import TYPE_CHECKING, Deque, Optional

from repro.simnet.link import Link
from repro.simnet.packet import FLAG_PROBE, Packet
from repro.simnet.queueing import DEFAULT_QUEUE_CAPACITY, DropTailQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.node import Node

__all__ = ["Port"]

# Pre-interned phase paths for the inline accounting in _tx_complete (the
# second-hottest handler): the root the engine loop sets plus its two
# sequential phases.  Identical taxonomy to the generic scope protocol.
_ROOT_TXC = "Port._tx_complete"
_PH_PROPAGATE = "Port._tx_complete;propagate"
_PH_DEQUEUE = "Port._tx_complete;dequeue"


class Port:
    """One interface of a node, permanently attached to one link."""

    def __init__(
        self,
        node: "Node",
        port_index: int,
        link: Link,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        queue: Optional["DropTailQueue"] = None,
    ) -> None:
        self.node = node
        self.port_index = port_index
        self.link = link
        # A custom queue discipline (e.g. RedEcnQueue) may be supplied;
        # default is the BMv2-like drop-tail FIFO.
        self.queue = queue if queue is not None else DropTailQueue(queue_capacity)
        # Exactly-plain drop-tail queues get their push/pop bodies inlined
        # on the hot path; subclasses (RedEcnQueue, test doubles) keep
        # virtual dispatch.
        self._plain_queue = type(self.queue) is DropTailQueue
        self._transmitting = False
        self.packets_sent = 0
        self.packets_dropped = 0
        # Hot-path caches: the simulator reference, the bound completion
        # callback (so scheduling does not rebuild a method object per
        # frame), and the peer port (resolved lazily — links are wired
        # after construction, then never change).
        self._sim = node.sim
        self._tx_complete_cb = self._tx_complete
        self._peer: Optional["Port"] = None
        self._peer_node: Optional["Node"] = None
        # This port's direction key on the link ("a"/"b"), resolved lazily —
        # ports are registered on the link after construction.
        self._dir_key: Optional[str] = None
        # Logical dequeue times of coalesced frames still sitting in the
        # queue (aligned with its head).  Empty when no batch is in flight.
        self._plan: Deque[float] = deque()
        self._coalesce = os.environ.get("REPRO_SLOWPATH", "") != "1"

    # -- identity -----------------------------------------------------------

    @property
    def rate_bps(self) -> float:
        """Serialization rate of this port's outbound direction."""
        return self.link.rate_from(self)

    @property
    def peer(self) -> "Port":
        peer = self._peer
        if peer is None:
            peer = self._peer = self.link.peer_of(self)
            self._peer_node = peer.node
        return peer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}[{self.port_index}] on {self.link.name}>"

    # -- egress path ----------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission.  Returns False on drop-tail."""
        if self._plan:
            self._drain_started()
        queue = self.queue
        if self._plain_queue:
            # Inlined DropTailQueue.push — keep in lockstep with
            # queueing.py (the queueing test suite pins the semantics).
            items = queue._items
            depth = len(items)
            if depth >= queue.capacity:
                queue.stats.dropped += 1
                self.packets_dropped += 1
                self.node.on_packet_dropped(packet, self)
                return False
            stats = queue.stats
            packet.enq_depth = depth
            items.append(packet)
            stats.enqueued += 1
            stats.bytes_enqueued += packet.size_bytes
            if depth > stats.max_depth_seen:
                stats.max_depth_seen = depth
            threshold = queue.threshold
            if (
                threshold is not None
                and depth + 1 == threshold
                and queue.on_threshold
            ):
                queue.on_threshold(threshold, "up")
        else:
            depth = queue.push(packet)
            if depth is None:
                self.packets_dropped += 1
                self.node.on_packet_dropped(packet, self)
                return False
        if not self._transmitting:
            self._start_next()
        return True

    def _start_next(self) -> None:
        queue = self.queue
        items = queue._items
        if self._coalesce and len(items) >= 2 and self._try_coalesce():
            return
        if self._plain_queue:
            # Inlined DropTailQueue.pop — keep in lockstep with queueing.py.
            if not items:
                self._transmitting = False
                return
            queue.stats.dequeued += 1
            packet = items.popleft()
            threshold = queue.threshold
            if (
                threshold is not None
                and len(items) == threshold - 1
                and queue.on_threshold
            ):
                queue.on_threshold(len(items), "down")
        else:
            packet = queue.pop()
            if packet is None:
                self._transmitting = False
                return
        enq_depth = packet.enq_depth
        self._transmitting = True
        # P4 egress stage: runs as the packet leaves the queue and begins
        # serialization.  May mutate the packet (probe payload growth).
        # Phase scope for probes only: the probe path does the expensive
        # work (INT record collection + payload growth), while the data-
        # packet egress is a single register update not worth two clock
        # reads per packet — it stays in the enclosing phase's self-time.
        node = self.node
        prof = self._sim.profiler
        if prof is None or not packet.flags & FLAG_PROBE:
            node.on_egress(packet, self, enq_depth)
        else:
            prof.phase_begin("egress_stage")
            node.on_egress(packet, self, enq_depth)
            prof.phase_end()
        # rate_factor is 1.0 unless a fault degraded the link; x * 1.0 is
        # exact, so the fault-free path is byte-identical.
        link = self.link
        tx_time = (packet.size_bytes * 8.0) / (
            link.rate_from(self) * link.rate_factor
        )
        # Software switches (BMv2) forward with noticeable per-packet service
        # variance; the node's jitter factor reproduces it.  Mean unchanged.
        # Jitter-free nodes skip the call outright: eliding `x *= 1.0` is
        # exact, so the result is bit-identical.
        if node.service_jitter != 0.0:
            tx_time *= node.service_time_factor()
        # Fire-and-forget: completion events are never cancelled, so the
        # handle-free post() path applies.
        self._sim.post(tx_time, self._tx_complete_cb, packet)

    def _tx_complete(self, packet: Packet) -> None:
        # Phase scopes (profiled runs only): propagate covers the wire
        # loss-check + delivery scheduling, dequeue covers pulling the next
        # packet (with the probe-only egress_stage sub-phase inside).
        prof = self._sim.profiler
        if prof is None:
            self.packets_sent += 1
            self._propagate(packet)
            self._start_next()
            return
        if prof._stack or prof._path != _ROOT_TXC:
            # Nested or out-of-band invocation: generic scope protocol.
            prof.phase_first("propagate")
            self.packets_sent += 1
            self._propagate(packet)
            prof.phase_next("dequeue")
            self._start_next()
            prof.phase_end()
            return
        # Inline accounting for the hot top-level case — same taxonomy and
        # clock-read count as the generic protocol, none of its scope-stack
        # cost (see Switch.on_ingress for the pattern).
        phases = prof.phases
        self.packets_sent += 1
        self._propagate(packet)
        # Entry lookups happen *inside* the spans they record (before the
        # closing clock read), so the only work outside phase coverage is
        # the in-place adds after the final read.
        entry = phases.get(_PH_PROPAGATE)
        t1 = _perf()
        if entry is None:
            phases[_PH_PROPAGATE] = [1, t1 - prof._t0]
        else:
            entry[0] += 1
            entry[1] += t1 - prof._t0
        # Root any nested scope (a probe's egress_stage opened from inside
        # _start_next) under the dequeue path.
        prof._path = _PH_DEQUEUE
        self._start_next()
        prof.phase_firsts += 1
        prof.phase_nexts += 1
        entry = phases.get(_PH_DEQUEUE)
        t2 = _perf()
        if entry is None:
            phases[_PH_DEQUEUE] = [1, t2 - t1]
        else:
            entry[0] += 1
            entry[1] += t2 - t1

    def _propagate(self, packet: Packet) -> None:
        link = self.link
        if link.impaired and link.should_drop(packet):
            # Lost on the wire (link down or probabilistic fault loss): the
            # frame consumed serializer time but is never delivered.
            link.packets_lost += 1
            obs = self._sim.obs
            if obs:
                obs.packet_dropped(
                    queue=f"wire:{link.name}",
                    flow_id=packet.flow_id,
                    seq=packet.seq,
                    size_bytes=packet.size_bytes,
                    is_probe=packet.is_probe,
                )
        else:
            # Inlined Link.record_carried — keep in lockstep with link.py.
            key = self._dir_key
            if key is None:
                key = self._dir_key = "a" if self is link.port_a else "b"
            link.bytes_carried[key] += packet.size_bytes
            if link.obs_counters is not None:
                link.obs_counters[key].inc(packet.size_bytes)
            peer_node = self._peer_node
            if peer_node is None:
                peer = self._peer = link.peer_of(self)
                peer_node = self._peer_node = peer.node
            # on_ingress is resolved per delivery (never cached): packet
            # tracers wrap it in the instance dict at run time.  extra_delay
            # is 0.0 unless a fault degraded the link (x + 0.0 is exact).
            self._sim.post(
                link.propagation_delay + link.extra_delay,
                peer_node.on_ingress, packet, self._peer,
            )

    # -- transmit coalescing ----------------------------------------------

    def _try_coalesce(self) -> bool:
        """Schedule every queued data frame's delivery now, plus one batch
        completion event, instead of one ``_tx_complete`` round-trip per
        frame.  Returns False (caller falls back to the per-frame path)
        whenever any semantic gate fails; frames stay in the queue until
        their logical start times (see :meth:`_drain_started`) so depth
        observations — INT's ``enq_qdepth`` included — are unchanged."""
        node = self.node
        sim = self._sim
        link = self.link
        if node.service_jitter != 0.0:
            # Service jitter is configured once at build time and makes
            # per-frame RNG draw order semantics; remember the verdict so a
            # congested switch port stops re-running the gates every frame.
            self._coalesce = False
            return False
        if (
            sim.obs is not None
            or sim.faults is not None
            or self.queue.on_threshold is not None
            or link.impaired
            or link.rate_factor != 1.0
            or link.extra_delay != 0.0
            or "on_egress" in node.__dict__
        ):
            return False
        peer = self._peer
        if peer is None:
            peer = self._peer = link.peer_of(self)
        peer_node = peer.node
        if "on_ingress" in peer_node.__dict__:
            # A tracer monkey-wrapped the receiver: deliveries must flow
            # through the wrapped attribute resolved per event, and early
            # scheduling would also reorder its records.
            return False
        items = self.queue._items
        # Batch the probe-free prefix: a probe's egress stage reads clocks
        # and registers at its dequeue instant, so it ends the batch.
        prefix = 0
        for pkt in items:
            if pkt.flags & FLAG_PROBE:
                break
            prefix += 1
        if prefix < 2:
            return False
        self._transmitting = True
        rate = link.rate_from(self)
        prop = link.propagation_delay
        on_egress = node.on_egress
        on_ingress = peer_node.on_ingress
        record = link.record_carried
        post_at = sim.post_at
        plan = self._plan
        start = sim.now
        i = 0
        for pkt in items:
            if i >= prefix:
                break
            i += 1
            plan.append(start)
            # The egress stage runs now rather than at the frame's start
            # instant; the gates guarantee it is time-insensitive for data
            # frames (INT's per-port max-depth fold uses only enq_depth,
            # host egress only stamps probes).
            on_egress(pkt, self, pkt.enq_depth)
            # Same expression shape as the per-frame path — (bytes * 8.0) /
            # rate, accumulated one frame at a time — so every start time is
            # bit-for-bit the value the per-frame path would have computed.
            start += (pkt.size_bytes * 8.0) / rate
            record(self, pkt.size_bytes)
            post_at(start + prop, on_ingress, pkt, peer)
        self.packets_sent += prefix
        post_at(start, self._batch_complete, prefix)
        return True

    def _batch_complete(self, count: int) -> None:
        # The batch replaced ``count`` per-frame completion events with this
        # one; credit the elided count back so ``events_executed`` — an
        # exported workload statistic — is independent of whether the engine
        # coalesced (fast path) or ran frame-by-frame (oracle path).
        self._sim.events_executed += count - 1
        self._drain_started()
        self._transmitting = False
        if self.queue._items:
            self._start_next()

    def _drain_started(self) -> None:
        """Pop coalesced frames whose logical transmission start has been
        reached — called before any depth observation so a mid-batch push
        sees exactly the depth the per-frame path would have recorded."""
        plan = self._plan
        now = self._sim.now
        queue = self.queue
        while plan and plan[0] <= now:
            if queue.pop() is None:  # pragma: no cover - queue cleared mid-batch
                plan.clear()
                break
            plan.popleft()

    # -- introspection ----------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._transmitting

    @property
    def backlog(self) -> int:
        """Packets waiting behind the one in service."""
        if self._plan:
            self._drain_started()
        return self.queue.depth
