"""Traffic sources and sinks.

Three applications reproduce the paper's traffic:

* :class:`UdpCbrFlow` / :class:`UdpSink` — the iperf fixed-rate background
  traffic of Section IV.  Packet emission is Poisson by default ("poisson"
  burstiness): real iperf traffic through a software switch is bursty, and
  burstiness is what makes transient queues build below 100% utilization —
  the very signal Fig. 3 calibrates against.  A deterministic "cbr" mode
  exists for tests.

* :class:`ReliableTransfer` / :class:`TransferSinkApp` — a window-based,
  ack-clocked AIMD transport (slow start, congestion avoidance, fast
  retransmit on 3 dupacks, RTO with exponential backoff, delayed ACKs).
  Task data transfers use this, so transfer times respond to congestion the
  way the paper's TCP transfers do.

* :class:`PingApp` / :class:`PingResponder` — the 1-second-interval RTT
  measurement used for Fig. 3's delay curve.
"""

from __future__ import annotations

import itertools
import math
from time import perf_counter as _perf
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.errors import SimulationError
from repro.simnet.addressing import PORT_IPERF, PORT_PING, PROTO_TCP, PROTO_UDP
from repro.simnet.engine import EventHandle, PeriodicTimer, Simulator
from repro.simnet.host import Host
from repro.simnet.packet import (
    DEFAULT_TTL,
    FLAG_ACK,
    FLAG_ECN,
    HEADER_OVERHEAD,
    MTU,
    Packet,
)

__all__ = [
    "UdpCbrFlow",
    "UdpSink",
    "ReliableTransfer",
    "TransferSinkApp",
    "PingApp",
    "PingResponder",
    "MSS",
]

MSS = MTU - HEADER_OVERHEAD  # payload bytes per full segment

# Pre-interned phase paths for the inline accounting in UdpCbrFlow._emit;
# same taxonomy as the generic scope protocol.
_ROOT_EMIT = "UdpCbrFlow._emit"
_PH_BUILD = "UdpCbrFlow._emit;build"
_PH_SEND = "UdpCbrFlow._emit;send"

_flow_ids = itertools.count(1)


def reset_flow_ids() -> None:
    """Restart flow id allocation at 1 (fresh-run determinism; see
    :func:`repro.edge.task.reset_ids`)."""
    global _flow_ids
    _flow_ids = itertools.count(1)


# ---------------------------------------------------------------------------
# UDP constant-bit-rate (iperf)
# ---------------------------------------------------------------------------

class UdpCbrFlow:
    """Fixed-rate UDP source, the paper's iperf background traffic.

    ``burstiness="poisson"`` draws exponential inter-packet gaps with the
    configured mean rate; ``"cbr"`` sends on a strict schedule.
    """

    def __init__(
        self,
        host: Host,
        dst_addr: int,
        rate_bps: float,
        *,
        packet_size: int = MTU,
        dst_port: int = PORT_IPERF,
        burstiness: str = "poisson",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_bps <= 0:
            raise SimulationError(f"CBR rate must be positive, got {rate_bps}")
        if burstiness not in ("poisson", "cbr"):
            raise SimulationError(f"unknown burstiness {burstiness!r}")
        if burstiness == "poisson" and rng is None:
            raise SimulationError("poisson burstiness requires an rng")
        self.host = host
        self.dst_addr = dst_addr
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.dst_port = dst_port
        self.burstiness = burstiness
        self._rng = rng
        self.flow_id = next(_flow_ids)
        self._src_port = host.ephemeral_port()
        self.mean_gap = (packet_size * 8.0) / rate_bps
        self.packets_emitted = 0
        self.bytes_emitted = 0
        self._next: Optional[EventHandle] = None
        self._stopped = True
        self._seq = 0
        # Per-flow emission template: every frame of a CBR flow is identical
        # except for seq / timestamps, so emission is a copy-and-patch of
        # this prototype instead of a full Packet.__init__ per packet.  The
        # prototype is built without consuming a packet id (ids must match
        # the ctor path packet-for-packet); size validation happens here,
        # where Packet.__init__ would otherwise have raised on first emit.
        if packet_size < HEADER_OVERHEAD:
            from repro.errors import PacketError

            raise PacketError(
                f"size_bytes={packet_size} smaller than header overhead {HEADER_OVERHEAD}"
            )
        template = Packet.__new__(Packet)
        template.src_addr = host.addr
        template.dst_addr = dst_addr
        template.protocol = PROTO_UDP
        template.src_port = self._src_port
        template.dst_port = dst_port
        template.size_bytes = packet_size
        template.payload = None
        template.message = None
        template.flags = 0
        template.ttl = DEFAULT_TTL
        template.flow_id = self.flow_id
        self._template = template

    def start(self, delay: float = 0.0) -> None:
        if not self._stopped:
            raise SimulationError("CBR flow already started")
        self._stopped = False
        self._next = self.host.sim.schedule(delay + self._gap(), self._emit)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._next is not None and not self._next.fired:
            self.host.sim.cancel(self._next)
        self._next = None

    def run_for(self, duration: float, delay: float = 0.0) -> None:
        """Convenience: start after ``delay`` and stop after ``duration``."""
        self.start(delay)
        self.host.sim.schedule(delay + duration, self.stop)

    def _gap(self) -> float:
        if self.burstiness == "cbr":
            return self.mean_gap
        assert self._rng is not None
        return float(self._rng.exponential(self.mean_gap))

    def _emit(self) -> None:
        if self._stopped:
            return
        self._seq += 1
        sim = self.host.sim
        # Phase scopes (profiled runs only): build = packet construction,
        # send = local egress enqueue + next-emission scheduling.
        prof = sim.profiler
        if prof is None:
            packet = self._template.copy_patch(self._seq, sim.now)
            self.host.send(packet)
            self.packets_emitted += 1
            self.bytes_emitted += self.packet_size
            # Re-arm by reusing the handle that just fired us (event-pool
            # path); fresh schedule when driven out-of-band.
            handle = self._next
            if handle is not None and handle.fired and not handle.cancelled:
                sim.reschedule(handle, self._gap())
            else:
                self._next = sim.schedule(self._gap(), self._emit)
            return
        if prof._stack or prof._path != _ROOT_EMIT:
            # Nested or out-of-band invocation: generic scope protocol.
            prof.phase_first("build")
            packet = self._template.copy_patch(self._seq, sim.now)
            prof.phase_next("send")
            self.host.send(packet)
            self.packets_emitted += 1
            self.bytes_emitted += self.packet_size
            handle = self._next
            if handle is not None and handle.fired and not handle.cancelled:
                sim.reschedule(handle, self._gap())
            else:
                self._next = sim.schedule(self._gap(), self._emit)
            prof.phase_end()
            return
        # Inline accounting for the hot top-level case — same taxonomy and
        # clock-read count as the generic protocol, none of its scope-stack
        # cost (see Switch.on_ingress for the pattern).
        phases = prof.phases
        packet = self._template.copy_patch(self._seq, sim.now)
        # Entry lookups happen *inside* the spans they record (before the
        # closing clock read), so the only work outside phase coverage is
        # the in-place adds after the final read.
        entry = phases.get(_PH_BUILD)
        t1 = _perf()
        if entry is None:
            phases[_PH_BUILD] = [1, t1 - prof._t0]
        else:
            entry[0] += 1
            entry[1] += t1 - prof._t0
        prof._path = _PH_SEND
        self.host.send(packet)
        self.packets_emitted += 1
        self.bytes_emitted += self.packet_size
        handle = self._next
        if handle is not None and handle.fired and not handle.cancelled:
            sim.reschedule(handle, self._gap())
        else:
            self._next = sim.schedule(self._gap(), self._emit)
        prof.phase_firsts += 1
        prof.phase_nexts += 1
        entry = phases.get(_PH_SEND)
        t2 = _perf()
        if entry is None:
            phases[_PH_SEND] = [1, t2 - t1]
        else:
            entry[0] += 1
            entry[1] += t2 - t1


class UdpSink:
    """Counts received UDP datagrams per flow (iperf server side)."""

    def __init__(self, host: Host, port: int = PORT_IPERF) -> None:
        self.host = host
        self.port = port
        self.bytes_by_flow: Dict[int, int] = {}
        self.packets_by_flow: Dict[int, int] = {}
        self.first_arrival: Dict[int, float] = {}
        self.last_arrival: Dict[int, float] = {}
        host.bind(PROTO_UDP, port, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        fid = packet.flow_id
        now = self.host.sim.now
        self.bytes_by_flow[fid] = self.bytes_by_flow.get(fid, 0) + packet.size_bytes
        self.packets_by_flow[fid] = self.packets_by_flow.get(fid, 0) + 1
        self.first_arrival.setdefault(fid, now)
        self.last_arrival[fid] = now

    def throughput_bps(self, flow_id: int) -> float:
        """Achieved goodput of one flow over its observed lifetime."""
        if flow_id not in self.bytes_by_flow:
            return 0.0
        span = self.last_arrival[flow_id] - self.first_arrival[flow_id]
        if span <= 0:
            return 0.0
        return self.bytes_by_flow[flow_id] * 8.0 / span


# ---------------------------------------------------------------------------
# Reliable windowed transport (task data transfers)
# ---------------------------------------------------------------------------

# Congestion control constants (TCP-Reno-flavoured).
INITIAL_CWND = 4.0          # segments (RFC 6928 scaled down for small BDPs)
INITIAL_SSTHRESH = 64.0     # segments
MIN_RTO = 0.2               # seconds
INITIAL_RTO = 1.0           # seconds
MAX_RTO = 8.0               # seconds
DUPACK_THRESHOLD = 3
DELAYED_ACK_SEGMENTS = 2


class ReliableTransfer:
    """Sender side of one reliable transfer of ``total_bytes``.

    The receiver is a :class:`TransferSinkApp` bound on ``dst_port`` at the
    destination host.  ``on_complete(transfer)`` fires when the final
    cumulative ACK arrives.
    """

    def __init__(
        self,
        host: Host,
        dst_addr: int,
        dst_port: int,
        total_bytes: int,
        *,
        on_complete: Optional[Callable[["ReliableTransfer"], None]] = None,
        metadata: Optional[dict] = None,
    ) -> None:
        if total_bytes < 0:
            raise SimulationError(f"cannot transfer {total_bytes} bytes")
        self.host = host
        self.sim: Simulator = host.sim
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.total_bytes = total_bytes
        self.total_segments = max(1, math.ceil(total_bytes / MSS)) if total_bytes else 0
        self.on_complete = on_complete
        self.metadata = metadata or {}
        self.flow_id = next(_flow_ids)
        self.src_port = host.ephemeral_port()
        # One shared message object rides every segment: (total_segments,
        # metadata).  Losing the first segment therefore cannot lose the
        # flow's framing information.
        self._wire_msg = (self.total_segments, self.metadata)

        # Congestion state.
        self.cwnd = INITIAL_CWND
        self.ssthresh = INITIAL_SSTHRESH
        self.in_slow_start = True
        self.rto = INITIAL_RTO
        self._srtt: Optional[float] = None
        self._rttvar = 0.0

        # Reliability state.
        self.cum_acked = 0            # segments [0, cum_acked) are acked
        self.next_seq = 0             # next fresh segment to transmit
        self._dupacks = 0
        self._send_times: Dict[int, float] = {}
        self._retransmitted: Set[int] = set()
        self._rto_timer: Optional[EventHandle] = None

        # Metrics.
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.retransmissions = 0
        self.timeouts = 0
        self.segments_sent = 0
        self.ecn_reactions = 0
        self._last_ecn_reaction = -float("inf")
        self._done = False

        host.bind(PROTO_TCP, self.src_port, self._on_ack)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.started_at is not None:
            raise SimulationError("transfer already started")
        self.started_at = self.sim.now
        if self.total_segments == 0:
            self._finish()
            return
        self._pump()
        self._arm_rto()

    @property
    def done(self) -> bool:
        return self._done

    @property
    def elapsed(self) -> float:
        """Transfer time; only valid after completion."""
        if self.started_at is None or self.completed_at is None:
            raise SimulationError("transfer not complete")
        return self.completed_at - self.started_at

    # -- sending --------------------------------------------------------------

    def _segment_bytes(self, seq: int) -> int:
        if seq == self.total_segments - 1:
            rem = self.total_bytes - seq * MSS
            return rem if rem > 0 else MSS
        return MSS

    def _window_avail(self) -> int:
        inflight = self.next_seq - self.cum_acked
        return max(0, int(self.cwnd) - inflight)

    def _pump(self) -> None:
        """Transmit fresh segments allowed by the congestion window."""
        budget = self._window_avail()
        while budget > 0 and self.next_seq < self.total_segments:
            self._transmit(self.next_seq)
            self.next_seq += 1
            budget -= 1

    def _transmit(self, seq: int) -> None:
        nbytes = self._segment_bytes(seq)
        packet = self.host.new_packet(
            self.dst_addr,
            protocol=PROTO_TCP,
            src_port=self.src_port,
            dst_port=self.dst_port,
            size_bytes=HEADER_OVERHEAD + nbytes,
            message=self._wire_msg,
            flow_id=self.flow_id,
            seq=seq,
        )
        self._send_times[seq] = self.sim.now
        self.segments_sent += 1
        self.host.send(packet)

    # -- ACK processing ------------------------------------------------------

    def _on_ack(self, packet: Packet) -> None:
        if self._done or packet.flow_id != self.flow_id or not packet.is_ack:
            return
        if packet.flags & FLAG_ECN:
            self._on_ecn_echo()
        ack = packet.seq  # cumulative: segments [0, ack) received
        if ack > self.cum_acked:
            self._dupacks = 0
            # RTT sample from the newest newly-acked, never-retransmitted
            # segment (Karn's rule).
            sample_seq = ack - 1
            sent = self._send_times.get(sample_seq)
            if sent is not None and sample_seq not in self._retransmitted:
                self._update_rtt(self.sim.now - sent)
            for seq in range(self.cum_acked, ack):
                self._send_times.pop(seq, None)
                self._retransmitted.discard(seq)
            newly = ack - self.cum_acked
            self.cum_acked = ack
            self._grow_cwnd(newly)
            if self.cum_acked >= self.total_segments:
                self._finish()
                return
            self._arm_rto()
            self._pump()
        else:
            self._dupacks += 1
            if self._dupacks == DUPACK_THRESHOLD:
                self._fast_retransmit()

    def _grow_cwnd(self, newly_acked: int) -> None:
        if self.in_slow_start:
            self.cwnd += newly_acked
            if self.cwnd >= self.ssthresh:
                self.in_slow_start = False
        else:
            self.cwnd += newly_acked / self.cwnd

    def _update_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self.rto = min(MAX_RTO, max(MIN_RTO, self._srtt + 4.0 * self._rttvar))

    # -- congestion signals -------------------------------------------------

    def _on_ecn_echo(self) -> None:
        """ECN congestion-experienced echo: multiplicative decrease without
        loss, at most once per RTT (TCP's CWR-gated ECE response)."""
        window = self._srtt if self._srtt is not None else 0.1
        if self.sim.now - self._last_ecn_reaction < window:
            return
        self._last_ecn_reaction = self.sim.now
        self.ecn_reactions += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.in_slow_start = False

    # -- loss recovery ----------------------------------------------------------

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.in_slow_start = False
        self.retransmissions += 1
        self._retransmitted.add(self.cum_acked)
        self._transmit(self.cum_acked)
        self._arm_rto()

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self._done:
            return
        self.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = INITIAL_CWND / 2.0 if INITIAL_CWND > 2 else 1.0
        self.cwnd = max(1.0, self.cwnd)
        self.in_slow_start = True
        self.rto = min(MAX_RTO, self.rto * 2.0)
        self._dupacks = 0
        # Go-back-N from the hole; the window pump will refill gradually.
        self.next_seq = self.cum_acked
        self.retransmissions += 1
        self._retransmitted.add(self.cum_acked)
        self._transmit(self.cum_acked)
        self.next_seq = max(self.next_seq, self.cum_acked + 1)
        self._arm_rto()

    def _arm_rto(self) -> None:
        if self._rto_timer is not None and not self._rto_timer.fired:
            self.sim.cancel(self._rto_timer)
        self._rto_timer = self.sim.schedule(self.rto, self._on_rto)

    # -- completion ---------------------------------------------------------------

    def _finish(self) -> None:
        self._done = True
        self.completed_at = self.sim.now
        if self._rto_timer is not None and not self._rto_timer.fired:
            self.sim.cancel(self._rto_timer)
            self._rto_timer = None
        self.host.unbind(PROTO_TCP, self.src_port)
        if self.on_complete is not None:
            self.on_complete(self)


class _ReassemblyState:
    """Receiver-side state for one incoming flow."""

    __slots__ = (
        "flow_id", "src_addr", "src_port", "total_segments", "next_expected",
        "out_of_order", "bytes_received", "first_arrival", "completed_at",
        "unacked_segments", "metadata", "ecn_pending",
    )

    def __init__(self, packet: Packet, total_segments: int, metadata: dict) -> None:
        self.flow_id = packet.flow_id
        self.src_addr = packet.src_addr
        self.src_port = packet.src_port
        self.total_segments = total_segments
        self.next_expected = 0
        self.out_of_order: Set[int] = set()
        self.bytes_received = 0
        self.first_arrival: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.unacked_segments = 0
        self.metadata = metadata
        self.ecn_pending = False  # a congestion mark awaiting echo

    @property
    def complete(self) -> bool:
        return self.next_expected >= self.total_segments


class TransferSinkApp:
    """Receiver side shared by all transfers targeting one (host, port).

    Demultiplexes by flow id, reassembles, sends cumulative ACKs (delayed:
    every second in-order segment, immediately on out-of-order arrivals),
    and invokes ``on_flow_complete(state)`` when a flow finishes.
    """

    def __init__(
        self,
        host: Host,
        port: int,
        *,
        on_flow_complete: Optional[Callable[[_ReassemblyState], None]] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.on_flow_complete = on_flow_complete
        self.flows: Dict[int, _ReassemblyState] = {}
        self.completed: List[_ReassemblyState] = []
        host.bind(PROTO_TCP, port, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        state = self.flows.get(packet.flow_id)
        if state is None:
            msg = packet.message
            if not (isinstance(msg, tuple) and len(msg) == 2 and isinstance(msg[0], int)):
                return  # malformed or stale segment for an unknown flow
            total, metadata = msg
            if total <= 0:
                return
            state = _ReassemblyState(packet, total, metadata if isinstance(metadata, dict) else {})
            self.flows[packet.flow_id] = state
        if state.complete:
            # Stray retransmission after completion: re-ACK so the sender
            # can finish too.
            self._send_ack(state, force=True)
            return
        if state.first_arrival is None:
            state.first_arrival = self.host.sim.now
        if packet.flags & FLAG_ECN:
            state.ecn_pending = True

        seq = packet.seq
        in_order = False
        is_new = False
        if seq == state.next_expected:
            state.next_expected += 1
            while state.next_expected in state.out_of_order:
                state.out_of_order.discard(state.next_expected)
                state.next_expected += 1
            in_order = True
            is_new = True
        elif seq > state.next_expected:
            is_new = seq not in state.out_of_order
            state.out_of_order.add(seq)
        # else: duplicate of an already-delivered segment; just re-ACK.
        if is_new:
            state.bytes_received += max(0, packet.size_bytes - HEADER_OVERHEAD)

        if state.complete:
            state.completed_at = self.host.sim.now
            self._send_ack(state, force=True)
            self.completed.append(state)
            if self.on_flow_complete is not None:
                self.on_flow_complete(state)
            return

        if in_order:
            state.unacked_segments += 1
            if state.unacked_segments >= DELAYED_ACK_SEGMENTS:
                self._send_ack(state, force=True)
        else:
            self._send_ack(state, force=True)  # dupack / ooo: immediate

    def _send_ack(self, state: _ReassemblyState, force: bool = False) -> None:
        state.unacked_segments = 0
        flags = FLAG_ACK
        if state.ecn_pending:
            flags |= FLAG_ECN  # ECE: echo the congestion mark to the sender
            state.ecn_pending = False
        ack = self.host.new_packet(
            state.src_addr,
            protocol=PROTO_TCP,
            src_port=self.port,
            dst_port=state.src_port,
            size_bytes=HEADER_OVERHEAD,
            flags=flags,
            flow_id=state.flow_id,
            seq=state.next_expected,
        )
        self.host.send(ack)


# ---------------------------------------------------------------------------
# Ping (RTT measurement, Fig. 3)
# ---------------------------------------------------------------------------

PING_SIZE = 64  # bytes on the wire, like ICMP echo


class PingResponder:
    """Echo server: reflects ping requests back to the sender."""

    def __init__(self, host: Host, port: int = PORT_PING) -> None:
        self.host = host
        self.port = port
        self.requests_echoed = 0
        host.bind(PROTO_UDP, port, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        reply = self.host.new_packet(
            packet.src_addr,
            protocol=PROTO_UDP,
            src_port=self.port,
            dst_port=packet.src_port,
            size_bytes=PING_SIZE,
            flags=FLAG_ACK,
            flow_id=packet.flow_id,
            seq=packet.seq,
            message=packet.message,  # echo the original send timestamp
        )
        self.requests_echoed += 1
        self.host.send(reply)


class PingApp:
    """Periodic echo-request sender recording RTT samples (paper: 1 s)."""

    def __init__(
        self,
        host: Host,
        dst_addr: int,
        *,
        interval: float = 1.0,
        dst_port: int = PORT_PING,
    ) -> None:
        self.host = host
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.src_port = host.ephemeral_port()
        self.rtt_samples: List[float] = []
        self.sent = 0
        self.lost_or_pending = 0
        self._seq = 0
        self._timer = PeriodicTimer(host.sim, interval, self._send, start_delay=0.0)
        host.bind(PROTO_UDP, self.src_port, self._on_reply)

    def start(self) -> None:
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _send(self) -> None:
        self._seq += 1
        packet = self.host.new_packet(
            self.dst_addr,
            protocol=PROTO_UDP,
            src_port=self.src_port,
            dst_port=self.dst_port,
            size_bytes=PING_SIZE,
            seq=self._seq,
            message=self.host.sim.now,
        )
        self.sent += 1
        self.lost_or_pending += 1
        self.host.send(packet)

    def _on_reply(self, packet: Packet) -> None:
        if not packet.is_ack or not isinstance(packet.message, float):
            return
        self.rtt_samples.append(self.host.sim.now - packet.message)
        self.lost_or_pending -= 1

    @property
    def mean_rtt(self) -> float:
        if not self.rtt_samples:
            raise SimulationError("no RTT samples collected")
        return float(np.mean(self.rtt_samples))
