"""Point-to-point links: bandwidth + propagation delay.

A :class:`Link` is full duplex; each direction is an independent channel (its
own serializer and egress queue live in the :class:`~repro.simnet.nic.Port`
at the sending end) and may have its own rate.  The link itself only
contributes propagation delay and carries utilization accounting used by
experiments and sanity checks.

Per-direction rates model the paper's testbed bottleneck structure: BMv2
forwards at an effective ~20 Mb/s (Section III-C footnote 3 — "maximum
transfer speed is limited to 20 Mbps due to data plane programming
overhead"), while end hosts inject traffic faster than that.  Queues —
the INT observable — therefore build at *switch* egress ports, which is
where the paper's registers measure them.  The Fig. 4 topology builder sets
host→switch directions to a multiple of the fabric rate and every
switch-egress direction to the fabric rate, with the paper's uniform 10 ms
propagation delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simnet.nic import Port

__all__ = ["Link"]


class Link:
    """Undirected cable between two ports.

    Construction order: create both nodes, then ``Network.connect`` creates
    the two ports and this link in one step — ``Link`` is not usually
    instantiated directly.
    """

    def __init__(
        self,
        name: str,
        rate_bps: float,
        propagation_delay: float,
        *,
        rate_ab_bps: Optional[float] = None,
        rate_ba_bps: Optional[float] = None,
    ) -> None:
        if rate_bps <= 0:
            raise TopologyError(f"link {name!r}: rate must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise TopologyError(
                f"link {name!r}: propagation delay must be >= 0, got {propagation_delay}"
            )
        self.name = name
        self.rate_bps = rate_bps  # symmetric default / nominal capacity
        self.rate_ab_bps = rate_ab_bps if rate_ab_bps is not None else rate_bps
        self.rate_ba_bps = rate_ba_bps if rate_ba_bps is not None else rate_bps
        if self.rate_ab_bps <= 0 or self.rate_ba_bps <= 0:
            raise TopologyError(f"link {name!r}: directional rates must be positive")
        self.propagation_delay = propagation_delay
        self.port_a: Optional["Port"] = None
        self.port_b: Optional["Port"] = None
        # Per-direction byte counters keyed by sending port, for utilization
        # reporting (not visible to the scheduler, which must *infer* load).
        self.bytes_carried = {"a": 0, "b": 0}
        # Observability: {"a": Counter, "b": Counter} installed by
        # Observability.attach_network; None (one check per packet) otherwise.
        self.obs_counters: Optional[dict] = None
        # -- fault-injection state (repro.faults) --------------------------
        # `impaired` is the single hot-path flag the Port checks per packet:
        # it is True iff the link is down or a loss rate is active.  Rate
        # degradation and extra delay apply unconditionally because identity
        # arithmetic (x * 1.0, x + 0.0) is exact, keeping the fault-free
        # path byte-identical.
        self.up = True
        self.loss_rate = 0.0        # drop probability for every frame
        self.probe_loss_rate = 0.0  # additional drop probability for probes
        self.rate_factor = 1.0      # capacity multiplier, in (0, 1]
        self.extra_delay = 0.0      # added propagation delay (s)
        self.impaired = False
        self.packets_lost = 0       # frames lost on the wire (faults only)
        self._loss_rng: Optional[Any] = None

    def attach(self, port_a: "Port", port_b: "Port") -> None:
        if self.port_a is not None or self.port_b is not None:
            raise TopologyError(f"link {self.name!r} already attached")
        self.port_a = port_a
        self.port_b = port_b

    def rate_from(self, port: "Port") -> float:
        """Serialization rate for traffic *sent by* ``port``."""
        if port is self.port_a:
            return self.rate_ab_bps
        if port is self.port_b:
            return self.rate_ba_bps
        raise TopologyError(f"port {port!r} is not attached to link {self.name!r}")

    def peer_of(self, port: "Port") -> "Port":
        """The port on the other end of the cable."""
        if port is self.port_a:
            assert self.port_b is not None
            return self.port_b
        if port is self.port_b:
            assert self.port_a is not None
            return self.port_a
        raise TopologyError(f"port {port!r} is not attached to link {self.name!r}")

    # -- fault injection ---------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Carrier state.  While down, every frame completing transmission
        is lost on the wire (the serializer still runs, like a NIC driving a
        dead cable)."""
        self.up = bool(up)
        self._update_impaired()

    def set_loss(
        self,
        rate: Optional[float] = None,
        probe_rate: Optional[float] = None,
        rng: Optional[Any] = None,
    ) -> None:
        """Probabilistic wire loss: ``rate`` applies to every frame,
        ``probe_rate`` additionally to probe-flagged frames.  Draws come
        from ``rng`` (a numpy Generator) so loss replays deterministically;
        an rng is required whenever either rate is positive."""
        if rate is not None:
            if not 0.0 <= rate <= 1.0:
                raise TopologyError(f"link {self.name!r}: loss rate must be in [0, 1]")
            self.loss_rate = rate
        if probe_rate is not None:
            if not 0.0 <= probe_rate <= 1.0:
                raise TopologyError(
                    f"link {self.name!r}: probe loss rate must be in [0, 1]"
                )
            self.probe_loss_rate = probe_rate
        if rng is not None:
            self._loss_rng = rng
        if (self.loss_rate > 0.0 or self.probe_loss_rate > 0.0) and self._loss_rng is None:
            raise TopologyError(
                f"link {self.name!r}: probabilistic loss requires an rng"
            )
        self._update_impaired()

    def set_degradation(self, *, rate_factor: float = 1.0, extra_delay: float = 0.0) -> None:
        """Brownout: multiply serialization rate by ``rate_factor`` and add
        ``extra_delay`` seconds of propagation delay."""
        if not 0.0 < rate_factor <= 1.0:
            raise TopologyError(
                f"link {self.name!r}: rate_factor must be in (0, 1], got {rate_factor}"
            )
        if extra_delay < 0:
            raise TopologyError(
                f"link {self.name!r}: extra_delay must be >= 0, got {extra_delay}"
            )
        self.rate_factor = rate_factor
        self.extra_delay = extra_delay

    def _update_impaired(self) -> None:
        self.impaired = (
            not self.up or self.loss_rate > 0.0 or self.probe_loss_rate > 0.0
        )

    def should_drop(self, packet) -> bool:
        """Fault check at transmission completion: True when this frame is
        lost on the wire.  Only called when :attr:`impaired` is set."""
        if not self.up:
            return True
        rng = self._loss_rng
        if self.loss_rate > 0.0 and float(rng.random()) < self.loss_rate:
            return True
        if (
            self.probe_loss_rate > 0.0
            and packet.is_probe
            and float(rng.random()) < self.probe_loss_rate
        ):
            return True
        return False

    def record_carried(self, port: "Port", nbytes: int) -> None:
        key = "a" if port is self.port_a else "b"
        self.bytes_carried[key] += nbytes
        if self.obs_counters is not None:
            self.obs_counters[key].inc(nbytes)

    def utilization(self, port: "Port", window: float) -> float:
        """Average utilization of the ``port``-outbound direction over a
        ``window``-second interval ending now (requires caller to reset
        counters per window)."""
        if window <= 0:
            raise ValueError("window must be positive")
        key = "a" if port is self.port_a else "b"
        return (self.bytes_carried[key] * 8.0) / (self.rate_from(port) * window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} rate={self.rate_bps/1e6:.1f}Mbps "
            f"delay={self.propagation_delay*1e3:.1f}ms>"
        )
