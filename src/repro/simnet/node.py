"""Base node machinery shared by hosts and switches: ports and clocks.

The clock model matters for fidelity: the paper synchronizes BMv2 switches
with NTP (Section III-C, footnote 1) and attributes the negative-gain tail of
Fig. 8 to *measurement jitter*.  :class:`Clock` therefore exposes a local
time reading = simulated time + a fixed offset (residual NTP error) + white
noise (reading jitter).  Link-latency measurements computed from two
different clocks inherit exactly the error the paper describes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import TopologyError
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.nic import Port
from repro.simnet.packet import Packet
from repro.simnet.queueing import DEFAULT_QUEUE_CAPACITY

__all__ = ["Clock", "Node"]


class Clock:
    """A node-local clock with NTP-style offset and reading jitter."""

    def __init__(
        self,
        sim: Simulator,
        offset: float = 0.0,
        jitter_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if jitter_std < 0:
            raise ValueError(f"jitter_std must be >= 0, got {jitter_std}")
        if jitter_std > 0 and rng is None:
            raise ValueError("a jittery clock requires an rng")
        self._sim = sim
        self.offset = offset
        self.jitter_std = jitter_std
        self._rng = rng
        # Prefetched noise samples.  The clock's stream is dedicated
        # (Network wires `clock/{name}`), so block refills consume the
        # exact same value sequence as per-read scalar draws.
        self._noise_buf: List[float] = []
        self._noise_idx: int = 0

    def read(self) -> float:
        """Local time: true time + offset + one sample of reading noise."""
        t = self._sim.now + self.offset
        if self.jitter_std > 0:
            # Scalar numpy draws cost ~10x an amortised block draw; values
            # (and the stream state left behind) are bit-identical.
            i = self._noise_idx
            buf = self._noise_buf
            if i >= len(buf):
                assert self._rng is not None
                buf = self._noise_buf = self._rng.normal(
                    0.0, self.jitter_std, 256
                ).tolist()
                i = 0
            self._noise_idx = i + 1
            t += buf[i]
        return t


class Node:
    """A device with named identity, an address, ports, and a clock.

    Subclasses implement :meth:`on_ingress` (packet arrived from the wire)
    and may override :meth:`on_egress` (packet leaving an egress queue —
    where P4 egress stages run).
    """

    def __init__(self, sim: Simulator, name: str, addr: int, clock: Optional[Clock] = None) -> None:
        self.sim = sim
        self.name = name
        self.addr = addr
        self.clock = clock if clock is not None else Clock(sim)
        self.ports: List[Port] = []
        self.packets_received = 0
        self.packets_dropped = 0
        # Per-packet service-time variance (software forwarding jitter).
        # 0.0 = deterministic; j draws each transmission time uniformly from
        # [1-j, 1+j] x nominal.  Switches get a non-zero default from the
        # Network builder; hosts stay deterministic.
        self.service_jitter: float = 0.0
        self._service_rng: Optional[np.random.Generator] = None
        # Prefetched uniform draws (see service_time_factor).  The node's
        # service stream is dedicated (Network wires `service/{name}`), so
        # refilling in blocks consumes the exact same value sequence as
        # per-call scalar draws — generator state advances identically.
        self._service_buf: List[float] = []
        self._service_idx: int = 0

    def set_service_jitter(self, jitter: float, rng: np.random.Generator) -> None:
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"service jitter must be in [0, 1), got {jitter}")
        self.service_jitter = jitter
        self._service_rng = rng
        self._service_buf = []
        self._service_idx = 0

    def service_time_factor(self) -> float:
        """Multiplier applied to one packet's transmission time."""
        if self.service_jitter <= 0.0:
            return 1.0
        # Scalar numpy draws cost ~10x an amortised block draw; refill a
        # block at a time and hand out Python floats.  Values (and the
        # stream state left behind) are bit-identical to scalar draws.
        i = self._service_idx
        buf = self._service_buf
        if i >= len(buf):
            assert self._service_rng is not None
            buf = self._service_buf = self._service_rng.random(512).tolist()
            i = 0
        self._service_idx = i + 1
        return 1.0 + self.service_jitter * (2.0 * buf[i] - 1.0)

    # -- wiring -----------------------------------------------------------

    def add_port(
        self,
        link: Link,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
        queue=None,
    ) -> Port:
        port = Port(self, len(self.ports), link, queue_capacity, queue=queue)
        self.ports.append(port)
        return port

    def port(self, index: int) -> Port:
        try:
            return self.ports[index]
        except IndexError:
            raise TopologyError(f"{self.name}: no port {index}") from None

    # -- data path (subclass responsibilities) ------------------------------

    def on_ingress(self, packet: Packet, in_port: Port) -> None:
        raise NotImplementedError

    def on_egress(self, packet: Packet, out_port: Port, enq_depth: int) -> None:
        """Called as ``packet`` leaves ``out_port``'s queue.  Default: no-op
        (plain hosts have no programmable egress stage)."""

    def on_packet_dropped(self, packet: Packet, port: Port) -> None:
        self.packets_dropped += 1
        obs = self.sim.obs
        if obs:
            obs.packet_dropped(
                queue=f"{self.name}[{port.port_index}]",
                flow_id=packet.flow_id,
                seq=packet.seq,
                size_bytes=packet.size_bytes,
                is_probe=packet.is_probe,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} addr={self.addr} ports={len(self.ports)}>"
