"""Drop-tail FIFO egress queues with the statistics INT observes.

Each switch/host egress port owns one :class:`DropTailQueue`.  The data-plane
observable the paper builds on — *queue depth at enqueue time* (BMv2's
``enq_qdepth``) — is recorded here for every packet and handed to the
programmable pipeline at egress, where the INT program folds it into the
per-port max-queue-depth register (Section III-A).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.simnet.packet import Packet

__all__ = ["DropTailQueue", "RedEcnQueue", "QueueStats"]

DEFAULT_QUEUE_CAPACITY = 64  # packets; BMv2's default egress queue depth


class QueueStats:
    """Running counters for one egress queue."""

    __slots__ = ("enqueued", "dropped", "dequeued", "max_depth_seen", "bytes_enqueued")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.max_depth_seen = 0
        self.bytes_enqueued = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueueStats enq={self.enqueued} deq={self.dequeued} "
            f"drop={self.dropped} max_depth={self.max_depth_seen}>"
        )


class DropTailQueue:
    """Bounded FIFO of packets.

    The depth observed at enqueue time — the number of packets already
    waiting when this packet arrived, the value a P4 program reads as
    ``enq_qdepth`` — is written onto the packet itself
    (:attr:`Packet.enq_depth`) rather than stored in a per-entry pair, so
    the queue entry is the bare packet and a push/pop cycle allocates
    nothing.  A packet arriving at an empty queue observes depth 0.
    """

    def __init__(self, capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Deque[Packet] = deque()
        self.stats = QueueStats()
        # Observability: when ``threshold`` is set, ``on_threshold(depth,
        # direction)`` fires as the depth crosses it upward ("up") or falls
        # back below it ("down").  Disabled (None) costs one check per op.
        self.threshold: Optional[int] = None
        self.on_threshold: Optional[Callable[[int, str], None]] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        """Current number of queued packets (excluding any in transmission)."""
        return len(self._items)

    @property
    def queued_bytes(self) -> int:
        """Total bytes currently waiting (ground-truth delay accounting)."""
        return sum(packet.size_bytes for packet in self._items)

    def push(self, packet: Packet) -> Optional[int]:
        """Enqueue ``packet``.  Returns the depth it observed (also recorded
        on ``packet.enq_depth``), or ``None`` if the queue was full and the
        packet was dropped (drop-tail)."""
        items = self._items
        stats = self.stats
        depth = len(items)
        if depth >= self.capacity:
            stats.dropped += 1
            return None
        packet.enq_depth = depth
        items.append(packet)
        stats.enqueued += 1
        stats.bytes_enqueued += packet.size_bytes
        if depth > stats.max_depth_seen:
            stats.max_depth_seen = depth
        threshold = self.threshold
        if threshold is not None and depth + 1 == threshold and self.on_threshold:
            self.on_threshold(threshold, "up")
        return depth

    def pop(self) -> Optional[Packet]:
        """Dequeue the head-of-line packet (its enqueue-time depth rides on
        ``packet.enq_depth``), or ``None`` when empty."""
        items = self._items
        if not items:
            return None
        self.stats.dequeued += 1
        packet = items.popleft()
        threshold = self.threshold
        if threshold is not None and len(items) == threshold - 1 and self.on_threshold:
            self.on_threshold(len(items), "down")
        return packet

    def clear(self) -> int:
        """Drop everything queued; returns the number of packets discarded."""
        n = len(self._items)
        self._items.clear()
        return n


class RedEcnQueue(DropTailQueue):
    """Drop-tail queue with threshold-based ECN marking.

    Packets enqueued while the depth is at or above ``mark_threshold`` get
    the congestion-experienced flag instead of being dropped (drops still
    happen at full capacity).  A simplified RED: deterministic marking above
    one threshold — enough to study ECN-reacting transports against the
    paper's loss-driven baseline.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_QUEUE_CAPACITY,
        *,
        mark_threshold: Optional[int] = None,
    ) -> None:
        super().__init__(capacity)
        if mark_threshold is None:
            mark_threshold = max(1, capacity // 4)
        if not 1 <= mark_threshold <= capacity:
            raise ValueError(
                f"mark_threshold must be in [1, {capacity}], got {mark_threshold}"
            )
        self.mark_threshold = mark_threshold
        self.marked = 0

    def push(self, packet: Packet) -> Optional[int]:
        depth = super().push(packet)
        if depth is not None and depth >= self.mark_threshold:
            from repro.simnet.packet import FLAG_ECN  # local import: no cycle

            packet.flags |= FLAG_ECN
            self.marked += 1
        return depth
