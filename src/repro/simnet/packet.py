"""The simulated packet.

A :class:`Packet` models one layer-2 frame on the wire.  It carries the
fields the data plane actually matches on (addresses, protocol, ports, the
probe flag) plus simulation bookkeeping (wire size, creation time, TTL).

Payload handling follows a hybrid-fidelity rule:

* **Probe packets** carry *real bytes* (``payload: bytes``) because the INT
  program appends per-hop metadata that the collector must later decode —
  the paper's Section III-A pipeline is reproduced at byte granularity.
* **Bulk data packets** (task uploads, iperf) carry only their *length*; the
  content is irrelevant to every experiment, and materialising megabytes of
  payload would dominate simulation cost for no fidelity gain.
* **Control messages** (scheduler queries/responses, task completion
  notifications) carry a small Python object in :attr:`message` plus a
  declared wire size.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import PacketError
from repro.simnet.addressing import PROTO_UDP

__all__ = [
    "Packet",
    "FLAG_PROBE",
    "FLAG_ACK",
    "FLAG_ECN",
    "DEFAULT_TTL",
    "MTU",
    "HEADER_OVERHEAD",
]

# Flag bits (modelled on DSCP/ToS-style marking; the paper marks probes with
# "certain IP header fields set (aka Geneve option)").
FLAG_PROBE = 0x1
FLAG_ACK = 0x2
# ECN congestion-experienced mark, set by RED/ECN egress queues and echoed
# by receivers (on ACKs it plays the role of TCP's ECE bit).
FLAG_ECN = 0x8

DEFAULT_TTL = 64
MTU = 1500                # maximum frame size used throughout (paper: 1.5 KB probes)
HEADER_OVERHEAD = 40      # bytes of L2/L3/L4 headers accounted in every frame

_packet_ids = itertools.count(1)


def reset_packet_ids() -> None:
    """Restart packet id allocation at 1 (fresh-run determinism; see
    :func:`repro.edge.task.reset_ids`)."""
    global _packet_ids
    _packet_ids = itertools.count(1)


class Packet:
    """One frame in flight.  Mutable only where the data plane mutates real
    packets (payload growth for probes, TTL decrement)."""

    __slots__ = (
        "packet_id",
        "src_addr",
        "dst_addr",
        "protocol",
        "src_port",
        "dst_port",
        "size_bytes",
        "payload",
        "message",
        "flags",
        "ttl",
        "flow_id",
        "seq",
        "created_at",
        "hop_count",
        "enq_depth",
        "last_egress_ts",
        "int_link_latency",
        "int_stack",
    )

    def __init__(
        self,
        src_addr: int,
        dst_addr: int,
        *,
        protocol: int = PROTO_UDP,
        src_port: int = 0,
        dst_port: int = 0,
        size_bytes: int = HEADER_OVERHEAD,
        payload: Optional[bytes] = None,
        message: Any = None,
        flags: int = 0,
        flow_id: int = 0,
        seq: int = 0,
        created_at: float = 0.0,
        ttl: int = DEFAULT_TTL,
    ) -> None:
        if size_bytes < HEADER_OVERHEAD:
            raise PacketError(
                f"size_bytes={size_bytes} smaller than header overhead {HEADER_OVERHEAD}"
            )
        if payload is not None and HEADER_OVERHEAD + len(payload) > size_bytes:
            raise PacketError(
                f"declared size {size_bytes} cannot hold {len(payload)}B payload "
                f"+ {HEADER_OVERHEAD}B headers"
            )
        self.packet_id = next(_packet_ids)
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.protocol = protocol
        self.src_port = src_port
        self.dst_port = dst_port
        self.size_bytes = size_bytes
        self.payload = payload
        self.message = message
        self.flags = flags
        self.ttl = ttl
        self.flow_id = flow_id
        self.seq = seq
        self.created_at = created_at
        self.hop_count = 0
        # Queue depth observed at the most recent enqueue (BMv2's
        # ``enq_qdepth``).  Written by DropTailQueue.push so queue entries
        # can be bare packets instead of (packet, depth) pairs; a packet
        # occupies at most one queue at a time, so one slot suffices.
        self.enq_depth = 0
        # Egress timestamp written by the previous switch (INT link-latency
        # measurement, Section III-A).  ``None`` until the first P4 egress.
        self.last_egress_ts: Optional[float] = None
        # Upstream link latency measured by the *current* switch's ingress
        # stage (arrival time minus ``last_egress_ts``), consumed and cleared
        # by its egress stage when the INT hop record is appended.
        self.int_link_latency: Optional[float] = None
        # Per-packet INT mode only (the embedding design the paper rejects):
        # the hop-record stack riding this data packet.  None for everything
        # else — probes carry their stack in the byte payload instead.
        self.int_stack = None

    def copy_patch(self, seq: int, created_at: float) -> "Packet":
        """Copy-and-patch emission from a per-flow template: straight-line
        slot copies, a fresh packet id, and reset per-hop bookkeeping —
        no keyword processing and no re-validation (the template was
        validated once at construction).  This is the hot constructor for
        fixed-shape sources (CBR flows emit 100K+ identical frames)."""
        p = Packet.__new__(Packet)
        p.packet_id = next(_packet_ids)
        p.src_addr = self.src_addr
        p.dst_addr = self.dst_addr
        p.protocol = self.protocol
        p.src_port = self.src_port
        p.dst_port = self.dst_port
        p.size_bytes = self.size_bytes
        p.payload = self.payload
        p.message = self.message
        p.flags = self.flags
        p.ttl = self.ttl
        p.flow_id = self.flow_id
        p.seq = seq
        p.created_at = created_at
        p.hop_count = 0
        p.enq_depth = 0
        p.last_egress_ts = None
        p.int_link_latency = None
        p.int_stack = None
        return p

    # -- classification helpers used by parsers and demultiplexers ---------

    @property
    def is_probe(self) -> bool:
        return bool(self.flags & FLAG_PROBE)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    def set_payload(self, payload: bytes) -> None:
        """Replace the byte payload, updating the wire size accordingly."""
        self.payload = payload
        self.size_bytes = HEADER_OVERHEAD + len(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "PROBE" if self.is_probe else ("ACK" if self.is_ack else "DATA")
        return (
            f"<Packet#{self.packet_id} {kind} {self.src_addr}:{self.src_port}->"
            f"{self.dst_addr}:{self.dst_port} proto={self.protocol} "
            f"{self.size_bytes}B flow={self.flow_id} seq={self.seq}>"
        )
