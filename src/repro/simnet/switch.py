"""Switches: nodes that run a programmable data-plane pipeline.

A :class:`Switch` delegates every forwarding decision to its bound
:class:`~repro.p4.pipeline.P4Program`:

* packet arrival -> ``program.process_ingress`` (parser + ingress control);
* packet leaving an egress queue -> ``program.process_egress`` (parser +
  egress control + deparser), with the queue depth the packet observed at
  enqueue time — the BMv2 ``enq_qdepth`` intrinsic the INT program records.

The program is bound *after* the topology is wired (``Network.finalize``),
because programs size per-port resources (the INT registers) from the final
port count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import DataPlaneError
from repro.simnet.engine import Simulator
from repro.simnet.nic import Port
from repro.simnet.node import Clock, Node
from repro.simnet.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.p4.pipeline import P4Program

__all__ = ["Switch"]


class Switch(Node):
    """A store-and-forward switch with a P4-style pipeline."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        addr: int,
        switch_id: int,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(sim, name, addr, clock)
        self.switch_id = switch_id
        self.program: Optional["P4Program"] = None
        self.packets_forwarded = 0
        self.packets_dropped_pipeline = 0

    def bind_program(self, program: "P4Program") -> None:
        if self.program is not None:
            raise DataPlaneError(f"switch {self.name} already has a program")
        self.program = program
        program.bind(self)

    # -- data path ----------------------------------------------------------

    def on_ingress(self, packet: Packet, in_port: Port) -> None:
        # Phase scopes (profiled runs only): p4_pipeline covers the parser +
        # ingress control (routing/int_stamp sub-phases open inside the
        # program), enqueue covers the egress-port send.  phase_first
        # backdates p4_pipeline to the handler's start, so the entry
        # bookkeeping is attributed rather than lost.
        prof = self.sim.profiler
        if prof is not None:
            prof.phase_first("p4_pipeline")
        self.packets_received += 1
        if self.program is None:
            raise DataPlaneError(f"switch {self.name} has no data-plane program")
        ctx = self.program.process_ingress(packet, in_port.port_index)
        if ctx.dropped:
            if prof is not None:
                prof.phase_end()
            self.packets_dropped_pipeline += 1
            return
        assert ctx.egress_port is not None
        packet.hop_count += 1
        self.packets_forwarded += 1
        if prof is None:
            self.port(ctx.egress_port).send(packet)
            return
        prof.phase_next("enqueue")
        self.port(ctx.egress_port).send(packet)
        prof.phase_end()

    def on_egress(self, packet: Packet, out_port: Port, enq_depth: int) -> None:
        assert self.program is not None
        self.program.process_egress(packet, out_port.port_index, enq_depth)
