"""Switches: nodes that run a programmable data-plane pipeline.

A :class:`Switch` delegates every forwarding decision to its bound
:class:`~repro.p4.pipeline.P4Program`:

* packet arrival -> ``program.process_ingress`` (parser + ingress control);
* packet leaving an egress queue -> ``program.process_egress`` (parser +
  egress control + deparser), with the queue depth the packet observed at
  enqueue time — the BMv2 ``enq_qdepth`` intrinsic the INT program records.

The program is bound *after* the topology is wired (``Network.finalize``),
because programs size per-port resources (the INT registers) from the final
port count.
"""

from __future__ import annotations

import os
from time import perf_counter as _perf
from typing import TYPE_CHECKING, Optional

from repro.errors import DataPlaneError
from repro.simnet.engine import Simulator
from repro.simnet.nic import Port
from repro.simnet.node import Clock, Node
from repro.simnet.packet import FLAG_PROBE, Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.p4.pipeline import P4Program

__all__ = ["Switch"]

# Pre-interned phase paths for the inline accounting in the fast ingress
# path (see on_ingress): the handler root the engine loop sets, plus its two
# sequential phases.  Matching the generic scope taxonomy exactly keeps the
# profile output identical whichever branch recorded it.
_ROOT_INGRESS = "Switch.on_ingress"
_PH_PIPELINE = "Switch.on_ingress;p4_pipeline"
_PH_ENQUEUE = "Switch.on_ingress;enqueue"


class Switch(Node):
    """A store-and-forward switch with a P4-style pipeline."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        addr: int,
        switch_id: int,
        clock: Optional[Clock] = None,
    ) -> None:
        super().__init__(sim, name, addr, clock)
        self.switch_id = switch_id
        self.program: Optional["P4Program"] = None
        self.packets_forwarded = 0
        self.packets_dropped_pipeline = 0
        # Compiled per-packet-class closures (P4Program.compile), or None
        # when the program has no fast path / REPRO_SLOWPATH=1 forces the
        # staged oracle path.
        self._fast_ingress = None
        self._fast_egress = None

    def bind_program(self, program: "P4Program") -> None:
        if self.program is not None:
            raise DataPlaneError(f"switch {self.name} already has a program")
        self.program = program
        program.bind(self)
        if os.environ.get("REPRO_SLOWPATH", "") != "1":
            compiled = program.compile()
            if compiled is not None:
                self._fast_ingress, self._fast_egress = compiled

    # -- data path ----------------------------------------------------------

    def on_ingress(self, packet: Packet, in_port: Port) -> None:
        # Compiled fast path for the common data-packet hop: the program's
        # parser + ingress control folded into one closure, zero context
        # allocations.  Probes and uncompiled programs take the staged path.
        fast = self._fast_ingress
        if fast is not None and not packet.flags & FLAG_PROBE:
            prof = self.sim.profiler
            if prof is None:
                self.packets_received += 1
                egress_port = fast(packet)
                if egress_port < 0:
                    self.packets_dropped_pipeline += 1
                    return
                packet.hop_count += 1
                self.packets_forwarded += 1
                self.ports[egress_port].send(packet)
                return
            if prof._stack or prof._path != _ROOT_INGRESS:
                # Nested or out-of-band invocation: the generic scope
                # protocol handles arbitrary parent paths.
                prof.phase_first("p4_pipeline")
                self.packets_received += 1
                egress_port = fast(packet)
                if egress_port < 0:
                    prof.phase_end()
                    self.packets_dropped_pipeline += 1
                    return
                packet.hop_count += 1
                self.packets_forwarded += 1
                prof.phase_next("enqueue")
                self.ports[egress_port].send(packet)
                prof.phase_end()
                return
            # Inline accounting for the hot top-level case: same phase
            # taxonomy and the same clock-read count as phase_first +
            # phase_next + phase_end (2 reads), without the scope-stack and
            # path-interning machinery.  The overhead-model counters
            # (phase_firsts / phase_nexts) are bumped exactly as the generic
            # protocol would, so the self-measured cost stays honest.
            phases = prof.phases
            self.packets_received += 1
            egress_port = fast(packet)
            if egress_port < 0:
                entry = phases.get(_PH_PIPELINE)
                t1 = _perf()
                if entry is None:
                    phases[_PH_PIPELINE] = [1, t1 - prof._t0]
                else:
                    entry[0] += 1
                    entry[1] += t1 - prof._t0
                prof.phase_firsts += 1
                self.packets_dropped_pipeline += 1
                return
            packet.hop_count += 1
            self.packets_forwarded += 1
            # Entry lookups happen *inside* the spans they record (before
            # the closing clock read), so the only work outside phase
            # coverage is the in-place adds after the final read.
            entry = phases.get(_PH_PIPELINE)
            t1 = _perf()
            if entry is None:
                phases[_PH_PIPELINE] = [1, t1 - prof._t0]
            else:
                entry[0] += 1
                entry[1] += t1 - prof._t0
            # Root any nested scope (a probe's egress_stage opened from
            # inside send -> _start_next) under the enqueue path.
            prof._path = _PH_ENQUEUE
            self.ports[egress_port].send(packet)
            prof.phase_firsts += 1
            prof.phase_nexts += 1
            entry = phases.get(_PH_ENQUEUE)
            t2 = _perf()
            if entry is None:
                phases[_PH_ENQUEUE] = [1, t2 - t1]
            else:
                entry[0] += 1
                entry[1] += t2 - t1
            return
        # Phase scopes (profiled runs only): p4_pipeline covers the parser +
        # ingress control (routing/int_stamp sub-phases open inside the
        # program), enqueue covers the egress-port send.  phase_first
        # backdates p4_pipeline to the handler's start, so the entry
        # bookkeeping is attributed rather than lost.
        prof = self.sim.profiler
        if prof is not None:
            prof.phase_first("p4_pipeline")
        self.packets_received += 1
        if self.program is None:
            raise DataPlaneError(f"switch {self.name} has no data-plane program")
        ctx = self.program.process_ingress(packet, in_port.port_index)
        if ctx.dropped:
            if prof is not None:
                prof.phase_end()
            self.packets_dropped_pipeline += 1
            return
        assert ctx.egress_port is not None
        packet.hop_count += 1
        self.packets_forwarded += 1
        if prof is None:
            self.port(ctx.egress_port).send(packet)
            return
        prof.phase_next("enqueue")
        self.port(ctx.egress_port).send(packet)
        prof.phase_end()

    def on_egress(self, packet: Packet, out_port: Port, enq_depth: int) -> None:
        fast = self._fast_egress
        if fast is not None and not packet.flags & FLAG_PROBE:
            fast(packet, out_port.port_index, enq_depth)
            return
        assert self.program is not None
        self.program.process_egress(packet, out_port.port_index, enq_depth)
