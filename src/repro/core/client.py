"""Client side of the scheduler protocol, used by edge devices.

One :class:`SchedulerClient` per host multiplexes any number of concurrent
queries over a single ephemeral port, correlating responses by request id.
Queries are retried on timeout (the query/response datagrams traverse the
congested network like everything else and can be dropped)."""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from repro.simnet.addressing import PORT_SCHEDULER, PROTO_UDP
from repro.simnet.engine import EventHandle
from repro.simnet.host import Host
from repro.simnet.packet import HEADER_OVERHEAD, Packet

__all__ = ["SchedulerClient"]

Ranking = List[Tuple[int, float]]
RankingCallback = Callable[[Ranking], None]

DEFAULT_TIMEOUT = 1.0
DEFAULT_RETRIES = 10
BACKOFF_FACTOR = 1.5   # timeout grows per retry; heavy congestion needs patience
MAX_TIMEOUT = 6.0
_QUERY_SIZE = HEADER_OVERHEAD + 16

_request_ids = itertools.count(1)


def reset_request_ids() -> None:
    """Restart request id allocation at 1 (fresh-run determinism; see
    :func:`repro.edge.task.reset_ids`)."""
    global _request_ids
    _request_ids = itertools.count(1)


class SchedulerClient:
    """Query the scheduling service and deliver ranked server lists."""

    def __init__(self, host: Host, scheduler_addr: int) -> None:
        self.host = host
        self.scheduler_addr = scheduler_addr
        self.src_port = host.ephemeral_port()
        self._pending: Dict[int, Tuple[RankingCallback, str, int, Optional[EventHandle]]] = {}
        self.queries_sent = 0
        self.responses_received = 0
        self.retries = 0
        self.failures = 0
        host.bind(PROTO_UDP, self.src_port, self._on_response)

    def query(
        self,
        metric: str,
        callback: RankingCallback,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
    ) -> int:
        """Request a ranking; ``callback(ranking)`` fires on the response.

        Returns the request id.  After ``retries`` unanswered attempts the
        query is abandoned and the callback receives an empty ranking, which
        callers treat as "scheduling failed"."""
        request_id = next(_request_ids)
        self._pending[request_id] = (callback, metric, retries, None)
        self._send(request_id, metric, timeout)
        return request_id

    def _send(self, request_id: int, metric: str, timeout: float) -> None:
        entry = self._pending.get(request_id)
        if entry is None:
            return
        callback, _metric, retries_left, _old_timer = entry
        packet = self.host.new_packet(
            self.scheduler_addr,
            protocol=PROTO_UDP,
            src_port=self.src_port,
            dst_port=PORT_SCHEDULER,
            size_bytes=_QUERY_SIZE,
            message=("sched_query", request_id, metric),
        )
        self.queries_sent += 1
        timer = self.host.sim.schedule(timeout, self._on_timeout, request_id, timeout)
        self._pending[request_id] = (callback, metric, retries_left, timer)
        self.host.send(packet)

    def _on_timeout(self, request_id: int, timeout: float) -> None:
        entry = self._pending.get(request_id)
        if entry is None:
            return
        callback, metric, retries_left, _timer = entry
        if retries_left <= 0:
            del self._pending[request_id]
            self.failures += 1
            callback([])
            return
        self.retries += 1
        self._pending[request_id] = (callback, metric, retries_left - 1, None)
        self._send(request_id, metric, min(MAX_TIMEOUT, timeout * BACKOFF_FACTOR))

    def _on_response(self, packet: Packet) -> None:
        msg = packet.message
        if not (isinstance(msg, tuple) and len(msg) == 3 and msg[0] == "sched_response"):
            return
        _tag, request_id, ranking = msg
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return  # duplicate response after a retry already answered
        callback, _metric, _retries, timer = entry
        if timer is not None and not timer.fired:
            self.host.sim.cancel(timer)
        self.responses_received += 1
        callback(list(ranking))
