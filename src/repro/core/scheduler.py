"""Scheduler services: the query/response protocol and the network-aware
scheduler (Fig. 1, steps 2-5).

Edge devices send a query datagram to the scheduler node and receive the
ranked list of candidate edge servers with the estimated metric (delay in
seconds or available bandwidth in bit/s).  The protocol is deliberately
identical across the network-aware scheduler and the baselines so the edge
device code is policy-agnostic — only the node running the service changes.

Wire messages (Python objects riding :attr:`Packet.message`):

* query:    ``("sched_query", request_id, metric)``
* response: ``("sched_response", request_id, ((server_addr, value), ...))``
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.core.estimators import (
    BandwidthEstimator,
    DelayEstimator,
    QdepthUtilizationCurve,
)
from repro.core.ranking import rank_by_bandwidth, rank_by_delay
from repro.core.telemetry_store import TelemetryStore
from repro.simnet.addressing import PORT_SCHEDULER, PROTO_UDP
from repro.simnet.host import Host
from repro.simnet.packet import HEADER_OVERHEAD, Packet
from repro.telemetry.collector import IntCollector
from repro.telemetry.records import host_node

__all__ = [
    "SchedulerService",
    "NetworkAwareScheduler",
    "METRIC_DELAY",
    "METRIC_BANDWIDTH",
    "METRIC_RAW",
    "STALE_BW_FACTOR",
]

METRIC_DELAY = "delay"
METRIC_BANDWIDTH = "bandwidth"
# Section III-B's second mode: "the scheduler can respond back with
# (unsorted) list of all edge devices along with their bandwidth and latency
# information to let edge devices implement a custom selection algorithm."
METRIC_RAW = "raw"

# Per-query service time at the scheduler (decode + rank + encode).
DEFAULT_PROCESSING_DELAY = 0.5e-3
# Degraded-mode ranking: a quarantined (stale-telemetry) candidate's
# last-known bandwidth is discounted by this factor, mirroring the additive
# delay penalty — stale good news is treated as half as good.
STALE_BW_FACTOR = 0.5
# Response size grows with the candidate list: address + float value.
_BYTES_PER_RANK_ENTRY = 12


class SchedulerService:
    """Protocol plumbing shared by every scheduling policy.

    Subclasses implement :meth:`rank` returning ``[(server_addr, value),
    ...]`` best-first for the given requester and metric.
    """

    def __init__(
        self,
        host: Host,
        server_addrs: Sequence[int],
        *,
        processing_delay: float = DEFAULT_PROCESSING_DELAY,
    ) -> None:
        if not server_addrs:
            raise SchedulingError("scheduler needs at least one edge server")
        self.host = host
        self.server_addrs = list(server_addrs)
        self.processing_delay = processing_delay
        self.queries_served = 0
        host.bind(PROTO_UDP, PORT_SCHEDULER, self._on_query)

    # -- protocol ------------------------------------------------------------

    def _on_query(self, packet: Packet) -> None:
        msg = packet.message
        if not (isinstance(msg, tuple) and len(msg) == 3 and msg[0] == "sched_query"):
            return
        _tag, request_id, metric = msg
        obs = self.host.sim.obs
        if obs:
            trace = getattr(obs, "trace", None)
            if trace is not None:
                trace.decision_query(request_id)
        self.host.sim.schedule(
            self.processing_delay,
            self._respond,
            packet.src_addr,
            packet.src_port,
            request_id,
            metric,
        )

    def _respond(
        self, requester_addr: int, requester_port: int, request_id: int, metric: str
    ) -> None:
        ranking = self.rank(requester_addr, metric)
        self.queries_served += 1
        obs = self.host.sim.obs
        if obs:
            self._audit_decision(obs, requester_addr, metric, ranking)
            if getattr(obs, "trace", None) is not None:
                self._trace_decision(obs, requester_addr, metric, ranking, request_id)
        response = self.host.new_packet(
            requester_addr,
            protocol=PROTO_UDP,
            src_port=PORT_SCHEDULER,
            dst_port=requester_port,
            size_bytes=HEADER_OVERHEAD + _BYTES_PER_RANK_ENTRY * max(1, len(ranking)),
            message=("sched_response", request_id, tuple(ranking)),
        )
        self.host.send(response)

    # -- observability -----------------------------------------------------

    def _audit_decision(self, obs, requester_addr: int, metric: str, ranking) -> None:
        """Record one ranking query in the decision audit trail.  The base
        record carries every candidate's value and, when a ground-truth
        oracle is attached, the true path delay at decision time; the
        network-aware subclass adds the per-hop estimate breakdown."""
        truth = obs.ground_truth
        candidates = []
        for addr, value in ranking:
            cand: Dict[str, object] = {
                "server_addr": addr,
                "value": list(value) if isinstance(value, tuple) else value,
            }
            if truth is not None:
                cand["truth_delay"] = truth.true_delay_between(requester_addr, addr)
            candidates.append(cand)
        # Raw rankings are unsorted — the device chooses, not the scheduler.
        chosen = ranking[0][0] if ranking and metric != METRIC_RAW else None
        decision = obs.audit.record(
            requester_addr=requester_addr,
            metric=metric,
            candidates=candidates,
            chosen_addr=chosen,
        )
        # Counterfactual replay prices audited delay decisions only.
        # Baselines consult no telemetry store, so staleness is unknown.
        whatif = getattr(obs, "whatif", None)
        if whatif is not None and decision is not None and metric == METRIC_DELAY:
            whatif.decision(
                self.host.sim.now, getattr(self, "store", None), candidates, chosen
            )

    def _trace_decision(
        self, obs, requester_addr: int, metric: str, ranking, request_id: int
    ) -> None:
        """Stage this decision for the requesting task's causal trace (the
        ``scheduler_decision`` child span).  The base record is the decision
        shape; the network-aware subclass adds the telemetry freshness the
        ranking was computed from."""
        chosen = ranking[0][0] if ranking and metric != METRIC_RAW else None
        obs.trace.decision(
            request_id,
            scheduler=type(self).__name__,
            metric=metric,
            chosen_addr=chosen,
            candidates=len(ranking),
        )

    # -- policy (override) ------------------------------------------------------

    def candidates_for(self, requester_addr: int) -> List[int]:
        """Every registered edge server except the requester itself (a node
        never executes its own offloaded task, Section IV)."""
        return [a for a in self.server_addrs if a != requester_addr]

    def rank(self, requester_addr: int, metric: str) -> List[Tuple[int, float]]:
        raise NotImplementedError


class NetworkAwareScheduler(SchedulerService):
    """The paper's INT-driven scheduler.

    Owns the collector -> telemetry-store -> estimator pipeline and ranks by
    Algorithm 1 (delay metric) or bottleneck available bandwidth.
    """

    def __init__(
        self,
        host: Host,
        server_addrs: Sequence[int],
        *,
        link_capacity_bps: float,
        k: float = 0.020,
        default_link_delay: float = 0.010,
        qdepth_floor: int = 3,
        curve: Optional[QdepthUtilizationCurve] = None,
        staleness: float = 2.0,
        processing_delay: float = DEFAULT_PROCESSING_DELAY,
        quarantine_ttl: Optional[float] = None,
        stale_penalty: float = 0.050,
    ) -> None:
        if quarantine_ttl is not None and quarantine_ttl <= 0:
            raise SchedulingError(
                f"quarantine_ttl must be positive, got {quarantine_ttl}"
            )
        if stale_penalty < 0:
            raise SchedulingError(f"stale_penalty must be >= 0, got {stale_penalty}")
        super().__init__(host, server_addrs, processing_delay=processing_delay)
        self.collector = IntCollector(host)
        self.store = TelemetryStore(host.sim, staleness=staleness)
        self.collector.subscribe(self.store.update)
        self.delay_estimator = DelayEstimator(
            self.store, k=k, default_link_delay=default_link_delay,
            qdepth_floor=qdepth_floor,
        )
        self.bandwidth_estimator = BandwidthEstimator(
            self.store, link_capacity_bps=link_capacity_bps, curve=curve
        )
        # Graceful degradation (off by default — None preserves the paper's
        # behavior exactly): candidates whose telemetry is older than the TTL
        # are quarantined to the back of the ranking, scored from last-known
        # EWMAs plus a penalty instead of from values the staleness horizon
        # already zeroed out.  Never-seen nodes are NOT quarantined: at cold
        # start nothing is fresh and everything should still be rankable.
        self.quarantine_ttl = quarantine_ttl
        self.stale_penalty = stale_penalty
        self._quarantined: Set = set()

    def rank(self, requester_addr: int, metric: str) -> List[Tuple[int, float]]:
        origin = host_node(requester_addr)
        candidates = [host_node(a) for a in self.candidates_for(requester_addr)]
        if self.quarantine_ttl is not None:
            fresh, stale = self._partition_by_freshness(candidates)
        else:
            fresh, stale = candidates, []
        if metric == METRIC_DELAY:
            ranked = rank_by_delay(self.delay_estimator, origin, fresh)
            ranked += self._rank_stale_by_delay(origin, stale)
        elif metric == METRIC_BANDWIDTH:
            ranked = rank_by_bandwidth(self.bandwidth_estimator, origin, fresh)
            ranked += self._rank_stale_by_bandwidth(origin, stale)
        elif metric == METRIC_RAW:
            return self._rank_raw(origin, candidates)
        else:
            raise SchedulingError(f"unknown ranking metric {metric!r}")
        return [(node[1], value) for node, value in ranked]

    # -- graceful degradation ----------------------------------------------

    @property
    def quarantined_nodes(self) -> Set:
        """Candidates currently held back for stale telemetry."""
        return set(self._quarantined)

    def _partition_by_freshness(self, candidates):
        """Split candidates into (fresh, stale) by telemetry age, emitting
        quarantine transition events as nodes cross the TTL either way."""
        ttl = self.quarantine_ttl
        fresh, stale = [], []
        obs = self.host.sim.obs
        for node in candidates:
            age = self.store.node_age(node)
            if age is not None and age > ttl:
                stale.append(node)
                if node not in self._quarantined:
                    self._quarantined.add(node)
                    if obs:
                        obs.node_quarantined(node=f"{node[0]}:{node[1]}", age=age)
            else:
                fresh.append(node)
                if node in self._quarantined:
                    self._quarantined.discard(node)
                    if obs:
                        obs.node_unquarantined(node=f"{node[0]}:{node[1]}")
        return fresh, stale

    def _rank_stale_by_delay(self, origin, stale) -> List[Tuple[Tuple, float]]:
        """Quarantined candidates, best-last-known-delay first, each charged
        the staleness penalty.  With a dark store this degenerates to the
        hop-count (Nearest) ordering — every link falls back to the default
        delay — which is exactly the right blind-mode behavior."""
        ranked = []
        for node in stale:
            try:
                delay = self.delay_estimator.delay_between(
                    origin, node, allow_stale=True
                )
            except SchedulingError:
                delay = math.inf
            ranked.append((node, delay + self.stale_penalty))
        ranked.sort(key=lambda item: (item[1], item[0]))
        return ranked

    def _rank_stale_by_bandwidth(self, origin, stale) -> List[Tuple[Tuple, float]]:
        ranked = []
        for node in stale:
            try:
                bw = self.bandwidth_estimator.throughput_between(origin, node)
            except SchedulingError:
                bw = 0.0
            ranked.append((node, bw * STALE_BW_FACTOR))
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return ranked

    def _audit_decision(self, obs, requester_addr: int, metric: str, ranking) -> None:
        """Algorithm 1's full working: per candidate, the per-hop Q(h) and
        link-delay (or utilization) terms behind the estimate, plus ground
        truth along the *estimated* path when an oracle is attached."""
        from repro.core.ranking import explain_bandwidth, explain_delay

        origin = host_node(requester_addr)
        truth = obs.ground_truth
        candidates = []
        for addr, value in ranking:
            cand: Dict[str, object] = {
                "server_addr": addr,
                "value": list(value) if isinstance(value, tuple) else value,
            }
            node = host_node(addr)
            if metric == METRIC_DELAY:
                detail = explain_delay(self.delay_estimator, origin, node)
                cand["estimated_delay"] = detail["value"]
            elif metric == METRIC_BANDWIDTH:
                detail = explain_bandwidth(self.bandwidth_estimator, origin, node)
            else:  # raw: both estimates ride in value; explain the delay side
                detail = explain_delay(self.delay_estimator, origin, node)
                cand["estimated_delay"] = detail["value"]
            cand["path"] = detail["path"]
            cand["hops"] = detail["hops"]
            if truth is not None:
                cand["truth_delay"] = truth.true_delay_between(requester_addr, addr)
            candidates.append(cand)
        chosen = ranking[0][0] if ranking and metric != METRIC_RAW else None
        decision = obs.audit.record(
            requester_addr=requester_addr,
            metric=metric,
            candidates=candidates,
            chosen_addr=chosen,
        )
        # Telemetry-quality attribution mirrors the audit exactly: only
        # decisions the (bounded) audit stored, only the delay metric the
        # error report aggregates, read from the same candidate dicts.
        telquality = getattr(obs, "telquality", None)
        if telquality is not None and decision is not None and metric == METRIC_DELAY:
            telquality.decision(self.host.sim.now, self.store, candidates)
        # Counterfactual replay shares the same gating: audited delay
        # decisions, with truth and hop ages read per candidate at
        # decision time — every candidate, not just the chosen one.
        whatif = getattr(obs, "whatif", None)
        if whatif is not None and decision is not None and metric == METRIC_DELAY:
            whatif.decision(self.host.sim.now, self.store, candidates, chosen)

    def _trace_decision(
        self, obs, requester_addr: int, metric: str, ranking, request_id: int
    ) -> None:
        """Base decision shape plus the Algorithm-1 estimate for the chosen
        candidate and the telemetry snapshot age per hop of its path — the
        staleness the ranking was actually computed from."""
        from repro.core.ranking import explain_delay

        chosen = ranking[0][0] if ranking and metric != METRIC_RAW else None
        estimated = None
        truth_delay = None
        hop_ages: List[Dict[str, object]] = []
        ages: List[float] = []
        if chosen is not None:
            origin = host_node(requester_addr)
            node = host_node(chosen)
            detail = explain_delay(self.delay_estimator, origin, node)
            estimated = detail["value"] if math.isfinite(detail["value"]) else None
            if obs.ground_truth is not None:
                truth_delay = obs.ground_truth.true_delay_between(
                    requester_addr, chosen
                )
            now = self.host.sim.now
            try:
                path = self.store.topology.path(origin, node)
            except SchedulingError:
                path = []
            for u, v in zip(path, path[1:]):
                state = self.store.link_state(u, v)
                age = None
                if state is not None:
                    # updated_at defaults to -1.0 until the first report.
                    updated = max(state.latency_updated_at, state.qdepth_updated_at)
                    if updated >= 0.0:
                        age = now - updated
                        ages.append(age)
                hop_ages.append(
                    {"hop": f"{u[0]}:{u[1]}>{v[0]}:{v[1]}", "age": age}
                )
        obs.trace.decision(
            request_id,
            scheduler=type(self).__name__,
            metric=metric,
            chosen_addr=chosen,
            candidates=len(ranking),
            estimated_delay=estimated,
            truth_delay=truth_delay,
            hop_ages=hop_ages,
            telemetry_age_max=max(ages) if ages else None,
        )

    def _rank_raw(self, origin, candidates) -> List[Tuple[int, Tuple[float, float]]]:
        """Both estimates per candidate, in address order (unsorted — the
        device applies its own policy)."""
        delays = dict(rank_by_delay(self.delay_estimator, origin, candidates))
        bandwidths = dict(rank_by_bandwidth(self.bandwidth_estimator, origin, candidates))
        return [
            (node[1], (delays[node], bandwidths[node]))
            for node in sorted(candidates)
            if node != origin
        ]
