"""The paper's contribution: INT-driven network-aware task scheduling.

Pipeline (Fig. 1): probe reports from :mod:`repro.telemetry` feed a
:class:`~repro.core.telemetry_store.TelemetryStore`, which maintains the
inferred topology (Section III-B) plus per-link delay and per-port max-queue
statistics.  :mod:`repro.core.estimators` turns those into end-to-end delay
(Section III-C, ``k * max_qdepth`` hop-latency model) and bottleneck
available-bandwidth estimates (Section III-D).  :mod:`repro.core.ranking`
implements Algorithm 1 and its bandwidth twin, and
:class:`~repro.core.scheduler.NetworkAwareScheduler` serves ranked edge-server
lists to edge devices over the simulated network.  Baselines (*Nearest*,
*Random*) speak the same query protocol.
"""

from repro.core.baselines import NearestScheduler, RandomScheduler
from repro.core.client import SchedulerClient
from repro.core.estimators import DelayEstimator, BandwidthEstimator, QdepthUtilizationCurve
from repro.core.ranking import rank_by_bandwidth, rank_by_delay
from repro.core.scheduler import NetworkAwareScheduler, SchedulerService
from repro.core.telemetry_store import TelemetryStore
from repro.core.topology_inference import InferredTopology

__all__ = [
    "NearestScheduler",
    "RandomScheduler",
    "SchedulerClient",
    "DelayEstimator",
    "BandwidthEstimator",
    "QdepthUtilizationCurve",
    "rank_by_bandwidth",
    "rank_by_delay",
    "NetworkAwareScheduler",
    "SchedulerService",
    "TelemetryStore",
    "InferredTopology",
]
