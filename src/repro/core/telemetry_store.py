"""The scheduler's network-state database.

Subscribes to the collector's probe reports and maintains, per *directed*
link (u -> v) of the inferred topology:

* ``link_delay`` — the latest (and an EWMA of) the measured u->v link
  latency (transmission + propagation, excluding queueing: the INT program
  measures at ingress before enqueue, Section III-C);
* ``max_qdepth`` — the maximum egress queue depth at u's port toward v over
  the most recent probing interval (the register value the probe collected
  and reset).

The paper is explicit that the *maximum* (not the average) queue length per
probing interval is the useful congestion signal, and that values refresh
whenever a probe traverses the device.  Readings older than ``staleness``
decay to "no congestion observed" — a register that stopped being refreshed
says nothing about the present.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.simnet.engine import Simulator
from repro.telemetry.records import ProbeReport, TelemetryNodeId
from repro.core.topology_inference import InferredTopology

__all__ = ["TelemetryStore", "LinkState", "DEFAULT_STALENESS"]

DEFAULT_STALENESS = 2.0          # seconds; ~20 probing intervals at the default rate
EWMA_ALPHA = 0.3                 # weight of the newest latency sample


@dataclass
class LinkState:
    """Latest telemetry for one directed link."""

    latency: Optional[float] = None          # newest sample (s)
    latency_ewma: Optional[float] = None     # smoothed latency (s)
    latency_updated_at: float = -1.0
    qdepth_updated_at: float = -1.0          # last time any reading arrived
    samples: int = 0
    # Monotonic deque of (time, reading): the front is always the maximum
    # reading within the sliding window (older and dominated entries are
    # evicted on update).
    qdepth_readings: Deque[Tuple[float, int]] = field(default_factory=deque)

    @property
    def max_qdepth(self) -> int:
        """Current window maximum (without staleness/window eviction —
        callers should use :meth:`TelemetryStore.max_qdepth`)."""
        return self.qdepth_readings[0][1] if self.qdepth_readings else 0


class TelemetryStore:
    """Inferred topology + per-directed-link telemetry."""

    def __init__(
        self,
        sim: Simulator,
        *,
        staleness: float = DEFAULT_STALENESS,
        qdepth_window: float = 0.1,
    ) -> None:
        self.sim = sim
        self.staleness = staleness
        # Several probes can cross the same egress port within one probing
        # interval; each collect-and-reset leaves near-zero readings for the
        # followers.  The store therefore keeps the *maximum* reading seen
        # within a window (default: one probing interval) instead of
        # latest-wins, so a real congestion reading is not masked by the
        # zero a trailing probe picked up microseconds later.
        self.qdepth_window = qdepth_window
        self.topology = InferredTopology()
        self._links: Dict[Tuple[TelemetryNodeId, TelemetryNodeId], LinkState] = {}
        # Last sim time each node appeared on any probe path — the signal
        # graceful degradation uses to tell "telemetry about this node is
        # fresh" from "this corner of the network has gone dark".
        self._node_seen: Dict[TelemetryNodeId, float] = {}
        self.reports_processed = 0

    # -- ingestion (collector subscriber) ----------------------------------

    def update(self, report: ProbeReport) -> None:
        now = self.sim.now
        path = report.path_nodes()
        self.topology.observe_path(path)
        for node in path:
            self._node_seen[node] = now
        for u, v, latency in report.link_latencies():
            state = self._state(u, v)
            if latency is not None:
                state.latency = latency
                if state.latency_ewma is None:
                    state.latency_ewma = latency
                else:
                    state.latency_ewma = (
                        EWMA_ALPHA * latency + (1.0 - EWMA_ALPHA) * state.latency_ewma
                    )
                state.latency_updated_at = now
                state.samples += 1
        for sw, downstream, _port, qdepth in report.port_observations():
            state = self._state(sw, downstream)
            readings = state.qdepth_readings
            while readings and now - readings[0][0] > self.qdepth_window:
                readings.popleft()
            while readings and readings[-1][1] <= qdepth:
                readings.pop()
            readings.append((now, qdepth))
            state.qdepth_updated_at = now
        self.reports_processed += 1

    def _state(self, u: TelemetryNodeId, v: TelemetryNodeId) -> LinkState:
        key = (u, v)
        state = self._links.get(key)
        if state is None:
            state = LinkState()
            self._links[key] = state
        return state

    # -- queries -------------------------------------------------------------

    def link_state(self, u: TelemetryNodeId, v: TelemetryNodeId) -> Optional[LinkState]:
        return self._links.get((u, v))

    def link_delay(
        self,
        u: TelemetryNodeId,
        v: TelemetryNodeId,
        default: float = 0.0,
        *,
        allow_stale: bool = False,
    ) -> float:
        """Smoothed latency of the directed link, or ``default`` when never
        (or too long ago) measured.  ``allow_stale`` keeps returning the
        last-known EWMA past the staleness horizon — degraded-mode ranking
        prefers an old measurement over no measurement."""
        state = self._links.get((u, v))
        if state is None or state.latency_ewma is None:
            return default
        if not allow_stale and self.sim.now - state.latency_updated_at > self.staleness:
            return default
        return state.latency_ewma

    def max_qdepth(self, u: TelemetryNodeId, v: TelemetryNodeId) -> int:
        """Max queue depth at u's egress toward v over the window ending at
        the most recent report; 0 when unknown or stale (no reading = no
        evidence of congestion, matching the register's reset-to-zero
        semantics).  The window is anchored to the *newest report*, not the
        read time: with slow probing the last interval's reading stays
        authoritative until staleness, exactly like the pre-window store."""
        state = self._links.get((u, v))
        if state is None:
            return 0
        if self.sim.now - state.qdepth_updated_at > self.staleness:
            return 0
        readings = state.qdepth_readings
        return readings[0][1] if readings else 0

    def node_age(self, node: TelemetryNodeId) -> Optional[float]:
        """Seconds since ``node`` last appeared on any probe path, or
        ``None`` when it has never been observed.  Never-seen is distinct
        from stale on purpose: at cold start nothing has been measured and
        nothing should be quarantined."""
        seen = self._node_seen.get(node)
        if seen is None:
            return None
        return self.sim.now - seen

    def seen_nodes(self) -> List[TelemetryNodeId]:
        """Every node ever observed on a probe path, sorted — the staleness
        sampler's iteration domain (pair each with :meth:`node_age`)."""
        return sorted(self._node_seen)

    def known_link_count(self) -> int:
        return len(self._links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TelemetryStore links={len(self._links)} "
            f"reports={self.reports_processed}>"
        )
